//! Consistency checks between independently-implemented models: the
//! functional composition calculus (bpvec-core), the hardware cost model
//! (bpvec-hwmodel) and the accelerator simulator (bpvec-sim) must agree on
//! throughput arithmetic everywhere, or the figures would silently drift.

use bpvec::core::{BitWidth, Cvu, CvuConfig};
use bpvec::hwmodel::units::{throughput_multiplier, CvuGeometry};
use bpvec::sim::AcceleratorConfig;

#[test]
fn composition_clusters_match_hwmodel_multiplier_for_all_bitwidths() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let geom = CvuGeometry::paper_default();
    for bx in 1..=8u32 {
        for bw in 1..=8u32 {
            let composition = cvu
                .compose(BitWidth::new(bx).unwrap(), BitWidth::new(bw).unwrap())
                .unwrap();
            let hw = throughput_multiplier(&geom, bx, bw);
            assert_eq!(
                composition.clusters() as f64,
                hw,
                "bx={bx} bw={bw}: core says {} clusters, hwmodel says {hw}",
                composition.clusters()
            );
        }
    }
}

#[test]
fn accelerator_throughput_equals_cvu_throughput_times_unit_count() {
    let accel = AcceleratorConfig::bpvec();
    let cvu = Cvu::new(CvuConfig::paper_default());
    let num_cvus = accel.mac_units as usize / cvu.config().lanes;
    for (bx, bw) in [(8u32, 8u32), (8, 4), (8, 2), (4, 4), (4, 2), (2, 2), (3, 5)] {
        let bxw = BitWidth::new(bx).unwrap();
        let bww = BitWidth::new(bw).unwrap();
        let per_cvu = cvu.throughput_per_cycle(bxw, bww).unwrap();
        let accel_thr = accel.macs_per_cycle(bxw, bww);
        assert_eq!(accel_thr, (per_cvu * num_cvus) as f64, "bx={bx} bw={bw}");
    }
}

#[test]
fn bitfusion_scaling_matches_a_lane1_cvu() {
    // The BitFusion fusion unit is exactly an L=1 CVU; its throughput
    // scaling must match the core model of that geometry.
    let fusion = Cvu::new(CvuConfig {
        num_nbves: 16,
        lanes: 1,
        slice_width: bpvec::core::SliceWidth::BIT2,
        max_bitwidth: BitWidth::INT8,
    });
    let accel = AcceleratorConfig::bitfusion();
    for (bx, bw) in [(8u32, 8u32), (4, 4), (2, 2), (8, 2)] {
        let bxw = BitWidth::new(bx).unwrap();
        let bww = BitWidth::new(bw).unwrap();
        let per_unit = fusion.throughput_per_cycle(bxw, bww).unwrap() as f64;
        assert_eq!(
            accel.macs_per_cycle(bxw, bww),
            per_unit * accel.mac_units as f64,
            "bx={bx} bw={bw}"
        );
    }
}

#[test]
fn energy_per_mac_scales_inversely_with_composition_throughput() {
    use bpvec::hwmodel::units::{composable_energy_per_mac_pj, cvu_cost};
    use bpvec::hwmodel::TechnologyProfile;
    let t = TechnologyProfile::nm45();
    let geom = CvuGeometry::paper_default();
    let unit = cvu_cost(&geom, &t);
    let e88 = composable_energy_per_mac_pj(&unit, &geom, 8, 8);
    for (bx, bw) in [(8u32, 4u32), (4, 4), (2, 2), (8, 2)] {
        let e = composable_energy_per_mac_pj(&unit, &geom, bx, bw);
        let mult = throughput_multiplier(&geom, bx, bw);
        assert!(
            (e88 / e - mult).abs() < 1e-9,
            "bx={bx} bw={bw}: energy ratio {} vs multiplier {mult}",
            e88 / e
        );
    }
}

#[test]
fn dnn_bitwidths_are_always_executable_on_the_paper_cvu() {
    // Every layer bitwidth the model zoo can produce must compose on the
    // paper's CVU (no layer may silently exceed the hardware's range).
    use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
    let cvu = Cvu::new(CvuConfig::paper_default());
    for id in NetworkId::ALL {
        for policy in [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous] {
            let net = Network::build(id, policy);
            for layer in net.compute_layers() {
                assert!(
                    cvu.compose(layer.act_bits, layer.weight_bits).is_ok(),
                    "{id}/{}: {}x{} must compose",
                    layer.name,
                    layer.act_bits,
                    layer.weight_bits
                );
            }
        }
    }
}
