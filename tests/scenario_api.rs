//! Contract tests for the unified `Scenario` evaluation API:
//!
//! * serde round-trips for `Scenario` (via its spec) and `Report`;
//! * a golden-CSV pin of `figure5()`'s output;
//! * bit-for-bit equivalence between the scenario-backed figures and the
//!   seed's hand-rolled `compare` loops (a direct `simulate` reimplementation
//!   here), covering Figures 5–9 and the bandwidth sweep.

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec::gpumodel::{evaluate as gpu_evaluate, GpuPrecision, GpuSpec};
use bpvec::sim::{
    experiments, geomean, simulate, AcceleratorConfig, Comparison, ComparisonRow, DramSpec, Report,
    Scenario, SimConfig, Workload,
};
use bpvec_bench::figure9;

/// The seed's `compare` helper, reproduced verbatim against the engine:
/// the scenario-backed figures must match it bit for bit.
fn seed_compare(
    policy: BitwidthPolicy,
    baseline: (AcceleratorConfig, DramSpec),
    evaluated: (AcceleratorConfig, DramSpec),
) -> Vec<ComparisonRow> {
    NetworkId::ALL
        .iter()
        .map(|&id| {
            let net = Network::build(id, policy);
            let base = simulate(&net, &SimConfig::new(baseline.0, baseline.1));
            let eval = simulate(&net, &SimConfig::new(evaluated.0, evaluated.1));
            ComparisonRow {
                network: id,
                speedup: base.latency_s / eval.latency_s,
                energy_reduction: base.energy_j / eval.energy_j,
            }
        })
        .collect()
}

fn assert_rows_bit_identical(figure: &Comparison, seed: &[ComparisonRow]) {
    assert_eq!(figure.rows.len(), seed.len());
    for (new, old) in figure.rows.iter().zip(seed) {
        assert_eq!(new.network, old.network);
        // Bit-for-bit: the scenario machinery must not perturb a single ulp.
        assert_eq!(new.speedup, old.speedup, "{}", new.network);
        assert_eq!(
            new.energy_reduction, old.energy_reduction,
            "{}",
            new.network
        );
    }
    let gm_s = geomean(&seed.iter().map(|r| r.speedup).collect::<Vec<_>>());
    let gm_e = geomean(&seed.iter().map(|r| r.energy_reduction).collect::<Vec<_>>());
    assert_eq!(figure.geomean_speedup, gm_s);
    assert_eq!(figure.geomean_energy, gm_e);
}

#[test]
fn figures_5_through_8_match_the_seed_bit_for_bit() {
    let tpu = AcceleratorConfig::tpu_like;
    let bf = AcceleratorConfig::bitfusion;
    let bp = AcceleratorConfig::bpvec;
    let ddr4 = DramSpec::ddr4;
    let hbm2 = DramSpec::hbm2;
    let hom = BitwidthPolicy::Homogeneous8;
    let het = BitwidthPolicy::Heterogeneous;
    let cases: [(Comparison, Vec<ComparisonRow>); 6] = [
        (
            experiments::figure5(),
            seed_compare(hom, (tpu(), ddr4()), (bp(), ddr4())),
        ),
        (
            experiments::figure6_baseline(),
            seed_compare(hom, (tpu(), ddr4()), (tpu(), hbm2())),
        ),
        (
            experiments::figure6_bpvec(),
            seed_compare(hom, (tpu(), ddr4()), (bp(), hbm2())),
        ),
        (
            experiments::figure7(),
            seed_compare(het, (bf(), ddr4()), (bp(), ddr4())),
        ),
        (
            experiments::figure8_bitfusion(),
            seed_compare(het, (bf(), ddr4()), (bf(), hbm2())),
        ),
        (
            experiments::figure8_bpvec(),
            seed_compare(het, (bf(), ddr4()), (bp(), hbm2())),
        ),
    ];
    for (figure, seed) in &cases {
        assert_rows_bit_identical(figure, seed);
    }
}

#[test]
fn figure9_matches_the_seed_bit_for_bit() {
    for heterogeneous in [false, true] {
        let (policy, precision) = if heterogeneous {
            (BitwidthPolicy::Heterogeneous, GpuPrecision::Int4)
        } else {
            (BitwidthPolicy::Homogeneous8, GpuPrecision::Int8)
        };
        // The seed's figure9 loop, verbatim.
        let spec = GpuSpec::rtx_2080_ti();
        let mut seed_ddr4 = Vec::new();
        let mut seed_hbm2 = Vec::new();
        for id in NetworkId::ALL {
            let net = Network::build(id, policy);
            let gpu = gpu_evaluate(&net, &spec, precision);
            let ddr4 = simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4()),
            );
            let hbm2 = simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::hbm2()),
            );
            seed_ddr4.push(ddr4.gops_per_watt() / gpu.gops_per_watt);
            seed_hbm2.push(hbm2.gops_per_watt() / gpu.gops_per_watt);
        }
        let (rows, gm_d, gm_h) = figure9(heterogeneous);
        for ((row, sd), sh) in rows.iter().zip(&seed_ddr4).zip(&seed_hbm2) {
            assert_eq!(row.ddr4_ratio, *sd, "{} (het={heterogeneous})", row.network);
            assert_eq!(row.hbm2_ratio, *sh, "{} (het={heterogeneous})", row.network);
        }
        assert_eq!(gm_d, geomean(&seed_ddr4));
        assert_eq!(gm_h, geomean(&seed_hbm2));
    }
}

#[test]
fn bandwidth_sweep_matches_the_seed_bit_for_bit() {
    for id in [NetworkId::ResNet18, NetworkId::Rnn] {
        let sweep = experiments::bandwidth_sweep(id, BitwidthPolicy::Homogeneous8);
        let net = Network::build(id, BitwidthPolicy::Homogeneous8);
        for (gbps, speedup) in sweep {
            let dram = DramSpec::custom("sweep", gbps, 15.0);
            let base = simulate(&net, &SimConfig::new(AcceleratorConfig::tpu_like(), dram));
            let bp = simulate(&net, &SimConfig::new(AcceleratorConfig::bpvec(), dram));
            assert_eq!(speedup, base.latency_s / bp.latency_s, "{id} @ {gbps} GB/s");
        }
    }
}

#[test]
fn figure5_golden_csv() {
    // Pins the exact figure5() series; any engine or scenario change that
    // perturbs the evaluation shows up here first.
    let expected = "\
network,speedup,energy_reduction
AlexNet,1.8027,1.3156
Inception-v1,1.7815,1.2324
ResNet-18,1.9144,1.3078
ResNet-50,1.4487,1.1144
RNN,1.0000,1.0000
LSTM,1.0000,1.0000
GEOMEAN,1.4397,1.1541
";
    assert_eq!(experiments::figure5().to_csv(), expected);
}

#[test]
fn scenario_round_trips_through_json() {
    let scenario = Scenario::new("round trip")
        .platform(AcceleratorConfig::tpu_like())
        .platform(AcceleratorConfig::bpvec())
        .memory(DramSpec::ddr4())
        .memory(DramSpec::custom("HBM3-ish", 512.0, 0.9))
        .workloads(Workload::table1(BitwidthPolicy::Heterogeneous))
        .baseline("TPU-like", "DDR4");
    let json = serde_json::to_string(&scenario).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(scenario, back, "spec equality after round trip");
    // And the rebuilt scenario evaluates to the identical report.
    assert_eq!(scenario.run(), back.run());
}

#[test]
fn report_round_trips_through_json() {
    let report = experiments::homogeneous_grid();
    let back: Report = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(report, back);
    // The reconstructed report still serves figure slices.
    assert_eq!(
        report.comparison("BPVeC", "DDR4"),
        back.comparison("BPVeC", "DDR4")
    );
}

#[test]
fn comparison_round_trips_through_json() {
    let f = experiments::figure7();
    let json = serde_json::to_string(&f).unwrap();
    let back: Comparison = serde_json::from_str(&json).unwrap();
    assert_eq!(f, back);
}
