//! Three-way differential validation over the full paper grid.
//!
//! `bpvec_isa::diff` cross-checks the analytical `CostModel`, the lowered
//! ISA programs on the cycle-counting machine, and (on probe-sized
//! windows) the bit-true packed executor. These tests run the harness the
//! way CI gates it:
//!
//! * every Table I model **and** the ViT/BERT presets, under both
//!   bitwidth policies, at the paper's batch sizes — every typed
//!   tolerance contract must hold, attention layers included;
//! * a packed-executor probe per network — bit-true output, identical MAC
//!   counts across analytic/array/program views, array cycles inside the
//!   contracted band over the machine's compute floor;
//! * deliberately perturbed configurations — the harness must *fail*,
//!   with the drift typed to the quantity that moved (the proof that
//!   green runs mean something).

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec::isa::MachineConfig;
use bpvec::isa::{diff_execution, diff_network, diff_network_against, execution_probe, Mismatch};
use bpvec::sim::{BatchRegime, ScratchpadSpec};

const GRID: [NetworkId; 8] = [
    NetworkId::AlexNet,
    NetworkId::InceptionV1,
    NetworkId::ResNet18,
    NetworkId::ResNet50,
    NetworkId::Rnn,
    NetworkId::Lstm,
    NetworkId::VitBase,
    NetworkId::BertBase,
];

const POLICIES: [BitwidthPolicy; 2] = [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous];

/// The model ↔ machine leg holds on the whole grid at paper batch sizes.
#[test]
fn cost_model_and_isa_machine_agree_across_the_paper_grid() {
    let batches = BatchRegime::paper_default();
    for id in GRID {
        for policy in POLICIES {
            let net = Network::build(id, policy);
            let d = diff_network(&net, MachineConfig::bpvec_ddr4(), batches.batch_for(id));
            assert!(d.is_clean(), "{policy:?}:\n{d}");
            assert_eq!(
                d.layers.len(),
                net.layers.len(),
                "{id:?}: every layer must be cross-checked"
            );
        }
    }
}

/// Transformer presets are cross-checked through their attention GEMMs,
/// not around them.
#[test]
fn transformer_grids_include_attention_kinds() {
    for id in [NetworkId::VitBase, NetworkId::BertBase] {
        let net = Network::build(id, BitwidthPolicy::Heterogeneous);
        let d = diff_network(&net, MachineConfig::bpvec_ddr4(), 2);
        assert!(d.is_clean(), "{d}");
        for kind in ["matmul-qk", "attention-v", "softmax", "layer-norm"] {
            assert!(
                d.layers.iter().any(|l| l.kind == kind),
                "{id:?} diff must cover {kind}"
            );
        }
    }
}

/// The packed-executor leg: probe windows for every network run bit-true
/// and agree with the other two views on MACs and cycle floors.
#[test]
fn packed_execution_probes_agree_for_every_network() {
    for id in GRID {
        for policy in POLICIES {
            let (layers, input) = execution_probe(id, policy);
            let name = format!("{id:?}-{policy:?}");
            let d = diff_execution(&name, &layers, &input, MachineConfig::bpvec_ddr4())
                .unwrap_or_else(|e| panic!("{name}: probe failed to execute: {e}"));
            assert!(d.is_clean(), "{d}");
            assert!(d.bit_true, "{name}: packed output must match reference");
            assert!(!d.layers.is_empty(), "{name}: probe must cover layers");
        }
    }
}

/// A doubled compute rate in the model config is typed as `ComputeTime`.
#[test]
fn perturbed_compute_rate_is_detected() {
    let net = Network::build(NetworkId::ResNet50, BitwidthPolicy::Homogeneous8);
    let mut model_cfg = MachineConfig::bpvec_ddr4();
    model_cfg.accel.mac_units *= 2;
    let d = diff_network_against(&net, model_cfg, MachineConfig::bpvec_ddr4(), 16);
    assert!(!d.is_clean());
    assert!(d.layers.iter().any(|l| l
        .mismatches
        .iter()
        .any(|m| matches!(m, Mismatch::ComputeTime { .. }))));
}

/// A shrunken model-side scratchpad changes the analytic tiling schedule;
/// the program (lowered for the real machine) no longer tracks it, and the
/// drift is typed as `ModelTraffic`.
#[test]
fn perturbed_scratchpad_is_detected_as_traffic_drift() {
    let net = Network::build(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
    let mut model_cfg = MachineConfig::bpvec_ddr4();
    model_cfg.accel.scratchpad = ScratchpadSpec {
        capacity_bytes: model_cfg.accel.scratchpad.capacity_bytes / 16,
    };
    let d = diff_network_against(&net, model_cfg, MachineConfig::bpvec_ddr4(), 16);
    assert!(!d.is_clean(), "a 16x scratchpad drift must be detected");
    assert!(
        d.layers.iter().any(|l| l
            .mismatches
            .iter()
            .any(|m| matches!(m, Mismatch::ModelTraffic { .. }))),
        "the drift must be typed as ModelTraffic:\n{d}"
    );
}
