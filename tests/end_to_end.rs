//! Cross-crate end-to-end tests: float weights → quantization → bit-true
//! CVU execution on the systolic array → reference integer arithmetic, plus
//! full-network simulation sanity.

use bpvec::core::{BitWidth, Signedness};
use bpvec::dnn::quant::quantize_fitted;
use bpvec::dnn::reference;
use bpvec::dnn::{BitwidthPolicy, Network, NetworkId, Tensor};
use bpvec::sim::systolic::{ArrayConfig, SystolicArray};
use bpvec::sim::{simulate, AcceleratorConfig, DramSpec, SimConfig};
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn quantize_then_execute_conv_on_array_matches_reference() {
    let mut r = rng(100);
    let (ic, oc, k, h) = (8usize, 12usize, 3usize, 10usize);
    let input_f: Vec<f32> = (0..ic * h * h).map(|_| r.gen_range(-1.0..1.0)).collect();
    let weight_f: Vec<f32> = (0..oc * ic * k * k)
        .map(|_| r.gen_range(-0.5..0.5))
        .collect();
    for bits in [8u32, 4, 2] {
        let bw = BitWidth::new(bits).unwrap();
        let (x_q, _) = quantize_fitted(&[ic, h, h], &input_f, bw, Signedness::Signed);
        let (w_q, _) = quantize_fitted(&[oc, ic, k, k], &weight_f, bw, Signedness::Signed);
        let ref_out = reference::conv2d(&x_q, &w_q, (1, 1), (0, 0));

        let oh = h - k + 1;
        let cols = Tensor::from_fn(&[ic * k * k, oh * oh], |idx| {
            let (row, col) = (idx[0], idx[1]);
            let (c, ky, kx) = (row / (k * k), (row / k) % k, row % k);
            x_q[&[c, col / oh + ky, col % oh + kx]]
        });
        let mut wmat = w_q.clone();
        wmat.reshape(&[oc, ic * k * k]);
        let run = SystolicArray::new(ArrayConfig::paper_default())
            .gemm(&wmat, &cols, bw, bw, Signedness::Signed)
            .unwrap();
        let mut expect = ref_out;
        expect.reshape(&[oc, oh * oh]);
        assert_eq!(run.output, expect, "bits={bits}");
    }
}

#[test]
fn quantized_fc_layer_unsigned_activations_signed_weights() {
    // Post-ReLU activations are unsigned in practice; the CVU handles the
    // mixed case because each operand vector carries its own signedness in
    // the slicing. We model it with signed containers holding non-negative
    // activations.
    let mut r = rng(200);
    let (inf, outf) = (96usize, 32usize);
    let x = Tensor::from_fn(&[inf, 1], |_| r.gen_range(0..=127));
    let w = Tensor::from_fn(&[outf, inf], |_| r.gen_range(-8..=7));
    let run = SystolicArray::new(ArrayConfig::paper_default())
        .gemm(&w, &x, BitWidth::INT4, BitWidth::INT8, Signedness::Signed)
        .unwrap();
    let mut x_flat = x.clone();
    x_flat.reshape(&[inf]);
    let mut expect = reference::gemv(&w, &x_flat);
    expect.reshape(&[outf, 1]);
    assert_eq!(run.output, expect);
}

#[test]
fn requantized_two_layer_pipeline_is_bit_exact() {
    // conv -> requantize -> conv, entirely in integers, CVU vs reference.
    let mut r = rng(300);
    let input = Tensor::from_fn(&[4, 8, 8], |_| r.gen_range(-128..=127));
    let w1 = Tensor::from_fn(&[6, 4, 3, 3], |_| r.gen_range(-8..=7));
    let w2 = Tensor::from_fn(&[5, 6, 1, 1], |_| r.gen_range(-8..=7));
    let mid = reference::conv2d(&input, &w1, (1, 1), (1, 1));
    let mid_q = reference::requantize(&mid, 8, BitWidth::INT8, Signedness::Signed);
    let out = reference::conv2d(&reference::relu(&mid_q), &w2, (1, 1), (0, 0));

    // Second layer as GEMM on the array (1x1 conv == GEMM over pixels).
    let act = reference::relu(&mid_q);
    let cols = Tensor::from_fn(&[6, 64], |idx| act[&[idx[0], idx[1] / 8, idx[1] % 8]]);
    let mut wmat = w2.clone();
    wmat.reshape(&[5, 6]);
    let run = SystolicArray::new(ArrayConfig::paper_default())
        .gemm(
            &wmat,
            &cols,
            BitWidth::INT4,
            BitWidth::INT8,
            Signedness::Signed,
        )
        .unwrap();
    let mut expect = out;
    expect.reshape(&[5, 64]);
    assert_eq!(run.output, expect);
}

#[test]
fn all_networks_simulate_on_all_platforms_without_degenerate_results() {
    for id in NetworkId::ALL {
        for policy in [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous] {
            let net = Network::build(id, policy);
            for accel in [
                AcceleratorConfig::tpu_like(),
                AcceleratorConfig::bitfusion(),
                AcceleratorConfig::bpvec(),
            ] {
                for dram in [DramSpec::ddr4(), DramSpec::hbm2()] {
                    let r = simulate(&net, &SimConfig::new(accel, dram));
                    assert!(r.latency_s > 0.0, "{id} latency");
                    assert!(r.energy_j > 0.0, "{id} energy");
                    assert!(
                        r.latency_s < 10.0,
                        "{id} latency {} implausible",
                        r.latency_s
                    );
                    assert!(
                        r.gops_per_watt() > 1.0,
                        "{id} perf/W {} implausible",
                        r.gops_per_watt()
                    );
                }
            }
        }
    }
}

#[test]
fn simulator_compute_times_are_consistent_with_the_cycle_true_array() {
    // The analytical engine's compute-time model (MACs / peak throughput)
    // must agree with the cycle-true systolic array within the fill/drain
    // overhead for a dense GEMM.
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let (m, k, n) = (16usize, 512usize, 16usize);
    let a = Tensor::zeros(&[m, k]);
    let b = Tensor::zeros(&[k, n]);
    let run = arr
        .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
        .unwrap();
    let analytic_cycles = (m * k * n) as f64 / 1024.0;
    let measured = run.cycles as f64;
    assert!(
        measured >= analytic_cycles,
        "cycle-true {measured} cannot beat the analytic bound {analytic_cycles}"
    );
    assert!(
        measured < 1.8 * analytic_cycles,
        "cycle-true {measured} too far above the analytic bound {analytic_cycles}"
    );
}
