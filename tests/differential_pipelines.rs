//! Differential testing: *randomly generated* multi-layer quantized
//! pipelines executed bit-true on the CVU systolic array must match the
//! reference integer pipeline, for arbitrary layer mixes, shapes and
//! bitwidths. This is the repository's strongest end-to-end correctness
//! artifact — any divergence between the composable hardware path and plain
//! arithmetic, anywhere in the stack, fails here.

use bpvec::core::{BitWidth, CvuConfig};
use bpvec::dnn::layer::{Layer, LayerKind};
use bpvec::dnn::Tensor;
use bpvec::sim::systolic::{ArrayConfig, SystolicArray};
use bpvec::sim::{NetworkExecutor, WeightStore};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Builds a random CNN stack: alternating convs (random channels, kernel,
/// stride/padding, bitwidths) and occasional pools, ending in a dense layer.
fn random_stack(seed: u64) -> (Vec<Layer>, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    let mut c = rng.gen_range(1..=4usize);
    let mut hw = rng.gen_range(6..=10usize);
    let input = Tensor::from_fn(&[c, hw, hw], |_| rng.gen_range(-128..=127));
    let n_conv = rng.gen_range(1..=3usize);
    for i in 0..n_conv {
        let oc = rng.gen_range(2..=6usize);
        // 3x3 kernels only while the feature map can absorb them.
        let k = if hw >= 3 && rng.gen_bool(0.5) { 3 } else { 1 };
        let p = if k == 3 && rng.gen_bool(0.5) { 1 } else { 0 };
        let bits = BitWidth::new(rng.gen_range(3..=8)).unwrap();
        layers.push(
            Layer::new(
                format!("conv{i}"),
                LayerKind::Conv2d {
                    in_channels: c,
                    out_channels: oc,
                    kernel: (k, k),
                    stride: (1, 1),
                    padding: (p, p),
                    input_hw: (hw, hw),
                },
            )
            .with_bits(bits, bits),
        );
        hw = hw + 2 * p - k + 1;
        c = oc;
        if hw >= 4 && rng.gen_bool(0.4) {
            layers.push(Layer::new(
                format!("pool{i}"),
                LayerKind::Pool {
                    channels: c,
                    kernel: (2, 2),
                    stride: (2, 2),
                    input_hw: (hw, hw),
                },
            ));
            hw /= 2;
        }
    }
    let feat = c * hw * hw;
    let bits = BitWidth::new(rng.gen_range(3..=8)).unwrap();
    layers.push(
        Layer::new(
            "head",
            LayerKind::FullyConnected {
                in_features: feat,
                out_features: rng.gen_range(2..=8),
            },
        )
        .with_bits(bits, bits),
    );
    (layers, input)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random CNN pipelines: array execution == reference execution,
    /// bit for bit, including requantization points.
    #[test]
    fn random_cnn_pipeline_is_bit_true(seed in proptest::num::u64::ANY) {
        let (layers, mut input) = random_stack(seed);
        // Clamp the input to the first layer's activation range.
        let (lo, hi) = layers[0]
            .act_bits
            .range(bpvec::core::Signedness::Signed);
        for v in input.as_mut_slice() {
            *v = (*v).clamp(lo, hi);
        }
        let weights = WeightStore::synthesize(&layers, seed ^ 0xabcd);
        let ex = NetworkExecutor::new(SystolicArray::new(ArrayConfig {
            rows: 4,
            cols: 4,
            cvu: CvuConfig::paper_default(),
        }));
        let trace = ex.execute(&layers, &input, &weights).expect("valid pipeline");
        let reference = ex.execute_reference(&layers, &input, &weights);
        prop_assert_eq!(&trace.output, &reference);
    }

    /// Random recurrent pipelines (RNN and LSTM cells) are bit-true too.
    #[test]
    fn random_recurrent_pipeline_is_bit_true(
        seed in proptest::num::u64::ANY,
        gates in prop_oneof![Just(1usize), Just(4)],
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hidden = rng.gen_range(4..=16usize);
        let seq = rng.gen_range(1..=6usize);
        let bits = BitWidth::new(rng.gen_range(3..=8)).unwrap();
        let layers = vec![Layer::new(
            "rec",
            LayerKind::Recurrent {
                input_size: hidden,
                hidden_size: hidden,
                gates,
                seq_len: seq,
            },
        )
        .with_bits(bits, bits)];
        let (lo, hi) = bits.range(bpvec::core::Signedness::Signed);
        let input = Tensor::from_fn(&[seq, hidden], |_| rng.gen_range(lo..=hi));
        let weights = WeightStore::synthesize(&layers, seed ^ 0x1234);
        let ex = NetworkExecutor::new(SystolicArray::new(ArrayConfig {
            rows: 4,
            cols: 4,
            cvu: CvuConfig::paper_default(),
        }));
        let trace = ex.execute(&layers, &input, &weights).expect("valid pipeline");
        prop_assert_eq!(
            &trace.output,
            &ex.execute_reference(&layers, &input, &weights)
        );
    }
}
