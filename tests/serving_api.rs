//! End-to-end contracts of the `bpvec-serve` subsystem through the
//! umbrella crate: the serving pipeline is deterministic, conserves
//! requests, pairs arrivals across policies, and demonstrably exploits the
//! backend's `BatchRegime` batch costs.

use bpvec::dnn::{BitwidthPolicy, NetworkId};
use bpvec::serve::{
    ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, Router, ServingReport, ServingScenario,
    TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, Workload};

fn alexnet() -> Workload {
    Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8)
}

fn scenario(requests: u64, rate_rps: f64) -> ServingScenario {
    ServingScenario::new("serving_api")
        .platform(AcceleratorConfig::bpvec())
        .policy(BatchPolicy::immediate())
        .policy(BatchPolicy::deadline(16, 0.020))
        .cluster(ClusterSpec::single())
        .cluster(ClusterSpec::new(2, Router::JoinShortestQueue))
        .traffic(
            TrafficSpec::new(
                "poisson",
                ArrivalProcess::poisson(rate_rps),
                RequestMix::single(alexnet()),
                requests,
            )
            .with_warmup(requests / 10),
        )
        .seed(0xFEED)
}

#[test]
fn serving_reports_are_deterministic_and_serializable() {
    let s = scenario(600, 150.0);
    let a = s.run();
    let b = s.run();
    assert_eq!(a, b);
    assert_eq!(a.to_csv(), b.to_csv());
    let back: ServingReport = serde_json::from_str(&a.to_json()).unwrap();
    assert_eq!(a, back);
}

#[test]
fn every_cell_conserves_requests() {
    let report = scenario(600, 150.0).run();
    assert_eq!(report.cells.len(), 2 * 2);
    for cell in &report.cells {
        assert_eq!(cell.metrics.admitted, 600, "{cell:?}");
        assert_eq!(cell.metrics.completed, 600, "{cell:?}");
        assert!(cell.metrics.utilization > 0.0 && cell.metrics.utilization <= 1.0);
    }
}

#[test]
fn dynamic_batching_exploits_batch_regime_under_load() {
    // 1.2× the unbatched capacity of AlexNet on BPVeC+DDR4 (~199 rps/s1):
    // immediate dispatch diverges, deadline batching stays stable.
    let report = scenario(2_000, 240.0).run();
    let p99 = |policy: &str, cluster: &str| {
        report
            .cell("BPVeC", policy, cluster, "poisson")
            .expect("cell exists")
            .metrics
            .latency
            .p99_s
    };
    assert!(p99("deadline(16,20000us)", "rrx1") < p99("immediate", "rrx1"));
    // Sharding rescues immediate dispatch: two replicas double capacity.
    assert!(p99("immediate", "jsqx2") < p99("immediate", "rrx1"));
}
