//! End-to-end contracts of the adaptive precision serving subsystem
//! through the umbrella crate: the controller is byte-deterministic,
//! degrades under overload and recovers after it, the autoscaler respects
//! its bounds, and the scenario API surfaces control state in its CSV.

use bpvec::dnn::{BitwidthPolicy, NetworkId, PrecisionPolicy};
use bpvec::serve::{
    run_serving_adaptive, AdaptiveSpec, ArrivalProcess, AutoscalerConfig, BatchPolicy, ClusterSpec,
    ControllerConfig, RequestMix, Router, ServiceModel, ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

fn ladder() -> bpvec::dnn::DegradationLadder {
    PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("narrows monotonically")
}

/// Static-8b batched capacity of AlexNet on BPVeC + DDR4.
fn capacity_rps() -> f64 {
    let accel = AcceleratorConfig::bpvec();
    let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8)
        .with_batching(BatchRegime::fixed(16));
    1.0 / accel.evaluate(&w, &w.build(), &DramSpec::ddr4()).latency_s
}

/// 0.6× capacity, a 2× burst, 0.6× recovery.
fn step_traffic(cap: f64) -> TrafficSpec {
    let lo = 1.0 / (0.6 * cap);
    let hi = 1.0 / (2.0 * cap);
    let gaps: Vec<f64> = std::iter::repeat_n(lo, 600)
        .chain(std::iter::repeat_n(hi, 1_200))
        .chain(std::iter::repeat_n(lo, 600))
        .collect();
    TrafficSpec::new(
        "step-2x",
        ArrivalProcess::trace(gaps),
        RequestMix::single(Workload::new(
            NetworkId::AlexNet,
            BitwidthPolicy::Homogeneous8,
        )),
        2_400,
    )
}

fn scenario(cap: f64, spec: AdaptiveSpec) -> ServingScenario {
    ServingScenario::new("adaptive_api")
        .platform(AcceleratorConfig::bpvec())
        .policy(BatchPolicy::deadline(16, 0.008))
        .cluster(ClusterSpec::single())
        .traffic(step_traffic(cap))
        .static_control()
        .control(spec)
        .sla_s(0.025)
        .seed(0xFEED)
}

fn controller() -> ControllerConfig {
    ControllerConfig::new(0.020)
        .with_depths(4, 24)
        .with_target_p99(0.025)
}

#[test]
fn adaptive_reports_are_byte_deterministic_across_runs() {
    let cap = capacity_rps();
    let build = || {
        scenario(
            cap,
            AdaptiveSpec::new(ladder()).with_controller(controller()),
        )
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a, b);
    assert_eq!(a.to_csv(), b.to_csv(), "CSV must match byte for byte");
    let back: bpvec::serve::ServingReport = serde_json::from_str(&a.to_json()).unwrap();
    assert_eq!(a, back);
}

#[test]
fn adaptive_degrades_under_overload_and_beats_static_goodput() {
    let cap = capacity_rps();
    let report = scenario(
        cap,
        AdaptiveSpec::new(ladder()).with_controller(controller()),
    )
    .run();
    assert_eq!(report.cells.len(), 2);
    let cell = |prefix: &str| {
        report
            .cells
            .iter()
            .find(|c| c.control.starts_with(prefix))
            .expect("cell exists")
    };
    let stat = cell("static");
    let adap = cell("adaptive");
    // Static never degrades; the controller does, and it pays off.
    assert_eq!(stat.metrics.degraded_share, 0.0);
    assert_eq!(stat.metrics.policy_switches, 0);
    assert!(adap.metrics.degraded_share > 0.0);
    assert!(adap.metrics.policy_switches > 0);
    assert!(
        adap.metrics.goodput_rps >= 2.0 * stat.metrics.goodput_rps,
        "adaptive goodput {} vs static {}",
        adap.metrics.goodput_rps,
        stat.metrics.goodput_rps
    );
    // Time-in-policy spans the ladder and sums to 1.
    assert_eq!(adap.metrics.time_in_policy.len(), 3);
    let total: f64 = adap.metrics.time_in_policy.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "{total}");
    // The CSV carries the control column and the adaptive shares.
    let csv = report.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("precision,control,"), "{header}");
    assert!(
        header.ends_with("full_precision_share,policy_switches,mean_replicas,seq,classes"),
        "{header}"
    );
    assert!(csv.contains(",static,"), "{csv}");
    assert!(
        csv.contains("adaptive(Homogeneous8>uniform4>uniform2)"),
        "{csv}"
    );
}

#[test]
fn controller_recovers_to_full_precision_after_the_burst() {
    let cap = capacity_rps();
    let out = run_serving_adaptive(
        &AcceleratorConfig::bpvec(),
        &DramSpec::ddr4(),
        BatchPolicy::deadline(16, 0.008),
        ClusterSpec::single(),
        &step_traffic(cap),
        &AdaptiveSpec::new(ladder()).with_controller(controller()),
        ServiceModel::Deterministic,
        0xFEED,
    );
    assert!(!out.policy_switches.is_empty());
    assert_eq!(out.policy_switches[0].to_rung, 1, "first move degrades");
    assert_eq!(
        out.policy_switches.last().unwrap().to_rung,
        0,
        "the post-burst lull brings the replica back to full precision"
    );
    // The tail of the run is served at full precision again.
    let last = out.records.last().unwrap();
    assert_eq!(last.rung, 0, "{last:?}");
}

#[test]
fn autoscaled_cluster_grows_under_overload_and_respects_bounds() {
    let cap = capacity_rps();
    // Single-rung ladder: capacity must come from replicas, not precision.
    let one_rung = PrecisionPolicy::degradation_ladder([PrecisionPolicy::homogeneous8()])
        .expect("single rung");
    let spec = AdaptiveSpec::new(one_rung)
        .with_controller(ControllerConfig::new(0.020).with_depths(0, 1_000_000))
        .with_autoscaler(AutoscalerConfig::new(1, 4).with_depths(1.0, 8.0));
    let report = scenario(cap, spec).run();
    let adap = report
        .cells
        .iter()
        .find(|c| c.control.starts_with("adaptive"))
        .expect("cell exists");
    assert!(
        adap.metrics.scale_events > 0,
        "the burst must trigger scaling"
    );
    assert!(
        adap.metrics.mean_active_replicas > 1.0 && adap.metrics.mean_active_replicas <= 4.0,
        "{}",
        adap.metrics.mean_active_replicas
    );
    assert!(adap.control.ends_with(";scale1-4)"), "{}", adap.control);
    // More capacity under the same arrivals: goodput can only improve.
    let stat = report
        .cells
        .iter()
        .find(|c| c.control == "static")
        .expect("cell exists");
    assert!(adap.metrics.goodput_rps > stat.metrics.goodput_rps);
}

#[test]
fn least_degraded_router_keeps_full_precision_majority_on_a_half_loaded_pair() {
    let cap = capacity_rps();
    // Two replicas at a load one replica can almost carry: least-degraded
    // routing concentrates overflow on one replica and keeps the other at
    // full precision, so most requests stay at rung 0.
    let traffic = TrafficSpec::new(
        "steady-0.9x",
        ArrivalProcess::poisson(0.9 * cap),
        RequestMix::single(Workload::new(
            NetworkId::AlexNet,
            BitwidthPolicy::Homogeneous8,
        )),
        2_000,
    );
    let out = run_serving_adaptive(
        &AcceleratorConfig::bpvec(),
        &DramSpec::ddr4(),
        BatchPolicy::deadline(16, 0.008),
        ClusterSpec::new(2, Router::LeastDegraded),
        &traffic,
        &AdaptiveSpec::new(ladder()).with_controller(controller()),
        ServiceModel::Deterministic,
        7,
    );
    let full = out.records.iter().filter(|r| r.rung == 0).count();
    let share = full as f64 / out.records.len() as f64;
    assert!(
        share >= 0.5,
        "full-precision share {share:.3} on a half-loaded pair"
    );
}

#[test]
fn invalid_adaptive_configurations_surface_as_scenario_errors() {
    let cap = capacity_rps();
    // Autoscaler bounds exclude the declared cluster.
    let spec = AdaptiveSpec::new(ladder()).with_autoscaler(AutoscalerConfig::new(2, 4));
    let err = scenario(cap, spec).try_run().unwrap_err();
    assert!(err.to_string().contains("autoscaler"), "{err}");
    // Ladder construction itself rejects a widening sequence.
    let widening = PrecisionPolicy::degradation_ladder(
        ["int2", "int4"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    );
    assert!(widening.is_err());
}
