//! Cross-crate integration tests of the observability layer: byte-exact
//! trace determinism through the full `ServingScenario` grid, and the
//! event vocabulary of an autoscaled adaptive run.

use std::sync::Arc;

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId, PrecisionPolicy};
use bpvec::obs::{to_chrome_json, validate_spans, MemorySink, Phase};
use bpvec::serve::{
    run_serving_adaptive_traced, AdaptiveSpec, ArrivalProcess, AutoscalerConfig, BatchPolicy,
    ClusterSpec, ControllerConfig, RequestMix, Router, ServiceModel, ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, DramSpec, Evaluator, Measurement, Workload};

fn small_scenario(sink: Arc<MemorySink>) -> ServingScenario {
    let mix = RequestMix::new()
        .and(
            Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8),
            0.7,
        )
        .and(
            Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            0.3,
        );
    ServingScenario::new("obs_trace")
        .platform(AcceleratorConfig::bpvec())
        .policy(BatchPolicy::immediate())
        .policy(BatchPolicy::fixed(8))
        .cluster(ClusterSpec::single())
        .cluster(ClusterSpec::new(2, Router::JoinShortestQueue))
        .traffic(TrafficSpec::new(
            "poisson",
            ArrivalProcess::poisson(400.0),
            mix,
            500,
        ))
        .seed(0x0B5)
        .trace(sink)
}

/// Two identically-seeded scenario runs must serialize to byte-identical
/// Chrome JSON — the rayon-parallel grid buffers per-cell and forwards in
/// declaration order, so scheduling cannot leak into the trace.
#[test]
fn serving_scenario_traces_are_byte_identical() {
    let run = || {
        let sink = Arc::new(MemorySink::new());
        let report = small_scenario(sink.clone()).run();
        assert_eq!(report.cells.len(), 4);
        let events = sink.take();
        assert!(!events.is_empty(), "trace must not be empty");
        validate_spans(&events).expect("well-formed span nesting");
        to_chrome_json(&events)
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "identically-seeded runs must trace identical bytes");
}

/// Per-inference latency proportional to the policy's narrowest weight
/// width — cheap enough that the test drives thousands of requests fast.
struct RungServer;

const FULL_S: f64 = 1e-3;

impl Evaluator for RungServer {
    fn label(&self) -> String {
        "rung".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        let bits = workload
            .policy
            .min_weight_bits()
            .expect("non-empty policy")
            .bits();
        Measurement {
            latency_s: FULL_S * f64::from(bits) / 8.0,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

/// A step overload against a 1→3 autoscaled adaptive cluster: the burst
/// outruns even three full-precision replicas, so the trace must record
/// the whole vocabulary — request lifecycle spans, queue-depth samples,
/// rung-switch instants, and scale instants across all three replicas.
#[test]
fn autoscaled_adaptive_trace_covers_the_event_vocabulary() {
    let ladder = PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("narrows monotonically");
    let spec = AdaptiveSpec::new(ladder)
        .with_controller(ControllerConfig::new(4.0 * FULL_S).with_depths(2, 12))
        .with_autoscaler(AutoscalerConfig::new(1, 3));
    // 0.5x single-replica capacity, a burst at 6x (above the 3-replica
    // full-precision ceiling), then recovery.
    let lo_gap = 2.0 * FULL_S;
    let hi_gap = FULL_S / 6.0;
    let gaps: Vec<f64> = std::iter::repeat_n(lo_gap, 300)
        .chain(std::iter::repeat_n(hi_gap, 2_000))
        .chain(std::iter::repeat_n(lo_gap, 300))
        .collect();
    let traffic = TrafficSpec::new(
        "step-6x",
        ArrivalProcess::trace(gaps),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        2_600,
    );

    let sink = MemorySink::new();
    let outcome = run_serving_adaptive_traced(
        &RungServer,
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::single(),
        &traffic,
        &spec,
        ServiceModel::Deterministic,
        17,
        &sink,
    );

    let mut active = 1i64;
    let mut peak = active;
    for e in &outcome.scale_events {
        active += if e.up { 1 } else { -1 };
        peak = peak.max(active);
    }
    assert_eq!(peak, 3, "the burst must recruit all 3 replicas");
    assert!(
        !outcome.policy_switches.is_empty(),
        "the burst must also force precision degradation"
    );

    let events = sink.take();
    validate_spans(&events).expect("well-formed span nesting");
    let named = |name: &str| events.iter().filter(|e| e.name == name).count();
    for name in [
        "arrive",
        "queue",
        "exec",
        "complete",
        "queue_depth",
        "rung_switch",
        "rung",
        "scale_up",
        "scale_down",
        "active_replicas",
    ] {
        assert!(named(name) > 0, "trace must contain `{name}` events");
    }
    assert_eq!(named("arrive") as u64, outcome.admitted);
    assert_eq!(named("complete"), outcome.records.len());
    assert_eq!(
        named("rung_switch"),
        outcome.policy_switches.len(),
        "one rung_switch instant per controller decision"
    );
    assert_eq!(
        named("scale_up") + named("scale_down"),
        outcome.scale_events.len(),
        "one scale instant per autoscaler action"
    );
    // Exec spans must appear on all three replica tracks (pids 0..3).
    let exec_pids: std::collections::BTreeSet<u32> = events
        .iter()
        .filter(|e| e.name == "exec" && e.ph == Phase::Begin)
        .map(|e| e.pid)
        .collect();
    assert_eq!(
        exec_pids.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2],
        "all three replicas must execute work"
    );
}
