//! Serialization checks for the crate's data structures (C-SERDE): configs
//! and results must serialize cleanly so experiment outputs can be stored.
//! The approved dependency set includes `serde` but no data-format crate,
//! so a minimal JSON serializer lives in this test to drive the derives.

use bpvec::core::{BitWidth, CvuConfig, Signedness, SliceWidth, SlicedValue};
use bpvec::dnn::{BitwidthPolicy, Network, NetworkId, Tensor};
use bpvec::hwmodel::{DesignPoint, TechnologyProfile};
use bpvec::sim::AcceleratorConfig;

#[test]
fn configs_serialize_to_valid_structures() {
    // Without a serde data-format crate in the approved dependency set, we
    // verify Serialize works end-to-end via serde's generic serializer
    // trait using a minimal JSON writer implemented here.
    let cfg = CvuConfig::paper_default();
    let s = mini_json::to_string(&cfg);
    assert!(s.contains("\"num_nbves\":16"));
    assert!(s.contains("\"lanes\":16"));

    let accel = AcceleratorConfig::bpvec();
    let s = mini_json::to_string(&accel);
    assert!(s.contains("\"mac_units\":1024"));

    let tech = TechnologyProfile::nm45();
    let s = mini_json::to_string(&tech);
    assert!(s.contains("\"fa_area\""));

    let dp = DesignPoint {
        slice_bits: 2,
        lanes: 16,
    };
    assert!(mini_json::to_string(&dp).contains("\"slice_bits\":2"));

    let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
    let s = mini_json::to_string(&net);
    assert!(s.contains("ResNet18"));
    assert!(s.contains("conv1"));

    // Transformer presets serialize with every attention-era layer kind
    // present as a named variant.
    let bert = Network::build(NetworkId::BertBase, BitwidthPolicy::Heterogeneous);
    let s = mini_json::to_string(&bert);
    assert!(s.contains("BertBase"));
    assert!(s.contains("block0.qk"));
    for kind in ["MatMulQK", "Softmax", "AttentionV", "LayerNorm", "Gelu"] {
        assert!(s.contains(kind), "{kind} missing from {s:.200}");
    }
    assert!(s.contains("\"heads\":12"));

    // The workload's sequence axis serializes alongside the policy.
    let w = bpvec::sim::Workload::new(NetworkId::VitBase, BitwidthPolicy::Homogeneous8)
        .with_seq_len(196);
    let s = mini_json::to_string(&w);
    assert!(s.contains("\"seq_len\":196"));
    assert!(s.contains("\"decode_kv\":null"));

    let sv = SlicedValue::decompose(-77, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
        .expect("in range");
    let s = mini_json::to_string(&sv);
    assert!(s.contains("\"shift\""));

    let t = Tensor::from_data(&[2, 2], vec![1, -2, 3, -4]);
    let s = mini_json::to_string(&t);
    assert!(s.contains("-4"));
}

/// A tiny serde JSON serializer sufficient for structure checks (the
/// approved dependency set has serde but no serde_json).
mod mini_json {
    use serde::ser::{self, Serialize};
    use std::fmt::Write as _;

    pub fn to_string<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        value
            .serialize(&mut Ser { out: &mut out })
            .expect("serialization cannot fail for plain data");
        out
    }

    pub struct Ser<'a> {
        out: &'a mut String,
    }

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! write_scalar {
        ($name:ident, $ty:ty) => {
            fn $name(self, v: $ty) -> Result<(), Error> {
                let _ = write!(self.out, "{v}");
                Ok(())
            }
        };
    }

    impl<'a, 'b> ser::Serializer for &'b mut Ser<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Compound<'a, 'b>;
        type SerializeTuple = Compound<'a, 'b>;
        type SerializeTupleStruct = Compound<'a, 'b>;
        type SerializeTupleVariant = Compound<'a, 'b>;
        type SerializeMap = Compound<'a, 'b>;
        type SerializeStruct = Compound<'a, 'b>;
        type SerializeStructVariant = Compound<'a, 'b>;

        write_scalar!(serialize_i8, i8);
        write_scalar!(serialize_i16, i16);
        write_scalar!(serialize_i32, i32);
        write_scalar!(serialize_i64, i64);
        write_scalar!(serialize_u8, u8);
        write_scalar!(serialize_u16, u16);
        write_scalar!(serialize_u32, u32);
        write_scalar!(serialize_u64, u64);
        write_scalar!(serialize_f32, f32);
        write_scalar!(serialize_f64, f64);
        write_scalar!(serialize_bool, bool);

        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.serialize_str(&v.to_string())
        }

        fn serialize_str(self, v: &str) -> Result<(), Error> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }

        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }

        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }

        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }

        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }

        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }

        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            let _ = write!(self.out, "{{{variant:?}:");
            v.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }

        fn serialize_seq(self, _: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
            self.out.push('[');
            Ok(Compound {
                ser: self,
                first: true,
                close: ']',
            })
        }

        fn serialize_tuple(self, len: usize) -> Result<Compound<'a, 'b>, Error> {
            let _ = len;
            self.serialize_seq(None)
        }

        fn serialize_tuple_struct(
            self,
            _: &'static str,
            len: usize,
        ) -> Result<Compound<'a, 'b>, Error> {
            self.serialize_tuple(len)
        }

        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            _: usize,
        ) -> Result<Compound<'a, 'b>, Error> {
            let _ = write!(self.out, "{{{variant:?}:[");
            Ok(Compound {
                ser: self,
                first: true,
                close: ']',
            })
        }

        fn serialize_map(self, _: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }

        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Compound<'a, 'b>, Error> {
            self.out.push('{');
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }

        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            _: usize,
        ) -> Result<Compound<'a, 'b>, Error> {
            let _ = write!(self.out, "{{{variant:?}:{{");
            Ok(Compound {
                ser: self,
                first: true,
                close: '}',
            })
        }
    }

    pub struct Compound<'a, 'b> {
        ser: &'b mut Ser<'a>,
        first: bool,
        close: char,
    }

    impl Compound<'_, '_> {
        fn comma(&mut self) {
            if !self.first {
                self.ser.out.push(',');
            }
            self.first = false;
        }
    }

    impl ser::SerializeSeq for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.comma();
            v.serialize(&mut *self.ser)
        }

        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }

    impl ser::SerializeTuple for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }

        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }

    impl ser::SerializeTupleStruct for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }

        fn end(self) -> Result<(), Error> {
            ser::SerializeSeq::end(self)
        }
    }

    impl ser::SerializeTupleVariant for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, v)
        }

        fn end(self) -> Result<(), Error> {
            self.ser.out.push(']');
            self.ser.out.push('}');
            Ok(())
        }
    }

    impl ser::SerializeMap for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Error> {
            self.comma();
            k.serialize(&mut *self.ser)
        }

        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.ser.out.push(':');
            v.serialize(&mut *self.ser)
        }

        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }

    impl ser::SerializeStruct for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.comma();
            let _ = write!(self.ser.out, "{key:?}:");
            v.serialize(&mut *self.ser)
        }

        fn end(self) -> Result<(), Error> {
            self.ser.out.push(self.close);
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for Compound<'_, '_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }

        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            self.ser.out.push('}');
            Ok(())
        }
    }
}
