//! Failure-injection tests: the error paths a downstream user can hit must
//! be deterministic, informative, and never panic.

use bpvec::core::{BitWidth, CoreError, Cvu, CvuConfig, Signedness, SliceWidth};
use bpvec::dnn::Tensor;
use bpvec::sim::systolic::{ArrayConfig, SystolicArray};

#[test]
fn oversized_operand_reports_the_offending_value() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let err = cvu
        .dot_product(
            &[1, 2, 999],
            &[1, 1, 1],
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Signed,
        )
        .unwrap_err();
    match err {
        CoreError::ValueOutOfRange {
            value,
            bits,
            signed,
        } => {
            assert_eq!(value, 999);
            assert_eq!(bits, 8);
            assert!(signed);
        }
        other => panic!("unexpected error {other}"),
    }
    assert!(err.to_string().contains("999"));
}

#[test]
fn mismatched_vectors_error_before_any_work() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let err = cvu
        .dot_product(
            &[1; 10],
            &[1; 11],
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Signed,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        CoreError::LengthMismatch {
            left: 10,
            right: 11
        }
    ));
}

#[test]
fn composition_too_large_names_the_requirement() {
    // A 4-NBVE CVU cannot compose an 8x8 product under 2-bit slicing.
    let cvu = Cvu::new(CvuConfig {
        num_nbves: 4,
        lanes: 4,
        slice_width: SliceWidth::BIT2,
        max_bitwidth: BitWidth::INT8,
    });
    let err = cvu.compose(BitWidth::INT8, BitWidth::INT8).unwrap_err();
    assert!(matches!(
        err,
        CoreError::CompositionTooLarge {
            required: 16,
            available: 4
        }
    ));
}

#[test]
fn accumulators_never_overflow_at_worst_case_operands() {
    // Worst-case 8-bit operands over a long vector: |sum| <= n * 128 * 128;
    // the 64-bit accumulator must take millions of elements without error.
    let cvu = Cvu::new(CvuConfig::paper_default());
    let n = 100_000usize;
    let xs = vec![-128i32; n];
    let ws = vec![-128i32; n];
    let out = cvu
        .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
        .unwrap();
    assert_eq!(out.value, n as i64 * 128 * 128);
}

#[test]
fn systolic_gemm_rejects_out_of_range_matrices() {
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let a = Tensor::from_data(&[1, 2], vec![3, 12]); // 12 exceeds INT4
    let b = Tensor::from_data(&[2, 1], vec![1, 1]);
    let err = arr
        .gemm(&a, &b, BitWidth::INT4, BitWidth::INT4, Signedness::Signed)
        .unwrap_err();
    assert!(matches!(err, CoreError::ValueOutOfRange { value: 12, .. }));
}

#[test]
#[should_panic(expected = "inner dimensions must agree")]
fn systolic_gemm_shape_mismatch_panics_with_context() {
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let a = Tensor::zeros(&[2, 3]);
    let b = Tensor::zeros(&[4, 2]);
    let _ = arr.gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed);
}

#[test]
fn invalid_widths_are_rejected_at_the_boundary() {
    assert!(matches!(
        BitWidth::new(0),
        Err(CoreError::InvalidBitWidth { bits: 0 })
    ));
    assert!(matches!(
        BitWidth::new(16),
        Err(CoreError::InvalidBitWidth { bits: 16 })
    ));
    assert!(matches!(
        SliceWidth::new(3),
        Err(CoreError::InvalidSliceWidth { bits: 3 })
    ));
}

#[test]
fn errors_are_std_error_and_boxable() {
    fn takes_boxed(_: Box<dyn std::error::Error + Send + Sync>) {}
    takes_boxed(Box::new(CoreError::InvalidBitWidth { bits: 9 }));
}
