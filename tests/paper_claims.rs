//! The paper's headline claims, asserted end-to-end across all crates.
//!
//! Each test names the claim (abstract / §I / §IV) it checks. Bands are
//! deliberately generous: this suite guards the *shape* of the reproduction
//! (who wins, by roughly what factor, where the crossovers fall), with the
//! exact paper-vs-measured numbers recorded in EXPERIMENTS.md.

use bpvec::sim::experiments;
use bpvec_bench::figure9;

#[test]
fn claim_40_percent_speedup_without_heterogeneity() {
    // "bit-parallel vector composability provides 40% speedup and energy
    //  reduction compared to a design with the same architecture without
    //  support for the proposed composability"
    let f = experiments::figure5();
    assert!(
        f.geomean_speedup >= 1.25 && f.geomean_speedup <= 1.9,
        "speedup {} (paper 1.39)",
        f.geomean_speedup
    );
    assert!(
        f.geomean_energy > 1.0,
        "energy reduction {} must be positive (paper 1.43)",
        f.geomean_energy
    );
}

#[test]
fn claim_50_percent_speedup_over_bitfusion() {
    // "our design provides 50% speedup and 10% energy reduction compared to
    //  BitFusion" (with heterogeneous bitwidths, DDR4)
    let f = experiments::figure7();
    assert!(
        f.geomean_speedup >= 1.3 && f.geomean_speedup <= 1.8,
        "speedup {} (paper 1.45)",
        f.geomean_speedup
    );
    assert!(
        f.geomean_energy >= 1.02 && f.geomean_energy <= 1.4,
        "energy {} (paper 1.13)",
        f.geomean_energy
    );
}

#[test]
fn claim_bpvec_exploits_high_bandwidth_better_than_baseline() {
    // "the baseline design only enjoys 10% speedup ... however BPVeC better
    //  utilizes the boosted bandwidth and provides 2.1x speedup"
    let base = experiments::figure6_baseline();
    let bp = experiments::figure6_bpvec();
    assert!(
        base.geomean_speedup < 1.5,
        "baseline {}",
        base.geomean_speedup
    );
    assert!(
        bp.geomean_speedup >= 1.8 && bp.geomean_speedup <= 2.7,
        "BPVeC {} (paper 2.1)",
        bp.geomean_speedup
    );
    assert!(
        bp.geomean_speedup > base.geomean_speedup * 1.6,
        "BPVeC must convert bandwidth into speedup far better than the baseline"
    );
}

#[test]
fn claim_2_4x_speedup_over_bitfusion_with_hbm2() {
    // "BPVeC provides 2.5x speedup ... over BitFusion with HBM2 memory
    //  (3.5x speedup over the baseline 2D BitFusion [with DDR4])"
    let bp = experiments::figure8_bpvec();
    let bf = experiments::figure8_bitfusion();
    assert!(
        bp.geomean_speedup >= 2.5 && bp.geomean_speedup <= 4.2,
        "{} (paper 3.48)",
        bp.geomean_speedup
    );
    let vs_bf_hbm2 = bp.geomean_speedup / bf.geomean_speedup;
    assert!(
        (1.7..=3.2).contains(&vs_bf_hbm2),
        "BPVeC/BitFusion both-HBM2 ratio {vs_bf_hbm2} (paper 2.5)"
    );
}

#[test]
fn claim_28x_to_34x_perf_per_watt_over_gpu() {
    // "The benefits range between 28.0x and 33.7x improvement in
    //  Performance-per-Watt" (geomean, four design points)
    let (_, hom_ddr4, _) = figure9(false);
    let (_, het_ddr4, _) = figure9(true);
    assert!(
        (15.0..=70.0).contains(&hom_ddr4),
        "homogeneous DDR4 geomean {hom_ddr4} (paper 33.7)"
    );
    assert!(
        (15.0..=70.0).contains(&het_ddr4),
        "heterogeneous DDR4 geomean {het_ddr4} (paper 28.0)"
    );
}

#[test]
fn claim_rnn_lstm_gain_most_from_bandwidth() {
    // §IV-B2: "RNN and LSTM see the highest performance benefits (4.5x)"
    use bpvec::dnn::NetworkId;
    let bp = experiments::figure8_bpvec();
    let rec_min = [NetworkId::Rnn, NetworkId::Lstm]
        .iter()
        .map(|&id| bp.row(id).unwrap().speedup)
        .fold(f64::INFINITY, f64::min);
    let cnn_max = [
        NetworkId::AlexNet,
        NetworkId::InceptionV1,
        NetworkId::ResNet18,
        NetworkId::ResNet50,
    ]
    .iter()
    .map(|&id| bp.row(id).unwrap().speedup)
    .fold(0.0f64, f64::max);
    assert!(
        rec_min > cnn_max,
        "recurrent min {rec_min} must exceed CNN max {cnn_max}"
    );
    assert!(rec_min > 3.5, "recurrent speedup {rec_min} (paper 4.5)");
}

#[test]
fn claim_cvu_packs_2x_the_compute_of_the_baseline() {
    // §IV-B1: "bit-parallel vector composability enables our accelerator to
    //  integrate ~2.0x more compute resources ... under the same core power
    //  budget" — checked against the gate-level cost model.
    use bpvec::hwmodel::units::{conventional_mac, cvu_cost, CvuGeometry};
    use bpvec::hwmodel::TechnologyProfile;
    let t = TechnologyProfile::nm45();
    let ratio = conventional_mac(&t).per_mac().total().power
        / cvu_cost(&CvuGeometry::paper_default(), &t)
            .per_mac()
            .total()
            .power;
    assert!(
        (1.5..=2.4).contains(&ratio),
        "per-MAC power advantage {ratio} (paper ~2.0)"
    );
}
