//! Criterion benches of the adaptive precision control plane.
//!
//! A synthetic precision-proportional backend isolates what the adaptive
//! machinery itself costs on top of the static event loop: controller
//! ticks, sliding sojourn windows, rung-table indirection, and autoscaler
//! bookkeeping. The headline number is the overhead ratio of an adaptive
//! run against the identical static configuration — asserted under 3× so
//! the control plane can never quietly dominate the simulator.
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_adaptive.json` at the workspace root with requests-per-second
//! figures for CI's perf-regression gate.

use std::time::Instant;

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId, PrecisionPolicy};
use bpvec_serve::{
    run_serving, run_serving_adaptive, AdaptiveSpec, ArrivalProcess, AutoscalerConfig, BatchPolicy,
    ClusterSpec, ControllerConfig, RequestMix, Router, ServiceModel, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};
use criterion::{black_box, criterion_group, Criterion, Throughput};

/// Per-inference latency proportional to the policy's narrowest weight
/// width — a composable backend in miniature, cheap enough that the event
/// loop and controller are all that gets measured.
struct RungServer;

const FULL_S: f64 = 1e-3;

impl Evaluator for RungServer {
    fn label(&self) -> String {
        "rung".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        let bits = workload
            .policy
            .min_weight_bits()
            .expect("non-empty policy")
            .bits();
        Measurement {
            latency_s: FULL_S * f64::from(bits) / 8.0,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

const REQUESTS: u64 = 5_000;

fn traffic() -> TrafficSpec {
    TrafficSpec::new(
        "bench",
        // 1.5x the full-precision capacity: the controller has real work.
        ArrivalProcess::poisson(1.5 / FULL_S),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        REQUESTS,
    )
}

fn spec() -> AdaptiveSpec {
    let ladder = PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("narrows monotonically");
    AdaptiveSpec::new(ladder)
        .with_controller(ControllerConfig::new(4.0 * FULL_S).with_depths(2, 12))
}

fn run_static() -> bpvec_serve::ServingOutcome {
    run_serving(
        &RungServer,
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 2.0 * FULL_S),
        ClusterSpec::new(2, Router::JoinShortestQueue),
        &traffic(),
        ServiceModel::Deterministic,
        17,
    )
}

fn run_adaptive(autoscale: bool) -> bpvec_serve::ServingOutcome {
    let mut s = spec();
    if autoscale {
        s = s.with_autoscaler(AutoscalerConfig::new(1, 4).with_depths(1.0, 8.0));
    }
    run_serving_adaptive(
        &RungServer,
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 2.0 * FULL_S),
        ClusterSpec::new(2, Router::LeastDegraded),
        &traffic(),
        &s,
        ServiceModel::Deterministic,
        17,
    )
}

fn adaptive_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive_loop");
    g.throughput(Throughput::Elements(REQUESTS));
    g.bench_function("static_jsq_x2", |b| b.iter(|| black_box(run_static())));
    g.bench_function("adaptive_ladder_x2", |b| {
        b.iter(|| black_box(run_adaptive(false)))
    });
    g.bench_function("adaptive_autoscaled_1to4", |b| {
        b.iter(|| black_box(run_adaptive(true)))
    });
    g.finish();
}

criterion_group!(benches, adaptive_loop);

/// Best-of-5 wall time for one configuration, seconds.
fn time_best(mut f: impl FnMut() -> bpvec_serve::ServingOutcome) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

type Runner = Box<dyn FnMut() -> bpvec_serve::ServingOutcome>;

fn main() {
    benches();
    let configs: [(&str, Runner); 3] = [
        ("static_jsq_x2", Box::new(run_static)),
        ("adaptive_ladder_x2", Box::new(|| run_adaptive(false))),
        ("adaptive_autoscaled_1to4", Box::new(|| run_adaptive(true))),
    ];
    let mut rows = Vec::new();
    let mut static_s = f64::NAN;
    let mut adaptive_s = f64::NAN;
    for (name, mut f) in configs {
        let secs = time_best(&mut *f);
        if name == "static_jsq_x2" {
            static_s = secs;
        }
        if name == "adaptive_ladder_x2" {
            adaptive_s = secs;
        }
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"requests\": {REQUESTS},\n      \
             \"seconds_per_run\": {secs:.6},\n      \"requests_per_sec\": {:.1}\n    }}",
            REQUESTS as f64 / secs
        ));
    }
    let overhead = adaptive_s / static_s;
    // Machine-readable summary for CI, written at the workspace root
    // (cargo sets a bench's cwd to the package directory).
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    let json = format!(
        "{{\n  \"bench\": \"adaptive\",\n  \"results\": [\n{}\n  ],\n  \
         \"adaptive_overhead_ratio\": {overhead:.3}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(out_path, &json).expect("write BENCH_adaptive.json");
    println!("wrote BENCH_adaptive.json (adaptive overhead {overhead:.2}x static)");
    assert!(
        overhead < 3.0,
        "the adaptive control plane costs {overhead:.2}x the static event loop (must stay < 3x)"
    );
}
