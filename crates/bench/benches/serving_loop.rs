//! Criterion benches of the serving event loop itself.
//!
//! A synthetic constant-latency backend isolates the discrete-event engine
//! (heap churn, queue management, routing) from the analytical accelerator
//! model; one BPVeC-backed configuration measures the end-to-end path
//! including the batch-cost table build.
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_serving.json` at the workspace root with the headline
//! events-per-second numbers, so CI can track event-loop throughput.

use std::time::Instant;

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_serve::{
    run_serving, ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, Router, ServiceModel,
    ServingOutcome, TrafficSpec,
};
use bpvec_sim::{AcceleratorConfig, DramSpec, Evaluator, Measurement, Workload};
use criterion::{black_box, criterion_group, Criterion, Throughput};

/// Constant-latency backend: the event loop is the only cost.
struct ConstServer;

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: 1e-3,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

const REQUESTS: u64 = 5_000;

fn mix() -> RequestMix {
    RequestMix::new()
        .and(
            Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
            3.0,
        )
        .and(
            Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            1.0,
        )
}

/// The benched configurations: (name, policy, cluster, process).
fn configs() -> Vec<(&'static str, BatchPolicy, ClusterSpec, ArrivalProcess)> {
    vec![
        (
            "poisson_immediate_x1",
            BatchPolicy::immediate(),
            ClusterSpec::single(),
            ArrivalProcess::poisson(900.0),
        ),
        (
            "bursty_deadline16_jsq_x4",
            BatchPolicy::deadline(16, 0.002),
            ClusterSpec::new(4, Router::JoinShortestQueue),
            ArrivalProcess::bursty(800.0, 4000.0, 0.02, 0.005),
        ),
        (
            "closed_fixed8_rr_x2",
            BatchPolicy::fixed(8),
            ClusterSpec::new(2, Router::RoundRobin),
            ArrivalProcess::closed_loop(16, 0.0005),
        ),
    ]
}

fn run_config(
    policy: BatchPolicy,
    cluster: ClusterSpec,
    process: ArrivalProcess,
) -> ServingOutcome {
    let traffic = TrafficSpec::new("bench", process, mix(), REQUESTS);
    run_serving(
        &ConstServer,
        &DramSpec::ddr4(),
        policy,
        cluster,
        &traffic,
        ServiceModel::Deterministic,
        17,
    )
}

fn event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving_loop");
    g.throughput(Throughput::Elements(REQUESTS));
    for (name, policy, cluster, process) in configs() {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_config(policy, cluster, process.clone())))
        });
    }
    g.finish();
    // End-to-end: the analytical BPVeC backend including cost-table build.
    let mut g = c.benchmark_group("serving_end_to_end");
    let requests = 1_000;
    g.throughput(Throughput::Elements(requests));
    g.bench_function("bpvec_alexnet_deadline16", |b| {
        let traffic = TrafficSpec::new(
            "bench",
            ArrivalProcess::poisson(400.0),
            RequestMix::single(Workload::new(
                NetworkId::AlexNet,
                BitwidthPolicy::Homogeneous8,
            )),
            requests,
        );
        b.iter(|| {
            black_box(run_serving(
                &AcceleratorConfig::bpvec(),
                &DramSpec::ddr4(),
                BatchPolicy::deadline(16, 0.01),
                ClusterSpec::single(),
                &traffic,
                ServiceModel::Deterministic,
                17,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, event_loop);

/// Times one synthetic configuration directly (best of `reps`), seconds.
fn time_best(policy: BatchPolicy, cluster: ClusterSpec, process: &ArrivalProcess) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        black_box(run_config(policy, cluster, process.clone()));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();
    // Machine-readable summary for CI, written at the workspace root
    // (cargo sets a bench's cwd to the package directory).
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut rows = Vec::new();
    for (name, policy, cluster, process) in configs() {
        let secs = time_best(policy, cluster, &process);
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"requests\": {REQUESTS},\n      \
             \"seconds_per_run\": {secs:.6},\n      \"requests_per_sec\": {:.1}\n    }}",
            REQUESTS as f64 / secs
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serving_loop\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(out_path, &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");
}
