//! Criterion bench of the packed bit-plane GEMM path against the seed
//! per-element CVU path — the acceptance check for the packed-kernel
//! refactor (target: ≥ 20× on identical operands, bit-identical outputs)
//! and for the SIMD dispatch tiers (target: ≥ 4× scalar on the AVX-512
//! tier for the fused blocked GEMM, pre-packed operands).
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_bittrue.json` at the workspace root with per-path timings and
//! MACs/s (the requests-per-sec analog for GEMMs) plus the measured
//! speedups, so CI can track it next to the other BENCH files. The
//! per-kernel rows (`packed_gemm_prepacked_scalar` vs `…_simd` vs the
//! fused-tiled driver) isolate the kernel win from packing cost; the
//! `kernel_tier` field records which dispatch tier `…_simd` actually ran.

use std::time::Instant;

use bpvec_core::kernels::{detected_tier, KernelTier};
use bpvec_core::{BitWidth, Signedness};
use bpvec_dnn::Tensor;
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use criterion::{black_box, criterion_group, Criterion, Throughput};

/// Headline GEMM: one AlexNet conv1 row tile — all 64 output channels,
/// im2col depth 3·11·11 = 363, a 64-pixel strip of output positions.
const M: usize = 64;
const K: usize = 363;
const N: usize = 64;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn matrix(m: usize, n: usize, bits: BitWidth, seed: u64) -> Tensor {
    let (lo, hi) = bits.range(Signedness::Signed);
    let span = (hi - lo + 1) as u64;
    let mut i = 0u64;
    Tensor::from_fn(&[m, n], |_| {
        i += 1;
        lo + (mix(seed ^ i) % span) as i32
    })
}

/// Seed path: every output scalar through `Cvu::dot_product`, slicing
/// elements one at a time.
fn run_seed(arr: &SystolicArray, a: &Tensor, b: &Tensor, ba: BitWidth, bb: BitWidth) -> Tensor {
    arr.gemm(a, b, ba, bb, Signedness::Signed)
        .expect("seed gemm")
        .output
}

/// Packed path, packing included: decompose both operands into bit planes,
/// then stream the word-level kernels tile-by-tile.
fn run_packed(arr: &SystolicArray, a: &Tensor, b: &Tensor, ba: BitWidth, bb: BitWidth) -> Tensor {
    let sw = arr.config().cvu.slice_width;
    let pa = a.pack_rows(ba, sw, Signedness::Signed).expect("pack rows");
    let pb = b.pack_cols(bb, sw, Signedness::Signed).expect("pack cols");
    arr.gemm_packed(&pa, &pb).expect("packed gemm").output
}

fn bench(c: &mut Criterion) {
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    // A smaller tile keeps the slow seed path's criterion runs short.
    let (sm, sk, sn) = (16, 128, 16);
    let a = matrix(sm, sk, BitWidth::INT8, 1);
    let b = matrix(sk, sn, BitWidth::INT8, 2);
    let mut g = c.benchmark_group("bit_true");
    g.throughput(Throughput::Elements((sm * sk * sn) as u64));
    g.bench_function("seed_per_element", |bch| {
        bch.iter(|| black_box(run_seed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8)))
    });
    g.bench_function("packed_planes", |bch| {
        bch.iter(|| black_box(run_packed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8)))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();
    // Machine-readable summary for CI, written at the workspace root
    // (cargo sets a bench's cwd to the package directory).
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let a = matrix(M, K, BitWidth::INT8, 3);
    let b = matrix(K, N, BitWidth::INT8, 4);
    let macs = (M * K * N) as u64;

    // Bit-true guard: the two paths must agree exactly before timing means
    // anything.
    let seed_out = run_seed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8);
    let packed_out = run_packed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8);
    assert_eq!(seed_out, packed_out, "paths diverged; bench is meaningless");

    let seed_s = best_of(3, || run_seed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8));
    let packed_s = best_of(5, || {
        run_packed(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8)
    });
    // The paper's heterogeneous mode (8-bit activations × 2-bit weights):
    // fewer planes, faster still.
    let b2 = matrix(K, N, BitWidth::INT2, 5);
    let packed_het_s = best_of(5, || {
        run_packed(&arr, &a, &b2, BitWidth::INT8, BitWidth::INT2)
    });

    // Per-kernel rows: the same GEMM compute with operands pre-packed
    // (packing hoisted out of the timed region), per dispatch tier — the
    // scalar reference kernel, the widest SIMD tier this host detects, and
    // the full fused-tiled driver (dispatch + rayon macro-tiles).
    let sw = arr.config().cvu.slice_width;
    let pa = a.pack_rows(BitWidth::INT8, sw, Signedness::Signed).unwrap();
    let pb = b.pack_cols(BitWidth::INT8, sw, Signedness::Signed).unwrap();
    let tier = detected_tier();
    let block = |t: KernelTier| {
        let mut out = vec![0i64; M * N];
        pa.dot_block_into(t, 0..M, &pb, &mut out);
        out
    };
    let scalar_s = best_of(5, || block(KernelTier::Scalar));
    let simd_s = best_of(9, || block(tier));
    let fused_tiled_s = best_of(9, || arr.gemm_packed(&pa, &pb).expect("packed gemm").output);

    let speedup = seed_s / packed_s;
    let simd_speedup = scalar_s / simd_s;
    let per_sec = |s: f64| macs as f64 / s;
    let row = |name: &str, s: f64| {
        format!(
            "    {{\n      \"name\": \"{name}\",\n      \"seconds_per_run\": {s:.6},\n      \
             \"macs_per_sec\": {:.1}\n    }}",
            per_sec(s)
        )
    };
    let rows = [
        row("seed_per_element_8x8", seed_s),
        row("packed_planes_8x8", packed_s),
        row("packed_planes_8x2_het", packed_het_s),
        row("packed_gemm_prepacked_scalar", scalar_s),
        row("packed_gemm_prepacked_simd", simd_s),
        row("fused_tiled_gemm_8x8", fused_tiled_s),
    ]
    .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"bit_true\",\n  \"gemm\": \"alexnet conv1 tile [{M},{K}]x[{K},{N}]\",\n  \
         \"macs\": {macs},\n  \"kernel_tier\": \"{tier}\",\n  \"results\": [\n{rows}\n  ],\n  \
         \"speedup_packed_vs_seed\": {speedup:.2},\n  \
         \"speedup_simd_vs_scalar\": {simd_speedup:.2}\n}}\n",
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bittrue.json");
    std::fs::write(out_path, &json).expect("write BENCH_bittrue.json");
    print!("{json}");
    assert!(
        speedup >= 20.0,
        "packed path must be at least 20x the per-element seed path, got {speedup:.2}x"
    );
    // The ≥4x kernel acceptance gate runs where the native-popcount tier is
    // available (the CI/baseline host); narrower hosts still track their
    // own ratio through the committed baseline.
    if tier == KernelTier::Avx512 {
        assert!(
            simd_speedup >= 4.0,
            "avx512 kernel must be at least 4x the scalar packed kernel, got {simd_speedup:.2}x"
        );
    } else {
        println!("kernel tier {tier}: simd-vs-scalar gate is informational ({simd_speedup:.2}x)");
    }
    println!("wrote BENCH_bittrue.json");
}
