//! Criterion benchmarks wrapping every figure/table generator, so
//! `cargo bench` exercises the full experiment pipeline end to end (and
//! prints each figure's geomeans once per run for quick inspection).

use bpvec_bench::figure9;
use bpvec_hwmodel::{Figure4, TechnologyProfile};
use bpvec_sim::experiments::{
    figure5, figure6_baseline, figure6_bpvec, figure7, figure8_bitfusion, figure8_bpvec,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_dse", |b| {
        b.iter(|| Figure4::generate(&TechnologyProfile::nm45()))
    });
    group.bench_function("fig5", |b| b.iter(|| figure5().geomean_speedup));
    group.bench_function("fig6", |b| {
        b.iter(|| {
            (
                figure6_baseline().geomean_speedup,
                figure6_bpvec().geomean_speedup,
            )
        })
    });
    group.bench_function("fig7", |b| b.iter(|| figure7().geomean_speedup));
    group.bench_function("fig8", |b| {
        b.iter(|| {
            (
                figure8_bitfusion().geomean_speedup,
                figure8_bpvec().geomean_speedup,
            )
        })
    });
    group.bench_function("fig9", |b| b.iter(|| (figure9(false).1, figure9(true).1)));
    group.finish();

    // Print the headline series once for convenient inspection in bench logs.
    let f5 = figure5();
    let f6 = figure6_bpvec();
    let f7 = figure7();
    let f8 = figure8_bpvec();
    let (_, f9d, f9h) = figure9(false);
    println!(
        "geomeans: fig5 {:.2}x/{:.2}x, fig6 {:.2}x/{:.2}x, fig7 {:.2}x/{:.2}x, fig8 {:.2}x/{:.2}x, fig9a {:.1}x/{:.1}x",
        f5.geomean_speedup, f5.geomean_energy,
        f6.geomean_speedup, f6.geomean_energy,
        f7.geomean_speedup, f7.geomean_energy,
        f8.geomean_speedup, f8.geomean_energy,
        f9d, f9h,
    );
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
