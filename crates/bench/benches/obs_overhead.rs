//! Criterion benches of the tracing instrumentation's overhead.
//!
//! The `bpvec-obs` contract is that instrumentation is *free when
//! disabled*: every emission site in the serving event loop guards on a
//! pre-normalized `Option<&dyn TraceSink>`, so a disabled sink costs one
//! predictable branch. This bench pins that claim with a synthetic
//! one-millisecond backend (the event loop is all that gets measured)
//! driven three ways: the untraced entry point, the traced entry point
//! with a disabled [`NullSink`], and a recording [`MemorySink`].
//!
//! Besides the criterion output, running this bench writes `BENCH_obs.json`
//! at the workspace root for CI's perf-regression gate, and asserts the
//! no-op-sink loop stays within 3% of the uninstrumented baseline.

use std::time::Instant;

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_obs::{MemorySink, NullSink};
use bpvec_serve::{
    run_serving, run_serving_traced, ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, Router,
    ServiceModel, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};
use criterion::{black_box, criterion_group, Criterion, Throughput};

/// Fixed one-millisecond backend: cheap enough that the event loop (and
/// any instrumentation inside it) dominates the measurement.
struct FixedServer;

const FULL_S: f64 = 1e-3;

impl Evaluator for FixedServer {
    fn label(&self) -> String {
        "fixed".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: FULL_S,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

const REQUESTS: u64 = 50_000;

fn traffic() -> TrafficSpec {
    TrafficSpec::new(
        "bench",
        // 0.8x the batch-1 capacity: busy queues, no runaway backlog.
        ArrivalProcess::poisson(0.8 / FULL_S),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        REQUESTS,
    )
}

/// One event-loop pass; `Mode` picks how the trace hook is wired.
enum Mode {
    Uninstrumented,
    NoopSink,
    MemorySink,
}

fn run(mode: &Mode) -> u64 {
    let dram = DramSpec::ddr4();
    // Immediate batch-1 dispatch maximizes events per request, making this
    // the worst case for per-event overhead.
    let policy = BatchPolicy::immediate();
    let cluster = ClusterSpec::new(2, Router::JoinShortestQueue);
    let outcome = match mode {
        Mode::Uninstrumented => run_serving(
            &FixedServer,
            &dram,
            policy,
            cluster,
            &traffic(),
            ServiceModel::Deterministic,
            17,
        ),
        Mode::NoopSink => run_serving_traced(
            &FixedServer,
            &dram,
            policy,
            cluster,
            &traffic(),
            ServiceModel::Deterministic,
            17,
            &NullSink,
        ),
        Mode::MemorySink => {
            let sink = MemorySink::new();
            let outcome = run_serving_traced(
                &FixedServer,
                &dram,
                policy,
                cluster,
                &traffic(),
                ServiceModel::Deterministic,
                17,
                &sink,
            );
            black_box(sink.len());
            outcome
        }
    };
    outcome.admitted
}

fn obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(REQUESTS));
    g.bench_function("event_loop_uninstrumented", |b| {
        b.iter(|| black_box(run(&Mode::Uninstrumented)))
    });
    g.bench_function("event_loop_noop_sink", |b| {
        b.iter(|| black_box(run(&Mode::NoopSink)))
    });
    g.bench_function("event_loop_memory_sink", |b| {
        b.iter(|| black_box(run(&Mode::MemorySink)))
    });
    g.finish();
}

criterion_group!(benches, obs_overhead);

/// Best-of-9 wall time for one configuration, seconds.
fn time_best(mode: &Mode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..9 {
        let start = Instant::now();
        black_box(run(mode));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();

    // Event volume of one recorded pass, for the events-per-second figure.
    let sink = MemorySink::new();
    let _ = run_serving_traced(
        &FixedServer,
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::new(2, Router::JoinShortestQueue),
        &traffic(),
        ServiceModel::Deterministic,
        17,
        &sink,
    );
    let events = sink.len() as f64;

    let base_s = time_best(&Mode::Uninstrumented);
    let noop_s = time_best(&Mode::NoopSink);
    let mem_s = time_best(&Mode::MemorySink);
    let overhead = noop_s / base_s;

    let row = |name: &str, secs: f64| {
        format!(
            "    {{\n      \"name\": \"{name}\",\n      \"requests\": {REQUESTS},\n      \
             \"seconds_per_run\": {secs:.6},\n      \"requests_per_sec\": {:.1}\n    }}",
            REQUESTS as f64 / secs
        )
    };
    let rows = [
        row("event_loop_uninstrumented", base_s),
        row("event_loop_noop_sink", noop_s),
        format!(
            "    {{\n      \"name\": \"event_loop_memory_sink\",\n      \"requests\": {REQUESTS},\n      \
             \"seconds_per_run\": {mem_s:.6},\n      \"events_per_sec\": {:.1}\n    }}",
            events / mem_s
        ),
    ];
    // Machine-readable summary for CI, written at the workspace root
    // (cargo sets a bench's cwd to the package directory).
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"results\": [\n{}\n  ],\n  \
         \"noop_overhead_ratio\": {overhead:.3}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(out_path, &json).expect("write BENCH_obs.json");
    println!(
        "wrote BENCH_obs.json (no-op sink {overhead:.3}x uninstrumented, \
         {:.0} events/s recorded)",
        events / mem_s
    );
    assert!(
        overhead < 1.03,
        "a disabled trace sink costs {overhead:.3}x the uninstrumented loop (must stay < 1.03x)"
    );
}
