//! Criterion benchmarks of the ISA layer: lowering throughput,
//! instruction-level machine execution across precisions, and the
//! three-way differential harness sweep rate.
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_isa.json` at the workspace root with lowering/execution/diff
//! rates so CI can gate it next to the other BENCH files
//! (`scripts/check_bench.py` auto-discovers the committed baseline).

use std::time::Instant;

use bpvec_core::BitWidth;
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_isa::{diff_network, lower_layer, Machine, MachineConfig};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

fn resnet_layer(bits: u32) -> Layer {
    let bw = BitWidth::new(bits).expect("valid");
    Layer::new(
        "layer2.0.conv1",
        LayerKind::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            input_hw: (56, 56),
        },
    )
    .with_bits(bw, bw)
}

fn bench_lowering(c: &mut Criterion) {
    let layer = resnet_layer(8);
    c.bench_function("isa_lower_resnet_layer", |b| {
        b.iter(|| lower_layer(&layer, 57_344, 4).len())
    });
}

fn bench_machine_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("isa_machine_execute");
    for bits in [8u32, 4, 2] {
        let program = lower_layer(&resnet_layer(bits), 57_344, 4);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &program, |b, p| {
            b.iter(|| Machine::run_fresh(MachineConfig::bpvec_ddr4(), p).cycles)
        });
    }
    group.finish();
}

fn bench_differential(c: &mut Criterion) {
    let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Heterogeneous);
    c.bench_function("isa_diff_alexnet", |b| {
        b.iter(|| black_box(diff_network(&net, MachineConfig::bpvec_ddr4(), 16)).mismatch_count())
    });
}

criterion_group!(
    benches,
    bench_lowering,
    bench_machine_execution,
    bench_differential
);

fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();

    let layer = resnet_layer(8);
    let program = lower_layer(&layer, 57_344, 4);
    let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Heterogeneous);

    // Correctness guard: the timings below are meaningless unless the
    // machine reproduces the program totals and the harness runs clean.
    let report = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &program);
    assert_eq!(report.macs, program.matmul_macs(), "machine lost MACs");
    let d = diff_network(&net, MachineConfig::bpvec_ddr4(), 16);
    assert!(d.is_clean(), "differential harness must be clean:\n{d}");

    let lower_s = best_of(5, || {
        for _ in 0..100 {
            black_box(lower_layer(&layer, 57_344, 4));
        }
    }) / 100.0;
    let exec_s = best_of(5, || {
        for _ in 0..100 {
            black_box(Machine::run_fresh(MachineConfig::bpvec_ddr4(), &program));
        }
    }) / 100.0;
    let diff_s = best_of(5, || {
        black_box(diff_network(&net, MachineConfig::bpvec_ddr4(), 16))
    });

    let json = format!(
        "{{\n  \"bench\": \"isa\",\n  \
         \"layer\": \"resnet18 layer2.0.conv1 b=4\",\n  \
         \"program_instructions\": {},\n  \"results\": [\n    \
         {{\n      \"name\": \"lower_resnet_layer\",\n      \"seconds_per_run\": {lower_s:.9},\n      \
         \"lowers_per_sec\": {:.1}\n    }},\n    \
         {{\n      \"name\": \"machine_execute_int8\",\n      \"seconds_per_run\": {exec_s:.9},\n      \
         \"simulated_macs_per_sec\": {:.1}\n    }},\n    \
         {{\n      \"name\": \"diff_alexnet_b16\",\n      \"seconds_per_run\": {diff_s:.6},\n      \
         \"diffs_per_sec\": {:.2}\n    }}\n  ]\n}}\n",
        program.len(),
        1.0 / lower_s,
        report.macs as f64 / exec_s,
        1.0 / diff_s,
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_isa.json");
    std::fs::write(out_path, &json).expect("write BENCH_isa.json");
    print!("{json}");
    println!("wrote BENCH_isa.json");
}
