//! Criterion benchmarks of the ISA layer: lowering throughput and
//! instruction-level machine execution across precisions.

use bpvec_core::BitWidth;
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_isa::{lower_layer, Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn resnet_layer(bits: u32) -> Layer {
    let bw = BitWidth::new(bits).expect("valid");
    Layer::new(
        "layer2.0.conv1",
        LayerKind::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            input_hw: (56, 56),
        },
    )
    .with_bits(bw, bw)
}

fn bench_lowering(c: &mut Criterion) {
    let layer = resnet_layer(8);
    c.bench_function("isa_lower_resnet_layer", |b| {
        b.iter(|| lower_layer(&layer, 57_344, 4).len())
    });
}

fn bench_machine_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("isa_machine_execute");
    for bits in [8u32, 4, 2] {
        let program = lower_layer(&resnet_layer(bits), 57_344, 4);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &program, |b, p| {
            b.iter(|| Machine::run_fresh(MachineConfig::bpvec_ddr4(), p).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lowering, bench_machine_execution);
criterion_main!(benches);
