//! Criterion benchmarks of the bit-true systolic array: GEMM wall-clock and
//! modeled cycle counts across bitwidth modes.

use bpvec_core::{BitWidth, Signedness};
use bpvec_dnn::Tensor;
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn matrix(m: usize, n: usize, bits: u32, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hi = (1i32 << (bits - 1)) - 1;
    let lo = -(1i32 << (bits - 1));
    Tensor::from_fn(&[m, n], |_| rng.gen_range(lo..=hi))
}

fn bench_systolic_gemm(c: &mut Criterion) {
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let (m, k, n) = (16, 256, 16);
    let mut group = c.benchmark_group("systolic_gemm_16x256x16");
    group.throughput(Throughput::Elements((m * k * n) as u64));
    for bits in [8u32, 4, 2] {
        let a = matrix(m, k, bits, 1);
        let b = matrix(k, n, bits, 2);
        let bw = BitWidth::new(bits).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(bits), &(), |bench, ()| {
            bench.iter(|| {
                arr.gemm(&a, &b, bw, bw, Signedness::Signed)
                    .expect("valid operands")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systolic_gemm);
criterion_main!(benches);
