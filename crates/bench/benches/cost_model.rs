//! Criterion bench of the shared, memoized `CostModel` against the
//! uncached engine on a full platforms × workloads × batch-sizes sweep —
//! the acceptance check for the cost-model refactor (target: ≥ 2× on the
//! sweep).
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_costmodel.json` at the workspace root with the headline
//! cached/uncached timings and the measured speedup, so CI can track it
//! next to `BENCH_serving.json`.

use std::time::Instant;

use bpvec_dnn::{BitwidthPolicy, Network, PrecisionPolicy};
use bpvec_sim::{
    simulate, AcceleratorConfig, BatchRegime, CostModel, DramSpec, SimConfig, Workload,
};
use criterion::{black_box, criterion_group, Criterion, Throughput};

const BATCHES: [u64; 5] = [1, 4, 8, 16, 32];

fn platforms() -> Vec<AcceleratorConfig> {
    vec![
        AcceleratorConfig::tpu_like(),
        AcceleratorConfig::bitfusion(),
        AcceleratorConfig::bpvec(),
    ]
}

/// The swept workload set: Table I under both presets plus a uniform-4
/// precision point (precision is a first-class sweep axis now).
fn networks() -> Vec<Network> {
    let mut workloads = Workload::table1(BitwidthPolicy::Homogeneous8);
    workloads.extend(Workload::table1(BitwidthPolicy::Heterogeneous));
    workloads.extend(Workload::table1(PrecisionPolicy::uniform(
        bpvec_core::BitWidth::INT4,
    )));
    workloads.iter().map(Workload::build).collect()
}

/// One full sweep pass; `cost` selects the cached path.
fn sweep(networks: &[Network], cost: Option<&CostModel>) -> f64 {
    let dram = DramSpec::ddr4();
    let mut acc = 0.0f64;
    for accel in platforms() {
        for net in networks {
            for b in BATCHES {
                let mut cfg = SimConfig::new(accel, dram);
                cfg.batching = BatchRegime::fixed(b);
                let r = match cost {
                    Some(model) => model.simulate(net, &cfg),
                    None => simulate(net, &cfg),
                };
                acc += r.latency_s;
            }
        }
    }
    acc
}

fn cells() -> u64 {
    (platforms().len() * networks().len() * BATCHES.len()) as u64
}

fn bench(c: &mut Criterion) {
    let nets = networks();
    let mut g = c.benchmark_group("cost_model");
    g.throughput(Throughput::Elements(cells()));
    g.bench_function("sweep_uncached", |b| {
        b.iter(|| black_box(sweep(&nets, None)))
    });
    g.bench_function("sweep_shared_cost_model", |b| {
        // A fresh model per iteration: the measured speedup is what one
        // scenario run gets, not an artifact of a pre-warmed cache.
        b.iter(|| {
            let model = CostModel::new();
            black_box(sweep(&nets, Some(&model)))
        })
    });
    g.bench_function("sweep_warm_cost_model", |b| {
        // The steady state: every later run over a warm model (repeated
        // figures, serving tables) is pure lookups.
        let model = CostModel::new();
        let _ = sweep(&nets, Some(&model));
        b.iter(|| black_box(sweep(&nets, Some(&model))))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn best_of(reps: u32, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();
    // Machine-readable summary for CI, written at the workspace root
    // (cargo sets a bench's cwd to the package directory).
    let nets = networks();
    let uncached = best_of(5, || sweep(&nets, None));
    let cached = best_of(5, || {
        let model = CostModel::new();
        sweep(&nets, Some(&model))
    });
    let model = CostModel::new();
    let _ = sweep(&nets, Some(&model));
    let warm = best_of(5, || sweep(&nets, Some(&model)));
    let speedup = uncached / cached;
    let json = format!(
        "{{\n  \"bench\": \"cost_model\",\n  \"sweep_cells\": {},\n  \
         \"uncached_s\": {uncached:.6},\n  \"shared_cost_model_s\": {cached:.6},\n  \
         \"warm_cost_model_s\": {warm:.6},\n  \"speedup_shared_vs_uncached\": {speedup:.2},\n  \
         \"speedup_warm_vs_uncached\": {:.2}\n}}\n",
        cells(),
        uncached / warm,
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_costmodel.json");
    std::fs::write(out_path, &json).expect("write BENCH_costmodel.json");
    print!("{json}");
    assert!(
        speedup >= 2.0,
        "shared CostModel must be at least 2x the uncached sweep, got {speedup:.2}x"
    );
    println!("wrote BENCH_costmodel.json");
}
