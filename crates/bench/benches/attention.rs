//! Criterion bench of the attention-core kernels: packed QK^T and
//! attention·V on a BERT-Base head tile, plus the analytical cost-model
//! evaluation rate for a full BERT-Base stack.
//!
//! Besides the criterion output, running this bench writes
//! `BENCH_attention.json` at the workspace root with per-kernel timings
//! and MACs/s so CI can gate it next to the other BENCH files
//! (`scripts/check_bench.py` auto-discovers the committed baseline).

use std::time::Instant;

use bpvec_core::dotprod::dot_exact;
use bpvec_core::{BitWidth, Signedness};
use bpvec_dnn::{BitwidthPolicy, Network, NetworkId, Tensor};
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use bpvec_sim::{simulate, AcceleratorConfig, DramSpec, SimConfig};
use criterion::{black_box, criterion_group, Criterion, Throughput};

/// One BERT-Base attention head at a 64-token tile: queries [64, 64]
/// against a 64-entry KV cache.
const Q_LEN: usize = 64;
const HEAD_DIM: usize = 64;
const KV_LEN: usize = 64;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn matrix(m: usize, n: usize, bits: BitWidth, signedness: Signedness, seed: u64) -> Tensor {
    let (lo, hi) = bits.range(signedness);
    let span = (hi - lo + 1) as u64;
    let mut i = 0u64;
    Tensor::from_fn(&[m, n], |_| {
        i += 1;
        lo + (mix(seed ^ i) % span) as i32
    })
}

/// Packed QK^T: 8-bit signed activations against a 4-bit signed KV cache.
fn run_qkt(arr: &SystolicArray, q: &Tensor, kt: &Tensor) -> Tensor {
    let sw = arr.config().cvu.slice_width;
    let pq = q
        .pack_rows(BitWidth::INT8, sw, Signedness::Signed)
        .expect("pack q");
    let pk = kt
        .pack_cols(BitWidth::INT4, sw, Signedness::Signed)
        .expect("pack k^T");
    arr.gemm_packed(&pq, &pk).expect("packed qkt").output
}

/// Packed attention·V: unsigned 8-bit probability rows against 4-bit V.
fn run_av(arr: &SystolicArray, probs: &Tensor, v: &Tensor) -> Tensor {
    let sw = arr.config().cvu.slice_width;
    let pp = probs
        .pack_rows(BitWidth::INT8, sw, Signedness::Unsigned)
        .expect("pack probs");
    let pv = v
        .pack_cols(BitWidth::INT4, sw, Signedness::Signed)
        .expect("pack v");
    arr.gemm_packed(&pp, &pv).expect("packed av").output
}

fn bench(c: &mut Criterion) {
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let q = matrix(Q_LEN, HEAD_DIM, BitWidth::INT8, Signedness::Signed, 1);
    let kt = matrix(HEAD_DIM, KV_LEN, BitWidth::INT4, Signedness::Signed, 2);
    let probs = matrix(Q_LEN, KV_LEN, BitWidth::INT8, Signedness::Unsigned, 3);
    let v = matrix(KV_LEN, HEAD_DIM, BitWidth::INT4, Signedness::Signed, 4);

    let mut g = c.benchmark_group("attention");
    g.throughput(Throughput::Elements((Q_LEN * HEAD_DIM * KV_LEN) as u64));
    g.bench_function("packed_qkt_8x4", |bch| {
        bch.iter(|| black_box(run_qkt(&arr, &q, &kt)))
    });
    g.bench_function("packed_av_8x4", |bch| {
        bch.iter(|| black_box(run_av(&arr, &probs, &v)))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    benches();

    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let q = matrix(Q_LEN, HEAD_DIM, BitWidth::INT8, Signedness::Signed, 1);
    let kt = matrix(HEAD_DIM, KV_LEN, BitWidth::INT4, Signedness::Signed, 2);
    let probs = matrix(Q_LEN, KV_LEN, BitWidth::INT8, Signedness::Unsigned, 3);
    let v = matrix(KV_LEN, HEAD_DIM, BitWidth::INT4, Signedness::Signed, 4);
    let macs = (Q_LEN * HEAD_DIM * KV_LEN) as u64;

    // Bit-true guard: every packed QK^T score must equal the exact dot
    // product before the timing means anything.
    let scores = run_qkt(&arr, &q, &kt);
    for i in 0..Q_LEN {
        let qrow: Vec<i32> = (0..HEAD_DIM).map(|t| q[&[i, t]]).collect();
        for j in 0..KV_LEN {
            let kcol: Vec<i32> = (0..HEAD_DIM).map(|t| kt[&[t, j]]).collect();
            assert_eq!(
                i64::from(scores[&[i, j]]),
                dot_exact(&qrow, &kcol).expect("exact dot"),
                "packed QK^T diverged at ({i},{j}); bench is meaningless"
            );
        }
    }

    let qkt_s = best_of(5, || run_qkt(&arr, &q, &kt));
    let av_s = best_of(5, || run_av(&arr, &probs, &v));

    // Analytical side: how fast the cost model walks a full BERT-Base
    // stack (121 layers, cold — no memoization).
    let net = Network::build(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
    let cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
    let eval_s = best_of(5, || simulate(&net, &cfg));

    let per_sec = |s: f64| macs as f64 / s;
    let json = format!(
        "{{\n  \"bench\": \"attention\",\n  \
         \"tile\": \"bert head [{Q_LEN},{HEAD_DIM}]x[{HEAD_DIM},{KV_LEN}]\",\n  \
         \"macs\": {macs},\n  \"results\": [\n    \
         {{\n      \"name\": \"packed_qkt_8x4\",\n      \"seconds_per_run\": {qkt_s:.6},\n      \
         \"macs_per_sec\": {:.1}\n    }},\n    \
         {{\n      \"name\": \"packed_av_8x4\",\n      \"seconds_per_run\": {av_s:.6},\n      \
         \"macs_per_sec\": {:.1}\n    }},\n    \
         {{\n      \"name\": \"bert_cost_eval\",\n      \"seconds_per_run\": {eval_s:.6},\n      \
         \"evals_per_sec\": {:.1}\n    }}\n  ]\n}}\n",
        per_sec(qkt_s),
        per_sec(av_s),
        1.0 / eval_s,
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attention.json");
    std::fs::write(out_path, &json).expect("write BENCH_attention.json");
    print!("{json}");
    println!("wrote BENCH_attention.json");
}
