//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * slice width (1/2/4-bit) at the L = 16 design point;
//! * NBVE vector length L beyond the paper's sweep (to 32/64);
//! * scratchpad capacity sensitivity of the Figure 5 headline;
//! * batch-size sensitivity of the recurrent workloads.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_hwmodel::dse::{evaluate, DesignPoint};
use bpvec_hwmodel::TechnologyProfile;
use bpvec_sim::memory::ScratchpadSpec;
use bpvec_sim::{simulate, AcceleratorConfig, BatchRegime, DramSpec, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_slice_width_ablation(c: &mut Criterion) {
    let tech = TechnologyProfile::nm45();
    let mut group = c.benchmark_group("ablation_slice_width");
    for s in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                evaluate(
                    DesignPoint {
                        slice_bits: s,
                        lanes: 16,
                    },
                    &tech,
                )
                .norm_power
            })
        });
    }
    group.finish();
    println!("slice-width ablation (power/area per MAC, L = 16):");
    for s in [1u32, 2, 4] {
        let p = evaluate(
            DesignPoint {
                slice_bits: s,
                lanes: 16,
            },
            &tech,
        );
        println!(
            "  {s}-bit: {:.2}x power, {:.2}x area",
            p.norm_power, p.norm_area
        );
    }
}

fn bench_lane_extension(c: &mut Criterion) {
    let tech = TechnologyProfile::nm45();
    let mut group = c.benchmark_group("ablation_lanes_beyond_16");
    for lanes in [16u32, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(lanes), &lanes, |b, &l| {
            b.iter(|| {
                evaluate(
                    DesignPoint {
                        slice_bits: 2,
                        lanes: l,
                    },
                    &tech,
                )
                .norm_power
            })
        });
    }
    group.finish();
    println!("L saturation beyond the paper's sweep (2-bit slicing):");
    for lanes in [8u32, 16, 32, 64] {
        let p = evaluate(
            DesignPoint {
                slice_bits: 2,
                lanes,
            },
            &tech,
        );
        println!("  L={lanes:<3}: {:.3}x power", p.norm_power);
    }
}

fn bench_scratchpad_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scratchpad");
    group.sample_size(10);
    for kb in [56u64, 112, 224, 448] {
        group.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, &kb| {
            b.iter(|| {
                let mut accel = AcceleratorConfig::bpvec();
                accel.scratchpad = ScratchpadSpec {
                    capacity_bytes: kb * 1024,
                };
                let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8);
                simulate(&net, &SimConfig::new(accel, DramSpec::ddr4())).latency_s
            })
        });
    }
    group.finish();
}

fn bench_recurrent_batch_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_recurrent_batch");
    group.sample_size(10);
    for batch in [1u64, 4, 12, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
                cfg.batching = BatchRegime::serving(16, batch);
                let net = Network::build(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
                simulate(&net, &cfg).latency_s
            })
        });
    }
    group.finish();
    println!("LSTM latency/inference vs batch (BPVeC + DDR4):");
    for batch in [1u64, 4, 12, 32, 128] {
        let mut cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        cfg.batching = BatchRegime::serving(16, batch);
        let net = Network::build(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
        let r = simulate(&net, &cfg);
        println!(
            "  batch {batch:>3}: {:.2} ms/inf, {:.0}% memory-bound",
            r.latency_s * 1e3,
            100.0 * r.memory_bound_fraction()
        );
    }
}

criterion_group!(
    benches,
    bench_slice_width_ablation,
    bench_lane_extension,
    bench_scratchpad_sensitivity,
    bench_recurrent_batch_sensitivity
);
criterion_main!(benches);
