//! Criterion micro-benchmarks of the functional CVU engine: dot-product
//! throughput across composition modes (homogeneous 8-bit vs the
//! heterogeneous quantized modes of Figure 3).

use bpvec_core::{BitWidth, Cvu, CvuConfig, Signedness};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn vectors(n: usize, bits: u32, seed: u64) -> (Vec<i32>, Vec<i32>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hi = (1i32 << (bits - 1)) - 1;
    let lo = -(1i32 << (bits - 1));
    (
        (0..n).map(|_| rng.gen_range(lo..=hi)).collect(),
        (0..n).map(|_| rng.gen_range(lo..=hi)).collect(),
    )
}

fn bench_dot_product_modes(c: &mut Criterion) {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let mut group = c.benchmark_group("cvu_dot_product");
    let n = 4096;
    for (label, bx, bw) in [
        ("8b x 8b", 8u32, 8u32),
        ("8b x 4b", 8, 4),
        ("8b x 2b", 8, 2),
        ("4b x 4b", 4, 4),
        ("2b x 2b", 2, 2),
    ] {
        let (xs, ws) = vectors(n, bx.min(bw), 42);
        let bxw = BitWidth::new(bx).expect("valid");
        let bww = BitWidth::new(bw).expect("valid");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                cvu.dot_product(&xs, &ws, bxw, bww, Signedness::Signed)
                    .expect("valid operands")
                    .value
            })
        });
    }
    group.finish();
}

fn bench_slice_decomposition(c: &mut Criterion) {
    use bpvec_core::bitslice::{decompose_vector, SliceWidth};
    let (xs, _) = vectors(4096, 8, 7);
    let mut group = c.benchmark_group("bit_slicing");
    for s in [1u32, 2, 4] {
        let sw = SliceWidth::new(s).expect("valid");
        group.bench_with_input(BenchmarkId::new("decompose", s), &sw, |b, &sw| {
            b.iter(|| {
                decompose_vector(&xs, BitWidth::INT8, sw, Signedness::Signed)
                    .expect("in range")
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dot_product_modes, bench_slice_decomposition);
criterion_main!(benches);
