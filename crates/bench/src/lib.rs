//! # `bpvec-bench` — the experiment harness over the `Scenario` API
//!
//! One binary per table/figure of the paper regenerates the corresponding
//! rows/series and prints them next to the paper's reported values:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — benchmark networks |
//! | `table2` | Table II — evaluated platforms |
//! | `fig2`   | Figure 2 — bit-sliced dot-product algebra |
//! | `fig3`   | Figure 3 — CVU composition modes |
//! | `fig4`   | Figure 4 — slice-width × L design-space exploration |
//! | `fig5`   | Figure 5 — vs TPU-like baseline, DDR4, homogeneous |
//! | `fig6`   | Figure 6 — vs baseline, HBM2, homogeneous |
//! | `fig7`   | Figure 7 — vs BitFusion, DDR4, heterogeneous |
//! | `fig8`   | Figure 8 — vs BitFusion, HBM2, heterogeneous |
//! | `fig9`   | Figure 9 — performance-per-Watt vs RTX 2080 Ti |
//!
//! Every accelerator figure is a thin slice of a
//! [`Scenario`] (declared in
//! `bpvec_sim::experiments`); [`figure9`] here declares the GPU comparison
//! the same way, with [`GpuPlatform`] standing next to
//! [`AcceleratorConfig`] as just another
//! [`Evaluator`](bpvec_sim::Evaluator). The `--csv` / `--json` flags on the
//! figure binaries emit machine-readable output for plotting pipelines.
//!
//! Criterion benches (`cargo bench`) measure the functional CVU engine, the
//! cycle-true systolic array, the analytical experiment harnesses and the
//! ablation sweeps.

use bpvec_dnn::{BitwidthPolicy, NetworkId};
use bpvec_gpumodel::GpuPlatform;
use bpvec_sim::{AcceleratorConfig, Comparison, DramSpec, Report, Scenario, Workload};

/// One Figure 9 row: accelerator-vs-GPU performance-per-Watt ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPerWattRow {
    /// The workload.
    pub network: NetworkId,
    /// BPVeC + DDR4 over the GPU.
    pub ddr4_ratio: f64,
    /// BPVeC + HBM2 over the GPU.
    pub hbm2_ratio: f64,
}

/// The Figure 9 scenario: the GPU model and BPVeC side by side, normalized
/// to the GPU. `heterogeneous` selects the panel — homogeneous INT8
/// (`false`) or heterogeneous INT4 (`true`).
#[must_use]
pub fn figure9_report(heterogeneous: bool) -> Report {
    let policy = if heterogeneous {
        BitwidthPolicy::Heterogeneous
    } else {
        BitwidthPolicy::Homogeneous8
    };
    Scenario::new(if heterogeneous {
        "figure 9(b): perf/W vs RTX 2080 Ti (INT4)"
    } else {
        "figure 9(a): perf/W vs RTX 2080 Ti (INT8)"
    })
    .platform(GpuPlatform::rtx_2080_ti())
    .platform(AcceleratorConfig::bpvec())
    .memory(DramSpec::ddr4())
    .memory(DramSpec::hbm2())
    .workloads(Workload::table1(policy))
    .baseline("RTX 2080 Ti", "DDR4")
    .run()
}

/// Computes one Figure 9 panel: homogeneous INT8 (`heterogeneous = false`)
/// or heterogeneous INT4 (`true`). Returns per-network rows plus
/// (ddr4 geomean, hbm2 geomean).
#[must_use]
pub fn figure9(heterogeneous: bool) -> (Vec<PerfPerWattRow>, f64, f64) {
    let report = figure9_report(heterogeneous);
    let ddr4 = report.perf_per_watt("BPVeC", "DDR4");
    let hbm2 = report.perf_per_watt("BPVeC", "HBM2");
    let rows = ddr4
        .rows
        .iter()
        .zip(&hbm2.rows)
        .map(|(d, h)| PerfPerWattRow {
            network: d.network,
            ddr4_ratio: d.ratio,
            hbm2_ratio: h.ratio,
        })
        .collect();
    (rows, ddr4.geomean, hbm2.geomean)
}

/// The paper's Figure 9 series for side-by-side printing.
pub mod paper_fig9 {
    /// Fig. 9a (homogeneous INT8): BPVeC+DDR4 / GPU.
    pub const HOM_DDR4: [f64; 6] = [18.7, 30.2, 12.0, 9.0, 145.5, 166.2];
    /// Fig. 9a: BPVeC+HBM2 / GPU.
    pub const HOM_HBM2: [f64; 6] = [20.4, 19.6, 11.7, 8.8, 130.1, 167.5];
    /// Fig. 9a geomeans (DDR4, HBM2).
    pub const HOM_GEOMEAN: (f64, f64) = (33.7, 31.1);
    /// Fig. 9b (heterogeneous INT4): BPVeC+DDR4 / GPU.
    pub const HET_DDR4: [f64; 6] = [11.1, 12.3, 7.3, 11.0, 194.6, 225.3];
    /// Fig. 9b: BPVeC+HBM2 / GPU.
    pub const HET_HBM2: [f64; 6] = [13.5, 13.3, 7.8, 11.6, 192.1, 221.8];
    /// Fig. 9b geomeans (DDR4, HBM2).
    pub const HET_GEOMEAN: (f64, f64) = (28.0, 29.8);
}

/// Formats a paper-vs-measured row: `name  measured (paper X)`.
#[must_use]
pub fn fmt_vs(name: &str, measured: f64, paper: f64) -> String {
    format!("{name:<14} {measured:>8.2}x   (paper {paper:>6.2}x)")
}

/// Shared CLI handling for the figure binaries: `--csv` prints the figure's
/// comparison series as CSV, `--json` the full comparison as JSON. Returns
/// true if a machine-readable format was emitted (the caller should skip
/// its table printing).
#[must_use]
pub fn emit_machine_readable(comparison: &Comparison) -> bool {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--csv") {
        print!("{}", comparison.to_csv());
        true
    } else if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(comparison).expect("comparison serialization cannot fail")
        );
        true
    } else {
        false
    }
}

/// Joins several report CSVs into one stream with a single header row (the
/// `policy` column already distinguishes the panels), so the output stays
/// parseable by CSV readers.
#[must_use]
pub fn concat_report_csv(reports: &[Report]) -> String {
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        let csv = r.to_csv();
        if i == 0 {
            out.push_str(&csv);
        } else if let Some((_, body)) = csv.split_once('\n') {
            out.push_str(body);
        }
    }
    out
}

/// Prints one single-series comparison figure (Figures 5 and 7): measured
/// speedup/energy next to the paper's series, then the geomeans.
pub fn print_comparison_figure(
    title: &str,
    f: &Comparison,
    paper_speedup: &[f64; 6],
    paper_energy: &[f64; 6],
    paper_geomean: (f64, f64),
) {
    println!("{title}: {} normalized to {}", f.evaluated, f.baseline);
    println!(
        "{:<14} {:>9} {:>14} {:>9} {:>14}",
        "network", "speedup", "paper", "energy", "paper"
    );
    for (i, r) in f.rows.iter().enumerate() {
        println!(
            "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
            r.network.name(),
            r.speedup,
            paper_speedup[i],
            r.energy_reduction,
            paper_energy[i],
        );
    }
    println!(
        "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
        "GEOMEAN", f.geomean_speedup, paper_geomean.0, f.geomean_energy, paper_geomean.1,
    );
}

/// Prints a two-series HBM2-study figure (Figures 6 and 8): the baseline
/// design and BPVeC, both normalized to the same DDR4 baseline.
pub fn print_hbm2_figure(
    title: &str,
    series_names: (&str, &str),
    base: &Comparison,
    bpvec: &Comparison,
    paper_base_geomean: (f64, f64),
    paper_bpvec_geomean: (f64, f64),
) {
    println!("{title}: HBM2 study, normalized to {}", base.baseline);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "network",
        format!("{} speedup", series_names.0),
        format!("{} energy", series_names.0),
        format!("{} speedup", series_names.1),
        format!("{} energy", series_names.1),
    );
    for (b, p) in base.rows.iter().zip(&bpvec.rows) {
        println!(
            "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            b.network.name(),
            b.speedup,
            b.energy_reduction,
            p.speedup,
            p.energy_reduction,
        );
    }
    println!(
        "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        "GEOMEAN",
        base.geomean_speedup,
        base.geomean_energy,
        bpvec.geomean_speedup,
        bpvec.geomean_energy,
    );
    println!(
        "paper GEOMEAN  {:>12.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        paper_base_geomean.0, paper_base_geomean.1, paper_bpvec_geomean.0, paper_bpvec_geomean.1,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_gpu_loses_by_an_order_of_magnitude() {
        for het in [false, true] {
            let (rows, gm_d, gm_h) = figure9(het);
            assert_eq!(rows.len(), 6);
            // Paper: 28x-34x geomean advantages.
            assert!(gm_d > 8.0, "geomean {gm_d} (het={het})");
            assert!(gm_h > 8.0, "geomean {gm_h} (het={het})");
            // Recurrent workloads show the largest advantage (GPU GEMV
            // utilization cliff).
            let rnn = rows.iter().find(|r| r.network == NetworkId::Rnn).unwrap();
            let r50 = rows
                .iter()
                .find(|r| r.network == NetworkId::ResNet50)
                .unwrap();
            assert!(
                rnn.hbm2_ratio > r50.hbm2_ratio,
                "rnn {} vs resnet50 {}",
                rnn.hbm2_ratio,
                r50.hbm2_ratio
            );
        }
    }

    #[test]
    fn figure9_report_is_a_gpu_normalized_scenario() {
        let report = figure9_report(false);
        assert_eq!(report.baseline.platform, "RTX 2080 Ti");
        assert_eq!(report.cells.len(), 2 * 2 * 6);
        // The GPU's own series normalizes to exactly 1.0.
        let own = report.perf_per_watt("RTX 2080 Ti", "DDR4");
        for r in &own.rows {
            assert!((r.ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geomean_reexport_is_the_engine_geomean() {
        // The curated crate-root surface now carries geomean (bench used to
        // reach into `bpvec_sim::engine` for it).
        assert_eq!(
            bpvec_sim::geomean(&[1.0, 4.0]),
            bpvec_sim::engine::geomean(&[1.0, 4.0])
        );
    }

    #[test]
    fn concatenated_csv_has_one_header() {
        let csv = concat_report_csv(&[figure9_report(false), figure9_report(true)]);
        let headers = csv
            .lines()
            .filter(|l| l.starts_with("platform,memory"))
            .count();
        assert_eq!(headers, 1);
        assert_eq!(csv.trim().lines().count(), 1 + 2 * 24);
        assert!(csv.contains("Heterogeneous"));
    }

    #[test]
    fn fmt_vs_is_stable() {
        let s = fmt_vs("AlexNet", 1.5, 1.39);
        assert!(s.contains("AlexNet"));
        assert!(s.contains("1.50x"));
        assert!(s.contains("1.39x"));
    }
}
