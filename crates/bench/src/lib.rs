//! # `bpvec-bench` — the experiment harness
//!
//! One binary per table/figure of the paper regenerates the corresponding
//! rows/series and prints them next to the paper's reported values:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — benchmark networks |
//! | `table2` | Table II — evaluated platforms |
//! | `fig2`   | Figure 2 — bit-sliced dot-product algebra |
//! | `fig3`   | Figure 3 — CVU composition modes |
//! | `fig4`   | Figure 4 — slice-width × L design-space exploration |
//! | `fig5`   | Figure 5 — vs TPU-like baseline, DDR4, homogeneous |
//! | `fig6`   | Figure 6 — vs baseline, HBM2, homogeneous |
//! | `fig7`   | Figure 7 — vs BitFusion, DDR4, heterogeneous |
//! | `fig8`   | Figure 8 — vs BitFusion, HBM2, heterogeneous |
//! | `fig9`   | Figure 9 — performance-per-Watt vs RTX 2080 Ti |
//!
//! Criterion benches (`cargo bench`) measure the functional CVU engine, the
//! cycle-true systolic array, the analytical experiment harnesses and the
//! ablation sweeps.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_gpumodel::{evaluate as gpu_evaluate, GpuPrecision, GpuSpec};
use bpvec_sim::{simulate, AcceleratorConfig, DramSpec, SimConfig};

/// One Figure 9 row: accelerator-vs-GPU performance-per-Watt ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPerWattRow {
    /// The workload.
    pub network: NetworkId,
    /// BPVeC + DDR4 over the GPU.
    pub ddr4_ratio: f64,
    /// BPVeC + HBM2 over the GPU.
    pub hbm2_ratio: f64,
}

/// Computes one Figure 9 panel: homogeneous INT8 (`heterogeneous = false`)
/// or heterogeneous INT4 (`true`). Returns per-network rows plus
/// (ddr4 geomean, hbm2 geomean).
#[must_use]
pub fn figure9(heterogeneous: bool) -> (Vec<PerfPerWattRow>, f64, f64) {
    let (policy, precision) = if heterogeneous {
        (BitwidthPolicy::Heterogeneous, GpuPrecision::Int4)
    } else {
        (BitwidthPolicy::Homogeneous8, GpuPrecision::Int8)
    };
    let spec = GpuSpec::rtx_2080_ti();
    let mut rows = Vec::new();
    for id in NetworkId::ALL {
        let net = Network::build(id, policy);
        let gpu = gpu_evaluate(&net, &spec, precision);
        let ddr4 = simulate(
            &net,
            &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4()),
        );
        let hbm2 = simulate(
            &net,
            &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::hbm2()),
        );
        rows.push(PerfPerWattRow {
            network: id,
            ddr4_ratio: ddr4.gops_per_watt() / gpu.gops_per_watt,
            hbm2_ratio: hbm2.gops_per_watt() / gpu.gops_per_watt,
        });
    }
    let gm_d = bpvec_sim::engine::geomean(&rows.iter().map(|r| r.ddr4_ratio).collect::<Vec<_>>());
    let gm_h = bpvec_sim::engine::geomean(&rows.iter().map(|r| r.hbm2_ratio).collect::<Vec<_>>());
    (rows, gm_d, gm_h)
}

/// The paper's Figure 9 series for side-by-side printing.
pub mod paper_fig9 {
    /// Fig. 9a (homogeneous INT8): BPVeC+DDR4 / GPU.
    pub const HOM_DDR4: [f64; 6] = [18.7, 30.2, 12.0, 9.0, 145.5, 166.2];
    /// Fig. 9a: BPVeC+HBM2 / GPU.
    pub const HOM_HBM2: [f64; 6] = [20.4, 19.6, 11.7, 8.8, 130.1, 167.5];
    /// Fig. 9a geomeans (DDR4, HBM2).
    pub const HOM_GEOMEAN: (f64, f64) = (33.7, 31.1);
    /// Fig. 9b (heterogeneous INT4): BPVeC+DDR4 / GPU.
    pub const HET_DDR4: [f64; 6] = [11.1, 12.3, 7.3, 11.0, 194.6, 225.3];
    /// Fig. 9b: BPVeC+HBM2 / GPU.
    pub const HET_HBM2: [f64; 6] = [13.5, 13.3, 7.8, 11.6, 192.1, 221.8];
    /// Fig. 9b geomeans (DDR4, HBM2).
    pub const HET_GEOMEAN: (f64, f64) = (28.0, 29.8);
}

/// Formats a paper-vs-measured row: `name  measured (paper X)`.
#[must_use]
pub fn fmt_vs(name: &str, measured: f64, paper: f64) -> String {
    format!("{name:<14} {measured:>8.2}x   (paper {paper:>6.2}x)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_gpu_loses_by_an_order_of_magnitude() {
        for het in [false, true] {
            let (rows, gm_d, gm_h) = figure9(het);
            assert_eq!(rows.len(), 6);
            // Paper: 28x-34x geomean advantages.
            assert!(gm_d > 8.0, "geomean {gm_d} (het={het})");
            assert!(gm_h > 8.0, "geomean {gm_h} (het={het})");
            // Recurrent workloads show the largest advantage (GPU GEMV
            // utilization cliff).
            let rnn = rows.iter().find(|r| r.network == NetworkId::Rnn).unwrap();
            let r50 = rows
                .iter()
                .find(|r| r.network == NetworkId::ResNet50)
                .unwrap();
            assert!(
                rnn.hbm2_ratio > r50.hbm2_ratio,
                "rnn {} vs resnet50 {}",
                rnn.hbm2_ratio,
                r50.hbm2_ratio
            );
        }
    }

    #[test]
    fn fmt_vs_is_stable() {
        let s = fmt_vs("AlexNet", 1.5, 1.39);
        assert!(s.contains("AlexNet"));
        assert!(s.contains("1.50x"));
        assert!(s.contains("1.39x"));
    }
}
