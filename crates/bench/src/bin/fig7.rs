//! Regenerates **Figure 7**: BPVeC vs BitFusion, both with DDR4,
//! heterogeneous (Table I) bitwidths.

use bpvec_sim::experiments::{figure7, paper};

fn main() {
    let f = figure7();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", f.to_csv());
        return;
    }
    println!("Figure 7: {} normalized to {}", f.evaluated, f.baseline);
    println!(
        "{:<14} {:>9} {:>14} {:>9} {:>14}",
        "network", "speedup", "paper", "energy", "paper"
    );
    for (i, r) in f.rows.iter().enumerate() {
        println!(
            "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
            r.network.name(),
            r.speedup,
            paper::FIG7_SPEEDUP[i],
            r.energy_reduction,
            paper::FIG7_ENERGY[i],
        );
    }
    println!(
        "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
        "GEOMEAN",
        f.geomean_speedup,
        paper::FIG7_GEOMEAN.0,
        f.geomean_energy,
        paper::FIG7_GEOMEAN.1,
    );
}
