//! Regenerates **Figure 7**: BPVeC vs BitFusion, both with DDR4,
//! heterogeneous (Table I) bitwidths. `--csv` / `--json` emit the series
//! machine-readably.

use bpvec_bench::{emit_machine_readable, print_comparison_figure};
use bpvec_sim::experiments::{figure7, paper};

fn main() {
    let f = figure7();
    if emit_machine_readable(&f) {
        return;
    }
    print_comparison_figure(
        "Figure 7",
        &f,
        &paper::FIG7_SPEEDUP,
        &paper::FIG7_ENERGY,
        paper::FIG7_GEOMEAN,
    );
}
