//! Regenerates **Figure 8**: BitFusion and BPVeC with HBM2, both normalized
//! to BitFusion with DDR4, heterogeneous bitwidths. `--csv` / `--json`
//! emit the BPVeC series machine-readably.

use bpvec_bench::{emit_machine_readable, print_hbm2_figure};
use bpvec_sim::experiments::{heterogeneous_grid, paper};

fn main() {
    // One grid run serves both series.
    let het = heterogeneous_grid();
    let bp = het.comparison("BPVeC", "HBM2");
    if emit_machine_readable(&bp) {
        return;
    }
    print_hbm2_figure(
        "Figure 8",
        ("BF", "BPVeC"),
        &het.comparison("BitFusion", "HBM2"),
        &bp,
        paper::FIG8_BITFUSION_GEOMEAN,
        paper::FIG8_BPVEC_GEOMEAN,
    );
}
