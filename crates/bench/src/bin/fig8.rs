//! Regenerates **Figure 8**: BitFusion and BPVeC with HBM2, both normalized
//! to BitFusion with DDR4, heterogeneous bitwidths.

use bpvec_sim::experiments::{figure8_bitfusion, figure8_bpvec, paper};

fn main() {
    let bf = figure8_bitfusion();
    let bp = figure8_bpvec();
    println!("Figure 8: HBM2 study, normalized to {}", bf.baseline);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "network", "BF speedup", "BF energy", "BPVeC speedup", "BPVeC energy"
    );
    for (b, p) in bf.rows.iter().zip(&bp.rows) {
        println!(
            "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            b.network.name(),
            b.speedup,
            b.energy_reduction,
            p.speedup,
            p.energy_reduction,
        );
    }
    println!(
        "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        "GEOMEAN",
        bf.geomean_speedup,
        bf.geomean_energy,
        bp.geomean_speedup,
        bp.geomean_energy,
    );
    println!(
        "paper GEOMEAN  {:>12.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        paper::FIG8_BITFUSION_GEOMEAN.0,
        paper::FIG8_BITFUSION_GEOMEAN.1,
        paper::FIG8_BPVEC_GEOMEAN.0,
        paper::FIG8_BPVEC_GEOMEAN.1,
    );
}
