//! Runs the three-way differential harness over the full paper grid —
//! every Table I model plus the ViT/BERT presets, under both bitwidth
//! policies, at the paper's batch sizes — and prints one CSV row per
//! cell to stdout.
//!
//! The output is **byte-deterministic**: no clocks, no randomness, no
//! host-dependent iteration order, so CI can diff two runs. Exits
//! nonzero when any cell reports a mismatch, printing the typed
//! per-layer reports to stderr.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_isa::{diff_network, MachineConfig};
use bpvec_sim::BatchRegime;

fn main() {
    let grid = [
        NetworkId::AlexNet,
        NetworkId::InceptionV1,
        NetworkId::ResNet18,
        NetworkId::ResNet50,
        NetworkId::Rnn,
        NetworkId::Lstm,
        NetworkId::VitBase,
        NetworkId::BertBase,
    ];
    let policies = [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous];
    let batches = BatchRegime::paper_default();

    println!(
        "network,policy,batch,layers,model_latency_us,machine_latency_us,\
         machine_pipelined_us,mismatches"
    );
    let mut dirty = 0u32;
    for id in grid {
        for policy in policies {
            let net = Network::build(id, policy);
            let b = batches.batch_for(id);
            let d = diff_network(&net, MachineConfig::bpvec_ddr4(), b);
            println!(
                "{},{:?},{},{},{:.3},{:.3},{:.3},{}",
                d.network,
                policy,
                d.batch,
                d.layers.len(),
                d.model_latency_s * 1e6,
                d.machine_latency_s * 1e6,
                d.machine_pipelined_s * 1e6,
                d.mismatch_count()
            );
            if !d.is_clean() {
                dirty += 1;
                eprintln!("{d}");
            }
        }
    }
    if dirty > 0 {
        eprintln!("{dirty} grid cell(s) reported mismatches");
        std::process::exit(1);
    }
}
