//! Regenerates **Figure 1**: the design-space taxonomy of DNN accelerators
//! (functional-unit type × bit flexibility × composability) and where this
//! repository's implementations sit in it.
//!
//! Each cell is backed by executable code in this repository, so the
//! taxonomy is printed together with the module that realizes it.

fn main() {
    println!("Figure 1: the accelerator landscape (each cell -> where it lives here)\n");
    println!(
        "{:<34} {:>8} {:>9} {:>10}  implemented by",
        "design point (examples)", "units", "bitwidth", "composed"
    );
    let rows = [
        (
            "TPU, Eyeriss",
            "scalar",
            "fixed",
            "-",
            "bpvec_hwmodel::units::conventional_mac + sim TPU-like baseline",
        ),
        (
            "Brainwave, ISAAC",
            "vector",
            "fixed",
            "-",
            "bpvec_sim::systolic (fixed 8-bit mode)",
        ),
        (
            "Stripes, UNPU",
            "scalar",
            "flexible",
            "temporal",
            "bpvec_core::bitserial (ActivationSerial)",
        ),
        (
            "Loom",
            "scalar",
            "flexible",
            "temporal",
            "bpvec_core::bitserial (FullySerial)",
        ),
        (
            "BitFusion",
            "scalar",
            "flexible",
            "spatial",
            "bpvec_hwmodel::units::bitfusion_fusion_unit + sim baseline",
        ),
        (
            "BPVeC (this paper)",
            "vector",
            "flexible",
            "spatial",
            "bpvec_core::cvu + bpvec_sim (the vacancy the paper fills)",
        ),
    ];
    for (name, units, bits, comp, module) in rows {
        println!("{name:<34} {units:>8} {bits:>9} {comp:>10}  {module}");
    }
    println!();
    println!("run `cargo run -p bpvec-bench --bin temporal_vs_spatial` for the");
    println!("quantitative comparison across these styles");
}
