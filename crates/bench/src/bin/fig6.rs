//! Regenerates **Figure 6**: the baseline and BPVeC with HBM2, both
//! normalized to the baseline with DDR4, homogeneous 8-bit.

use bpvec_sim::experiments::{figure6_baseline, figure6_bpvec, paper};

fn main() {
    let base = figure6_baseline();
    let bp = figure6_bpvec();
    println!("Figure 6: HBM2 study, normalized to {}", base.baseline);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "network", "base speedup", "base energy", "BPVeC speedup", "BPVeC energy"
    );
    for (b, p) in base.rows.iter().zip(&bp.rows) {
        println!(
            "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            b.network.name(),
            b.speedup,
            b.energy_reduction,
            p.speedup,
            p.energy_reduction,
        );
    }
    println!(
        "{:<14} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        "GEOMEAN",
        base.geomean_speedup,
        base.geomean_energy,
        bp.geomean_speedup,
        bp.geomean_energy,
    );
    println!(
        "paper GEOMEAN  {:>12.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        paper::FIG6_BASELINE_GEOMEAN.0,
        paper::FIG6_BASELINE_GEOMEAN.1,
        paper::FIG6_BPVEC_GEOMEAN.0,
        paper::FIG6_BPVEC_GEOMEAN.1,
    );
}
