//! Regenerates **Figure 6**: the baseline and BPVeC with HBM2, both
//! normalized to the baseline with DDR4, homogeneous 8-bit. `--csv` /
//! `--json` emit the BPVeC series machine-readably.

use bpvec_bench::{emit_machine_readable, print_hbm2_figure};
use bpvec_sim::experiments::{homogeneous_grid, paper};

fn main() {
    // One grid run serves both series.
    let hom = homogeneous_grid();
    let bp = hom.comparison("BPVeC", "HBM2");
    if emit_machine_readable(&bp) {
        return;
    }
    print_hbm2_figure(
        "Figure 6",
        ("base", "BPVeC"),
        &hom.comparison("TPU-like", "HBM2"),
        &bp,
        paper::FIG6_BASELINE_GEOMEAN,
        paper::FIG6_BPVEC_GEOMEAN,
    );
}
