//! Regenerates **Figure 2**: the bit-parallel vector-composability algebra —
//! (a) fixed-bitwidth 4b×4b dot-product with 2-bit slices and (b) the
//! flexible 4b×2b variant that doubles throughput on the same resources.

use bpvec_core::dotprod::{dot_exact, dot_slice_clustered};
use bpvec_core::{BitWidth, Cvu, CvuConfig, Signedness, SliceWidth};

fn main() {
    // Figure 2(a): X and W each hold two 4-bit elements, sliced 2-bit.
    let xs = [0b1011, 0b0110];
    let ws = [0b0111, 0b1001];
    let b4 = BitWidth::new(4).expect("4-bit is valid");
    let exact = dot_exact(&xs, &ws).expect("equal lengths");
    let sliced = dot_slice_clustered(
        &xs,
        &ws,
        b4,
        b4,
        SliceWidth::BIT2,
        SliceWidth::BIT2,
        Signedness::Unsigned,
    )
    .expect("valid operands");
    println!("Figure 2(a): fixed-bitwidth 4b x 4b, 2-bit slicing");
    println!("  X = {xs:?}, W = {ws:?}");
    println!("  exact dot product          = {exact}");
    println!("  bit-sliced recomposition   = {sliced}  (Equation 4)");
    assert_eq!(exact, sliced);

    // Figure 2(b): four 4-bit inputs x four 2-bit weights on the *same*
    // number of 2-bit multipliers -> 2x the elements per cycle.
    let cvu = Cvu::new(CvuConfig {
        num_nbves: 4,
        lanes: 1,
        slice_width: SliceWidth::BIT2,
        max_bitwidth: b4,
    });
    let xs4 = [0b1011, 0b0110, 0b1111, 0b0001];
    let ws2 = [0b01, 0b10, 0b11, 0b00];
    let out44 = cvu
        .dot_product(&xs4[..2], &[0b0111, 0b1001], b4, b4, Signedness::Unsigned)
        .expect("4b x 4b fits");
    let out42 = cvu
        .dot_product(&xs4, &ws2, b4, BitWidth::INT2, Signedness::Unsigned)
        .expect("4b x 2b fits");
    println!();
    println!("Figure 2(b): flexible bitwidth on the same 4 x (2b x 2b) multipliers");
    println!(
        "  4b x 4b mode: {} elements/cycle (clusters = {})",
        2 * out44.composition.clusters(),
        out44.composition.clusters()
    );
    println!(
        "  4b x 2b mode: {} elements/cycle (clusters = {}) -> 2x boost",
        2 * out42.composition.clusters(),
        out42.composition.clusters()
    );
    assert_eq!(
        out42.composition.clusters(),
        2 * out44.composition.clusters()
    );
    println!("  4b x 2b result = {} (exact {})", out42.value, {
        dot_exact(&xs4, &ws2).expect("equal lengths")
    });
}
