//! Regenerates **Figure 4**: power/area per 8-bit MAC for 1-bit and 2-bit
//! slicing across NBVE vector lengths, normalized to a conventional digital
//! 8-bit MAC, with the multiplication/addition/shifting/register breakdown.

use bpvec_hwmodel::dse::{evaluate, paper, DesignPoint, Figure4};
use bpvec_hwmodel::TechnologyProfile;

fn main() {
    let tech = TechnologyProfile::nm45();
    let fig = Figure4::generate(&tech);
    println!("Figure 4: design-space exploration (normalized to conventional 8-bit MAC)");
    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>9} {:>9} || {:>7} {:>9}",
        "config", "power", "mult", "add", "shift", "reg", "area", "paper P/A"
    );
    for (series, ppow, parea) in [
        (&fig.one_bit, paper::ONE_BIT_POWER, paper::ONE_BIT_AREA),
        (&fig.two_bit, paper::TWO_BIT_POWER, paper::TWO_BIT_AREA),
    ] {
        for (i, p) in series.iter().enumerate() {
            println!(
                "{:<16} {:>6.2}x {:>9.3} {:>9.3} {:>9.3} {:>9.3} || {:>6.2}x {:>4.2}/{:<4.2}",
                format!("{}-bit L={}", p.design.slice_bits, p.design.lanes),
                p.norm_power,
                p.power_breakdown.multiplication,
                p.power_breakdown.addition,
                p.power_breakdown.shifting,
                p.power_breakdown.registering,
                p.norm_area,
                ppow[i],
                parea[i],
            );
        }
        println!();
    }
    // The 4-bit slicing ablation the paper discusses in §III-B(3).
    println!("4-bit slicing ablation (cheaper aggregation, coarser granularity):");
    for lanes in [1u32, 4, 16] {
        let p = evaluate(
            DesignPoint {
                slice_bits: 4,
                lanes,
            },
            &tech,
        );
        println!(
            "  4-bit L={:<3} power {:>5.2}x area {:>5.2}x (aggregation {:.2}x)",
            lanes,
            p.norm_power,
            p.norm_area,
            p.power_breakdown.addition + p.power_breakdown.shifting,
        );
    }
    println!();
    println!(
        "headline: 2-bit L=16 spends {:.1}x less power / {:.1}x less area than a",
        1.0 / fig.two_bit[4].norm_power,
        1.0 / fig.two_bit[4].norm_area
    );
    println!(
        "conventional MAC (paper: 2.0x / 1.7x), and {:.1}x less power than the",
        fig.two_bit[0].norm_power / fig.two_bit[4].norm_power
    );
    println!("BitFusion-style L=1 fusion unit (paper: 2.4x)");
}
