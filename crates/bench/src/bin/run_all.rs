//! Regenerates the entire evaluation in one run: every table and figure,
//! plus the extension experiments — the command behind EXPERIMENTS.md.

use bpvec_bench::figure9;
use bpvec_sim::experiments::{
    figure5, figure6_baseline, figure6_bpvec, figure7, figure8_bitfusion, figure8_bpvec,
};

fn main() {
    println!("BPVeC full evaluation (geomeans; run the per-figure binaries for rows)\n");
    let f5 = figure5();
    println!(
        "fig5  {:<38} speedup {:>5.2}x (paper 1.39)  energy {:>5.2}x (paper 1.43)",
        format!("{} vs {}", f5.evaluated, f5.baseline),
        f5.geomean_speedup,
        f5.geomean_energy
    );
    let f6b = figure6_baseline();
    let f6 = figure6_bpvec();
    println!(
        "fig6  {:<38} speedup {:>5.2}x (paper 1.06)  energy {:>5.2}x (paper 1.34)",
        "TPU-like + HBM2 vs TPU-like + DDR4", f6b.geomean_speedup, f6b.geomean_energy
    );
    println!(
        "fig6  {:<38} speedup {:>5.2}x (paper 2.11)  energy {:>5.2}x (paper 2.28)",
        "BPVeC + HBM2 vs TPU-like + DDR4", f6.geomean_speedup, f6.geomean_energy
    );
    let f7 = figure7();
    println!(
        "fig7  {:<38} speedup {:>5.2}x (paper 1.45)  energy {:>5.2}x (paper 1.13)",
        "BPVeC vs BitFusion (DDR4, het)", f7.geomean_speedup, f7.geomean_energy
    );
    let f8b = figure8_bitfusion();
    let f8 = figure8_bpvec();
    println!(
        "fig8  {:<38} speedup {:>5.2}x (paper 1.45)  energy {:>5.2}x (paper 2.26)",
        "BitFusion + HBM2 vs BitFusion + DDR4", f8b.geomean_speedup, f8b.geomean_energy
    );
    println!(
        "fig8  {:<38} speedup {:>5.2}x (paper 3.48)  energy {:>5.2}x (paper 2.66)",
        "BPVeC + HBM2 vs BitFusion + DDR4", f8.geomean_speedup, f8.geomean_energy
    );
    let (_, hom_d, hom_h) = figure9(false);
    let (_, het_d, het_h) = figure9(true);
    println!(
        "fig9a perf/W vs RTX 2080 Ti (INT8)           DDR4 {hom_d:>6.1}x (paper 33.7)  HBM2 {hom_h:>6.1}x (paper 31.1)"
    );
    println!(
        "fig9b perf/W vs RTX 2080 Ti (INT4)           DDR4 {het_d:>6.1}x (paper 28.0)  HBM2 {het_h:>6.1}x (paper 29.8)"
    );
    println!("\nsee EXPERIMENTS.md for the full paper-vs-measured record");
}
