//! Regenerates the entire evaluation in one run: every table and figure,
//! plus the extension experiments — the command behind EXPERIMENTS.md.
//!
//! Three scenario runs produce everything: the homogeneous grid
//! (Figures 5–6), the heterogeneous grid (Figures 7–8), and the two GPU
//! panels (Figure 9) — each figure is one slice of a shared [`Report`].
//!
//! [`Report`]: bpvec_sim::Report

use bpvec_bench::figure9;
use bpvec_sim::experiments::{heterogeneous_grid, homogeneous_grid};

fn main() {
    println!("BPVeC full evaluation (geomeans; run the per-figure binaries for rows)\n");
    let hom = homogeneous_grid();
    let f5 = hom.comparison("BPVeC", "DDR4");
    println!(
        "fig5  {:<38} speedup {:>5.2}x (paper 1.39)  energy {:>5.2}x (paper 1.43)",
        format!("{} vs {}", f5.evaluated, f5.baseline),
        f5.geomean_speedup,
        f5.geomean_energy
    );
    let f6b = hom.comparison("TPU-like", "HBM2");
    let f6 = hom.comparison("BPVeC", "HBM2");
    println!(
        "fig6  {:<38} speedup {:>5.2}x (paper 1.06)  energy {:>5.2}x (paper 1.34)",
        "TPU-like + HBM2 vs TPU-like + DDR4", f6b.geomean_speedup, f6b.geomean_energy
    );
    println!(
        "fig6  {:<38} speedup {:>5.2}x (paper 2.11)  energy {:>5.2}x (paper 2.28)",
        "BPVeC + HBM2 vs TPU-like + DDR4", f6.geomean_speedup, f6.geomean_energy
    );
    let het = heterogeneous_grid();
    let f7 = het.comparison("BPVeC", "DDR4");
    println!(
        "fig7  {:<38} speedup {:>5.2}x (paper 1.45)  energy {:>5.2}x (paper 1.13)",
        "BPVeC vs BitFusion (DDR4, het)", f7.geomean_speedup, f7.geomean_energy
    );
    let f8b = het.comparison("BitFusion", "HBM2");
    let f8 = het.comparison("BPVeC", "HBM2");
    println!(
        "fig8  {:<38} speedup {:>5.2}x (paper 1.45)  energy {:>5.2}x (paper 2.26)",
        "BitFusion + HBM2 vs BitFusion + DDR4", f8b.geomean_speedup, f8b.geomean_energy
    );
    println!(
        "fig8  {:<38} speedup {:>5.2}x (paper 3.48)  energy {:>5.2}x (paper 2.66)",
        "BPVeC + HBM2 vs BitFusion + DDR4", f8.geomean_speedup, f8.geomean_energy
    );
    let (_, hom_d, hom_h) = figure9(false);
    let (_, het_d, het_h) = figure9(true);
    println!(
        "fig9a perf/W vs RTX 2080 Ti (INT8)           DDR4 {hom_d:>6.1}x (paper 33.7)  HBM2 {hom_h:>6.1}x (paper 31.1)"
    );
    println!(
        "fig9b perf/W vs RTX 2080 Ti (INT4)           DDR4 {het_d:>6.1}x (paper 28.0)  HBM2 {het_h:>6.1}x (paper 29.8)"
    );
    println!("\nsee EXPERIMENTS.md for the full paper-vs-measured record");
}
