//! Regenerates **Table I**: the six benchmark networks with model size,
//! operation counts and heterogeneous bitwidths.

use bpvec_dnn::models::paper::TABLE1;
use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};

fn main() {
    println!("Table I: Evaluated DNN models");
    println!(
        "{:<14} {:>6} {:>14} {:>14} {:>12}  heterogeneous bitwidths",
        "Model", "Type", "Size MB (INT8)", "paper MB", "GOps (b=1)"
    );
    for (i, id) in NetworkId::ALL.into_iter().enumerate() {
        let net = Network::build(id, BitwidthPolicy::Heterogeneous);
        let kind = if id.is_recurrent() { "RNN" } else { "CNN" };
        let bits: Vec<String> = {
            let compute: Vec<_> = net.compute_layers().collect();
            let first = compute.first().unwrap().weight_bits;
            let last = compute.last().unwrap().weight_bits;
            let inner = compute.get(1).map(|l| l.weight_bits).unwrap_or(first);
            if first.bits() == 8 {
                vec![format!("first/last {first}, rest {inner}")]
            } else {
                vec![format!("all layers {last}")]
            }
        };
        println!(
            "{:<14} {:>6} {:>14.1} {:>14.1} {:>12.2}  {}",
            id.name(),
            kind,
            net.model_size_int8_mb(),
            TABLE1[i].1,
            net.total_gops(),
            bits.join("")
        );
    }
    println!();
    println!("note: the paper's GOps column uses its own batch accounting; per-inference");
    println!("GOps are shown here, and both are recorded in EXPERIMENTS.md");
}
