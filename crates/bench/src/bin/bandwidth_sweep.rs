//! Extension experiment: BPVeC's speedup over the TPU-like baseline as a
//! function of off-chip bandwidth — the continuous version of the
//! DDR4 (16 GB/s) vs HBM2 (256 GB/s) split in Figures 5/6, locating each
//! workload's memory→compute crossover.

use bpvec_dnn::{BitwidthPolicy, NetworkId};
use bpvec_sim::experiments::bandwidth_sweep;

fn main() {
    println!("BPVeC speedup over TPU-like baseline vs off-chip bandwidth (GB/s),");
    println!("homogeneous 8-bit (DDR4 = 16, HBM2 = 256):\n");
    let bands = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
    print!("{:<14}", "network");
    for b in bands {
        print!("{:>7.0}", b);
    }
    println!();
    for id in NetworkId::ALL {
        let sweep = bandwidth_sweep(id, BitwidthPolicy::Homogeneous8);
        print!("{:<14}", id.name());
        for (_, s) in sweep {
            print!("{s:>6.2}x");
        }
        println!();
    }
    println!("\nCNNs cross to compute-bound by ~16-32 GB/s; the recurrent models'");
    println!("weight streams need hundreds of GB/s — the Figure 5/6 mechanism");
}
