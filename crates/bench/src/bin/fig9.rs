//! Regenerates **Figure 9**: BPVeC performance-per-Watt relative to the
//! RTX 2080 Ti GPU model — (a) homogeneous INT8, (b) heterogeneous INT4.
//! `--csv` / `--json` dump the underlying scenario reports (all raw cells)
//! machine-readably.

use bpvec_bench::{concat_report_csv, figure9, figure9_report, paper_fig9};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--csv") {
        print!(
            "{}",
            concat_report_csv(&[figure9_report(false), figure9_report(true)])
        );
        return;
    }
    if args.iter().any(|a| a == "--json") {
        for het in [false, true] {
            println!("{}", figure9_report(het).to_json());
        }
        return;
    }
    for (het, title, pd, ph, gm) in [
        (
            false,
            "Figure 9(a): homogeneous INT8",
            paper_fig9::HOM_DDR4,
            paper_fig9::HOM_HBM2,
            paper_fig9::HOM_GEOMEAN,
        ),
        (
            true,
            "Figure 9(b): heterogeneous INT4",
            paper_fig9::HET_DDR4,
            paper_fig9::HET_HBM2,
            paper_fig9::HET_GEOMEAN,
        ),
    ] {
        let (rows, gm_d, gm_h) = figure9(het);
        println!("{title} (perf-per-Watt vs RTX 2080 Ti)");
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12}",
            "network", "DDR4", "paper", "HBM2", "paper"
        );
        for (i, r) in rows.iter().enumerate() {
            println!(
                "{:<14} {:>11.1}x {:>11.1}x {:>11.1}x {:>11.1}x",
                r.network.name(),
                r.ddr4_ratio,
                pd[i],
                r.hbm2_ratio,
                ph[i],
            );
        }
        println!(
            "{:<14} {:>11.1}x {:>11.1}x {:>11.1}x {:>11.1}x",
            "GEOMEAN", gm_d, gm.0, gm_h, gm.1
        );
        println!();
    }
}
