//! Adaptive precision serving sweep: control policy × cluster over
//! step-overload and bursty traffic on the BPVeC backend.
//!
//! The sweep self-calibrates against the backend's *batched* static-8b
//! capacity on the traffic mix, then compares three control policies —
//! static, the adaptive 8b→4b→2b ladder, and the same ladder with a 1–4
//! replica autoscaler — across single-replica and least-degraded-routed
//! clusters. Output is the `ServingReport` CSV, byte-deterministic under
//! the fixed seed (CI runs it twice and diffs); pass `--json` for the full
//! report, `--scale N` to multiply every request count by `N` (the
//! nightly soak runs `--scale 10`), and `--trace-out <path>` to write the
//! grid's Chrome trace-event JSON (load it at <https://ui.perfetto.dev>).

use std::sync::Arc;

use bpvec_dnn::{BitwidthPolicy, NetworkId, PrecisionPolicy};
use bpvec_obs::MemorySink;
use bpvec_serve::{
    AdaptiveSpec, ArrivalProcess, AutoscalerConfig, BatchPolicy, ClusterSpec, ControllerConfig,
    RequestMix, Router, ServingScenario, TrafficSpec,
};
use bpvec_sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

fn main() {
    let mut scale: u64 = 1;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .expect("--scale takes a positive integer");
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            other => {
                panic!(
                    "unknown argument `{other}` (expected --json, --scale N, or --trace-out PATH)"
                )
            }
        }
    }

    let accel = AcceleratorConfig::bpvec();
    let dram = DramSpec::ddr4();
    let cnn = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let rnn = Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
    let mix = RequestMix::new()
        .and(cnn.clone(), 0.8)
        .and(rnn.clone(), 0.2);

    // Mean batched (16) service time over the mix -> static-8b capacity.
    let s16 = |w: &Workload| {
        let wb = w.clone().with_batching(BatchRegime::fixed(16));
        accel.evaluate(&wb, &wb.build(), &dram).latency_s
    };
    let mean_s16 = 0.8 * s16(&cnn) + 0.2 * s16(&rnn);
    let capacity_rps = 1.0 / mean_s16;
    let sla_s = 16.0 * mean_s16;

    let ladder = PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("the ladder narrows monotonically");
    let controller = ControllerConfig::new(12.0 * mean_s16)
        .with_depths(4, 24)
        .with_target_p99(sla_s);
    let adaptive = AdaptiveSpec::new(ladder.clone()).with_controller(controller);
    let autoscaled = adaptive
        .clone()
        .with_autoscaler(AutoscalerConfig::new(1, 4).with_depths(1.0, 16.0));

    // Step overload: 0.6x capacity, a 2x burst, 0.6x recovery.
    let (n_pre, n_over, n_post) = (800 * scale, 1_600 * scale, 800 * scale);
    let lo_gap = 1.0 / (0.6 * capacity_rps);
    let hi_gap = 1.0 / (2.0 * capacity_rps);
    let gaps: Vec<f64> = std::iter::repeat_n(lo_gap, n_pre as usize)
        .chain(std::iter::repeat_n(hi_gap, n_over as usize))
        .chain(std::iter::repeat_n(lo_gap, n_post as usize))
        .collect();

    let sink = trace_out.as_ref().map(|_| Arc::new(MemorySink::new()));
    let mut scenario = ServingScenario::new("adaptive_sweep")
        .platform(accel)
        .policy(BatchPolicy::deadline(16, 4.0 * mean_s16))
        .cluster(ClusterSpec::single())
        .cluster(ClusterSpec::new(2, Router::LeastDegraded))
        .traffic(TrafficSpec::new(
            "step-2x",
            ArrivalProcess::trace(gaps),
            mix.clone(),
            n_pre + n_over + n_post,
        ))
        .traffic(
            TrafficSpec::new(
                "bursty-hi",
                ArrivalProcess::bursty(0.5 * capacity_rps, 2.5 * capacity_rps, 0.8, 0.2),
                mix.clone(),
                2_400 * scale,
            )
            .with_warmup(240 * scale),
        )
        .static_control()
        .control(adaptive)
        .control(autoscaled)
        .sla_s(sla_s)
        .seed(0xADA7);
    if let Some(sink) = &sink {
        scenario = scenario.trace(sink.clone());
    }
    let report = scenario.run();

    if let (Some(path), Some(sink)) = (&trace_out, &sink) {
        std::fs::write(path, sink.to_chrome_json()).expect("trace file is writable");
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }
}
