//! Ablation: **temporal vs spatial bit-level composability** — the axis of
//! the paper's Figure 1 taxonomy that separates BPVeC from Stripes/Loom.
//!
//! All engines are normalized to the same silicon budget of 1024 one-bit
//! partial products per cycle:
//!
//! * **BPVeC CVU**: 16 NBVEs × 16 lanes × (2×2) bit-products, spatial;
//! * **Stripes-like**: 128 lanes × 8-bit-parallel weights, activations
//!   bit-serial over time;
//! * **Loom-like**: 1024 lanes × 1-bit, both operands bit-serial.
//!
//! Prints cycles for a 1024-element dot-product at every bitwidth mode —
//! showing where temporal designs pay latency for their flexibility and
//! where they catch up.

use bpvec_core::bitserial::{BitSerialEngine, SerialMode};
use bpvec_core::{BitWidth, Cvu, CvuConfig, Signedness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024usize;
    let cvu = Cvu::new(CvuConfig::paper_default());
    let stripes = BitSerialEngine::new(128, SerialMode::ActivationSerial);
    let loom = BitSerialEngine::new(1024, SerialMode::FullySerial);

    // Representative operands (zero vectors exercise the cycle model only).
    let xs = vec![0i32; n];
    let ws = vec![0i32; n];

    println!("temporal vs spatial composability: 1024-element dot product,");
    println!("equal budget of 1024 one-bit partial products per cycle\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "mode", "BPVeC (spatial)", "Stripes (temp)", "Loom (temp)"
    );
    for (bx, bw) in [(8u32, 8u32), (8, 4), (8, 2), (4, 4), (2, 2)] {
        let bxw = BitWidth::new(bx)?;
        let bww = BitWidth::new(bw)?;
        let spatial = cvu
            .dot_product(&xs, &ws, bxw, bww, Signedness::Signed)?
            .cycles;
        let s_cycles = stripes.cycles_for(n, bxw, bww);
        let l_cycles = loom.cycles_for(n, bxw, bww);
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            format!("{bx}b x {bw}b"),
            spatial,
            s_cycles,
            l_cycles
        );
        // Cross-check the cycle formulas against bit-true executions.
        assert_eq!(
            stripes.dot(&xs, &ws, bxw, bww, Signedness::Signed)?.cycles,
            s_cycles
        );
    }
    println!();
    println!("spatial composability (BPVeC) matches Loom's best case at every mode");
    println!("without serial latency, and beats Stripes whenever weights quantize —");
    println!("the vacancy in Figure 1 the paper fills (vectorized/flexible/spatial)");
    Ok(())
}
