//! Regenerates **Figure 3**: the Composable Vector Unit's composition modes
//! — homogeneous 8-bit (all 16 NBVEs cooperate) and heterogeneous quantized
//! (clusters of NBVEs run in parallel).

use bpvec_core::{BitWidth, Composition, SliceWidth};

fn main() {
    println!("Figure 3: CVU composition modes (16 NBVEs, 2-bit slicing, L = 16)");
    println!(
        "{:<10} {:>14} {:>10} {:>12} {:>12}",
        "mode", "NBVEs/cluster", "clusters", "elems/cycle", "vs 8bx8b"
    );
    let combos = [(8u32, 8u32), (8, 4), (8, 2), (4, 4), (4, 2), (2, 2)];
    for (bx, bw) in combos {
        let c = Composition::plan(
            16,
            SliceWidth::BIT2,
            BitWidth::new(bx).expect("valid"),
            BitWidth::new(bw).expect("valid"),
        )
        .expect("fits the paper CVU");
        println!(
            "{:<10} {:>14} {:>10} {:>12} {:>11}x",
            format!("{bx}b x {bw}b"),
            c.nbves_per_cluster(),
            c.clusters(),
            c.clusters() * 16,
            c.throughput_multiplier()
        );
    }
    println!();
    println!("shift assignments for the 8b x 2b cluster of Figure 3(c):");
    let c = Composition::plan(16, SliceWidth::BIT2, BitWidth::INT8, BitWidth::INT2).expect("fits");
    for (j, k, shift) in c.assignments() {
        println!("  NBVE(x-slice {j}, w-slice {k}) -> << {shift}");
    }
}
