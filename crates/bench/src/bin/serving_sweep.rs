//! Serving sweep: arrival rate × batching policy × cluster size over a
//! mixed CNN/RNN request stream on the BPVeC backend.
//!
//! The sweep self-calibrates: arrival rates are chosen as multiples of the
//! backend's *batch-1* service capacity on the traffic mix, so the three
//! rate points mean "comfortable", "near saturation for unbatched
//! dispatch", and "over unbatched capacity — only batching or sharding
//! survives". Output is the `ServingReport` CSV (deterministic under the
//! fixed seed: two runs emit identical bytes); pass `--json` for the full
//! report including latency histograms, and `--trace-out <path>` to write
//! the grid's Chrome trace-event JSON (load it at <https://ui.perfetto.dev>).

use std::sync::Arc;

use bpvec_dnn::{BitwidthPolicy, NetworkId};
use bpvec_obs::MemorySink;
use bpvec_serve::{
    ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, Router, ServingScenario, TrafficSpec,
};
use bpvec_sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

fn main() {
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            other => panic!("unknown argument `{other}` (expected --json or --trace-out PATH)"),
        }
    }

    let accel = AcceleratorConfig::bpvec();
    let dram = DramSpec::ddr4();
    let cnn = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let rnn = Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
    let mix = RequestMix::new()
        .and(cnn.clone(), 0.8)
        .and(rnn.clone(), 0.2);

    // Mean batch-1 service time over the mix -> unbatched capacity.
    let s1 = |w: &Workload| {
        accel
            .evaluate(
                &w.clone().with_batching(BatchRegime::fixed(1)),
                &w.build(),
                &dram,
            )
            .latency_s
    };
    let mean_s1 = 0.8 * s1(&cnn) + 0.2 * s1(&rnn);
    let capacity_rps = 1.0 / mean_s1;

    let mut scenario = ServingScenario::new("serving_sweep")
        .platform(accel)
        .policy(BatchPolicy::immediate())
        .policy(BatchPolicy::fixed(8))
        .policy(BatchPolicy::deadline(16, 4.0 * mean_s1))
        .cluster(ClusterSpec::single())
        .cluster(ClusterSpec::new(2, Router::RoundRobin))
        .cluster(ClusterSpec::new(2, Router::JoinShortestQueue))
        .cluster(ClusterSpec::new(4, Router::JoinShortestQueue))
        .cluster(ClusterSpec::new(4, Router::NetworkAffinity))
        .sla_s(20.0 * mean_s1)
        .seed(0xB1F0);
    for (tag, rho) in [("lo", 0.6), ("hi", 0.95), ("over", 1.5)] {
        scenario = scenario.traffic(
            TrafficSpec::new(
                format!("poisson-{tag}"),
                ArrivalProcess::poisson(rho * capacity_rps),
                mix.clone(),
                3_000,
            )
            .with_warmup(300),
        );
    }
    // One bursty point at the saturation rate: same mean load, worse tail.
    scenario = scenario.traffic(
        TrafficSpec::new(
            "bursty-hi",
            ArrivalProcess::bursty(0.5 * capacity_rps, 2.75 * capacity_rps, 0.8, 0.2),
            mix.clone(),
            3_000,
        )
        .with_warmup(300),
    );

    let sink = trace_out.as_ref().map(|_| Arc::new(MemorySink::new()));
    if let Some(sink) = &sink {
        scenario = scenario.trace(sink.clone());
    }

    let report = scenario.run();
    if let (Some(path), Some(sink)) = (&trace_out, &sink) {
        std::fs::write(path, sink.to_chrome_json()).expect("trace file is writable");
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_csv());
    }
}
