//! Fleet-scale serving sweep: a hierarchical region/cluster/replica fleet
//! under flash-crowd and diurnal traffic, streamed in O(1) memory.
//!
//! The sweep self-calibrates against the backend's batched static-8b
//! capacity on the mix, builds a fleet (default 8 regions × 8 clusters ×
//! 16 replicas = 1024 replicas), and drives two open-loop runs:
//!
//! * `flash` — background at 0.7× fleet capacity with a flash crowd to
//!   2.0× that overwhelms the region queue caps and tenant quotas (the
//!   full request budget, default 10M);
//! * `diurnal` — a day/night raised-cosine cycle peaking at 1.1× capacity
//!   (one tenth of the budget).
//!
//! Both runs stream their metrics — no per-request records are retained
//! (the bin asserts the high-water mark is 0) and conservation (arrivals
//! == completions + drops) is checked after each drain. Output is a
//! byte-deterministic CSV (run summary + per-region + per-tenant rollups)
//! under the fixed seed; CI runs the sweep twice and byte-diffs.
//!
//! Flags: `--requests N` (flash-run budget), `--regions R --clusters C
//! --replicas K` (topology: R × C × K replicas), `--seed S`,
//! `--bench-out PATH` (write `BENCH_fleet.json` with wall-clock
//! simulation throughput for the perf gate), `--trace-out PATH` (Chrome
//! trace of the flash run), `--trace-every K` (trace sampling stride,
//! default 1 in 10k requests when tracing).

use std::time::Instant;

use bpvec_dnn::{BitwidthPolicy, NetworkId};
use bpvec_obs::MemorySink;
use bpvec_serve::{
    run_fleet, run_fleet_traced, ArrivalProcess, BatchPolicy, FleetSpec, RegionSpec, RequestMix,
    Router, RunOptions, ServiceModel, ServingOutcome, TenantClass, TrafficSpec,
};
use bpvec_sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

struct Args {
    requests: u64,
    regions: u32,
    clusters: u32,
    replicas: u32,
    seed: u64,
    bench_out: Option<String>,
    trace_out: Option<String>,
    trace_every: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        requests: 10_000_000,
        regions: 8,
        clusters: 8,
        replicas: 16,
        seed: 0xF1EE7,
        bench_out: None,
        trace_out: None,
        trace_every: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v >= 1)
            .unwrap_or_else(|| panic!("{flag} takes a positive integer"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => parsed.requests = num(&mut args, "--requests"),
            "--regions" => parsed.regions = num(&mut args, "--regions") as u32,
            "--clusters" => parsed.clusters = num(&mut args, "--clusters") as u32,
            "--replicas" => parsed.replicas = num(&mut args, "--replicas") as u32,
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--bench-out" => {
                parsed.bench_out = Some(args.next().expect("--bench-out takes a file path"));
            }
            "--trace-out" => {
                parsed.trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            "--trace-every" => parsed.trace_every = Some(num(&mut args, "--trace-every")),
            other => panic!(
                "unknown argument `{other}` (expected --requests N, --regions R, --clusters C, \
                 --replicas K, --seed S, --bench-out PATH, --trace-out PATH, or --trace-every K)"
            ),
        }
    }
    parsed
}

fn fleet(args: &Args, premium_sla_s: f64) -> FleetSpec {
    let mut spec = FleetSpec::new()
        .with_router(Router::JoinShortestQueue)
        .with_spill(true)
        .with_forward_delay(2e-4);
    let region_replicas = u64::from(args.clusters) * u64::from(args.replicas);
    for r in 0..args.regions {
        // Caps bound each region's in-system population at ~48 requests
        // per replica: deep enough to ride bursts, shallow enough that a
        // 2x flash crowd sheds load instead of queueing without bound.
        spec = spec.region(
            RegionSpec::new(format!("r{r}"), args.clusters, args.replicas)
                .with_queue_cap(48 * region_replicas),
        );
    }
    let last = args.regions as usize - 1;
    // Per-tenant quota sized to the fleet: the batch tier may hold at most
    // two requests per replica of its home region in flight.
    let batch_quota = (2 * region_replicas).max(4);
    spec.tenant(
        TenantClass::new("premium", 0.2)
            .home(0)
            .with_sla(premium_sla_s),
    )
    .tenant(TenantClass::new("standard", 0.5).home(last.min(1)))
    .tenant(
        TenantClass::new("batch", 0.3)
            .home(last)
            .with_quota(batch_quota),
    )
}

/// One run's deterministic CSV block: a summary row plus per-region and
/// per-tenant rollup rows.
fn csv_rows(label: &str, requests: u64, out: &ServingOutcome, rows: &mut String) {
    let s = &out.summary;
    rows.push_str(&format!(
        "run,{label},{requests},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.1},{},{}\n",
        out.admitted,
        out.dropped,
        out.completed,
        s.measured,
        s.mean_s * 1e3,
        s.p50_s * 1e3,
        s.p95_s * 1e3,
        s.p99_s * 1e3,
        s.max_s * 1e3,
        if s.measured > 0 {
            s.sla_hits as f64 / s.measured as f64
        } else {
            1.0
        },
        s.peak_window_rps,
        out.peak_in_system,
        out.events,
    ));
    for r in &s.regions {
        rows.push_str(&format!(
            "region,{label}/{},{},{},{},{},{},{:.4},{:.4},{:.1}\n",
            r.label,
            r.replicas,
            r.arrived,
            r.dropped,
            r.completed,
            r.measured,
            r.mean_s * 1e3,
            r.p99_s * 1e3,
            r.busy_s,
        ));
    }
    for t in &s.tenants {
        rows.push_str(&format!(
            "tenant,{label}/{},{},{},{},{},{:.4},{:.4},{:.4}\n",
            t.label,
            t.arrived,
            t.dropped,
            t.completed,
            t.measured,
            t.mean_s * 1e3,
            t.p99_s * 1e3,
            if t.measured > 0 {
                t.sla_hits as f64 / t.measured as f64
            } else {
                1.0
            },
        ));
    }
}

/// Hard invariants every fleet run must satisfy; a violation is a bug in
/// the engine, not a tuning problem, so the sweep aborts loudly.
fn check(label: &str, requests: u64, out: &ServingOutcome) {
    assert_eq!(
        out.admitted + out.dropped,
        requests,
        "{label}: arrivals lost"
    );
    assert_eq!(out.completed, out.admitted, "{label}: drain incomplete");
    assert_eq!(
        out.peak_records_retained, 0,
        "{label}: streaming run retained records"
    );
}

fn main() {
    let args = parse_args();
    let total_replicas =
        u64::from(args.regions) * u64::from(args.clusters) * u64::from(args.replicas);

    let accel = AcceleratorConfig::bpvec();
    let dram = DramSpec::ddr4();
    let cnn = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let rnn = Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
    let mix = RequestMix::new()
        .and(cnn.clone(), 0.8)
        .and(rnn.clone(), 0.2);

    // Mean batched (16) service time over the mix -> per-replica static-8b
    // capacity, scaled by the fleet size.
    let s16 = |w: &Workload| {
        let wb = w.clone().with_batching(BatchRegime::fixed(16));
        accel.evaluate(&wb, &wb.build(), &dram).latency_s
    };
    let mean_s16 = 0.8 * s16(&cnn) + 0.2 * s16(&rnn);
    let fleet_capacity_rps = total_replicas as f64 / mean_s16;
    let sla_s = 16.0 * mean_s16;
    let premium_sla_s = 8.0 * mean_s16;

    let spec = fleet(&args, premium_sla_s);
    assert_eq!(spec.total_replicas(), total_replicas);
    let policy = BatchPolicy::deadline(16, 4.0 * mean_s16);
    let options = RunOptions::default().with_sla(Some(sla_s));

    // Flash run: steady 0.7x capacity with a 2.0x flash crowd arriving a
    // quarter of the way in, ramping over ~2% of the nominal run length.
    let base_rps = 0.7 * fleet_capacity_rps;
    let nominal_s = args.requests as f64 / base_rps;
    let flash_traffic = TrafficSpec::new(
        "flash",
        ArrivalProcess::flash_crowd(
            base_rps,
            2.0 * fleet_capacity_rps,
            0.25 * nominal_s,
            0.02 * nominal_s,
            0.10 * nominal_s,
        ),
        mix.clone(),
        args.requests,
    );
    let started = Instant::now();
    let flash_out = match &args.trace_out {
        Some(path) => {
            let stride = args
                .trace_every
                .unwrap_or_else(|| (args.requests / 10_000).max(1));
            let sink = MemorySink::new();
            let out = run_fleet_traced(
                &accel,
                &dram,
                policy,
                &spec,
                &flash_traffic,
                ServiceModel::Deterministic,
                args.seed,
                options.with_trace_every(stride),
                &sink,
            );
            std::fs::write(path, sink.to_chrome_json()).expect("trace file is writable");
            out
        }
        None => run_fleet(
            &accel,
            &dram,
            policy,
            &spec,
            &flash_traffic,
            ServiceModel::Deterministic,
            args.seed,
            options,
        ),
    };
    let flash_wall_s = started.elapsed().as_secs_f64();
    check("flash", args.requests, &flash_out);

    // Diurnal run: two day/night cycles peaking at 1.1x capacity, one
    // tenth of the request budget.
    let diurnal_requests = (args.requests / 10).max(1_000);
    let diurnal_mean = 0.5 * (0.5 + 1.1) * fleet_capacity_rps;
    let diurnal_traffic = TrafficSpec::new(
        "diurnal",
        ArrivalProcess::diurnal(
            0.5 * fleet_capacity_rps,
            1.1 * fleet_capacity_rps,
            0.5 * diurnal_requests as f64 / diurnal_mean,
        ),
        mix,
        diurnal_requests,
    );
    let started = Instant::now();
    let diurnal_out = run_fleet(
        &accel,
        &dram,
        policy,
        &spec,
        &diurnal_traffic,
        ServiceModel::Deterministic,
        args.seed,
        options,
    );
    let diurnal_wall_s = started.elapsed().as_secs_f64();
    check("diurnal", diurnal_requests, &diurnal_out);

    // Deterministic CSV: three sections, fixed-precision sim-derived
    // numbers only (wall-clock goes to the bench JSON, never the CSV).
    let mut csv = String::from(
        "kind,label,requests,admitted,dropped,completed,measured,mean_ms,p50_ms,p95_ms,p99_ms,\
         max_ms,sla_attainment,peak_window_rps,peak_in_system,events\n",
    );
    csv_rows("flash", args.requests, &flash_out, &mut csv);
    csv_rows("diurnal", diurnal_requests, &diurnal_out, &mut csv);
    print!("{csv}");

    if let Some(path) = &args.bench_out {
        // Scale-independent perf rows: throughput holds (or improves) as
        // the request budget grows and peak_in_system/requests shrinks, so
        // a full-scale nightly run passes a CI-scale baseline.
        let row = |name: &str, requests: u64, out: &ServingOutcome, wall_s: f64| {
            format!(
                "    {{\n      \"name\": \"{name}\",\n      \"requests\": {requests},\n      \
                 \"replicas\": {total_replicas},\n      \"dropped\": {},\n      \
                 \"peak_records_retained\": {},\n      \"sim_requests_per_sec\": {:.1},\n      \
                 \"sim_events_per_sec\": {:.1},\n      \"peak_in_system_ratio\": {:.6}\n    }}",
                out.dropped,
                out.peak_records_retained,
                requests as f64 / wall_s,
                out.events as f64 / wall_s,
                out.peak_in_system as f64 / requests as f64,
            )
        };
        let json = format!(
            "{{\n  \"bench\": \"fleet_sweep\",\n  \"results\": [\n{},\n{}\n  ]\n}}\n",
            row("fleet_flash", args.requests, &flash_out, flash_wall_s),
            row(
                "fleet_diurnal",
                diurnal_requests,
                &diurnal_out,
                diurnal_wall_s
            ),
        );
        std::fs::write(path, json).expect("bench file is writable");
        eprintln!("wrote {path}");
    }
}
