//! Regenerates **Figure 5**: BPVeC vs the TPU-like baseline, both with
//! DDR4 memory, homogeneous 8-bit execution. `--csv` / `--json` emit the
//! series machine-readably.

use bpvec_bench::{emit_machine_readable, print_comparison_figure};
use bpvec_sim::experiments::{figure5, paper};

fn main() {
    let f = figure5();
    if emit_machine_readable(&f) {
        return;
    }
    print_comparison_figure(
        "Figure 5",
        &f,
        &paper::FIG5_SPEEDUP,
        &paper::FIG5_ENERGY,
        paper::FIG5_GEOMEAN,
    );
}
