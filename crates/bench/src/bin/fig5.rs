//! Regenerates **Figure 5**: BPVeC vs the TPU-like baseline, both with
//! DDR4 memory, homogeneous 8-bit execution.

use bpvec_sim::experiments::{figure5, paper};

fn main() {
    let f = figure5();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", f.to_csv());
        return;
    }
    println!("Figure 5: {} normalized to {}", f.evaluated, f.baseline);
    println!(
        "{:<14} {:>9} {:>14} {:>9} {:>14}",
        "network", "speedup", "paper", "energy", "paper"
    );
    for (i, r) in f.rows.iter().enumerate() {
        println!(
            "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
            r.network.name(),
            r.speedup,
            paper::FIG5_SPEEDUP[i],
            r.energy_reduction,
            paper::FIG5_ENERGY[i],
        );
    }
    println!(
        "{:<14} {:>8.2}x {:>13.2}x {:>8.2}x {:>13.2}x",
        "GEOMEAN",
        f.geomean_speedup,
        paper::FIG5_GEOMEAN.0,
        f.geomean_energy,
        paper::FIG5_GEOMEAN.1,
    );
}
