//! Regenerates **Table II**: the evaluated hardware platforms, plus the
//! cost-model cross-check that the unit counts fit one 250 mW core budget.

use bpvec_gpumodel::{GpuPrecision, GpuSpec};
use bpvec_hwmodel::units::{bitfusion_fusion_unit, conventional_mac, cvu_cost, CvuGeometry};
use bpvec_hwmodel::TechnologyProfile;
use bpvec_sim::AcceleratorConfig;

fn main() {
    println!("Table II: Evaluated platforms");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "Chip", "# MACs", "Architecture", "On-chip", "Freq", "Node"
    );
    for c in [
        AcceleratorConfig::tpu_like(),
        AcceleratorConfig::bitfusion(),
        AcceleratorConfig::bpvec(),
    ] {
        println!(
            "{:<12} {:>8} {:>12} {:>9}KB {:>7}MHz {:>9}",
            c.design.name(),
            c.mac_units,
            "Systolic",
            c.scratchpad.capacity_bytes / 1024,
            c.freq_mhz,
            "45 nm"
        );
    }
    let gpu = GpuSpec::rtx_2080_ti();
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>7}MHz {:>9}",
        "RTX 2080 TI",
        format!("{} TC", gpu.tensor_cores),
        "Turing",
        "11GB GDDR6",
        gpu.clock_mhz,
        "12 nm"
    );
    println!(
        "  GPU peak: {:.1} INT8 TOPS / {:.1} INT4 TOPS",
        2.0 * gpu.peak_gmacs(GpuPrecision::Int8) / 1e3,
        2.0 * gpu.peak_gmacs(GpuPrecision::Int4) / 1e3,
    );

    println!();
    println!("Cost-model cross-check (per-MAC power at 45 nm, 500 MHz):");
    let t = TechnologyProfile::nm45();
    let conv = conventional_mac(&t);
    let cvu = cvu_cost(&CvuGeometry::paper_default(), &t);
    let bf = bitfusion_fusion_unit(&t);
    let conv_p = conv.per_mac().total().power;
    println!(
        "  conventional MAC : {:>7.2} uW/MAC ({:.3} pJ/MAC)",
        conv_p,
        conv.energy_per_mac_pj()
    );
    println!(
        "  BitFusion unit   : {:>7.2} uW/MAC ({:.2}x conventional)",
        bf.per_mac().total().power,
        bf.per_mac().total().power / conv_p
    );
    println!(
        "  BPVeC CVU lane   : {:>7.2} uW/MAC ({:.2}x conventional)",
        cvu.per_mac().total().power,
        cvu.per_mac().total().power / conv_p
    );
    println!(
        "  units per 250 mW : TPU-like {:.0}, BitFusion {:.0}, BPVeC {:.0}  (Table II: 512/448/1024)",
        250_000.0 / conv_p,
        250_000.0 / bf.per_mac().total().power,
        250_000.0 / cvu.per_mac().total().power,
    );
}
