//! Bit-packing of sub-byte quantized tensors.
//!
//! Every data-volume number in the evaluation (Table I footprints, DRAM
//! traffic, scratchpad tiles) assumes sub-byte values are stored *packed* —
//! e.g. four 2-bit weights per byte. This module implements that packed
//! memory format: little-endian bit order within bytes, two's-complement
//! fields, exact round-tripping for every supported width.

use bpvec_core::{BitWidth, Signedness};

use crate::quant::QuantParams;

/// A bit-packed buffer of quantized values.
///
/// ```
/// use bpvec_core::{BitWidth, Signedness};
/// use bpvec_dnn::packing::PackedTensor;
/// let vals = [-2i32, 1, 0, -1, 1];
/// let packed = PackedTensor::pack(&vals, BitWidth::INT2, Signedness::Signed)?;
/// assert_eq!(packed.byte_len(), 2); // 10 bits -> 2 bytes
/// assert_eq!(packed.unpack(), vals);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTensor {
    data: Vec<u8>,
    len: usize,
    bits: BitWidth,
    signedness: Signedness,
}

impl PackedTensor {
    /// Packs `values` at `bits` per element.
    ///
    /// # Errors
    ///
    /// Returns [`bpvec_core::CoreError::ValueOutOfRange`] if any value does
    /// not fit the declared width/signedness.
    pub fn pack(
        values: &[i32],
        bits: BitWidth,
        signedness: Signedness,
    ) -> Result<Self, bpvec_core::CoreError> {
        let b = bits.bits();
        let total_bits = values.len() * b as usize;
        let mut data = vec![0u8; total_bits.div_ceil(8)];
        let mask = (1u32 << b) - 1;
        for (i, &v) in values.iter().enumerate() {
            bits.check(v, signedness)?;
            let field = (v as u32) & mask;
            let bit_pos = i * b as usize;
            let (byte, offset) = (bit_pos / 8, bit_pos % 8);
            data[byte] |= (field << offset) as u8;
            if offset + b as usize > 8 {
                data[byte + 1] |= (field >> (8 - offset)) as u8;
            }
        }
        Ok(PackedTensor {
            data,
            len: values.len(),
            bits,
            signedness,
        })
    }

    /// Number of packed elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes — the footprint the traffic models charge.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// The declared element width.
    #[must_use]
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The raw packed bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Extracts element `i` without unpacking the rest.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> i32 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let b = self.bits.bits() as usize;
        let bit_pos = i * b;
        let (byte, offset) = (bit_pos / 8, bit_pos % 8);
        let mut field = u32::from(self.data[byte]) >> offset;
        if offset + b > 8 {
            field |= u32::from(self.data[byte + 1]) << (8 - offset);
        }
        field &= (1u32 << b) - 1;
        match self.signedness {
            Signedness::Unsigned => field as i32,
            Signedness::Signed => {
                let sign = 1u32 << (b - 1);
                if field & sign != 0 {
                    (field as i32) - (1i32 << b)
                } else {
                    field as i32
                }
            }
        }
    }

    /// Unpacks all elements.
    #[must_use]
    pub fn unpack(&self) -> Vec<i32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Dequantizes element `i` with `params`.
    #[must_use]
    pub fn dequantize(&self, i: usize, params: &QuantParams) -> f32 {
        params.dequantize(self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_bit_packing_is_4x_denser_than_bytes() {
        let vals: Vec<i32> = (0..64).map(|i| (i % 4) - 2).collect();
        let p = PackedTensor::pack(&vals, BitWidth::INT2, Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), 16);
        assert_eq!(p.unpack(), vals);
    }

    #[test]
    fn odd_widths_straddle_byte_boundaries_correctly() {
        // 3-bit fields cross byte boundaries at every third element.
        let vals: Vec<i32> = (0..20).map(|i| (i % 8) - 4).collect();
        let p = PackedTensor::pack(&vals, BitWidth::new(3).unwrap(), Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), (20 * 3usize).div_ceil(8));
        assert_eq!(p.unpack(), vals);
        assert_eq!(p.get(7), vals[7]);
    }

    #[test]
    fn eight_bit_packing_is_identity_bytes() {
        let vals = vec![-128, -1, 0, 127];
        let p = PackedTensor::pack(&vals, BitWidth::INT8, Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), 4);
        assert_eq!(p.as_bytes(), &[0x80, 0xff, 0x00, 0x7f]);
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        assert!(PackedTensor::pack(&[4], BitWidth::INT2, Signedness::Signed).is_err());
    }

    #[test]
    fn empty_tensor_packs_to_nothing() {
        let p = PackedTensor::pack(&[], BitWidth::INT4, Signedness::Signed).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), Vec::<i32>::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_the_end_panics() {
        let p = PackedTensor::pack(&[1], BitWidth::INT4, Signedness::Signed).unwrap();
        let _ = p.get(1);
    }

    proptest! {
        /// Pack/unpack round-trips exactly for every width and signedness.
        #[test]
        fn pack_roundtrip(
            bits in 1u32..=8,
            signed in proptest::bool::ANY,
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let bw = BitWidth::new(bits).unwrap();
            let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let (lo, hi) = bw.range(s);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..200);
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
            let p = PackedTensor::pack(&vals, bw, s).unwrap();
            prop_assert_eq!(p.unpack(), vals);
            prop_assert_eq!(p.byte_len(), (n * bits as usize).div_ceil(8));
        }
    }
}
