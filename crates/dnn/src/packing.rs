//! Bit-packing of sub-byte quantized tensors.
//!
//! Every data-volume number in the evaluation (Table I footprints, DRAM
//! traffic, scratchpad tiles) assumes sub-byte values are stored *packed* —
//! e.g. four 2-bit weights per byte. This module implements that packed
//! memory format ([`PackedTensor`]: little-endian bit order within bytes,
//! two's-complement fields, exact round-tripping for every supported width)
//! plus the *execution-layout* entry points ([`pack_gemm_rows`] /
//! [`pack_gemm_cols`]): tensors decomposed straight into
//! [`bpvec_core::PackedSliceMatrix`] bit planes, the operand form the
//! bit-true GEMM path consumes.

use bpvec_core::{BitWidth, CoreError, PackedSliceMatrix, Signedness, SliceWidth};

use crate::quant::QuantParams;
use crate::tensor::Tensor;

/// A bit-packed buffer of quantized values.
///
/// ```
/// use bpvec_core::{BitWidth, Signedness};
/// use bpvec_dnn::packing::PackedTensor;
/// let vals = [-2i32, 1, 0, -1, 1];
/// let packed = PackedTensor::pack(&vals, BitWidth::INT2, Signedness::Signed)?;
/// assert_eq!(packed.byte_len(), 2); // 10 bits -> 2 bytes
/// assert_eq!(packed.unpack(), vals);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTensor {
    data: Vec<u8>,
    len: usize,
    bits: BitWidth,
    signedness: Signedness,
}

impl PackedTensor {
    /// Packs `values` at `bits` per element.
    ///
    /// # Errors
    ///
    /// Returns [`bpvec_core::CoreError::ValueOutOfRange`] if any value does
    /// not fit the declared width/signedness.
    pub fn pack(
        values: &[i32],
        bits: BitWidth,
        signedness: Signedness,
    ) -> Result<Self, bpvec_core::CoreError> {
        let b = bits.bits();
        let total_bits = values.len() * b as usize;
        let mut data = vec![0u8; total_bits.div_ceil(8)];
        let mask = (1u32 << b) - 1;
        for (i, &v) in values.iter().enumerate() {
            bits.check(v, signedness)?;
            let field = (v as u32) & mask;
            let bit_pos = i * b as usize;
            let (byte, offset) = (bit_pos / 8, bit_pos % 8);
            data[byte] |= (field << offset) as u8;
            if offset + b as usize > 8 {
                data[byte + 1] |= (field >> (8 - offset)) as u8;
            }
        }
        Ok(PackedTensor {
            data,
            len: values.len(),
            bits,
            signedness,
        })
    }

    /// Number of packed elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes — the footprint the traffic models charge.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// The declared element width.
    #[must_use]
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The raw packed bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Extracts element `i` without unpacking the rest.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> i32 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let b = self.bits.bits() as usize;
        let bit_pos = i * b;
        let (byte, offset) = (bit_pos / 8, bit_pos % 8);
        let mut field = u32::from(self.data[byte]) >> offset;
        if offset + b > 8 {
            field |= u32::from(self.data[byte + 1]) << (8 - offset);
        }
        field &= (1u32 << b) - 1;
        match self.signedness {
            Signedness::Unsigned => field as i32,
            Signedness::Signed => {
                let sign = 1u32 << (b - 1);
                if field & sign != 0 {
                    (field as i32) - (1i32 << b)
                } else {
                    field as i32
                }
            }
        }
    }

    /// Unpacks all elements.
    #[must_use]
    pub fn unpack(&self) -> Vec<i32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Dequantizes element `i` with `params`.
    #[must_use]
    pub fn dequantize(&self, i: usize, params: &QuantParams) -> f32 {
        params.dequantize(self.get(i))
    }
}

/// Packs a tensor's *rows* into slice planes: dimension 0 indexes vectors,
/// all remaining dimensions flatten into the vector length. This is the
/// weight-side entry point — an OIHW convolution kernel `[oc, ic, kh, kw]`
/// packs directly as `oc` im2col rows of length `ic·kh·kw`, a dense matrix
/// `[out, in]` as `out` rows of length `in` — with no transpose or clone.
///
/// ```
/// use bpvec_core::{BitWidth, Signedness, SliceWidth};
/// use bpvec_dnn::{packing::pack_gemm_rows, Tensor};
/// let w = Tensor::from_fn(&[4, 2, 3, 3], |i| (i[0] as i32) - 2);
/// let p = pack_gemm_rows(&w, BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed)?;
/// assert_eq!((p.num_vecs(), p.len()), (4, 18));
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] on the first element that does
/// not fit the declared `bits`/`signedness`.
///
/// # Panics
///
/// Panics if the tensor is rank 0.
pub fn pack_gemm_rows(
    t: &Tensor,
    bits: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
) -> Result<PackedSliceMatrix, CoreError> {
    let shape = t.shape();
    assert!(!shape.is_empty(), "cannot pack a rank-0 tensor by rows");
    let rows = shape[0];
    let len = t.len().checked_div(rows).unwrap_or(0);
    PackedSliceMatrix::pack_rows(t.as_slice(), rows, len, bits, slice_width, signedness)
}

/// Packs a `[k, n]` matrix's *columns* into slice planes: one packed vector
/// per column, gathered stride-`n` without materializing a transpose. This
/// is the activation-side entry point — an im2col matrix `[ic·kh·kw, oh·ow]`
/// packs as `oh·ow` patch vectors, a GEMV input `[k, 1]` as a single vector.
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] on the first element that does
/// not fit the declared `bits`/`signedness`.
///
/// # Panics
///
/// Panics unless the tensor is rank 2.
pub fn pack_gemm_cols(
    t: &Tensor,
    bits: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
) -> Result<PackedSliceMatrix, CoreError> {
    let shape = t.shape();
    assert_eq!(shape.len(), 2, "column packing needs a [k, n] matrix");
    let (k, n) = (shape[0], shape[1]);
    let data = t.as_slice();
    PackedSliceMatrix::pack_from_fn(n, k, bits, slice_width, signedness, |col, e| {
        data[e * n + col]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_bit_packing_is_4x_denser_than_bytes() {
        let vals: Vec<i32> = (0..64).map(|i| (i % 4) - 2).collect();
        let p = PackedTensor::pack(&vals, BitWidth::INT2, Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), 16);
        assert_eq!(p.unpack(), vals);
    }

    #[test]
    fn odd_widths_straddle_byte_boundaries_correctly() {
        // 3-bit fields cross byte boundaries at every third element.
        let vals: Vec<i32> = (0..20).map(|i| (i % 8) - 4).collect();
        let p = PackedTensor::pack(&vals, BitWidth::new(3).unwrap(), Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), (20 * 3usize).div_ceil(8));
        assert_eq!(p.unpack(), vals);
        assert_eq!(p.get(7), vals[7]);
    }

    #[test]
    fn eight_bit_packing_is_identity_bytes() {
        let vals = vec![-128, -1, 0, 127];
        let p = PackedTensor::pack(&vals, BitWidth::INT8, Signedness::Signed).unwrap();
        assert_eq!(p.byte_len(), 4);
        assert_eq!(p.as_bytes(), &[0x80, 0xff, 0x00, 0x7f]);
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        assert!(PackedTensor::pack(&[4], BitWidth::INT2, Signedness::Signed).is_err());
    }

    #[test]
    fn empty_tensor_packs_to_nothing() {
        let p = PackedTensor::pack(&[], BitWidth::INT4, Signedness::Signed).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), Vec::<i32>::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_the_end_panics() {
        let p = PackedTensor::pack(&[1], BitWidth::INT4, Signedness::Signed).unwrap();
        let _ = p.get(1);
    }

    #[test]
    fn gemm_rows_flatten_trailing_dims() {
        // A [2, 2, 3] tensor packs as 2 rows of 6.
        let t = Tensor::from_fn(&[2, 2, 3], |i| (i[0] * 6 + i[1] * 3 + i[2]) as i32 - 6);
        let p = pack_gemm_rows(&t, BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed).unwrap();
        assert_eq!((p.num_vecs(), p.len()), (2, 6));
        for r in 0..2 {
            for e in 0..6 {
                assert_eq!(p.get(r, e), t.as_slice()[r * 6 + e]);
            }
        }
    }

    #[test]
    fn gemm_cols_gather_without_transpose() {
        let t = Tensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as i32 - 6);
        let p = pack_gemm_cols(&t, BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed).unwrap();
        assert_eq!((p.num_vecs(), p.len()), (4, 3));
        for col in 0..4 {
            for e in 0..3 {
                assert_eq!(p.get(col, e), t[&[e, col]], "col {col} elem {e}");
            }
        }
    }

    #[test]
    fn tensor_methods_delegate() {
        let t = Tensor::from_fn(&[2, 5], |i| (i[0] + i[1]) as i32);
        let rows = t
            .pack_rows(BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        assert_eq!(
            rows,
            pack_gemm_rows(&t, BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed).unwrap()
        );
        let cols = t
            .pack_cols(BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        assert_eq!(cols.num_vecs(), 5);
    }

    #[test]
    fn gemm_packing_rejects_out_of_range() {
        let t = Tensor::from_data(&[1, 1], vec![9]);
        assert!(pack_gemm_rows(&t, BitWidth::INT2, SliceWidth::BIT2, Signedness::Signed).is_err());
        assert!(pack_gemm_cols(&t, BitWidth::INT2, SliceWidth::BIT2, Signedness::Signed).is_err());
    }

    proptest! {
        /// Pack/unpack round-trips exactly for every width and signedness.
        #[test]
        fn pack_roundtrip(
            bits in 1u32..=8,
            signed in proptest::bool::ANY,
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let bw = BitWidth::new(bits).unwrap();
            let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let (lo, hi) = bw.range(s);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..200);
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
            let p = PackedTensor::pack(&vals, bw, s).unwrap();
            prop_assert_eq!(p.unpack(), vals);
            prop_assert_eq!(p.byte_len(), (n * bits as usize).div_ceil(8));
        }
    }
}
