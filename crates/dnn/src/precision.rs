//! Per-layer precision policies — bitwidth as a first-class dimension.
//!
//! The paper's whole premise (§III-A, Table I) is that composable bit-slice
//! engines exploit *per-layer* heterogeneous bitwidths produced by deep
//! quantization \[PACT, WRPN, QNN\]. [`BitwidthPolicy`] names the two preset
//! assignments the paper evaluates; [`PrecisionPolicy`] promotes precision to
//! a first-class, per-layer dimension:
//!
//! * [`PrecisionPolicy::Preset`] reproduces the presets **bit-for-bit** (the
//!   seed figures are pinned against them);
//! * [`PrecisionPolicy::Uniform`] sets every layer to one `(bx, bw)` pair —
//!   the building block of precision sweeps;
//! * [`PrecisionPolicy::PerLayer`] carries an explicit width pair per layer,
//!   validated against the network's layer count on application.
//!
//! Policies are cheap to clone, serialize with
//! [`Workload`](../../bpvec_sim/struct.Workload.html)s, render compactly for
//! CSV columns ([`fmt::Display`]), parse from CLI arguments ([`FromStr`]),
//! and act as a sweep axis in `bpvec_sim::Scenario` /
//! `bpvec_serve::ServingScenario`.

use bpvec_core::BitWidth;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::layer::Layer;
use crate::models::{apply_policy, BitwidthPolicy, NetworkId};

/// The operand widths of one layer: activations × weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerPrecision {
    /// Activation (input) operand bitwidth.
    pub act: BitWidth,
    /// Weight operand bitwidth.
    pub weight: BitWidth,
}

impl LayerPrecision {
    /// An `act × weight` width pair.
    #[must_use]
    pub fn new(act: BitWidth, weight: BitWidth) -> Self {
        LayerPrecision { act, weight }
    }

    /// The same width for both operands.
    #[must_use]
    pub fn uniform(bits: BitWidth) -> Self {
        LayerPrecision {
            act: bits,
            weight: bits,
        }
    }
}

impl fmt::Display for LayerPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}w{}", self.act.bits(), self.weight.bits())
    }
}

/// Error from applying a precision policy to a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrecisionError {
    /// A per-layer policy's width list does not match the network's layers.
    LayerCountMismatch {
        /// The network the policy was applied to.
        network: NetworkId,
        /// Layers the network has.
        expected: usize,
        /// Width pairs the policy supplied.
        got: usize,
    },
}

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionError::LayerCountMismatch {
                network,
                expected,
                got,
            } => write!(
                f,
                "{network} has {expected} layers but the per-layer policy supplies {got} width pairs"
            ),
        }
    }
}

impl std::error::Error for PrecisionError {}

/// How operand bitwidths are assigned to a network's layers.
///
/// ```
/// use bpvec_dnn::{BitwidthPolicy, PrecisionPolicy};
/// use bpvec_core::BitWidth;
///
/// // The paper's presets, bit-for-bit:
/// let hom: PrecisionPolicy = BitwidthPolicy::Homogeneous8.into();
/// assert_eq!(hom, PrecisionPolicy::homogeneous8());
/// // A uniform 4-bit policy and the 8-bit-to-2-bit sweep:
/// let int4 = PrecisionPolicy::uniform(BitWidth::INT4);
/// assert_eq!(int4.to_string(), "uniform4");
/// assert_eq!(PrecisionPolicy::paper_sweep().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrecisionPolicy {
    /// One of the paper's named assignments ([`BitwidthPolicy`]); reproduces
    /// the seed behavior bit-for-bit.
    Preset(BitwidthPolicy),
    /// Every layer at the same `(bx, bw)` pair.
    Uniform(LayerPrecision),
    /// An explicit width pair per layer, in layer order (validated against
    /// the network's layer count when applied).
    PerLayer(Vec<LayerPrecision>),
}

impl PrecisionPolicy {
    /// The paper's homogeneous 8-bit preset.
    #[must_use]
    pub fn homogeneous8() -> Self {
        PrecisionPolicy::Preset(BitwidthPolicy::Homogeneous8)
    }

    /// The paper's Table I heterogeneous preset.
    #[must_use]
    pub fn heterogeneous() -> Self {
        PrecisionPolicy::Preset(BitwidthPolicy::Heterogeneous)
    }

    /// Every layer at `bits × bits`.
    #[must_use]
    pub fn uniform(bits: BitWidth) -> Self {
        PrecisionPolicy::Uniform(LayerPrecision::uniform(bits))
    }

    /// Every layer at `act × weight`.
    #[must_use]
    pub fn uniform_xw(act: BitWidth, weight: BitWidth) -> Self {
        PrecisionPolicy::Uniform(LayerPrecision::new(act, weight))
    }

    /// An explicit per-layer assignment, one pair per layer in order.
    #[must_use]
    pub fn per_layer(widths: Vec<LayerPrecision>) -> Self {
        PrecisionPolicy::PerLayer(widths)
    }

    /// One uniform policy per width — the generator behind precision sweeps.
    #[must_use]
    pub fn uniform_sweep(widths: impl IntoIterator<Item = BitWidth>) -> Vec<Self> {
        widths.into_iter().map(Self::uniform).collect()
    }

    /// The canonical sweep of the paper's quantization range: uniform 8-,
    /// 6-, 4- and 2-bit policies, widest first.
    #[must_use]
    pub fn paper_sweep() -> Vec<Self> {
        Self::uniform_sweep(
            [8u32, 6, 4, 2]
                .into_iter()
                .map(|b| BitWidth::new(b).expect("sweep widths are in 1..=8")),
        )
    }

    /// The preset behind this policy, if it is one.
    #[must_use]
    pub fn as_preset(&self) -> Option<BitwidthPolicy> {
        match self {
            PrecisionPolicy::Preset(p) => Some(*p),
            _ => None,
        }
    }

    /// The narrowest weight width any layer runs at (presets included:
    /// homogeneous is 8-bit everywhere, heterogeneous bottoms out at 4-bit).
    ///
    /// Returns `None` only for an empty per-layer list.
    #[must_use]
    pub fn min_weight_bits(&self) -> Option<BitWidth> {
        match self {
            PrecisionPolicy::Preset(BitwidthPolicy::Homogeneous8) => Some(BitWidth::INT8),
            PrecisionPolicy::Preset(BitwidthPolicy::Heterogeneous) => Some(BitWidth::INT4),
            PrecisionPolicy::Uniform(lp) => Some(lp.weight),
            PrecisionPolicy::PerLayer(v) => v.iter().map(|lp| lp.weight).min(),
        }
    }

    /// The narrowest activation width any layer runs at (presets included:
    /// homogeneous is 8-bit everywhere, heterogeneous bottoms out at 4-bit).
    ///
    /// Returns `None` only for an empty per-layer list.
    #[must_use]
    pub fn min_act_bits(&self) -> Option<BitWidth> {
        match self {
            PrecisionPolicy::Preset(BitwidthPolicy::Homogeneous8) => Some(BitWidth::INT8),
            PrecisionPolicy::Preset(BitwidthPolicy::Heterogeneous) => Some(BitWidth::INT4),
            PrecisionPolicy::Uniform(lp) => Some(lp.act),
            PrecisionPolicy::PerLayer(v) => v.iter().map(|lp| lp.act).min(),
        }
    }

    /// Validates `rungs` as a precision [`DegradationLadder`] (full
    /// precision first, monotonically narrowing) — the constructor behind
    /// `bpvec-serve`'s adaptive precision controller.
    ///
    /// # Errors
    ///
    /// Fails with [`LadderError`] when the ladder is empty, contains a
    /// duplicate or empty rung, or widens anywhere on the way down.
    pub fn degradation_ladder(
        rungs: impl IntoIterator<Item = impl Into<PrecisionPolicy>>,
    ) -> Result<DegradationLadder, LadderError> {
        DegradationLadder::new(rungs.into_iter().map(Into::into).collect())
    }

    /// Assigns this policy's widths to `layers` (a network's layer list, in
    /// order). Presets reproduce the seed's assignment exactly.
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] if a per-layer
    /// policy's length differs from the network's layer count.
    pub fn apply(&self, network: NetworkId, layers: &mut [Layer]) -> Result<(), PrecisionError> {
        match self {
            PrecisionPolicy::Preset(p) => {
                apply_policy(network, *p, layers);
                Ok(())
            }
            PrecisionPolicy::Uniform(lp) => {
                for l in layers.iter_mut() {
                    l.act_bits = lp.act;
                    l.weight_bits = lp.weight;
                }
                Ok(())
            }
            PrecisionPolicy::PerLayer(widths) => {
                if widths.len() != layers.len() {
                    return Err(PrecisionError::LayerCountMismatch {
                        network,
                        expected: layers.len(),
                        got: widths.len(),
                    });
                }
                for (l, lp) in layers.iter_mut().zip(widths) {
                    l.act_bits = lp.act;
                    l.weight_bits = lp.weight;
                }
                Ok(())
            }
        }
    }
}

/// Error from building a [`DegradationLadder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LadderError {
    /// A ladder needs at least one rung.
    Empty,
    /// A rung policy has no layers (an empty per-layer list), so it bounds
    /// no widths.
    EmptyRung {
        /// Index of the offending rung.
        index: usize,
    },
    /// Two rungs are the same policy; a switch between them would be a
    /// no-op and the controller could oscillate without effect.
    Duplicate {
        /// Index of the second occurrence.
        index: usize,
    },
    /// A rung is wider than its predecessor: descending the ladder must
    /// never *raise* a minimum operand width.
    WidensAt {
        /// Index of the rung that widens.
        index: usize,
    },
}

impl fmt::Display for LadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::Empty => f.write_str("a degradation ladder needs at least one rung"),
            LadderError::EmptyRung { index } => {
                write!(f, "ladder rung {index} is an empty per-layer policy")
            }
            LadderError::Duplicate { index } => {
                write!(f, "ladder rung {index} duplicates an earlier rung")
            }
            LadderError::WidensAt { index } => write!(
                f,
                "ladder rung {index} is wider than its predecessor (rungs must narrow monotonically)"
            ),
        }
    }
}

impl std::error::Error for LadderError {}

/// A validated precision degradation ladder: rung 0 is full precision, and
/// every later rung trades accuracy for throughput by narrowing operand
/// widths.
///
/// The ladder contract, enforced at construction:
///
/// * at least one rung;
/// * no duplicate rungs (a switch must always change the executed widths);
/// * minimum operand widths are monotone non-increasing down the ladder;
/// * no *per-layer* widening either: adjacent per-layer rungs of equal
///   length are compared element-wise, and any rung following a uniform
///   rung is bounded above by it — so degrading never widens any layer a
///   policy can pin, and service time under a composable backend is
///   non-increasing rung to rung. (Between two *presets* only the width
///   bounds are comparable here; the presets' per-layer assignments are
///   network-specific and both presets narrow monotonically in practice.)
///
/// Built via [`PrecisionPolicy::degradation_ladder`] (or
/// [`DegradationLadder::paper`] for the canonical Table-I → uniform-4b →
/// uniform-2b ladder) and consumed by `bpvec-serve`'s adaptive controller,
/// which walks it one rung at a time under load feedback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationLadder {
    rungs: Vec<PrecisionPolicy>,
}

impl DegradationLadder {
    /// Validates and builds a ladder from full-precision rung 0 downward.
    ///
    /// # Errors
    ///
    /// Fails with [`LadderError`] when the ladder is empty, contains a
    /// duplicate or empty rung, or widens anywhere on the way down.
    pub fn new(rungs: Vec<PrecisionPolicy>) -> Result<Self, LadderError> {
        if rungs.is_empty() {
            return Err(LadderError::Empty);
        }
        let mut mins: Vec<(u32, u32)> = Vec::with_capacity(rungs.len());
        for (index, rung) in rungs.iter().enumerate() {
            if rungs[..index].contains(rung) {
                return Err(LadderError::Duplicate { index });
            }
            let (Some(act), Some(weight)) = (rung.min_act_bits(), rung.min_weight_bits()) else {
                return Err(LadderError::EmptyRung { index });
            };
            mins.push((act.bits(), weight.bits()));
            if index > 0 {
                let (pa, pw) = mins[index - 1];
                let (a, w) = mins[index];
                if a > pa || w > pw {
                    return Err(LadderError::WidensAt { index });
                }
                if rung_widens(&rungs[index - 1], rung) {
                    return Err(LadderError::WidensAt { index });
                }
            }
        }
        Ok(DegradationLadder { rungs })
    }

    /// The canonical ladder of the paper's quantization range: Table I
    /// heterogeneous widths, then uniform 4-bit, then uniform 2-bit.
    #[must_use]
    pub fn paper() -> Self {
        DegradationLadder::new(vec![
            PrecisionPolicy::heterogeneous(),
            PrecisionPolicy::uniform(BitWidth::INT4),
            PrecisionPolicy::uniform(BitWidth::INT2),
        ])
        .expect("the paper ladder narrows monotonically")
    }

    /// The rungs, full precision first.
    #[must_use]
    pub fn rungs(&self) -> &[PrecisionPolicy] {
        &self.rungs
    }

    /// Number of rungs (always at least 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Always false — a validated ladder has at least one rung.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The policy at `rung`, if the ladder reaches that deep.
    #[must_use]
    pub fn get(&self, rung: usize) -> Option<&PrecisionPolicy> {
        self.rungs.get(rung)
    }
}

/// True when descending from `prev` to `next` would widen some *layer*
/// even though the rung-level minimum widths narrow — the cases the min
/// check alone cannot see. A uniform `prev` bounds every layer of `next`
/// from above; equal-length per-layer rungs compare element-wise. Preset
/// `prev` rungs assign widths per network, so only the min check applies
/// to them (documented on [`DegradationLadder`]).
fn rung_widens(prev: &PrecisionPolicy, next: &PrecisionPolicy) -> bool {
    let max_pair = |p: &PrecisionPolicy| -> Option<(u32, u32)> {
        match p {
            PrecisionPolicy::Uniform(lp) => Some((lp.act.bits(), lp.weight.bits())),
            PrecisionPolicy::PerLayer(v) => {
                let act = v.iter().map(|lp| lp.act.bits()).max()?;
                let weight = v.iter().map(|lp| lp.weight.bits()).max()?;
                Some((act, weight))
            }
            PrecisionPolicy::Preset(_) => None,
        }
    };
    // A preset's widest possible per-layer assignment is 8-bit (hom8
    // everywhere; het's boundary layers).
    let (na, nw) = max_pair(next).unwrap_or((8, 8));
    match (prev, next) {
        (PrecisionPolicy::Uniform(cap), _) => na > cap.act.bits() || nw > cap.weight.bits(),
        (PrecisionPolicy::PerLayer(p), PrecisionPolicy::PerLayer(n)) if p.len() == n.len() => p
            .iter()
            .zip(n)
            .any(|(a, b)| b.act.bits() > a.act.bits() || b.weight.bits() > a.weight.bits()),
        (PrecisionPolicy::PerLayer(_), PrecisionPolicy::Preset(_)) => {
            // The preset's network-specific alignment is unknowable here,
            // so its widest possible layer must fit under *every* layer of
            // the per-layer rung.
            let (pa, pw) = (
                prev.min_act_bits().map_or(0, |b| b.bits()),
                prev.min_weight_bits().map_or(0, |b| b.bits()),
            );
            na > pa || nw > pw
        }
        // Preset-to-preset adjacency is covered by the minimum-width check
        // (hom8 bounds every het layer from above; the reverse narrows the
        // minimum and is already rejected).
        _ => false,
    }
}

/// Comma-free rendering for CSV columns: rung displays joined by `>`.
impl fmt::Display for DegradationLadder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                f.write_str(">")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl From<BitwidthPolicy> for PrecisionPolicy {
    fn from(preset: BitwidthPolicy) -> Self {
        PrecisionPolicy::Preset(preset)
    }
}

/// Policies compare to the preset enum directly, so call sites that predate
/// `PrecisionPolicy` keep reading naturally.
impl PartialEq<BitwidthPolicy> for PrecisionPolicy {
    fn eq(&self, other: &BitwidthPolicy) -> bool {
        matches!(self, PrecisionPolicy::Preset(p) if p == other)
    }
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy::Preset(BitwidthPolicy::default())
    }
}

/// Compact, comma-free rendering for CSV columns: presets keep their seed
/// spelling (`Homogeneous8` / `Heterogeneous`), uniform policies render as
/// `uniform4` / `uniform8x4`, per-layer policies as `per-layer[len;fnv]`
/// (the FNV tag distinguishes same-length assignments).
impl fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionPolicy::Preset(BitwidthPolicy::Homogeneous8) => f.write_str("Homogeneous8"),
            PrecisionPolicy::Preset(BitwidthPolicy::Heterogeneous) => f.write_str("Heterogeneous"),
            PrecisionPolicy::Uniform(lp) if lp.act == lp.weight => {
                write!(f, "uniform{}", lp.act.bits())
            }
            PrecisionPolicy::Uniform(lp) => {
                write!(f, "uniform{}x{}", lp.act.bits(), lp.weight.bits())
            }
            PrecisionPolicy::PerLayer(v) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for lp in v {
                    for bits in [lp.act.bits(), lp.weight.bits()] {
                        h ^= u64::from(bits);
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
                write!(f, "per-layer[{};{:04x}]", v.len(), h & 0xFFFF)
            }
        }
    }
}

/// Error from parsing a [`PrecisionPolicy`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse `{}` as a precision policy (try `hom8`, `het`, `int4`, or `8x4`)",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

/// Parses CLI spellings: `hom8`/`homogeneous8`, `het`/`heterogeneous`, a
/// single width (`4`, `4b`, `int4` — uniform), or `ACTxWEIGHT` (`8x4`,
/// `int8xint4`).
impl FromStr for PrecisionPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError {
            input: s.to_string(),
        };
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "hom" | "hom8" | "homogeneous" | "homogeneous8" => {
                return Ok(PrecisionPolicy::homogeneous8())
            }
            "het" | "heterogeneous" => return Ok(PrecisionPolicy::heterogeneous()),
            _ => {}
        }
        let t = t.strip_prefix("uniform").unwrap_or(&t);
        if let Some((a, w)) = t.split_once('x') {
            let act = a.parse::<BitWidth>().map_err(|_| err())?;
            let weight = w.parse::<BitWidth>().map_err(|_| err())?;
            return Ok(PrecisionPolicy::uniform_xw(act, weight));
        }
        t.parse::<BitWidth>()
            .map(PrecisionPolicy::uniform)
            .map_err(|_| err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Network;

    #[test]
    fn presets_reproduce_the_seed_assignment_bit_for_bit() {
        for id in NetworkId::ALL {
            for preset in [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous] {
                let seed = Network::build(id, preset);
                let precise = Network::build_precise(id, &PrecisionPolicy::Preset(preset))
                    .expect("presets always apply");
                assert_eq!(seed.layers, precise.layers, "{id} {preset:?}");
            }
        }
    }

    #[test]
    fn uniform_policy_sets_every_layer() {
        let n = Network::build_precise(
            NetworkId::ResNet18,
            &PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT2),
        )
        .unwrap();
        assert!(n
            .layers
            .iter()
            .all(|l| l.act_bits == BitWidth::INT8 && l.weight_bits == BitWidth::INT2));
    }

    #[test]
    fn per_layer_policy_validates_length() {
        let base = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        let widths: Vec<LayerPrecision> = base
            .layers
            .iter()
            .map(|_| LayerPrecision::uniform(BitWidth::INT4))
            .collect();
        let ok = Network::build_precise(
            NetworkId::AlexNet,
            &PrecisionPolicy::per_layer(widths.clone()),
        )
        .unwrap();
        assert!(ok.layers.iter().all(|l| l.weight_bits == BitWidth::INT4));
        let err = Network::build_precise(
            NetworkId::AlexNet,
            &PrecisionPolicy::per_layer(widths[..3].to_vec()),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PrecisionError::LayerCountMismatch {
                network: NetworkId::AlexNet,
                expected: base.layers.len(),
                got: 3,
            }
        );
        assert!(err.to_string().contains("width pairs"));
    }

    #[test]
    fn sweep_generator_descends_from_8_to_2() {
        let sweep = PrecisionPolicy::paper_sweep();
        let widths: Vec<u32> = sweep
            .iter()
            .map(|p| p.min_weight_bits().unwrap().bits())
            .collect();
        assert_eq!(widths, vec![8, 6, 4, 2]);
    }

    #[test]
    fn display_is_compact_and_comma_free() {
        assert_eq!(PrecisionPolicy::homogeneous8().to_string(), "Homogeneous8");
        assert_eq!(
            PrecisionPolicy::heterogeneous().to_string(),
            "Heterogeneous"
        );
        assert_eq!(
            PrecisionPolicy::uniform(BitWidth::INT4).to_string(),
            "uniform4"
        );
        assert_eq!(
            PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT4).to_string(),
            "uniform8x4"
        );
        let pl = PrecisionPolicy::per_layer(vec![LayerPrecision::uniform(BitWidth::INT2); 5]);
        let s = pl.to_string();
        assert!(s.starts_with("per-layer[5;"), "{s}");
        assert!(!s.contains(','), "{s}");
        // Different assignments with the same length render differently.
        let other = PrecisionPolicy::per_layer(vec![LayerPrecision::uniform(BitWidth::INT8); 5]);
        assert_ne!(s, other.to_string());
    }

    #[test]
    fn from_str_accepts_cli_spellings() {
        assert_eq!(
            "hom8".parse::<PrecisionPolicy>().unwrap(),
            PrecisionPolicy::homogeneous8()
        );
        assert_eq!(
            "het".parse::<PrecisionPolicy>().unwrap(),
            PrecisionPolicy::heterogeneous()
        );
        assert_eq!(
            "int4".parse::<PrecisionPolicy>().unwrap(),
            PrecisionPolicy::uniform(BitWidth::INT4)
        );
        assert_eq!(
            "8x4".parse::<PrecisionPolicy>().unwrap(),
            PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT4)
        );
        assert_eq!(
            "uniform2b".parse::<PrecisionPolicy>().unwrap(),
            PrecisionPolicy::uniform(BitWidth::INT2)
        );
        let err = "nonsense".parse::<PrecisionPolicy>().unwrap_err();
        assert!(err.to_string().contains("nonsense"));
    }

    #[test]
    fn preset_comparison_reads_naturally() {
        let p = PrecisionPolicy::homogeneous8();
        assert_eq!(p, BitwidthPolicy::Homogeneous8);
        assert_ne!(
            PrecisionPolicy::uniform(BitWidth::INT8),
            BitwidthPolicy::Homogeneous8
        );
    }

    #[test]
    fn paper_ladder_narrows_from_table1_to_2bit() {
        let ladder = DegradationLadder::paper();
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert_eq!(ladder.rungs()[0], PrecisionPolicy::heterogeneous());
        assert_eq!(
            ladder.get(2),
            Some(&PrecisionPolicy::uniform(BitWidth::INT2))
        );
        assert_eq!(ladder.get(3), None);
        assert_eq!(ladder.to_string(), "Heterogeneous>uniform4>uniform2");
        assert!(!ladder.to_string().contains(','));
    }

    #[test]
    fn ladder_constructor_validates() {
        assert_eq!(
            PrecisionPolicy::degradation_ladder(Vec::<PrecisionPolicy>::new()),
            Err(LadderError::Empty)
        );
        let dup = PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::uniform(BitWidth::INT4),
            PrecisionPolicy::uniform(BitWidth::INT4),
        ]);
        assert_eq!(dup, Err(LadderError::Duplicate { index: 1 }));
        // uniform8x4 -> uniform4 narrows acts and holds weights: fine.
        assert!(PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT4),
            PrecisionPolicy::uniform(BitWidth::INT4),
        ])
        .is_ok());
        // uniform2 -> uniform4 widens: rejected.
        let widen = PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::uniform(BitWidth::INT2),
            PrecisionPolicy::uniform(BitWidth::INT4),
        ]);
        assert_eq!(widen, Err(LadderError::WidensAt { index: 1 }));
        // Widening the *act* operand alone is also rejected.
        let widen_act = PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::uniform(BitWidth::INT4),
            PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT2),
        ]);
        assert_eq!(widen_act, Err(LadderError::WidensAt { index: 1 }));
        let empty_rung = PrecisionPolicy::degradation_ladder([PrecisionPolicy::per_layer(vec![])]);
        assert_eq!(empty_rung, Err(LadderError::EmptyRung { index: 0 }));
        assert!(empty_rung.unwrap_err().to_string().contains("rung 0"));
        // Per-layer widening that the rung-level minimums cannot see:
        // [8,4] -> [2,8] narrows the minimum (4 -> 2) but widens layer 1.
        let pl = |bits: [u32; 2]| {
            PrecisionPolicy::per_layer(
                bits.map(|b| LayerPrecision::uniform(BitWidth::new(b).unwrap()))
                    .to_vec(),
            )
        };
        assert_eq!(
            PrecisionPolicy::degradation_ladder([pl([8, 4]), pl([2, 8])]),
            Err(LadderError::WidensAt { index: 1 })
        );
        assert!(PrecisionPolicy::degradation_ladder([pl([8, 4]), pl([4, 2])]).is_ok());
        // A uniform rung bounds every later layer from above.
        assert_eq!(
            PrecisionPolicy::degradation_ladder([
                PrecisionPolicy::uniform(BitWidth::INT4),
                pl([8, 2])
            ]),
            Err(LadderError::WidensAt { index: 1 })
        );
        // ...including a preset's possible 8-bit layers after a uniform or
        // per-layer rung narrower than 8-bit anywhere.
        assert_eq!(
            PrecisionPolicy::degradation_ladder([
                PrecisionPolicy::uniform(BitWidth::INT4),
                PrecisionPolicy::heterogeneous(),
            ]),
            Err(LadderError::WidensAt { index: 1 })
        );
        assert_eq!(
            PrecisionPolicy::degradation_ladder([pl([4, 4]), PrecisionPolicy::heterogeneous()]),
            Err(LadderError::WidensAt { index: 1 })
        );
        // hom8 bounds every het layer from above, so that descent is fine.
        assert!(PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::homogeneous8(),
            PrecisionPolicy::heterogeneous(),
        ])
        .is_ok());
    }

    #[test]
    fn ladder_accepts_presets_and_serializes() {
        let ladder = PrecisionPolicy::degradation_ladder([
            BitwidthPolicy::Homogeneous8,
            BitwidthPolicy::Heterogeneous,
        ])
        .unwrap();
        assert_eq!(ladder.to_string(), "Homogeneous8>Heterogeneous");
        let json = serde_json::to_string(&ladder).unwrap();
        let back: DegradationLadder = serde_json::from_str(&json).unwrap();
        assert_eq!(ladder, back);
    }

    #[test]
    fn min_act_bits_mirrors_min_weight_bits() {
        assert_eq!(
            PrecisionPolicy::homogeneous8().min_act_bits(),
            Some(BitWidth::INT8)
        );
        assert_eq!(
            PrecisionPolicy::heterogeneous().min_act_bits(),
            Some(BitWidth::INT4)
        );
        assert_eq!(
            PrecisionPolicy::uniform_xw(BitWidth::INT2, BitWidth::INT8).min_act_bits(),
            Some(BitWidth::INT2)
        );
        assert_eq!(PrecisionPolicy::per_layer(vec![]).min_act_bits(), None);
    }

    #[test]
    fn serde_round_trip() {
        for p in [
            PrecisionPolicy::heterogeneous(),
            PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::INT2),
            PrecisionPolicy::per_layer(vec![LayerPrecision::uniform(BitWidth::INT4); 3]),
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: PrecisionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
