//! The six evaluated networks (paper Table I) with per-layer bitwidths.
//!
//! Architectures follow the canonical published definitions (AlexNet,
//! GoogLeNet/Inception-v1, ResNet-18/50, a 2-layer vanilla RNN and a 2-layer
//! LSTM sized to the paper's model footprints). The heterogeneous bitwidth
//! assignment follows Table I: first and last layers at 8-bit, everything
//! else at 4-bit for the CNNs (all layers 4-bit for ResNet-50 and the
//! recurrent models), per the quantization literature the paper cites
//! \[PACT, WRPN, QNN\].

use bpvec_core::BitWidth;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::{Layer, LayerKind};
use crate::precision::{PrecisionError, PrecisionPolicy};

/// Identifies one of the paper's six benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkId {
    /// AlexNet (CNN, 224×224 input).
    AlexNet,
    /// Inception-v1 / GoogLeNet (CNN).
    InceptionV1,
    /// ResNet-18 (CNN).
    ResNet18,
    /// ResNet-50 (CNN).
    ResNet50,
    /// 2-layer vanilla RNN, hidden size 2048, sequence length 512.
    Rnn,
    /// 2-layer LSTM, hidden size 880, sequence length 512.
    Lstm,
}

impl NetworkId {
    /// All six benchmarks in the paper's Table I order.
    pub const ALL: [NetworkId; 6] = [
        NetworkId::AlexNet,
        NetworkId::InceptionV1,
        NetworkId::ResNet18,
        NetworkId::ResNet50,
        NetworkId::Rnn,
        NetworkId::Lstm,
    ];

    /// The paper's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetworkId::AlexNet => "AlexNet",
            NetworkId::InceptionV1 => "Inception-v1",
            NetworkId::ResNet18 => "ResNet-18",
            NetworkId::ResNet50 => "ResNet-50",
            NetworkId::Rnn => "RNN",
            NetworkId::Lstm => "LSTM",
        }
    }

    /// True for the recurrent (bandwidth-bound) models.
    #[must_use]
    pub fn is_recurrent(self) -> bool {
        matches!(self, NetworkId::Rnn | NetworkId::Lstm)
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How operand bitwidths are assigned to layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BitwidthPolicy {
    /// All layers 8-bit (the paper's "without bitwidth heterogeneity" mode).
    #[default]
    Homogeneous8,
    /// Table I assignment: boundary layers 8-bit, inner layers 4-bit for
    /// AlexNet/Inception-v1/ResNet-18; all layers 4-bit for ResNet-50, RNN
    /// and LSTM.
    Heterogeneous,
}

/// Error from interrogating a network's layers by name: the layer is
/// missing, or exists with a different kind than the caller expected.
/// Returned instead of panicking so malformed model lookups surface as
/// recoverable `Result`s to library users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelQueryError {
    /// No layer with the requested name exists in the network.
    NoSuchLayer {
        /// The network that was searched.
        network: NetworkId,
        /// The requested layer name.
        name: String,
    },
    /// The named layer exists but is not the expected kind.
    WrongKind {
        /// The network that was searched.
        network: NetworkId,
        /// The requested layer name.
        name: String,
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind the layer actually has.
        found: &'static str,
    },
}

impl fmt::Display for ModelQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelQueryError::NoSuchLayer { network, name } => {
                write!(f, "{network} has no layer named `{name}`")
            }
            ModelQueryError::WrongKind {
                network,
                name,
                expected,
                found,
            } => write!(f, "{network} layer `{name}` is {found}, not {expected}"),
        }
    }
}

impl std::error::Error for ModelQueryError {}

/// A benchmark network: an ordered list of bitwidth-annotated layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Which benchmark this is.
    pub id: NetworkId,
    /// The precision policy the layers were annotated with.
    pub policy: PrecisionPolicy,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Builds a benchmark network under a preset bitwidth policy (the
    /// paper's two named assignments). For uniform or per-layer policies
    /// use [`Network::build_precise`].
    #[must_use]
    pub fn build(id: NetworkId, policy: BitwidthPolicy) -> Self {
        Self::build_precise(id, &PrecisionPolicy::Preset(policy))
            .expect("preset policies apply to every network")
    }

    /// Builds a benchmark network under any [`PrecisionPolicy`].
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count.
    pub fn build_precise(id: NetworkId, policy: &PrecisionPolicy) -> Result<Self, PrecisionError> {
        let mut layers = match id {
            NetworkId::AlexNet => alexnet(),
            NetworkId::InceptionV1 => inception_v1(),
            NetworkId::ResNet18 => resnet18(),
            NetworkId::ResNet50 => resnet50(),
            NetworkId::Rnn => rnn(),
            NetworkId::Lstm => lstm(),
        };
        policy.apply(id, &mut layers)?;
        Ok(Network {
            id,
            policy: policy.clone(),
            layers,
        })
    }

    /// Re-annotates this network's layers under `policy` in place.
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count; the
    /// network is left untouched on error.
    pub fn apply_precision(&mut self, policy: &PrecisionPolicy) -> Result<(), PrecisionError> {
        policy.apply(self.id, &mut self.layers)?;
        self.policy = policy.clone();
        Ok(())
    }

    /// Compute layers only (those with MACs).
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.is_compute())
    }

    /// Looks up a layer by name.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if no layer carries the
    /// name.
    pub fn layer(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layers
            .iter()
            .find(|l| l.name == name)
            .ok_or_else(|| ModelQueryError::NoSuchLayer {
                network: self.id,
                name: name.to_string(),
            })
    }

    /// Looks up a layer by name, checking it is a convolution.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not a `Conv2d`.
    pub fn conv2d(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        let layer = self.layer(name)?;
        match layer.kind {
            LayerKind::Conv2d { .. } => Ok(layer),
            _ => Err(ModelQueryError::WrongKind {
                network: self.id,
                name: name.to_string(),
                expected: "conv2d",
                found: layer.kind.kind_name(),
            }),
        }
    }

    /// Total multiply-accumulates per inference (batch 1).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total operations (each MAC = multiply + add), in Giga-ops.
    #[must_use]
    pub fn total_gops(&self) -> f64 {
        2.0 * self.total_macs() as f64 / 1e9
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Model size in megabytes at INT8 (Table I's "Model Size (INT8)").
    #[must_use]
    pub fn model_size_int8_mb(&self) -> f64 {
        self.total_params() as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1} MB INT8, {:.2} GOps)",
            self.id,
            self.layers.len(),
            self.model_size_int8_mb(),
            self.total_gops()
        )
    }
}

/// Table I's published figures, for EXPERIMENTS.md comparisons.
pub mod paper {
    /// (network, model size MB INT8, multiply-add GOps) as printed in
    /// Table I. Note the paper's "GOps" column is its own accounting; our
    /// per-inference numbers are recorded next to it in EXPERIMENTS.md.
    pub const TABLE1: [(&str, f64, f64); 6] = [
        ("AlexNet", 56.1, 2678.0),
        ("Inception-v1", 8.6, 1860.0),
        ("ResNet-18", 11.1, 4269.0),
        ("ResNet-50", 24.4, 8030.0),
        ("RNN", 16.0, 17.0),
        ("LSTM", 12.3, 13.0),
    ];
}

pub(crate) fn apply_policy(id: NetworkId, policy: BitwidthPolicy, layers: &mut [Layer]) {
    match policy {
        BitwidthPolicy::Homogeneous8 => {
            for l in layers.iter_mut() {
                l.act_bits = BitWidth::INT8;
                l.weight_bits = BitWidth::INT8;
            }
        }
        BitwidthPolicy::Heterogeneous => {
            let boundary_8bit = matches!(
                id,
                NetworkId::AlexNet | NetworkId::InceptionV1 | NetworkId::ResNet18
            );
            let compute_idx: Vec<usize> = layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_compute())
                .map(|(i, _)| i)
                .collect();
            let (first, last) = (compute_idx.first().copied(), compute_idx.last().copied());
            for (i, l) in layers.iter_mut().enumerate() {
                let is_boundary = Some(i) == first || Some(i) == last;
                let bits = if boundary_8bit && is_boundary {
                    BitWidth::INT8
                } else {
                    BitWidth::INT4
                };
                l.act_bits = bits;
                l.weight_bits = bits;
            }
        }
    }
}

fn conv(
    name: impl Into<String>,
    in_c: usize,
    out_c: usize,
    k: usize,
    s: usize,
    p: usize,
    hw: usize,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            in_channels: in_c,
            out_channels: out_c,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            input_hw: (hw, hw),
        },
    )
}

fn pool(name: impl Into<String>, c: usize, k: usize, s: usize, hw: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::Pool {
            channels: c,
            kernel: (k, k),
            stride: (s, s),
            input_hw: (hw, hw),
        },
    )
}

fn fc(name: impl Into<String>, in_f: usize, out_f: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::FullyConnected {
            in_features: in_f,
            out_features: out_f,
        },
    )
}

fn alexnet() -> Vec<Layer> {
    vec![
        conv("conv1", 3, 64, 11, 4, 2, 224),
        pool("pool1", 64, 3, 2, 55),
        conv("conv2", 64, 192, 5, 1, 2, 27),
        pool("pool2", 192, 3, 2, 27),
        conv("conv3", 192, 384, 3, 1, 1, 13),
        conv("conv4", 384, 256, 3, 1, 1, 13),
        conv("conv5", 256, 256, 3, 1, 1, 13),
        pool("pool5", 256, 3, 2, 13),
        fc("fc6", 256 * 6 * 6, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    ]
}

fn resnet18() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("maxpool", 64, 3, 2, 112),
    ];
    // (stage, blocks, channels, input hw); first block of stages 2-4
    // downsamples with stride 2 and a 1x1 projection shortcut.
    let stages = [
        (1, 2, 64, 56),
        (2, 2, 128, 56),
        (3, 2, 256, 28),
        (4, 2, 512, 14),
    ];
    let mut in_c = 64;
    for (stage, blocks, c, mut hw) in stages {
        for b in 0..blocks {
            let downsample = stage > 1 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            let prefix = format!("layer{stage}.{b}");
            layers.push(conv(format!("{prefix}.conv1"), in_c, c, 3, stride, 1, hw));
            if downsample {
                layers.push(conv(format!("{prefix}.downsample"), in_c, c, 1, 2, 0, hw));
                hw /= 2;
            }
            layers.push(conv(format!("{prefix}.conv2"), c, c, 3, 1, 1, hw));
            in_c = c;
        }
    }
    layers.push(pool("avgpool", 512, 7, 7, 7));
    layers.push(fc("fc", 512, 1000));
    layers
}

fn resnet50() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("maxpool", 64, 3, 2, 112),
    ];
    // Bottleneck stages: (stage, blocks, mid channels, out channels, hw in).
    let stages = [
        (1, 3, 64, 256, 56),
        (2, 4, 128, 512, 56),
        (3, 6, 256, 1024, 28),
        (4, 3, 512, 2048, 14),
    ];
    let mut in_c = 64;
    for (stage, blocks, mid, out, mut hw) in stages {
        for b in 0..blocks {
            let downsample = b == 0;
            let stride = if stage > 1 && b == 0 { 2 } else { 1 };
            let prefix = format!("layer{stage}.{b}");
            layers.push(conv(format!("{prefix}.conv1"), in_c, mid, 1, 1, 0, hw));
            layers.push(conv(format!("{prefix}.conv2"), mid, mid, 3, stride, 1, hw));
            if downsample {
                layers.push(conv(
                    format!("{prefix}.downsample"),
                    in_c,
                    out,
                    1,
                    stride,
                    0,
                    hw,
                ));
            }
            if stride == 2 {
                hw /= 2;
            }
            layers.push(conv(format!("{prefix}.conv3"), mid, out, 1, 1, 0, hw));
            in_c = out;
        }
    }
    layers.push(pool("avgpool", 2048, 7, 7, 7));
    layers.push(fc("fc", 2048, 1000));
    layers
}

/// One GoogLeNet inception module: four parallel branches
/// (1×1, 1×1→3×3, 1×1→5×5, pool→1×1) concatenated channel-wise.
#[allow(clippy::too_many_arguments)]
fn inception_module(
    layers: &mut Vec<Layer>,
    name: &str,
    in_c: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
    hw: usize,
) -> usize {
    layers.push(conv(format!("{name}.b1"), in_c, c1, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b2r"), in_c, c3r, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b2"), c3r, c3, 3, 1, 1, hw));
    layers.push(conv(format!("{name}.b3r"), in_c, c5r, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b3"), c5r, c5, 5, 1, 2, hw));
    layers.push(conv(format!("{name}.b4"), in_c, cp, 1, 1, 0, hw));
    c1 + c3 + c5 + cp
}

fn inception_v1() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("pool1", 64, 3, 2, 112),
        conv("conv2r", 64, 64, 1, 1, 0, 56),
        conv("conv2", 64, 192, 3, 1, 1, 56),
        pool("pool2", 192, 3, 2, 56),
    ];
    let mut c = 192;
    c = inception_module(&mut layers, "3a", c, 64, 96, 128, 16, 32, 32, 28);
    c = inception_module(&mut layers, "3b", c, 128, 128, 192, 32, 96, 64, 28);
    layers.push(pool("pool3", c, 3, 2, 28));
    c = inception_module(&mut layers, "4a", c, 192, 96, 208, 16, 48, 64, 14);
    c = inception_module(&mut layers, "4b", c, 160, 112, 224, 24, 64, 64, 14);
    c = inception_module(&mut layers, "4c", c, 128, 128, 256, 24, 64, 64, 14);
    c = inception_module(&mut layers, "4d", c, 112, 144, 288, 32, 64, 64, 14);
    c = inception_module(&mut layers, "4e", c, 256, 160, 320, 32, 128, 128, 14);
    layers.push(pool("pool4", c, 3, 2, 14));
    c = inception_module(&mut layers, "5a", c, 256, 160, 320, 32, 128, 128, 7);
    c = inception_module(&mut layers, "5b", c, 384, 192, 384, 48, 128, 128, 7);
    layers.push(pool("avgpool", c, 7, 7, 7));
    layers.push(fc("fc", c, 1000));
    layers
}

fn rnn() -> Vec<Layer> {
    // A 2-layer vanilla RNN sized to Table I: 2 x (2048x2048 + 2048x2048)
    // weights = 16.8M parameters = 16 MB INT8, unrolled over 512 timesteps.
    (0..2)
        .map(|i| {
            Layer::new(
                format!("rnn{i}"),
                LayerKind::Recurrent {
                    input_size: 2048,
                    hidden_size: 2048,
                    gates: 1,
                    seq_len: 512,
                },
            )
        })
        .collect()
}

fn lstm() -> Vec<Layer> {
    // A 2-layer LSTM sized to Table I: 2 x 4 x 880 x 1760 = 12.4M parameters
    // = 11.8 MB INT8, unrolled over 512 timesteps.
    (0..2)
        .map(|i| {
            Layer::new(
                format!("lstm{i}"),
                LayerKind::Recurrent {
                    input_size: 880,
                    hidden_size: 880,
                    gates: 4,
                    seq_len: 512,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(id: NetworkId) -> Network {
        Network::build(id, BitwidthPolicy::Homogeneous8)
    }

    #[test]
    fn alexnet_matches_published_counts() {
        let n = net(NetworkId::AlexNet);
        // torchvision AlexNet: 61.1M parameters, ~0.71 GMACs.
        let params = n.total_params();
        assert!((60_000_000..62_500_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((650_000_000..760_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn resnet18_matches_published_counts() {
        let n = net(NetworkId::ResNet18);
        let params = n.total_params();
        assert!((11_000_000..12_000_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((1_700_000_000..1_900_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn resnet50_matches_published_counts() {
        let n = net(NetworkId::ResNet50);
        let params = n.total_params();
        assert!((24_500_000..26_500_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((3_800_000_000..4_300_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn inception_v1_matches_published_counts() {
        let n = net(NetworkId::InceptionV1);
        let params = n.total_params();
        // GoogLeNet main branch: ~6.0M parameters, ~1.5 GMACs.
        assert!((5_500_000..7_200_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((1_350_000_000..1_700_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn recurrent_models_match_table1_footprints() {
        let rnn = net(NetworkId::Rnn);
        assert!((rnn.model_size_int8_mb() - 16.0).abs() < 0.5);
        let lstm = net(NetworkId::Lstm);
        assert!((lstm.model_size_int8_mb() - 12.3).abs() < 1.0);
    }

    #[test]
    fn recurrent_gops_match_table1() {
        // Table I: RNN 17 GOps, LSTM 13 GOps.
        let rnn = net(NetworkId::Rnn);
        assert!(
            (rnn.total_gops() - 17.0).abs() < 1.5,
            "{}",
            rnn.total_gops()
        );
        let lstm = net(NetworkId::Lstm);
        assert!(
            (lstm.total_gops() - 13.0).abs() < 1.5,
            "{}",
            lstm.total_gops()
        );
    }

    #[test]
    fn homogeneous_policy_sets_all_layers_to_8bit() {
        for id in NetworkId::ALL {
            let n = Network::build(id, BitwidthPolicy::Homogeneous8);
            assert!(n
                .layers
                .iter()
                .all(|l| l.act_bits == BitWidth::INT8 && l.weight_bits == BitWidth::INT8));
        }
    }

    #[test]
    fn heterogeneous_policy_follows_table1() {
        // Boundary layers 8-bit for the three smaller CNNs.
        for id in [
            NetworkId::AlexNet,
            NetworkId::InceptionV1,
            NetworkId::ResNet18,
        ] {
            let n = Network::build(id, BitwidthPolicy::Heterogeneous);
            let compute: Vec<&Layer> = n.compute_layers().collect();
            assert_eq!(compute.first().unwrap().weight_bits, BitWidth::INT8);
            assert_eq!(compute.last().unwrap().weight_bits, BitWidth::INT8);
            assert!(compute[1..compute.len() - 1]
                .iter()
                .all(|l| l.weight_bits == BitWidth::INT4));
        }
        // All layers 4-bit for ResNet-50, RNN, LSTM.
        for id in [NetworkId::ResNet50, NetworkId::Rnn, NetworkId::Lstm] {
            let n = Network::build(id, BitwidthPolicy::Heterogeneous);
            assert!(n.layers.iter().all(|l| l.weight_bits == BitWidth::INT4));
        }
    }

    #[test]
    fn inception_concatenation_arithmetic() -> Result<(), ModelQueryError> {
        // Module 3a must output 64+128+32+32 = 256 channels; spot-check via
        // the next module's input channels. The kind check propagates as a
        // ModelQueryError instead of aborting on a malformed lookup.
        let n = net(NetworkId::InceptionV1);
        let b1_3b = n.conv2d("3b.b1")?;
        if let LayerKind::Conv2d { in_channels, .. } = b1_3b.kind {
            assert_eq!(in_channels, 256);
        }
        Ok(())
    }

    #[test]
    fn layer_lookups_return_errors_not_aborts() {
        let n = net(NetworkId::InceptionV1);
        let err = n.layer("definitely-not-a-layer").unwrap_err();
        assert_eq!(
            err,
            ModelQueryError::NoSuchLayer {
                network: NetworkId::InceptionV1,
                name: "definitely-not-a-layer".to_string(),
            }
        );
        assert!(err.to_string().contains("no layer named"));
        let err = n.conv2d("missing").unwrap_err();
        assert!(matches!(err, ModelQueryError::NoSuchLayer { .. }));
        // A real layer of the wrong kind reports both kinds.
        let pool = n
            .layers
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Pool { .. }))
            .expect("inception has pooling layers");
        let err = n.conv2d(&pool.name).unwrap_err();
        assert_eq!(
            err,
            ModelQueryError::WrongKind {
                network: NetworkId::InceptionV1,
                name: pool.name.clone(),
                expected: "conv2d",
                found: "pool",
            }
        );
        assert!(err.to_string().contains("is pool, not conv2d"));
    }

    #[test]
    fn networks_are_nonempty_and_named_uniquely() {
        for id in NetworkId::ALL {
            let n = net(id);
            assert!(!n.layers.is_empty());
            let mut names: Vec<&str> = n.layers.iter().map(|l| l.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate layer names in {id}");
        }
    }

    #[test]
    fn display_is_informative() {
        let n = net(NetworkId::ResNet18);
        let s = n.to_string();
        assert!(s.contains("ResNet-18"));
        assert!(s.contains("GOps"));
    }
}
