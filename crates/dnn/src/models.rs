//! The six evaluated networks (paper Table I) with per-layer bitwidths.
//!
//! Architectures follow the canonical published definitions (AlexNet,
//! GoogLeNet/Inception-v1, ResNet-18/50, a 2-layer vanilla RNN and a 2-layer
//! LSTM sized to the paper's model footprints). The heterogeneous bitwidth
//! assignment follows Table I: first and last layers at 8-bit, everything
//! else at 4-bit for the CNNs (all layers 4-bit for ResNet-50 and the
//! recurrent models), per the quantization literature the paper cites
//! \[PACT, WRPN, QNN\].

use bpvec_core::BitWidth;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::layer::{Layer, LayerKind};
use crate::precision::{PrecisionError, PrecisionPolicy};

/// Identifies one of the paper's six benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkId {
    /// AlexNet (CNN, 224×224 input).
    AlexNet,
    /// Inception-v1 / GoogLeNet (CNN).
    InceptionV1,
    /// ResNet-18 (CNN).
    ResNet18,
    /// ResNet-50 (CNN).
    ResNet50,
    /// 2-layer vanilla RNN, hidden size 2048, sequence length 512.
    Rnn,
    /// 2-layer LSTM, hidden size 880, sequence length 512.
    Lstm,
    /// ViT-Base-class vision transformer: 16×16 patch embedding over a
    /// 224×224 image (196 tokens), 12 encoder blocks of hidden 768 with 12
    /// heads, classification head. Not part of the paper's Table I.
    VitBase,
    /// BERT-Base-class text transformer: 12 encoder blocks of hidden 768
    /// with 12 heads, default sequence length 128, pooler head. Not part of
    /// the paper's Table I.
    BertBase,
}

impl NetworkId {
    /// All six benchmarks in the paper's Table I order. The transformer
    /// presets ([`NetworkId::VitBase`], [`NetworkId::BertBase`]) are
    /// deliberately excluded: Table I figures and sweeps stay exactly the
    /// paper's set.
    pub const ALL: [NetworkId; 6] = [
        NetworkId::AlexNet,
        NetworkId::InceptionV1,
        NetworkId::ResNet18,
        NetworkId::ResNet50,
        NetworkId::Rnn,
        NetworkId::Lstm,
    ];

    /// The transformer presets, in model-zoo order.
    pub const TRANSFORMERS: [NetworkId; 2] = [NetworkId::VitBase, NetworkId::BertBase];

    /// The paper's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetworkId::AlexNet => "AlexNet",
            NetworkId::InceptionV1 => "Inception-v1",
            NetworkId::ResNet18 => "ResNet-18",
            NetworkId::ResNet50 => "ResNet-50",
            NetworkId::Rnn => "RNN",
            NetworkId::Lstm => "LSTM",
            NetworkId::VitBase => "ViT-Base",
            NetworkId::BertBase => "BERT-Base",
        }
    }

    /// True for the recurrent (bandwidth-bound) models.
    #[must_use]
    pub fn is_recurrent(self) -> bool {
        matches!(self, NetworkId::Rnn | NetworkId::Lstm)
    }

    /// True for the attention-based models.
    #[must_use]
    pub fn is_transformer(self) -> bool {
        matches!(self, NetworkId::VitBase | NetworkId::BertBase)
    }

    /// True when the model's cost depends on a sequence-length dimension
    /// (recurrent unroll length or transformer token count).
    #[must_use]
    pub fn has_sequence_dim(self) -> bool {
        self.is_recurrent() || self.is_transformer()
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How operand bitwidths are assigned to layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BitwidthPolicy {
    /// All layers 8-bit (the paper's "without bitwidth heterogeneity" mode).
    #[default]
    Homogeneous8,
    /// Table I assignment: boundary layers 8-bit, inner layers 4-bit for
    /// AlexNet/Inception-v1/ResNet-18; all layers 4-bit for ResNet-50, RNN
    /// and LSTM.
    Heterogeneous,
}

/// Error from interrogating a network's layers by name: the layer is
/// missing, or exists with a different kind than the caller expected.
/// Returned instead of panicking so malformed model lookups surface as
/// recoverable `Result`s to library users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelQueryError {
    /// No layer with the requested name exists in the network.
    NoSuchLayer {
        /// The network that was searched.
        network: NetworkId,
        /// The requested layer name.
        name: String,
    },
    /// The named layer exists but is not the expected kind.
    WrongKind {
        /// The network that was searched.
        network: NetworkId,
        /// The requested layer name.
        name: String,
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind the layer actually has.
        found: &'static str,
    },
}

impl fmt::Display for ModelQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelQueryError::NoSuchLayer { network, name } => {
                write!(f, "{network} has no layer named `{name}`")
            }
            ModelQueryError::WrongKind {
                network,
                name,
                expected,
                found,
            } => write!(f, "{network} layer `{name}` is {found}, not {expected}"),
        }
    }
}

impl std::error::Error for ModelQueryError {}

/// A benchmark network: an ordered list of bitwidth-annotated layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Which benchmark this is.
    pub id: NetworkId,
    /// The precision policy the layers were annotated with.
    pub policy: PrecisionPolicy,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Builds a benchmark network under a preset bitwidth policy (the
    /// paper's two named assignments). For uniform or per-layer policies
    /// use [`Network::build_precise`].
    #[must_use]
    pub fn build(id: NetworkId, policy: BitwidthPolicy) -> Self {
        Self::build_precise(id, &PrecisionPolicy::Preset(policy))
            .expect("preset policies apply to every network")
    }

    /// Builds a benchmark network under any [`PrecisionPolicy`].
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count.
    pub fn build_precise(id: NetworkId, policy: &PrecisionPolicy) -> Result<Self, PrecisionError> {
        Self::build_shaped(id, policy, None, None)
    }

    /// Builds a benchmark network under any [`PrecisionPolicy`], optionally
    /// overriding its sequence dimension.
    ///
    /// `seq_len` replaces the recurrent unroll length (RNN/LSTM) or the
    /// transformer token count (prefill shapes, `q_len == kv_len`).
    /// `decode_kv` instead builds a transformer *decode* step: one query
    /// token attending to a KV cache of that length (projections and FFN
    /// run for the single new token). Both are ignored by networks without
    /// a sequence dimension; `decode_kv` takes precedence over `seq_len`
    /// for transformers and is ignored by recurrent models.
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count.
    pub fn build_shaped(
        id: NetworkId,
        policy: &PrecisionPolicy,
        seq_len: Option<usize>,
        decode_kv: Option<usize>,
    ) -> Result<Self, PrecisionError> {
        let rec_seq = seq_len.unwrap_or(512);
        let mut layers = match id {
            NetworkId::AlexNet => alexnet(),
            NetworkId::InceptionV1 => inception_v1(),
            NetworkId::ResNet18 => resnet18(),
            NetworkId::ResNet50 => resnet50(),
            NetworkId::Rnn => rnn(rec_seq),
            NetworkId::Lstm => lstm(rec_seq),
            NetworkId::VitBase => vit_base(seq_len.unwrap_or(196), decode_kv),
            NetworkId::BertBase => bert_base(seq_len.unwrap_or(128), decode_kv),
        };
        policy.apply(id, &mut layers)?;
        Ok(Network {
            id,
            policy: policy.clone(),
            layers,
        })
    }

    /// Re-annotates this network's layers under `policy` in place.
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count; the
    /// network is left untouched on error.
    pub fn apply_precision(&mut self, policy: &PrecisionPolicy) -> Result<(), PrecisionError> {
        policy.apply(self.id, &mut self.layers)?;
        self.policy = policy.clone();
        Ok(())
    }

    /// Compute layers only (those with MACs).
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.is_compute())
    }

    /// Looks up a layer by name.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if no layer carries the
    /// name.
    pub fn layer(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layers
            .iter()
            .find(|l| l.name == name)
            .ok_or_else(|| ModelQueryError::NoSuchLayer {
                network: self.id,
                name: name.to_string(),
            })
    }

    /// Looks up a layer by name, checking it is a convolution.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not a `Conv2d`.
    pub fn conv2d(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layer_of_kind(name, "conv2d", |k| matches!(k, LayerKind::Conv2d { .. }))
    }

    /// Looks up a layer by name, checking it is an attention-score GEMM.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not a `MatMulQK`.
    pub fn matmul_qk(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layer_of_kind(name, "matmul-qk", |k| {
            matches!(k, LayerKind::MatMulQK { .. })
        })
    }

    /// Looks up a layer by name, checking it is an attention-value GEMM.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not an
    /// `AttentionV`.
    pub fn attention_v(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layer_of_kind(name, "attention-v", |k| {
            matches!(k, LayerKind::AttentionV { .. })
        })
    }

    /// Looks up a layer by name, checking it is a layer normalization.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not a `LayerNorm`.
    pub fn layer_norm(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layer_of_kind(name, "layer-norm", |k| {
            matches!(k, LayerKind::LayerNorm { .. })
        })
    }

    /// Looks up a layer by name, checking it is a softmax.
    ///
    /// # Errors
    ///
    /// Fails with [`ModelQueryError::NoSuchLayer`] if the name is unknown,
    /// or [`ModelQueryError::WrongKind`] if the layer is not a `Softmax`.
    pub fn softmax(&self, name: &str) -> Result<&Layer, ModelQueryError> {
        self.layer_of_kind(name, "softmax", |k| matches!(k, LayerKind::Softmax { .. }))
    }

    fn layer_of_kind(
        &self,
        name: &str,
        expected: &'static str,
        matches: impl Fn(&LayerKind) -> bool,
    ) -> Result<&Layer, ModelQueryError> {
        let layer = self.layer(name)?;
        if matches(&layer.kind) {
            Ok(layer)
        } else {
            Err(ModelQueryError::WrongKind {
                network: self.id,
                name: name.to_string(),
                expected,
                found: layer.kind.kind_name(),
            })
        }
    }

    /// Total multiply-accumulates per inference (batch 1).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total operations (each MAC = multiply + add), in Giga-ops.
    #[must_use]
    pub fn total_gops(&self) -> f64 {
        2.0 * self.total_macs() as f64 / 1e9
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Model size in megabytes at INT8 (Table I's "Model Size (INT8)").
    #[must_use]
    pub fn model_size_int8_mb(&self) -> f64 {
        self.total_params() as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1} MB INT8, {:.2} GOps)",
            self.id,
            self.layers.len(),
            self.model_size_int8_mb(),
            self.total_gops()
        )
    }
}

/// Table I's published figures, for EXPERIMENTS.md comparisons.
pub mod paper {
    /// (network, model size MB INT8, multiply-add GOps) as printed in
    /// Table I. Note the paper's "GOps" column is its own accounting; our
    /// per-inference numbers are recorded next to it in EXPERIMENTS.md.
    pub const TABLE1: [(&str, f64, f64); 6] = [
        ("AlexNet", 56.1, 2678.0),
        ("Inception-v1", 8.6, 1860.0),
        ("ResNet-18", 11.1, 4269.0),
        ("ResNet-50", 24.4, 8030.0),
        ("RNN", 16.0, 17.0),
        ("LSTM", 12.3, 13.0),
    ];
}

pub(crate) fn apply_policy(id: NetworkId, policy: BitwidthPolicy, layers: &mut [Layer]) {
    match policy {
        BitwidthPolicy::Homogeneous8 => {
            for l in layers.iter_mut() {
                l.act_bits = BitWidth::INT8;
                l.weight_bits = BitWidth::INT8;
            }
        }
        BitwidthPolicy::Heterogeneous => {
            let boundary_8bit = matches!(
                id,
                NetworkId::AlexNet | NetworkId::InceptionV1 | NetworkId::ResNet18
            );
            let compute_idx: Vec<usize> = layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_compute())
                .map(|(i, _)| i)
                .collect();
            let (first, last) = (compute_idx.first().copied(), compute_idx.last().copied());
            for (i, l) in layers.iter_mut().enumerate() {
                let is_boundary = Some(i) == first || Some(i) == last;
                let bits = if boundary_8bit && is_boundary {
                    BitWidth::INT8
                } else {
                    BitWidth::INT4
                };
                l.act_bits = bits;
                l.weight_bits = bits;
            }
        }
    }
}

fn conv(
    name: impl Into<String>,
    in_c: usize,
    out_c: usize,
    k: usize,
    s: usize,
    p: usize,
    hw: usize,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            in_channels: in_c,
            out_channels: out_c,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            input_hw: (hw, hw),
        },
    )
}

fn pool(name: impl Into<String>, c: usize, k: usize, s: usize, hw: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::Pool {
            channels: c,
            kernel: (k, k),
            stride: (s, s),
            input_hw: (hw, hw),
        },
    )
}

fn fc(name: impl Into<String>, in_f: usize, out_f: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::FullyConnected {
            in_features: in_f,
            out_features: out_f,
        },
    )
}

fn alexnet() -> Vec<Layer> {
    vec![
        conv("conv1", 3, 64, 11, 4, 2, 224),
        pool("pool1", 64, 3, 2, 55),
        conv("conv2", 64, 192, 5, 1, 2, 27),
        pool("pool2", 192, 3, 2, 27),
        conv("conv3", 192, 384, 3, 1, 1, 13),
        conv("conv4", 384, 256, 3, 1, 1, 13),
        conv("conv5", 256, 256, 3, 1, 1, 13),
        pool("pool5", 256, 3, 2, 13),
        fc("fc6", 256 * 6 * 6, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    ]
}

fn resnet18() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("maxpool", 64, 3, 2, 112),
    ];
    // (stage, blocks, channels, input hw); first block of stages 2-4
    // downsamples with stride 2 and a 1x1 projection shortcut.
    let stages = [
        (1, 2, 64, 56),
        (2, 2, 128, 56),
        (3, 2, 256, 28),
        (4, 2, 512, 14),
    ];
    let mut in_c = 64;
    for (stage, blocks, c, mut hw) in stages {
        for b in 0..blocks {
            let downsample = stage > 1 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            let prefix = format!("layer{stage}.{b}");
            layers.push(conv(format!("{prefix}.conv1"), in_c, c, 3, stride, 1, hw));
            if downsample {
                layers.push(conv(format!("{prefix}.downsample"), in_c, c, 1, 2, 0, hw));
                hw /= 2;
            }
            layers.push(conv(format!("{prefix}.conv2"), c, c, 3, 1, 1, hw));
            in_c = c;
        }
    }
    layers.push(pool("avgpool", 512, 7, 7, 7));
    layers.push(fc("fc", 512, 1000));
    layers
}

fn resnet50() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("maxpool", 64, 3, 2, 112),
    ];
    // Bottleneck stages: (stage, blocks, mid channels, out channels, hw in).
    let stages = [
        (1, 3, 64, 256, 56),
        (2, 4, 128, 512, 56),
        (3, 6, 256, 1024, 28),
        (4, 3, 512, 2048, 14),
    ];
    let mut in_c = 64;
    for (stage, blocks, mid, out, mut hw) in stages {
        for b in 0..blocks {
            let downsample = b == 0;
            let stride = if stage > 1 && b == 0 { 2 } else { 1 };
            let prefix = format!("layer{stage}.{b}");
            layers.push(conv(format!("{prefix}.conv1"), in_c, mid, 1, 1, 0, hw));
            layers.push(conv(format!("{prefix}.conv2"), mid, mid, 3, stride, 1, hw));
            if downsample {
                layers.push(conv(
                    format!("{prefix}.downsample"),
                    in_c,
                    out,
                    1,
                    stride,
                    0,
                    hw,
                ));
            }
            if stride == 2 {
                hw /= 2;
            }
            layers.push(conv(format!("{prefix}.conv3"), mid, out, 1, 1, 0, hw));
            in_c = out;
        }
    }
    layers.push(pool("avgpool", 2048, 7, 7, 7));
    layers.push(fc("fc", 2048, 1000));
    layers
}

/// One GoogLeNet inception module: four parallel branches
/// (1×1, 1×1→3×3, 1×1→5×5, pool→1×1) concatenated channel-wise.
#[allow(clippy::too_many_arguments)]
fn inception_module(
    layers: &mut Vec<Layer>,
    name: &str,
    in_c: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    cp: usize,
    hw: usize,
) -> usize {
    layers.push(conv(format!("{name}.b1"), in_c, c1, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b2r"), in_c, c3r, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b2"), c3r, c3, 3, 1, 1, hw));
    layers.push(conv(format!("{name}.b3r"), in_c, c5r, 1, 1, 0, hw));
    layers.push(conv(format!("{name}.b3"), c5r, c5, 5, 1, 2, hw));
    layers.push(conv(format!("{name}.b4"), in_c, cp, 1, 1, 0, hw));
    c1 + c3 + c5 + cp
}

fn inception_v1() -> Vec<Layer> {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 2, 3, 224),
        pool("pool1", 64, 3, 2, 112),
        conv("conv2r", 64, 64, 1, 1, 0, 56),
        conv("conv2", 64, 192, 3, 1, 1, 56),
        pool("pool2", 192, 3, 2, 56),
    ];
    let mut c = 192;
    c = inception_module(&mut layers, "3a", c, 64, 96, 128, 16, 32, 32, 28);
    c = inception_module(&mut layers, "3b", c, 128, 128, 192, 32, 96, 64, 28);
    layers.push(pool("pool3", c, 3, 2, 28));
    c = inception_module(&mut layers, "4a", c, 192, 96, 208, 16, 48, 64, 14);
    c = inception_module(&mut layers, "4b", c, 160, 112, 224, 24, 64, 64, 14);
    c = inception_module(&mut layers, "4c", c, 128, 128, 256, 24, 64, 64, 14);
    c = inception_module(&mut layers, "4d", c, 112, 144, 288, 32, 64, 64, 14);
    c = inception_module(&mut layers, "4e", c, 256, 160, 320, 32, 128, 128, 14);
    layers.push(pool("pool4", c, 3, 2, 14));
    c = inception_module(&mut layers, "5a", c, 256, 160, 320, 32, 128, 128, 7);
    c = inception_module(&mut layers, "5b", c, 384, 192, 384, 48, 128, 128, 7);
    layers.push(pool("avgpool", c, 7, 7, 7));
    layers.push(fc("fc", c, 1000));
    layers
}

fn rnn(seq_len: usize) -> Vec<Layer> {
    // A 2-layer vanilla RNN sized to Table I: 2 x (2048x2048 + 2048x2048)
    // weights = 16.8M parameters = 16 MB INT8, unrolled over 512 timesteps
    // by default.
    (0..2)
        .map(|i| {
            Layer::new(
                format!("rnn{i}"),
                LayerKind::Recurrent {
                    input_size: 2048,
                    hidden_size: 2048,
                    gates: 1,
                    seq_len,
                },
            )
        })
        .collect()
}

fn lstm(seq_len: usize) -> Vec<Layer> {
    // A 2-layer LSTM sized to Table I: 2 x 4 x 880 x 1760 = 12.4M parameters
    // = 11.8 MB INT8, unrolled over 512 timesteps by default.
    (0..2)
        .map(|i| {
            Layer::new(
                format!("lstm{i}"),
                LayerKind::Recurrent {
                    input_size: 880,
                    hidden_size: 880,
                    gates: 4,
                    seq_len,
                },
            )
        })
        .collect()
}

/// Appends one pre-LN transformer encoder block to `layers`:
/// LN → QKV projection → QK^T → softmax → attention·V → output projection
/// → LN → FFN up (4×) → GELU → FFN down. Projections are 1×1 convolutions
/// over a `(q_len, 1)` "image" — exactly one GEMM per token, reusing the
/// conv tiling, lowering and packed-execution paths unchanged.
///
/// Prefill blocks have `q_len == kv_len`; a decode step has `q_len == 1`
/// with `kv_len` the KV-cache length (projections and FFN then run for the
/// single new token while the attention GEMMs span the whole cache).
///
/// # Panics
///
/// Panics unless `heads` divides `hidden` and all dimensions are non-zero.
pub fn transformer_block(
    layers: &mut Vec<Layer>,
    prefix: &str,
    hidden: usize,
    heads: usize,
    q_len: usize,
    kv_len: usize,
) {
    assert!(hidden > 0 && heads > 0 && q_len > 0 && kv_len > 0);
    assert_eq!(hidden % heads, 0, "heads must divide hidden");
    let head_dim = hidden / heads;
    let ffn = 4 * hidden;
    let proj = |name: String, in_c: usize, out_c: usize| {
        Layer::new(
            name,
            LayerKind::Conv2d {
                in_channels: in_c,
                out_channels: out_c,
                kernel: (1, 1),
                stride: (1, 1),
                padding: (0, 0),
                input_hw: (q_len, 1),
            },
        )
    };
    layers.push(Layer::new(
        format!("{prefix}.ln1"),
        LayerKind::LayerNorm {
            features: hidden,
            tokens: q_len,
        },
    ));
    layers.push(proj(format!("{prefix}.qkv"), hidden, 3 * hidden));
    layers.push(Layer::new(
        format!("{prefix}.qk"),
        LayerKind::MatMulQK {
            heads,
            q_len,
            kv_len,
            head_dim,
        },
    ));
    layers.push(Layer::new(
        format!("{prefix}.softmax"),
        LayerKind::Softmax {
            rows: heads * q_len,
            cols: kv_len,
        },
    ));
    layers.push(Layer::new(
        format!("{prefix}.av"),
        LayerKind::AttentionV {
            heads,
            q_len,
            kv_len,
            head_dim,
        },
    ));
    layers.push(proj(format!("{prefix}.proj"), hidden, hidden));
    layers.push(Layer::new(
        format!("{prefix}.ln2"),
        LayerKind::LayerNorm {
            features: hidden,
            tokens: q_len,
        },
    ));
    layers.push(proj(format!("{prefix}.ffn1"), hidden, ffn));
    layers.push(Layer::new(
        format!("{prefix}.gelu"),
        LayerKind::Gelu { elems: q_len * ffn },
    ));
    layers.push(proj(format!("{prefix}.ffn2"), ffn, hidden));
}

/// Stacks `blocks` transformer blocks; decode shapes (when `decode_kv` is
/// set) use one query token against a `decode_kv`-long KV cache.
fn transformer_stack(
    layers: &mut Vec<Layer>,
    blocks: usize,
    hidden: usize,
    heads: usize,
    seq_len: usize,
    decode_kv: Option<usize>,
) {
    let (q_len, kv_len) = match decode_kv {
        Some(kv) => (1, kv),
        None => (seq_len, seq_len),
    };
    for b in 0..blocks {
        transformer_block(layers, &format!("block{b}"), hidden, heads, q_len, kv_len);
    }
}

fn vit_base(seq_len: usize, decode_kv: Option<usize>) -> Vec<Layer> {
    // ViT-Base/16: 224x224 image -> 14x14 = 196 patch tokens of hidden 768,
    // 12 encoder blocks with 12 heads, linear classification head. The
    // patch embedding is a 16x16/16 convolution (one GEMM per token).
    let mut layers = vec![conv("patch_embed", 3, 768, 16, 16, 0, 224)];
    transformer_stack(&mut layers, 12, 768, 12, seq_len, decode_kv);
    layers.push(fc("head", 768, 1000));
    layers
}

fn bert_base(seq_len: usize, decode_kv: Option<usize>) -> Vec<Layer> {
    // BERT-Base: 12 encoder blocks of hidden 768 with 12 heads over a
    // 128-token default sequence, pooler head. (The embedding lookup moves
    // bytes but multiplies nothing, so it is not modeled as a layer.)
    let mut layers = Vec::new();
    transformer_stack(&mut layers, 12, 768, 12, seq_len, decode_kv);
    layers.push(fc("pooler", 768, 768));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(id: NetworkId) -> Network {
        Network::build(id, BitwidthPolicy::Homogeneous8)
    }

    #[test]
    fn alexnet_matches_published_counts() {
        let n = net(NetworkId::AlexNet);
        // torchvision AlexNet: 61.1M parameters, ~0.71 GMACs.
        let params = n.total_params();
        assert!((60_000_000..62_500_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((650_000_000..760_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn resnet18_matches_published_counts() {
        let n = net(NetworkId::ResNet18);
        let params = n.total_params();
        assert!((11_000_000..12_000_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((1_700_000_000..1_900_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn resnet50_matches_published_counts() {
        let n = net(NetworkId::ResNet50);
        let params = n.total_params();
        assert!((24_500_000..26_500_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((3_800_000_000..4_300_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn inception_v1_matches_published_counts() {
        let n = net(NetworkId::InceptionV1);
        let params = n.total_params();
        // GoogLeNet main branch: ~6.0M parameters, ~1.5 GMACs.
        assert!((5_500_000..7_200_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((1_350_000_000..1_700_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn recurrent_models_match_table1_footprints() {
        let rnn = net(NetworkId::Rnn);
        assert!((rnn.model_size_int8_mb() - 16.0).abs() < 0.5);
        let lstm = net(NetworkId::Lstm);
        assert!((lstm.model_size_int8_mb() - 12.3).abs() < 1.0);
    }

    #[test]
    fn recurrent_gops_match_table1() {
        // Table I: RNN 17 GOps, LSTM 13 GOps.
        let rnn = net(NetworkId::Rnn);
        assert!(
            (rnn.total_gops() - 17.0).abs() < 1.5,
            "{}",
            rnn.total_gops()
        );
        let lstm = net(NetworkId::Lstm);
        assert!(
            (lstm.total_gops() - 13.0).abs() < 1.5,
            "{}",
            lstm.total_gops()
        );
    }

    #[test]
    fn homogeneous_policy_sets_all_layers_to_8bit() {
        for id in NetworkId::ALL {
            let n = Network::build(id, BitwidthPolicy::Homogeneous8);
            assert!(n
                .layers
                .iter()
                .all(|l| l.act_bits == BitWidth::INT8 && l.weight_bits == BitWidth::INT8));
        }
    }

    #[test]
    fn heterogeneous_policy_follows_table1() {
        // Boundary layers 8-bit for the three smaller CNNs.
        for id in [
            NetworkId::AlexNet,
            NetworkId::InceptionV1,
            NetworkId::ResNet18,
        ] {
            let n = Network::build(id, BitwidthPolicy::Heterogeneous);
            let compute: Vec<&Layer> = n.compute_layers().collect();
            assert_eq!(compute.first().unwrap().weight_bits, BitWidth::INT8);
            assert_eq!(compute.last().unwrap().weight_bits, BitWidth::INT8);
            assert!(compute[1..compute.len() - 1]
                .iter()
                .all(|l| l.weight_bits == BitWidth::INT4));
        }
        // All layers 4-bit for ResNet-50, RNN, LSTM.
        for id in [NetworkId::ResNet50, NetworkId::Rnn, NetworkId::Lstm] {
            let n = Network::build(id, BitwidthPolicy::Heterogeneous);
            assert!(n.layers.iter().all(|l| l.weight_bits == BitWidth::INT4));
        }
    }

    #[test]
    fn inception_concatenation_arithmetic() -> Result<(), ModelQueryError> {
        // Module 3a must output 64+128+32+32 = 256 channels; spot-check via
        // the next module's input channels. The kind check propagates as a
        // ModelQueryError instead of aborting on a malformed lookup.
        let n = net(NetworkId::InceptionV1);
        let b1_3b = n.conv2d("3b.b1")?;
        if let LayerKind::Conv2d { in_channels, .. } = b1_3b.kind {
            assert_eq!(in_channels, 256);
        }
        Ok(())
    }

    #[test]
    fn layer_lookups_return_errors_not_aborts() {
        let n = net(NetworkId::InceptionV1);
        let err = n.layer("definitely-not-a-layer").unwrap_err();
        assert_eq!(
            err,
            ModelQueryError::NoSuchLayer {
                network: NetworkId::InceptionV1,
                name: "definitely-not-a-layer".to_string(),
            }
        );
        assert!(err.to_string().contains("no layer named"));
        let err = n.conv2d("missing").unwrap_err();
        assert!(matches!(err, ModelQueryError::NoSuchLayer { .. }));
        // A real layer of the wrong kind reports both kinds.
        let pool = n
            .layers
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Pool { .. }))
            .expect("inception has pooling layers");
        let err = n.conv2d(&pool.name).unwrap_err();
        assert_eq!(
            err,
            ModelQueryError::WrongKind {
                network: NetworkId::InceptionV1,
                name: pool.name.clone(),
                expected: "conv2d",
                found: "pool",
            }
        );
        assert!(err.to_string().contains("is pool, not conv2d"));
    }

    #[test]
    fn networks_are_nonempty_and_named_uniquely() {
        for id in NetworkId::ALL {
            let n = net(id);
            assert!(!n.layers.is_empty());
            let mut names: Vec<&str> = n.layers.iter().map(|l| l.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate layer names in {id}");
        }
    }

    #[test]
    fn display_is_informative() {
        let n = net(NetworkId::ResNet18);
        let s = n.to_string();
        assert!(s.contains("ResNet-18"));
        assert!(s.contains("GOps"));
    }

    #[test]
    fn transformer_ids_stay_out_of_table1() {
        assert_eq!(NetworkId::ALL.len(), 6);
        for id in NetworkId::TRANSFORMERS {
            assert!(!NetworkId::ALL.contains(&id));
            assert!(id.is_transformer());
            assert!(id.has_sequence_dim());
            assert!(!id.is_recurrent());
        }
        assert!(NetworkId::Rnn.has_sequence_dim());
        assert!(!NetworkId::AlexNet.has_sequence_dim());
    }

    #[test]
    fn vit_base_matches_published_counts() {
        let n = net(NetworkId::VitBase);
        // ViT-Base: ~86M parameters (we model weights only, no embeddings'
        // positional table), ~16-17 GMACs at 196 tokens.
        let params = n.total_params();
        assert!((84_000_000..88_000_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((15_000_000_000..18_500_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn bert_base_matches_published_counts() {
        let n = net(NetworkId::BertBase);
        // BERT-Base encoder stack: ~85M weight parameters (embeddings are
        // lookups, not GEMMs), ~11 GMACs at 128 tokens.
        let params = n.total_params();
        assert!((84_000_000..87_000_000).contains(&params), "{params}");
        let macs = n.total_macs();
        assert!((10_000_000_000..12_500_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn transformer_block_composer_emits_the_canonical_ten_layers() {
        let mut layers = Vec::new();
        transformer_block(&mut layers, "b", 768, 12, 128, 128);
        let kinds: Vec<&str> = layers.iter().map(|l| l.kind.kind_name()).collect();
        assert_eq!(
            kinds,
            [
                "layer-norm",
                "conv2d",
                "matmul-qk",
                "softmax",
                "attention-v",
                "conv2d",
                "layer-norm",
                "conv2d",
                "gelu",
                "conv2d",
            ]
        );
        // Attention GEMM MACs: heads * q * kv * head_dim, twice.
        let attn_macs: u64 = layers
            .iter()
            .filter(|l| {
                matches!(
                    l.kind,
                    LayerKind::MatMulQK { .. } | LayerKind::AttentionV { .. }
                )
            })
            .map(Layer::macs)
            .sum();
        assert_eq!(attn_macs, 2 * 12 * 128 * 128 * 64);
    }

    #[test]
    fn decode_shapes_use_one_query_token() {
        let policy = PrecisionPolicy::homogeneous8();
        let prefill = Network::build_shaped(NetworkId::BertBase, &policy, Some(128), None).unwrap();
        let decode = Network::build_shaped(NetworkId::BertBase, &policy, None, Some(128)).unwrap();
        assert_eq!(prefill.layers.len(), decode.layers.len());
        let qk = decode.matmul_qk("block0.qk").unwrap();
        if let LayerKind::MatMulQK { q_len, kv_len, .. } = qk.kind {
            assert_eq!(q_len, 1);
            assert_eq!(kv_len, 128);
        }
        // Decode FFN runs for one token: far fewer MACs than prefill.
        assert!(decode.total_macs() * 32 < prefill.total_macs());
        // Decode cost grows with KV length.
        let longer = Network::build_shaped(NetworkId::BertBase, &policy, None, Some(1024)).unwrap();
        assert!(longer.total_macs() > decode.total_macs());
    }

    #[test]
    fn seq_len_override_rescales_transformers_and_recurrent_models() {
        let policy = PrecisionPolicy::homogeneous8();
        let short = Network::build_shaped(NetworkId::BertBase, &policy, Some(64), None).unwrap();
        let long = Network::build_shaped(NetworkId::BertBase, &policy, Some(256), None).unwrap();
        assert!(long.total_macs() > 3 * short.total_macs());
        let rnn_short = Network::build_shaped(NetworkId::Rnn, &policy, Some(128), None).unwrap();
        let rnn_default = Network::build_precise(NetworkId::Rnn, &policy).unwrap();
        assert_eq!(rnn_default.total_macs(), 4 * rnn_short.total_macs());
        // CNNs ignore the override entirely.
        let cnn = Network::build_shaped(NetworkId::AlexNet, &policy, Some(64), None).unwrap();
        assert_eq!(
            cnn,
            Network::build_precise(NetworkId::AlexNet, &policy).unwrap()
        );
    }

    #[test]
    fn typed_transformer_lookups_return_errors_not_aborts() {
        let n = net(NetworkId::BertBase);
        assert!(n.matmul_qk("block0.qk").is_ok());
        assert!(n.attention_v("block0.av").is_ok());
        assert!(n.layer_norm("block0.ln1").is_ok());
        assert!(n.softmax("block0.softmax").is_ok());
        let err = n.matmul_qk("block0.av").unwrap_err();
        assert_eq!(
            err,
            ModelQueryError::WrongKind {
                network: NetworkId::BertBase,
                name: "block0.av".to_string(),
                expected: "matmul-qk",
                found: "attention-v",
            }
        );
        assert!(matches!(
            n.softmax("nope").unwrap_err(),
            ModelQueryError::NoSuchLayer { .. }
        ));
    }

    #[test]
    fn heterogeneous_preset_covers_transformers() {
        for id in NetworkId::TRANSFORMERS {
            let n = Network::build(id, BitwidthPolicy::Heterogeneous);
            // Transformers fall in the "all 4-bit" class, like ResNet-50.
            assert!(n.layers.iter().all(|l| l.weight_bits == BitWidth::INT4));
        }
    }
}
