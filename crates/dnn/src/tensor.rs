//! A minimal integer tensor for quantized inference.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `i32` elements (quantized values are stored
/// widened to `i32`; their declared bitwidth lives in the layer metadata).
///
/// ```
/// use bpvec_dnn::Tensor;
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as i32);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t[&[1, 2]], 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<i32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension product overflow (more than
    /// `usize::MAX` elements).
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    #[must_use]
    pub fn from_data(shape: &[usize], data: Vec<i32>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a tensor by evaluating `f` at every index.
    #[must_use]
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> i32) -> Self {
        let len: usize = shape.iter().product();
        let mut idx = vec![0usize; shape.len()];
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f(&idx));
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data slice (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Converts a multi-dimensional index to the flat offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    #[must_use]
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} (size {s})");
            off = off * s + i;
        }
        off
    }

    /// Reshapes in place (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&mut self, shape: &[usize]) {
        let expect: usize = shape.iter().product();
        assert_eq!(expect, self.data.len(), "reshape changes element count");
        self.shape = shape.to_vec();
    }

    /// Maximum absolute value (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> i32 {
        self.data.iter().map(|v| v.abs()).max().unwrap_or(0)
    }

    /// Packs this tensor's rows (dim 0 × flattened rest) into bit planes —
    /// see [`crate::packing::pack_gemm_rows`].
    ///
    /// # Errors
    ///
    /// Returns [`bpvec_core::CoreError::ValueOutOfRange`] if an element does
    /// not fit the declared width.
    pub fn pack_rows(
        &self,
        bits: bpvec_core::BitWidth,
        slice_width: bpvec_core::SliceWidth,
        signedness: bpvec_core::Signedness,
    ) -> Result<bpvec_core::PackedSliceMatrix, bpvec_core::CoreError> {
        crate::packing::pack_gemm_rows(self, bits, slice_width, signedness)
    }

    /// Packs this `[k, n]` matrix's columns into bit planes — see
    /// [`crate::packing::pack_gemm_cols`].
    ///
    /// # Errors
    ///
    /// Returns [`bpvec_core::CoreError::ValueOutOfRange`] if an element does
    /// not fit the declared width.
    pub fn pack_cols(
        &self,
        bits: bpvec_core::BitWidth,
        slice_width: bpvec_core::SliceWidth,
        signedness: bpvec_core::Signedness,
    ) -> Result<bpvec_core::PackedSliceMatrix, bpvec_core::CoreError> {
        crate::packing::pack_gemm_cols(self, bits, slice_width, signedness)
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = i32;

    fn index(&self, index: &[usize]) -> &i32 {
        &self.data[self.offset(index)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut i32 {
        let off = self.offset(index);
        &mut self.data[off]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[{} elements]", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
        assert!(t.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 2], |i| (i[0] * 10 + i[1]) as i32);
        assert_eq!(t.as_slice(), &[0, 1, 10, 11]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[3, 4, 5]);
        t[&[2, 3, 4]] = 42;
        assert_eq!(t[&[2, 3, 4]], 42);
        assert_eq!(t.offset(&[2, 3, 4]), t.len() - 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[2, 0]];
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_data_length_mismatch_panics() {
        let _ = Tensor::from_data(&[2, 2], vec![1, 2, 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_data(&[2, 3], vec![1, 2, 3, 4, 5, 6]);
        t.reshape(&[3, 2]);
        assert_eq!(t[&[2, 1]], 6);
    }

    #[test]
    fn max_abs_handles_negatives_and_empty() {
        let t = Tensor::from_data(&[3], vec![-7, 3, 5]);
        assert_eq!(t.max_abs(), 7);
        assert_eq!(Tensor::zeros(&[0]).max_abs(), 0);
    }
}
