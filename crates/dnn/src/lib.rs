//! # `bpvec-dnn` — quantized DNN workloads and reference inference
//!
//! The paper evaluates six deep networks (Table I): AlexNet, Inception-v1,
//! ResNet-18, ResNet-50, an RNN and an LSTM. This crate provides:
//!
//! * [`tensor`] — a small integer tensor type (quantized inference operates
//!   on integers end-to-end);
//! * [`quant`] — symmetric linear quantization to arbitrary bitwidths
//!   (1..=8), the transformation that produces the heterogeneous-bitwidth
//!   workloads of Table I;
//! * [`packing`] — the bit-packed memory format the footprint/traffic
//!   accounting assumes (four 2-bit weights per byte, etc.);
//! * [`layer`] — layer descriptors (convolution, fully-connected, pooling,
//!   recurrent cells) exposing the shape arithmetic every experiment needs:
//!   multiply-accumulate counts, parameter/activation footprints;
//! * [`models`] — faithful architecture descriptions of the six networks
//!   with the paper's per-layer bitwidth assignments;
//! * [`precision`] — [`PrecisionPolicy`]: per-layer precision as a
//!   first-class dimension (presets, uniform `(bx, bw)` policies, explicit
//!   per-layer assignments, and the sweep generator behind precision
//!   experiments);
//! * [`reference`](mod@crate::reference) — exact integer reference implementations (conv2d, GEMM,
//!   recurrent cells) used to validate the CVU functional model end-to-end.
//!
//! Trained weights are not required: performance and energy depend only on
//! layer shapes, bitwidths and data volumes (see DESIGN.md §2), and
//! correctness is established against exact integer arithmetic with
//! synthetic weights.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod layer;
pub mod models;
pub mod packing;
pub mod precision;
pub mod quant;
pub mod reference;
pub mod tensor;

pub use layer::{Layer, LayerKind};
pub use models::{transformer_block, BitwidthPolicy, ModelQueryError, Network, NetworkId};
pub use packing::PackedTensor;
pub use precision::{
    DegradationLadder, LadderError, LayerPrecision, PrecisionError, PrecisionPolicy,
};
pub use quant::QuantParams;
pub use tensor::Tensor;
