//! Exact integer reference implementations of the DNN kernels.
//!
//! These are the ground truth the CVU functional model and the systolic
//! simulator are validated against: plain nested-loop convolution, GEMM /
//! GEMV and recurrent cells over `i32` tensors with `i64` accumulation,
//! plus the fixed-point requantization that closes the loop between layers.

use bpvec_core::{BitWidth, Signedness};

use crate::tensor::Tensor;

/// 2-D convolution: `input` NCHW `[c_in, h, w]` (batch folded out),
/// `weights` OIHW `[c_out, c_in, kh, kw]`, zero padding, i64 accumulation
/// narrowed to `i32` (safe for quantized operand ranges).
///
/// # Panics
///
/// Panics if tensor ranks/channel counts disagree.
#[must_use]
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Tensor {
    let ish = input.shape();
    let wsh = weights.shape();
    assert_eq!(ish.len(), 3, "input must be [c, h, w]");
    assert_eq!(wsh.len(), 4, "weights must be [o, i, kh, kw]");
    assert_eq!(ish[0], wsh[1], "channel mismatch");
    let (c_in, h, w) = (ish[0], ish[1], ish[2]);
    let (c_out, _, kh, kw) = (wsh[0], wsh[1], wsh[2], wsh[3]);
    let oh = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let ow = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let mut out = Tensor::zeros(&[c_out, oh, ow]);
    for oc in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0i64;
                for ic in 0..c_in {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            let xv = input[&[ic, iy as usize, ix as usize]] as i64;
                            let wv = weights[&[oc, ic, ky, kx]] as i64;
                            acc += xv * wv;
                        }
                    }
                }
                out[&[oc, oy, ox]] = i32::try_from(acc).expect("accumulator fits i32");
            }
        }
    }
    out
}

/// Matrix-vector product: `weights` `[out, in] · x[in] -> [out]` with i64
/// accumulation.
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn gemv(weights: &Tensor, x: &Tensor) -> Tensor {
    let wsh = weights.shape();
    assert_eq!(wsh.len(), 2, "weights must be [out, in]");
    assert_eq!(x.len(), wsh[1], "input length mismatch");
    let (out_f, in_f) = (wsh[0], wsh[1]);
    let mut out = Tensor::zeros(&[out_f]);
    for o in 0..out_f {
        let row = &weights.as_slice()[o * in_f..(o + 1) * in_f];
        let acc: i64 = row
            .iter()
            .zip(x.as_slice())
            .map(|(&a, &b)| (a as i64) * (b as i64))
            .sum();
        out.as_mut_slice()[o] = i32::try_from(acc).expect("accumulator fits i32");
    }
    out
}

/// Matrix-matrix product `a[m,k] · b[k,n] -> [m,n]` with i64 accumulation.
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn gemm(a: &Tensor, b: &Tensor) -> Tensor {
    let (ash, bsh) = (a.shape(), b.shape());
    assert_eq!(ash.len(), 2);
    assert_eq!(bsh.len(), 2);
    assert_eq!(ash[1], bsh[0], "inner dimension mismatch");
    let (m, k, n) = (ash[0], ash[1], bsh[1]);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc += (a[&[i, p]] as i64) * (b[&[p, j]] as i64);
            }
            out[&[i, j]] = i32::try_from(acc).expect("accumulator fits i32");
        }
    }
    out
}

/// ReLU over a quantized tensor.
#[must_use]
pub fn relu(t: &Tensor) -> Tensor {
    Tensor::from_data(t.shape(), t.as_slice().iter().map(|&v| v.max(0)).collect())
}

/// 2-D max pooling over `[c, h, w]`.
///
/// # Panics
///
/// Panics if the input is not rank 3.
#[must_use]
pub fn maxpool2d(input: &Tensor, kernel: (usize, usize), stride: (usize, usize)) -> Tensor {
    let ish = input.shape();
    assert_eq!(ish.len(), 3, "input must be [c, h, w]");
    let (c, h, w) = (ish[0], ish[1], ish[2]);
    let oh = (h - kernel.0) / stride.0 + 1;
    let ow = (w - kernel.1) / stride.1 + 1;
    let mut out = Tensor::zeros(&[c, oh, ow]);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i32::MIN;
                for ky in 0..kernel.0 {
                    for kx in 0..kernel.1 {
                        best = best.max(input[&[ch, oy * stride.0 + ky, ox * stride.1 + kx]]);
                    }
                }
                out[&[ch, oy, ox]] = best;
            }
        }
    }
    out
}

/// Requantizes a wide accumulator tensor back to `bits` by a power-of-two
/// right shift with round-half-away rounding and clamping — the fixed-point
/// scaling step between quantized layers.
#[must_use]
pub fn requantize(t: &Tensor, shift: u32, bits: BitWidth, signedness: Signedness) -> Tensor {
    let (lo, hi) = bits.range(signedness);
    let half = if shift == 0 {
        0i64
    } else {
        1i64 << (shift - 1)
    };
    Tensor::from_data(
        t.shape(),
        t.as_slice()
            .iter()
            .map(|&v| {
                let v = v as i64;
                let rounded = if v >= 0 { v + half } else { v - half } >> shift;
                rounded.clamp(lo as i64, hi as i64) as i32
            })
            .collect(),
    )
}

/// Fixed-point weight resolution of the softmax exponentials: each score
/// `d` below the row maximum weighs `2^20 >> d` (a base-2 "exponential"
/// that is exactly reproducible in integer arithmetic).
const SOFTMAX_ONE: i64 = 1 << 20;

/// Integer square root (floor), portable across toolchains.
fn isqrt_u64(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// Division with round-half-away-from-zero, `d > 0`.
fn div_round(n: i64, d: i64) -> i64 {
    debug_assert!(d > 0);
    if n >= 0 {
        (n + d / 2) / d
    } else {
        -((-n + d / 2) / d)
    }
}

/// Row-wise fixed-point softmax over a `[rows, cols]` score matrix.
///
/// Each output row holds unsigned probabilities that sum **exactly** to the
/// fixed-point one `1 << (bits - 1)` (the unit the downstream attention·V
/// GEMM consumes its probability operand at): per-row base-2 exponential
/// weights `2^20 >> (max − x)` are normalized by largest-remainder
/// apportionment, so no row ever gains or loses probability mass to
/// rounding. Deterministic, exactly reproducible on any platform.
///
/// # Panics
///
/// Panics if `scores` is not rank 2 or a row is empty.
#[must_use]
pub fn softmax_fixed(scores: &Tensor, bits: BitWidth) -> Tensor {
    let sh = scores.shape();
    assert_eq!(sh.len(), 2, "scores must be [rows, cols]");
    let (rows, cols) = (sh[0], sh[1]);
    assert!(cols > 0, "softmax over an empty row");
    let unit = 1i64 << (bits.bits() - 1);
    let mut out = Tensor::zeros(&[rows, cols]);
    let mut weights = vec![0i64; cols];
    for r in 0..rows {
        let row = &scores.as_slice()[r * cols..(r + 1) * cols];
        let m = i64::from(*row.iter().max().expect("non-empty row"));
        for (w, &x) in weights.iter_mut().zip(row) {
            let d = m - i64::from(x);
            *w = if d >= 63 { 0 } else { SOFTMAX_ONE >> d };
        }
        let total: i64 = weights.iter().sum();
        // Largest-remainder apportionment of `unit` across the weights:
        // floor quotients first, then the leftover units go to the largest
        // remainders (ties to the lower index), making the row sum exact.
        let out_row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        let mut assigned = 0i64;
        let mut remainders: Vec<(i64, usize)> = Vec::with_capacity(cols);
        for (j, &w) in weights.iter().enumerate() {
            let q = unit * w / total;
            assigned += q;
            out_row[j] = i32::try_from(q).expect("quotient fits i32");
            remainders.push((unit * w % total, j));
        }
        remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, j) in remainders
            .iter()
            .take(usize::try_from(unit - assigned).expect("deficit is small and non-negative"))
        {
            out_row[j] += 1;
        }
    }
    out
}

/// Fixed-point layer normalization over the leading (feature) axis.
///
/// The input is interpreted as `[features, tokens]` (higher ranks collapse
/// their trailing dims into tokens — the executor's channel-major
/// `[features, seq, 1]` layout normalizes per token without reshaping).
/// Per token: the mean uses floor division (`div_euclid`), making the
/// output exactly invariant to adding any constant `c` to every feature;
/// the centered values are scaled by `hi/2` and divided by the integer
/// standard deviation with round-half-away, then clamped to the signed
/// `bits` range.
///
/// # Panics
///
/// Panics if the tensor is empty or its leading dimension is 0.
#[must_use]
pub fn layer_norm_fixed(t: &Tensor, bits: BitWidth) -> Tensor {
    let sh = t.shape();
    assert!(!sh.is_empty() && sh[0] > 0, "layer_norm needs features");
    let features = sh[0];
    let tokens: usize = sh[1..].iter().product::<usize>().max(1);
    let (lo, hi) = bits.range(Signedness::Signed);
    let scale = i64::from(hi / 2).max(1);
    let mut out = Tensor::zeros(sh);
    let data = t.as_slice();
    for tok in 0..tokens {
        let at = |f: usize| i64::from(data[f * tokens + tok]);
        let sum: i64 = (0..features).map(at).sum();
        let mean = sum.div_euclid(features as i64);
        let var: i64 = (0..features).map(|f| (at(f) - mean).pow(2)).sum::<i64>() / features as i64;
        let std = i64::try_from(isqrt_u64(var.unsigned_abs()))
            .expect("std fits i64")
            .max(1);
        for f in 0..features {
            let y = div_round((at(f) - mean) * scale, std).clamp(i64::from(lo), i64::from(hi));
            out.as_mut_slice()[f * tokens + tok] = y as i32;
        }
    }
    out
}

/// Elementwise integer GELU: `y = x · clamp(x + hi, 0, 2·hi) / (2·hi)`
/// with round-half-away division — the hard-sigmoid gating form of GELU in
/// the quantized domain (zero below `-hi`, identity above `hi`, smooth-ish
/// ramp between). Output stays within the signed `bits` range whenever the
/// input does.
#[must_use]
pub fn gelu_fixed(t: &Tensor, bits: BitWidth) -> Tensor {
    let (_, hi) = bits.range(Signedness::Signed);
    let two_hi = (2 * i64::from(hi)).max(1);
    Tensor::from_data(
        t.shape(),
        t.as_slice()
            .iter()
            .map(|&v| {
                let x = i64::from(v);
                let gate = (x + i64::from(hi)).clamp(0, two_hi);
                div_round(x * gate, two_hi) as i32
            })
            .collect(),
    )
}

/// One vanilla-RNN step: `h' = clip(W_ih·x + W_hh·h)` requantized to
/// `bits` (hard-tanh style integer nonlinearity).
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn rnn_step(
    w_ih: &Tensor,
    w_hh: &Tensor,
    x: &Tensor,
    h: &Tensor,
    shift: u32,
    bits: BitWidth,
) -> Tensor {
    let a = gemv(w_ih, x);
    let b = gemv(w_hh, h);
    let sum = Tensor::from_data(
        a.shape(),
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&p, &q)| p.saturating_add(q))
            .collect(),
    );
    requantize(&sum, shift, bits, Signedness::Signed)
}

/// One quantized LSTM step over pre-concatenated gate weights
/// `w` `[4*hidden, input+hidden]`: returns `(h', c')`.
///
/// Gate nonlinearities use integer piecewise approximations (hard sigmoid /
/// hard tanh in fixed point), keeping the whole cell exactly reproducible.
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn lstm_step(
    w: &Tensor,
    x: &Tensor,
    h: &Tensor,
    c: &Tensor,
    shift: u32,
    bits: BitWidth,
) -> (Tensor, Tensor) {
    let hidden = h.len();
    assert_eq!(w.shape()[0], 4 * hidden, "gate rows");
    assert_eq!(w.shape()[1], x.len() + hidden, "gate cols");
    // Concatenate [x, h].
    let mut xh = Vec::with_capacity(x.len() + hidden);
    xh.extend_from_slice(x.as_slice());
    xh.extend_from_slice(h.as_slice());
    let xh = Tensor::from_data(&[x.len() + hidden], xh);
    let gates = gemv(w, &xh);
    lstm_recombine(&gates, c, shift, bits)
}

/// The LSTM cell's post-GEMV recombination: applies the fixed-point hard
/// sigmoid/tanh to the pre-activation `gates` (`[4*hidden]`, order
/// i/f/g/o) and updates the cell state. Split out from [`lstm_step`] so an
/// accelerator can compute the gate GEMV itself and share this exact
/// nonlinearity (bit-true equivalence between reference and accelerator).
///
/// # Panics
///
/// Panics if `gates.len() != 4 * c.len()`.
#[must_use]
pub fn lstm_recombine(gates: &Tensor, c: &Tensor, shift: u32, bits: BitWidth) -> (Tensor, Tensor) {
    let hidden = c.len();
    assert_eq!(gates.len(), 4 * hidden, "gate vector length");
    let (lo, hi) = bits.range(Signedness::Signed);
    let q = |v: i64| -> i64 {
        let half = if shift == 0 { 0 } else { 1i64 << (shift - 1) };
        (if v >= 0 { v + half } else { v - half }) >> shift
    };
    // Hard sigmoid in the quantized domain: clamp(q(v)/2 + hi/2, 0, hi).
    let hard_sigmoid = |v: i32| -> i64 { (q(v as i64) / 2 + hi as i64 / 2).clamp(0, hi as i64) };
    let hard_tanh = |v: i32| -> i64 { q(v as i64).clamp(lo as i64, hi as i64) };
    let g = gates.as_slice();
    let mut h_new = Tensor::zeros(&[hidden]);
    let mut c_new = Tensor::zeros(&[hidden]);
    for j in 0..hidden {
        let i_g = hard_sigmoid(g[j]);
        let f_g = hard_sigmoid(g[hidden + j]);
        let g_g = hard_tanh(g[2 * hidden + j]);
        let o_g = hard_sigmoid(g[3 * hidden + j]);
        let c_prev = c.as_slice()[j] as i64;
        // Scale products back down by hi (the fixed-point unit).
        let c_next = (f_g * c_prev + i_g * g_g) / hi.max(1) as i64;
        let c_next = c_next.clamp(lo as i64 * 4, hi as i64 * 4);
        let h_next = (o_g * c_next.clamp(lo as i64, hi as i64)) / hi.max(1) as i64;
        c_new.as_mut_slice()[j] = c_next as i32;
        h_new.as_mut_slice()[j] = h_next.clamp(lo as i64, hi as i64) as i32;
    }
    (h_new, c_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel_passes_input_through() {
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as i32);
        let weights = Tensor::from_data(&[1, 1, 1, 1], vec![1]);
        let out = conv2d(&input, &weights, (1, 1), (0, 0));
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over all-ones input with padding 1: interior
        // outputs 9, corners 4, edges 6.
        let input = Tensor::from_data(&[1, 3, 3], vec![1; 9]);
        let weights = Tensor::from_data(&[1, 1, 3, 3], vec![1; 9]);
        let out = conv2d(&input, &weights, (1, 1), (1, 1));
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert_eq!(out[&[0, 1, 1]], 9);
        assert_eq!(out[&[0, 0, 0]], 4);
        assert_eq!(out[&[0, 0, 1]], 6);
    }

    #[test]
    fn conv2d_stride_downsamples() {
        let input = Tensor::from_fn(&[1, 4, 4], |_| 1);
        let weights = Tensor::from_data(&[2, 1, 2, 2], vec![1, 1, 1, 1, -1, -1, -1, -1]);
        let out = conv2d(&input, &weights, (2, 2), (0, 0));
        assert_eq!(out.shape(), &[2, 2, 2]);
        assert!(out.as_slice()[..4].iter().all(|&v| v == 4));
        assert!(out.as_slice()[4..].iter().all(|&v| v == -4));
    }

    #[test]
    fn gemv_matches_manual() {
        let w = Tensor::from_data(&[2, 3], vec![1, 2, 3, -1, 0, 2]);
        let x = Tensor::from_data(&[3], vec![4, 5, 6]);
        let y = gemv(&w, &x);
        assert_eq!(y.as_slice(), &[4 + 10 + 18, -4 + 12]);
    }

    #[test]
    fn gemm_matches_gemv_per_column() {
        let a = Tensor::from_data(&[2, 2], vec![1, 2, 3, 4]);
        let b = Tensor::from_data(&[2, 2], vec![5, 6, 7, 8]);
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_data(&[4], vec![-3, 0, 2, -1]);
        assert_eq!(relu(&t).as_slice(), &[0, 0, 2, 0]);
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let t = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as i32);
        let out = maxpool2d(&t, (2, 2), (2, 2));
        assert_eq!(out.as_slice(), &[5, 7, 13, 15]);
    }

    #[test]
    fn requantize_rounds_half_away_and_clamps() {
        let t = Tensor::from_data(&[4], vec![6, -6, 1000, -1000]);
        let q = requantize(&t, 2, BitWidth::INT4, Signedness::Signed);
        // 6/4 = 1.5 -> 2 (away from zero); 1000 >> 2 clamps to 7.
        assert_eq!(q.as_slice(), &[2, -2, 7, -8]);
    }

    #[test]
    fn requantize_zero_shift_is_clamp_only() {
        let t = Tensor::from_data(&[2], vec![5, -100]);
        let q = requantize(&t, 0, BitWidth::INT4, Signedness::Signed);
        assert_eq!(q.as_slice(), &[5, -8]);
    }

    #[test]
    fn rnn_step_is_deterministic_and_in_range() {
        let w_ih = Tensor::from_fn(&[4, 4], |i| ((i[0] + i[1]) % 5) as i32 - 2);
        let w_hh = Tensor::from_fn(&[4, 4], |i| ((i[0] * i[1]) % 3) as i32 - 1);
        let x = Tensor::from_data(&[4], vec![1, -2, 3, 0]);
        let h0 = Tensor::zeros(&[4]);
        let h1 = rnn_step(&w_ih, &w_hh, &x, &h0, 2, BitWidth::INT4);
        let h2 = rnn_step(&w_ih, &w_hh, &x, &h1, 2, BitWidth::INT4);
        let (lo, hi) = BitWidth::INT4.range(Signedness::Signed);
        for &v in h1.as_slice().iter().chain(h2.as_slice()) {
            assert!(v >= lo && v <= hi);
        }
        // Same inputs, same outputs.
        assert_eq!(h1, rnn_step(&w_ih, &w_hh, &x, &h0, 2, BitWidth::INT4));
    }

    #[test]
    fn lstm_step_preserves_ranges_over_time() {
        let hidden = 6;
        let w = Tensor::from_fn(&[4 * hidden, 2 * hidden], |i| {
            ((i[0] * 7 + i[1] * 3) % 15) as i32 - 7
        });
        let x = Tensor::from_data(&[hidden], vec![3, -3, 1, 0, 2, -1]);
        let mut h = Tensor::zeros(&[hidden]);
        let mut c = Tensor::zeros(&[hidden]);
        let (lo, hi) = BitWidth::INT4.range(Signedness::Signed);
        for _ in 0..20 {
            let (h2, c2) = lstm_step(&w, &x, &h, &c, 3, BitWidth::INT4);
            h = h2;
            c = c2;
            for &v in h.as_slice() {
                assert!(v >= lo && v <= hi, "h {v} escaped range");
            }
        }
    }

    #[test]
    fn softmax_rows_sum_exactly_to_the_fixed_point_one() {
        let scores = Tensor::from_data(&[3, 4], vec![5, 5, 5, 5, -3, 0, 7, 2, 100, -100, 0, 50]);
        for bits in [BitWidth::INT8, BitWidth::INT4, BitWidth::INT2] {
            let unit = 1i64 << (bits.bits() - 1);
            let p = softmax_fixed(&scores, bits);
            for r in 0..3 {
                let sum: i64 = p.as_slice()[r * 4..(r + 1) * 4]
                    .iter()
                    .map(|&v| i64::from(v))
                    .sum();
                assert_eq!(sum, unit, "row {r} at {bits:?}");
                assert!(p.as_slice()[r * 4..(r + 1) * 4].iter().all(|&v| v >= 0));
            }
        }
    }

    #[test]
    fn softmax_puts_the_mass_on_the_maximum() {
        let scores = Tensor::from_data(&[1, 3], vec![0, 30, 0]);
        let p = softmax_fixed(&scores, BitWidth::INT8);
        assert_eq!(p.as_slice(), &[0, 128, 0]);
        let even = softmax_fixed(
            &Tensor::from_data(&[1, 4], vec![9, 9, 9, 9]),
            BitWidth::INT8,
        );
        assert_eq!(even.as_slice(), &[32, 32, 32, 32]);
    }

    #[test]
    fn layer_norm_is_shift_invariant() {
        let t = Tensor::from_data(&[4, 2], vec![10, -3, 25, 7, -14, 0, 3, 3]);
        let shifted = Tensor::from_data(&[4, 2], t.as_slice().iter().map(|&v| v + 37).collect());
        assert_eq!(
            layer_norm_fixed(&t, BitWidth::INT8),
            layer_norm_fixed(&shifted, BitWidth::INT8)
        );
    }

    #[test]
    fn layer_norm_centers_and_bounds_output() {
        let t = Tensor::from_data(&[4, 1], vec![1000, -1000, 500, -500]);
        let y = layer_norm_fixed(&t, BitWidth::INT8);
        let (lo, hi) = BitWidth::INT8.range(Signedness::Signed);
        for &v in y.as_slice() {
            assert!(v >= lo && v <= hi);
        }
        assert!(y.as_slice()[0] > 0 && y.as_slice()[1] < 0);
    }

    #[test]
    fn gelu_gates_like_the_real_thing() {
        let (lo, hi) = BitWidth::INT8.range(Signedness::Signed);
        let t = Tensor::from_data(&[5], vec![lo, -hi, 0, hi / 2, hi]);
        let y = gelu_fixed(&t, BitWidth::INT8);
        assert_eq!(y.as_slice()[0], 0, "far-negative inputs gate to zero");
        assert_eq!(y.as_slice()[2], 0);
        assert_eq!(y.as_slice()[4], hi, "large positives pass through");
        for &v in y.as_slice() {
            assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let input = Tensor::zeros(&[2, 3, 3]);
        let weights = Tensor::zeros(&[1, 3, 1, 1]);
        let _ = conv2d(&input, &weights, (1, 1), (0, 0));
    }
}
