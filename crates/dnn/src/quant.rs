//! Symmetric linear quantization to 1..=8-bit integers.
//!
//! The paper's heterogeneous workloads use deep-quantized layers (4-bit and
//! below) following PACT/WRPN-style quantization \[4, 8, 13\]. This module
//! implements the standard symmetric scheme those works share:
//! `q = clamp(round(x / scale))` with `scale = max|x| / qmax`.

use bpvec_core::{BitWidth, Signedness};
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Quantization parameters: a scale and the integer range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-value step per integer unit.
    pub scale: f32,
    /// Declared integer bitwidth.
    pub bits: BitWidth,
    /// Signed or unsigned integer range.
    pub signedness: Signedness,
}

impl QuantParams {
    /// Derives parameters covering `[-max_abs, max_abs]` (signed) or
    /// `[0, max_abs]` (unsigned) at the given width.
    ///
    /// A `max_abs` of zero yields a scale of 1 (all values quantize to 0).
    #[must_use]
    pub fn fit(max_abs: f32, bits: BitWidth, signedness: Signedness) -> Self {
        let (_, hi) = bits.range(signedness);
        let scale = if max_abs > 0.0 && hi > 0 {
            max_abs / hi as f32
        } else {
            1.0
        };
        QuantParams {
            scale,
            bits,
            signedness,
        }
    }

    /// Quantizes one real value to the integer grid (round-to-nearest,
    /// clamped to the representable range).
    #[must_use]
    pub fn quantize(&self, x: f32) -> i32 {
        let (lo, hi) = self.bits.range(self.signedness);
        let q = (x / self.scale).round() as i64;
        q.clamp(lo as i64, hi as i64) as i32
    }

    /// Maps a quantized integer back to its real value.
    #[must_use]
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice of reals into a [`Tensor`] of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the shape's element count.
    #[must_use]
    pub fn quantize_tensor(&self, shape: &[usize], values: &[f32]) -> Tensor {
        let expect: usize = shape.iter().product();
        assert_eq!(values.len(), expect, "value count does not match shape");
        Tensor::from_data(shape, values.iter().map(|&x| self.quantize(x)).collect())
    }
}

/// Quantizes `values` with a scale fitted to their own maximum magnitude —
/// the per-tensor calibration the paper's workloads assume.
#[must_use]
pub fn quantize_fitted(
    shape: &[usize],
    values: &[f32],
    bits: BitWidth,
    signedness: Signedness,
) -> (Tensor, QuantParams) {
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let params = QuantParams::fit(max_abs, bits, signedness);
    (params.quantize_tensor(shape, values), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_covers_the_extremes() {
        let p = QuantParams::fit(2.54, BitWidth::INT8, Signedness::Signed);
        assert_eq!(p.quantize(2.54), 127);
        assert_eq!(p.quantize(-2.54), -127);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn clamping_handles_outliers() {
        let p = QuantParams::fit(1.0, BitWidth::INT4, Signedness::Signed);
        assert_eq!(p.quantize(100.0), 7);
        assert_eq!(p.quantize(-100.0), -8);
    }

    #[test]
    fn unsigned_range_is_nonnegative() {
        let p = QuantParams::fit(1.0, BitWidth::INT4, Signedness::Unsigned);
        assert_eq!(p.quantize(-5.0), 0);
        assert_eq!(p.quantize(1.0), 15);
    }

    #[test]
    fn zero_tensor_quantizes_without_dividing_by_zero() {
        let p = QuantParams::fit(0.0, BitWidth::INT8, Signedness::Signed);
        assert_eq!(p.quantize(0.0), 0);
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn quantize_tensor_matches_elementwise() {
        let vals = [0.5f32, -0.25, 1.0, -1.0];
        let (t, p) = quantize_fitted(&[2, 2], &vals, BitWidth::INT8, Signedness::Signed);
        for (q, &v) in t.as_slice().iter().zip(&vals) {
            assert_eq!(*q, p.quantize(v));
        }
    }

    proptest! {
        /// Quantization error is bounded by half a step for in-range values.
        #[test]
        fn roundtrip_error_bounded(
            bits in 2u32..=8,
            x in -1.0f32..1.0,
        ) {
            let b = BitWidth::new(bits).unwrap();
            let p = QuantParams::fit(1.0, b, Signedness::Signed);
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            prop_assert!(err <= p.scale * 0.5 + 1e-6,
                "err {err} > half-step {}", p.scale * 0.5);
        }

        /// Quantized values always fit the declared range (the property the
        /// CVU relies on to accept the operands).
        #[test]
        fn quantized_values_fit_declared_width(
            bits in 1u32..=8,
            signed in proptest::bool::ANY,
            x in proptest::num::f32::NORMAL,
        ) {
            let b = BitWidth::new(bits).unwrap();
            let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let p = QuantParams::fit(3.0, b, s);
            let q = p.quantize(x);
            prop_assert!(b.check(q, s).is_ok());
        }
    }
}
