//! Layer descriptors and their shape arithmetic.
//!
//! Every experiment in the paper reduces a network to, per layer: the number
//! of multiply-accumulates, the operand bitwidths, and the weight /
//! activation data volumes. This module computes those quantities exactly
//! from the layer geometry.

use bpvec_core::BitWidth;
use serde::{Deserialize, Serialize};

/// The operation a layer performs.
///
/// `Hash`/`Eq` make the kind usable as a memoization key: a layer's cost
/// depends only on its geometry, operand bitwidths, and batch — not its
/// name — so identical shapes (e.g. the repeated blocks of a ResNet stage)
/// share cache entries in `bpvec_sim`'s cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution over NCHW activations with OIHW weights.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel height/width.
        kernel: (usize, usize),
        /// Stride.
        stride: (usize, usize),
        /// Zero padding (symmetric).
        padding: (usize, usize),
        /// Input spatial size (height, width).
        input_hw: (usize, usize),
    },
    /// Fully-connected (dense) layer.
    FullyConnected {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Max/average pooling (no MACs; moves data).
    Pool {
        /// Channels.
        channels: usize,
        /// Kernel size.
        kernel: (usize, usize),
        /// Stride.
        stride: (usize, usize),
        /// Input spatial size.
        input_hw: (usize, usize),
    },
    /// One recurrent layer unrolled over a sequence: `gates` stacked
    /// affine maps of `[x_t, h_{t-1}] -> hidden` per timestep
    /// (1 gate = vanilla RNN, 4 gates = LSTM, 3 = GRU).
    Recurrent {
        /// Input feature size.
        input_size: usize,
        /// Hidden state size.
        hidden_size: usize,
        /// Number of gate matrices (1 RNN, 3 GRU, 4 LSTM).
        gates: usize,
        /// Sequence length the layer is evaluated over.
        seq_len: usize,
    },
    /// Attention score GEMM: per head, `scores = Q · K^T`
    /// (`q_len × head_dim` by `head_dim × kv_len`). Both operands are
    /// activations; `act_bits` quantizes Q and `weight_bits` quantizes K,
    /// so precision policies apply exactly as they do to weight GEMMs.
    /// Prefill shapes have `q_len == kv_len`; decode steps have
    /// `q_len == 1` with `kv_len` the KV-cache length.
    MatMulQK {
        /// Attention heads.
        heads: usize,
        /// Query sequence length.
        q_len: usize,
        /// Key/value sequence length (KV-cache length for decode).
        kv_len: usize,
        /// Per-head feature dimension.
        head_dim: usize,
    },
    /// Row-wise fixed-point softmax over attention scores (no MACs; moves
    /// the `rows × cols` score matrix through the core, like `Pool`).
    Softmax {
        /// Independent softmax rows (`heads × q_len` for attention).
        rows: usize,
        /// Elements reduced per row (`kv_len` for attention).
        cols: usize,
    },
    /// Attention value GEMM: per head, `out = P · V`
    /// (`q_len × kv_len` probabilities by `kv_len × head_dim` values).
    /// `act_bits` quantizes P and `weight_bits` quantizes V.
    AttentionV {
        /// Attention heads.
        heads: usize,
        /// Query sequence length.
        q_len: usize,
        /// Key/value sequence length.
        kv_len: usize,
        /// Per-head feature dimension.
        head_dim: usize,
    },
    /// Fixed-point layer normalization over the feature axis for each of
    /// `tokens` positions (no MACs; byte-moving).
    LayerNorm {
        /// Features normalized per token.
        features: usize,
        /// Token positions.
        tokens: usize,
    },
    /// Elementwise integer GELU activation (no MACs; byte-moving).
    Gelu {
        /// Elements transformed.
        elems: usize,
    },
}

impl LayerKind {
    /// Short kind name for diagnostics ("conv2d", "fully-connected",
    /// "pool", "recurrent", "matmul-qk", "softmax", "attention-v",
    /// "layer-norm", "gelu").
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "conv2d",
            LayerKind::FullyConnected { .. } => "fully-connected",
            LayerKind::Pool { .. } => "pool",
            LayerKind::Recurrent { .. } => "recurrent",
            LayerKind::MatMulQK { .. } => "matmul-qk",
            LayerKind::Softmax { .. } => "softmax",
            LayerKind::AttentionV { .. } => "attention-v",
            LayerKind::LayerNorm { .. } => "layer-norm",
            LayerKind::Gelu { .. } => "gelu",
        }
    }
}

/// A named, bitwidth-annotated layer of a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (unique within a network).
    pub name: String,
    /// The operation.
    pub kind: LayerKind,
    /// Activation (input) operand bitwidth.
    pub act_bits: BitWidth,
    /// Weight operand bitwidth.
    pub weight_bits: BitWidth,
}

impl Layer {
    /// Creates a layer with 8-bit operands (the homogeneous default).
    #[must_use]
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
            act_bits: BitWidth::INT8,
            weight_bits: BitWidth::INT8,
        }
    }

    /// Sets both operand bitwidths (builder style).
    #[must_use]
    pub fn with_bits(mut self, act: BitWidth, weight: BitWidth) -> Self {
        self.act_bits = act;
        self.weight_bits = weight;
        self
    }

    /// Output spatial size for spatial layers.
    #[must_use]
    pub fn output_hw(&self) -> Option<(usize, usize)> {
        match self.kind {
            LayerKind::Conv2d {
                kernel,
                stride,
                padding,
                input_hw,
                ..
            } => Some((
                (input_hw.0 + 2 * padding.0 - kernel.0) / stride.0 + 1,
                (input_hw.1 + 2 * padding.1 - kernel.1) / stride.1 + 1,
            )),
            LayerKind::Pool {
                kernel,
                stride,
                input_hw,
                ..
            } => Some((
                (input_hw.0 - kernel.0) / stride.0 + 1,
                (input_hw.1 - kernel.1) / stride.1 + 1,
            )),
            _ => None,
        }
    }

    /// Multiply-accumulate operations per inference (batch 1).
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                let (oh, ow) = self.output_hw().expect("conv has spatial output");
                (oh * ow * out_channels * in_channels * kernel.0 * kernel.1) as u64
            }
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            LayerKind::Pool { .. } => 0,
            LayerKind::Recurrent {
                input_size,
                hidden_size,
                gates,
                seq_len,
            } => (gates * hidden_size * (input_size + hidden_size) * seq_len) as u64,
            LayerKind::MatMulQK {
                heads,
                q_len,
                kv_len,
                head_dim,
            }
            | LayerKind::AttentionV {
                heads,
                q_len,
                kv_len,
                head_dim,
            } => (heads * q_len * kv_len * head_dim) as u64,
            LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. } => 0,
        }
    }

    /// Weight parameter count (biases are negligible and excluded, matching
    /// the paper's "model size" accounting granularity).
    #[must_use]
    pub fn params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => (out_channels * in_channels * kernel.0 * kernel.1) as u64,
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
            LayerKind::Pool { .. } => 0,
            LayerKind::Recurrent {
                input_size,
                hidden_size,
                gates,
                ..
            } => (gates * hidden_size * (input_size + hidden_size)) as u64,
            // Attention GEMMs multiply two *activation* operands: no
            // stored parameters.
            LayerKind::MatMulQK { .. }
            | LayerKind::AttentionV { .. }
            | LayerKind::Softmax { .. }
            | LayerKind::LayerNorm { .. }
            | LayerKind::Gelu { .. } => 0,
        }
    }

    /// Input activation element count (batch 1).
    #[must_use]
    pub fn input_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_channels,
                input_hw,
                ..
            } => (in_channels * input_hw.0 * input_hw.1) as u64,
            LayerKind::FullyConnected { in_features, .. } => in_features as u64,
            LayerKind::Pool {
                channels, input_hw, ..
            } => (channels * input_hw.0 * input_hw.1) as u64,
            LayerKind::Recurrent {
                input_size,
                seq_len,
                ..
            } => (input_size * seq_len) as u64,
            // Consumes the stacked Q/K/V projection output: Q (`q_len`
            // tokens) plus the K and V streams (`kv_len` tokens each).
            LayerKind::MatMulQK {
                heads,
                q_len,
                kv_len,
                head_dim,
            } => (heads * head_dim * (q_len + 2 * kv_len)) as u64,
            LayerKind::Softmax { rows, cols } => (rows * cols) as u64,
            // Probabilities plus the value stream.
            LayerKind::AttentionV {
                heads,
                q_len,
                kv_len,
                head_dim,
            } => (heads * (q_len * kv_len + kv_len * head_dim)) as u64,
            LayerKind::LayerNorm { features, tokens } => (features * tokens) as u64,
            LayerKind::Gelu { elems } => elems as u64,
        }
    }

    /// Output activation element count (batch 1).
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d { out_channels, .. } => {
                let (oh, ow) = self.output_hw().expect("conv has spatial output");
                (out_channels * oh * ow) as u64
            }
            LayerKind::FullyConnected { out_features, .. } => out_features as u64,
            LayerKind::Pool { channels, .. } => {
                let (oh, ow) = self.output_hw().expect("pool has spatial output");
                (channels * oh * ow) as u64
            }
            LayerKind::Recurrent {
                hidden_size,
                seq_len,
                ..
            } => (hidden_size * seq_len) as u64,
            LayerKind::MatMulQK {
                heads,
                q_len,
                kv_len,
                ..
            } => (heads * q_len * kv_len) as u64,
            LayerKind::Softmax { rows, cols } => (rows * cols) as u64,
            LayerKind::AttentionV {
                heads,
                q_len,
                head_dim,
                ..
            } => (heads * q_len * head_dim) as u64,
            LayerKind::LayerNorm { features, tokens } => (features * tokens) as u64,
            LayerKind::Gelu { elems } => elems as u64,
        }
    }

    /// Weight footprint in bytes at this layer's weight bitwidth
    /// (bit-packed, rounded up to whole bytes).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        (self.params() * u64::from(self.weight_bits.bits())).div_ceil(8)
    }

    /// Input activation footprint in bytes at this layer's activation
    /// bitwidth.
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        (self.input_elems() * u64::from(self.act_bits.bits())).div_ceil(8)
    }

    /// Output activation footprint in bytes (written at the activation
    /// bitwidth after requantization).
    #[must_use]
    pub fn output_bytes(&self) -> u64 {
        (self.output_elems() * u64::from(self.act_bits.bits())).div_ceil(8)
    }

    /// The length of the dot-product this layer's output elements reduce
    /// over (the `K` dimension a vector engine streams).
    #[must_use]
    pub fn reduction_len(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_channels,
                kernel,
                ..
            } => (in_channels * kernel.0 * kernel.1) as u64,
            LayerKind::FullyConnected { in_features, .. } => in_features as u64,
            LayerKind::Pool { .. } => 0,
            LayerKind::Recurrent {
                input_size,
                hidden_size,
                ..
            } => (input_size + hidden_size) as u64,
            LayerKind::MatMulQK { head_dim, .. } => head_dim as u64,
            LayerKind::AttentionV { kv_len, .. } => kv_len as u64,
            LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. } => 0,
        }
    }

    /// True for layers that perform MACs (pooling does not).
    #[must_use]
    pub fn is_compute(&self) -> bool {
        self.macs() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_c: usize, out_c: usize, k: usize, s: usize, p: usize, hw: usize) -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d {
                in_channels: in_c,
                out_channels: out_c,
                kernel: (k, k),
                stride: (s, s),
                padding: (p, p),
                input_hw: (hw, hw),
            },
        )
    }

    #[test]
    fn alexnet_conv1_shapes() {
        // AlexNet conv1: 3->64, 11x11, stride 4, pad 2, 224 input -> 55x55.
        let l = conv(3, 64, 11, 4, 2, 224);
        assert_eq!(l.output_hw(), Some((55, 55)));
        assert_eq!(l.macs(), 55 * 55 * 64 * 3 * 11 * 11);
        assert_eq!(l.params(), 64 * 3 * 11 * 11);
    }

    #[test]
    fn resnet_conv3x3_same_padding_preserves_hw() {
        let l = conv(64, 64, 3, 1, 1, 56);
        assert_eq!(l.output_hw(), Some((56, 56)));
        assert_eq!(l.reduction_len(), 64 * 9);
    }

    #[test]
    fn fully_connected_macs_equal_params() {
        let l = Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features: 4096,
                out_features: 1000,
            },
        );
        assert_eq!(l.macs(), 4096 * 1000);
        assert_eq!(l.macs(), l.params());
        assert_eq!(l.reduction_len(), 4096);
    }

    #[test]
    fn pooling_has_no_macs() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool {
                channels: 64,
                kernel: (3, 3),
                stride: (2, 2),
                input_hw: (55, 55),
            },
        );
        assert_eq!(l.macs(), 0);
        assert!(!l.is_compute());
        assert_eq!(l.output_hw(), Some((27, 27)));
    }

    #[test]
    fn lstm_counts_four_gates_over_sequence() {
        let l = Layer::new(
            "lstm",
            LayerKind::Recurrent {
                input_size: 512,
                hidden_size: 512,
                gates: 4,
                seq_len: 10,
            },
        );
        assert_eq!(l.params(), 4 * 512 * 1024);
        assert_eq!(l.macs(), l.params() * 10);
    }

    #[test]
    fn byte_footprints_scale_with_bitwidth() {
        let l8 = conv(3, 64, 11, 4, 2, 224);
        let l4 = l8.clone().with_bits(BitWidth::INT4, BitWidth::INT4);
        assert_eq!(l8.weight_bytes(), l8.params());
        assert_eq!(l4.weight_bytes(), l8.params().div_ceil(2));
        assert_eq!(l4.input_bytes() * 2, l8.input_bytes());
    }

    #[test]
    fn attention_gemms_are_weight_free_but_compute() {
        let qk = Layer::new(
            "qk",
            LayerKind::MatMulQK {
                heads: 12,
                q_len: 128,
                kv_len: 128,
                head_dim: 64,
            },
        );
        assert_eq!(qk.macs(), 12 * 128 * 128 * 64);
        assert_eq!(qk.params(), 0);
        assert!(qk.is_compute());
        assert_eq!(qk.reduction_len(), 64);
        // Q tokens plus K and V streams at the full hidden width.
        assert_eq!(qk.input_elems(), 12 * 64 * (128 + 2 * 128));
        assert_eq!(qk.output_elems(), 12 * 128 * 128);

        let av = Layer::new(
            "av",
            LayerKind::AttentionV {
                heads: 12,
                q_len: 128,
                kv_len: 128,
                head_dim: 64,
            },
        );
        assert_eq!(av.macs(), qk.macs());
        assert_eq!(av.reduction_len(), 128);
        assert_eq!(av.output_elems(), 12 * 128 * 64);
    }

    #[test]
    fn decode_shapes_scale_with_kv_length() {
        let decode = |kv: usize| {
            Layer::new(
                "qk",
                LayerKind::MatMulQK {
                    heads: 12,
                    q_len: 1,
                    kv_len: kv,
                    head_dim: 64,
                },
            )
        };
        assert_eq!(decode(256).macs(), 2 * decode(128).macs());
    }

    #[test]
    fn normalization_layers_move_bytes_without_macs() {
        for kind in [
            LayerKind::Softmax {
                rows: 12 * 128,
                cols: 128,
            },
            LayerKind::LayerNorm {
                features: 768,
                tokens: 128,
            },
            LayerKind::Gelu { elems: 128 * 3072 },
        ] {
            let l = Layer::new("norm", kind);
            assert_eq!(l.macs(), 0, "{}", kind.kind_name());
            assert!(!l.is_compute());
            assert_eq!(l.params(), 0);
            assert_eq!(l.input_elems(), l.output_elems());
            assert!(l.input_elems() > 0);
        }
    }

    #[test]
    fn new_kind_names_are_stable() {
        let qk = LayerKind::MatMulQK {
            heads: 1,
            q_len: 1,
            kv_len: 1,
            head_dim: 1,
        };
        assert_eq!(qk.kind_name(), "matmul-qk");
        assert_eq!(
            LayerKind::Softmax { rows: 1, cols: 1 }.kind_name(),
            "softmax"
        );
        assert_eq!(
            LayerKind::AttentionV {
                heads: 1,
                q_len: 1,
                kv_len: 1,
                head_dim: 1
            }
            .kind_name(),
            "attention-v"
        );
        assert_eq!(
            LayerKind::LayerNorm {
                features: 1,
                tokens: 1
            }
            .kind_name(),
            "layer-norm"
        );
        assert_eq!(LayerKind::Gelu { elems: 1 }.kind_name(), "gelu");
    }

    #[test]
    fn sub_byte_footprints_round_up() {
        let l = Layer::new(
            "tiny",
            LayerKind::FullyConnected {
                in_features: 3,
                out_features: 1,
            },
        )
        .with_bits(BitWidth::INT2, BitWidth::INT2);
        assert_eq!(l.weight_bytes(), 1); // 6 bits -> 1 byte
    }
}
