//! # `bpvec-isa` — the accelerator's instruction set and machine model
//!
//! The paper's evaluation infrastructure descends from BitFusion, whose
//! accelerator is driven by an instruction stream (load/store tiles,
//! set-precision, block matrix-multiply). This crate provides that missing
//! substrate for BPVeC:
//!
//! * [`inst`] — the instruction set: tile DMA (`LoadTile`/`StoreTile`),
//!   dynamic recomposition (`SetPrecision` — the architectural hook for the
//!   CVU's bit-level reconfiguration), blocked `MatMul`, and `Barrier`;
//!   with a fixed 128-bit binary encoding and exact round-tripping;
//! * [`program`] — the lowering pass: a [`bpvec_dnn::Network`] layer plus
//!   its tiling decision (from `bpvec-sim::tiling`) becomes a loop nest of
//!   instructions;
//! * [`machine`] — an instruction-level machine model: a scratchpad with
//!   explicit double buffering, a DMA timeline and a compute timeline. It
//!   executes programs and reports cycles and DRAM traffic — and its
//!   results are cross-validated against the analytical engine
//!   (`bpvec-sim::engine`), closing the loop between the two abstraction
//!   levels;
//! * [`diff`] — the three-way differential harness: analytical
//!   `CostModel` × bit-true packed execution × ISA machine, with typed
//!   per-layer mismatch reports and explicit tolerance contracts.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod diff;
pub mod inst;
pub mod machine;
pub mod program;

pub use diff::{
    diff_execution, diff_network, diff_network_against, execution_probe, ExecDiff, ExecLayerDiff,
    LayerDiff, MachineView, Mismatch, ModelView, NetworkDiff, Tolerance,
};
pub use inst::{DecodeInstructionError, Instruction, MemorySpace};
pub use machine::{Machine, MachineConfig, RunReport, Trap};
pub use program::{
    lower_layer, lower_network, try_lower_layer, try_lower_network, LowerError, Program,
};
