//! Lowering: network layers → instruction streams.
//!
//! Each compute layer becomes the loop nest its tiling decision implies
//! (weight-stationary, double-buffered): weights load once per
//! (output-channel × input-channel) tile pair, inputs re-load per
//! output-channel pass, partial sums spill when input channels are tiled —
//! the same schedule `bpvec-sim::tiling` costs analytically, now made
//! explicit instruction by instruction.
//!
//! The attention GEMMs (`MatMulQK`, `AttentionV`) lower to KV-stationary
//! loop nests mirroring the analytic schedule exactly: per batch item and
//! head, the K (or V) operand is loaded once — or re-streamed per query-row
//! tile when one head's K/V exceeds half the working set — while query (or
//! probability) rows stream through in scratchpad-sized slabs. Softmax,
//! layer-norm, GELU and pooling are pure chunked DMA: their activations
//! cross the interface once, in and out, exactly as the traffic model
//! charges them.
//!
//! Every DMA transfer a lowered program issues fits the double-buffered
//! working set, so [`crate::Machine::try_run`] never traps on the output of
//! [`try_lower_layer`] (fuzzed in `tests/machine_fuzz.rs`).

use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::Network;
use bpvec_sim::tiling;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::inst::Instruction;

/// An instruction stream plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable origin (network/layer names).
    pub name: String,
    /// The instructions in issue order.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True for an empty program.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total bytes moved by DMA instructions (load + store).
    #[must_use]
    pub fn dma_bytes(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match *i {
                Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } => {
                    u64::from(bytes)
                }
                _ => 0,
            })
            .sum()
    }

    /// Number of DMA instructions (loads + stores) — the rounding slack of
    /// the byte accounting: each transfer rounds its payload up to a whole
    /// byte independently, so [`Program::dma_bytes`] can exceed the
    /// analytic [`bpvec_sim::tiling::layer_traffic`] total (which rounds
    /// once over each aggregate term) by at most this many bytes for
    /// halo-free layers.
    #[must_use]
    pub fn dma_ops(&self) -> u64 {
        self.instructions
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::LoadTile { .. } | Instruction::StoreTile { .. }
                )
            })
            .count() as u64
    }

    /// Total MACs issued by `MatMul` instructions.
    #[must_use]
    pub fn matmul_macs(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match *i {
                Instruction::MatMul { m, k, n } => u64::from(m) * u64::from(k) * u64::from(n),
                _ => 0,
            })
            .sum()
    }

    /// Encodes the whole program to binary words.
    #[must_use]
    pub fn encode(&self) -> Vec<[u64; 2]> {
        self.instructions.iter().map(Instruction::encode).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {} ({} instructions)", self.name, self.len())?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

/// Ceil-bytes of `elems` elements at `bits` bits each.
fn byte_len(elems: u64, bits: u32) -> u64 {
    elems.saturating_mul(u64::from(bits)).div_ceil(8)
}

/// An operand that overflows an instruction field (pre-layer-name form).
struct Oversize {
    what: &'static str,
    value: u64,
}

fn field_u32(what: &'static str, value: u64) -> Result<u32, Oversize> {
    u32::try_from(value).map_err(|_| Oversize { what, value })
}

/// A layer the lowering pass cannot compile.
///
/// Every built-in [`LayerKind`] lowers today — including the attention-era
/// kinds (`MatMulQK`/`AttentionV` as KV-stationary GEMM nests,
/// `Softmax`/`LayerNorm`/`Gelu` as streaming DMA) — so
/// [`LowerError::UnsupportedKind`] is reserved for future kinds; the error
/// a caller can still hit is [`LowerError::OperandTooLarge`], when a tile
/// dimension or DMA payload overflows a 32-bit instruction field.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LowerError {
    /// A layer kind with no ISA loop nest.
    UnsupportedKind {
        /// The offending layer's name.
        layer: String,
        /// Its kind name (`matmul-qk`, `softmax`, ...).
        kind: String,
    },
    /// A tile operand exceeds an encodable 32-bit instruction field.
    OperandTooLarge {
        /// The offending layer's name.
        layer: String,
        /// Which operand overflowed (`"weight tile"`, `"matmul n"`, ...).
        what: &'static str,
        /// The value that did not fit.
        value: u64,
    },
}

impl LowerError {
    /// The offending layer's name.
    #[must_use]
    pub fn layer(&self) -> &str {
        match self {
            LowerError::UnsupportedKind { layer, .. }
            | LowerError::OperandTooLarge { layer, .. } => layer,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnsupportedKind { layer, kind } => {
                write!(f, "layer `{layer}`: kind `{kind}` has no ISA lowering")
            }
            LowerError::OperandTooLarge { layer, what, value } => write!(
                f,
                "layer `{layer}`: {what} of {value} overflows a 32-bit instruction field"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Emits `total` bytes of DMA as transfers no larger than `half` (one
/// scratchpad buffer), alternating the double-buffer halves. Traffic is
/// preserved exactly: the chunks sum to `total`.
fn push_chunked(
    code: &mut Vec<Instruction>,
    what: &'static str,
    total: u64,
    half: u64,
    load: bool,
) -> Result<(), Oversize> {
    let cap = half.max(1).min(u64::from(u32::MAX));
    let mut remaining = total;
    let mut c = 0u64;
    while remaining > 0 {
        let this = remaining.min(cap);
        remaining -= this;
        let bytes = field_u32(what, this)?;
        let buffer = (c % 2) as u8;
        code.push(if load {
            Instruction::LoadTile {
                dst_offset: 0,
                bytes,
                buffer,
            }
        } else {
            Instruction::StoreTile {
                src_offset: 0,
                bytes,
                buffer,
            }
        });
        c += 1;
    }
    Ok(())
}

/// Lowers one layer at batch `b` under `working_bytes` of scratchpad.
///
/// Pooling and the normalization/activation kinds (`Softmax`, `LayerNorm`,
/// `Gelu`) become pure DMA (activations in, activations out, in
/// buffer-sized chunks); the GEMM kinds become the double-buffered loop
/// nests their [`bpvec_sim::tiling`] decision implies.
///
/// # Errors
///
/// Returns [`LowerError::OperandTooLarge`] when a tile dimension or DMA
/// payload overflows a 32-bit instruction field (astronomically sized
/// layers only — every Table I and ViT/BERT shape lowers).
///
/// # Examples
///
/// Lower a ResNet-style layer and execute it on the machine model:
///
/// ```
/// use bpvec_dnn::layer::{Layer, LayerKind};
/// use bpvec_isa::{try_lower_layer, Machine, MachineConfig};
///
/// let layer = Layer::new(
///     "layer2.0.conv1",
///     LayerKind::Conv2d {
///         in_channels: 64,
///         out_channels: 128,
///         kernel: (3, 3),
///         stride: (2, 2),
///         padding: (1, 1),
///         input_hw: (56, 56),
///     },
/// );
/// let program = try_lower_layer(&layer, 57_344, 1)?;
/// let report = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &program);
/// assert_eq!(report.macs, layer.macs());
/// assert!(report.cycles > 0.0);
/// # Ok::<(), bpvec_isa::LowerError>(())
/// ```
pub fn try_lower_layer(layer: &Layer, working_bytes: u64, b: u64) -> Result<Program, LowerError> {
    let mut code = vec![Instruction::SetPrecision {
        act_bits: layer.act_bits,
        weight_bits: layer.weight_bits,
    }];
    let ab = layer.act_bits.bits();
    let wb = layer.weight_bits.bits();
    let half = (working_bytes / 2).max(1);
    let oversize = |e: Oversize| LowerError::OperandTooLarge {
        layer: layer.name.clone(),
        what: e.what,
        value: e.value,
    };
    match layer.kind {
        LayerKind::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            input_hw,
            ..
        } => {
            let t = tiling::layer_tiling(layer, working_bytes, b);
            let (oh, ow) = layer.output_hw().expect("conv output");
            lower_conv_nest(
                &mut code,
                &ConvNest {
                    in_c: in_channels,
                    out_c: out_channels,
                    kh: kernel.0,
                    kw: kernel.1,
                    stride: stride.0,
                    in_w: input_hw.1,
                    oh,
                    ow,
                    oc_t: t.oc_tile,
                    ic_t: t.ic_tile,
                    oh_t: t.oh_tile,
                    ab,
                    wb,
                    b,
                },
            )
            .map_err(oversize)?;
        }
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => {
            let t = tiling::layer_tiling(layer, working_bytes, b);
            lower_conv_nest(
                &mut code,
                &ConvNest {
                    in_c: in_features,
                    out_c: out_features,
                    kh: 1,
                    kw: 1,
                    stride: 1,
                    in_w: 1,
                    oh: 1,
                    ow: 1,
                    oc_t: t.oc_tile,
                    ic_t: t.ic_tile,
                    oh_t: t.oh_tile,
                    ab,
                    wb,
                    b,
                },
            )
            .map_err(oversize)?;
        }
        LayerKind::Pool {
            channels, input_hw, ..
        } => {
            let (oh, ow) = layer.output_hw().expect("pool output");
            (|| {
                push_chunked(
                    &mut code,
                    "pool input",
                    byte_len(b * (channels * input_hw.0 * input_hw.1) as u64, ab),
                    half,
                    true,
                )?;
                push_chunked(
                    &mut code,
                    "pool output",
                    byte_len(b * (channels * oh * ow) as u64, ab),
                    half,
                    false,
                )
            })()
            .map_err(oversize)?;
            code.push(Instruction::Barrier);
        }
        LayerKind::Recurrent {
            input_size,
            hidden_size,
            gates,
            seq_len,
        } => {
            let w_bytes = byte_len(
                (gates * hidden_size * (input_size + hidden_size)) as u64,
                wb,
            );
            let on_chip = w_bytes <= working_bytes;
            (|| {
                for t in 0..seq_len {
                    // Stream the weight matrix (in buffer-sized chunks)
                    // unless it fits on chip, in which case only the first
                    // step loads.
                    if t == 0 || !on_chip {
                        push_chunked(&mut code, "recurrent weights", w_bytes, half, true)?;
                    }
                    // x_t and h_{t-1} in, h_t (and c_t) out.
                    push_chunked(
                        &mut code,
                        "recurrent state in",
                        byte_len(b * (input_size + hidden_size) as u64, ab),
                        half,
                        true,
                    )?;
                    code.push(Instruction::MatMul {
                        m: field_u32("matmul m", (gates * hidden_size) as u64)?,
                        k: field_u32("matmul k", (input_size + hidden_size) as u64)?,
                        n: field_u32("matmul n", b)?,
                    });
                    push_chunked(
                        &mut code,
                        "recurrent state out",
                        byte_len(b * hidden_size as u64, ab),
                        half,
                        false,
                    )?;
                    code.push(Instruction::Barrier);
                }
                Ok(())
            })()
            .map_err(oversize)?;
        }
        LayerKind::MatMulQK {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => {
            // scores = Q · Kᵀ per head: K [kv_len × head_dim] stationary,
            // Q rows stream, scores [q_len × kv_len] out.
            lower_attention_gemm(
                &mut code,
                &AttnGemm {
                    heads,
                    q_rows: q_len,
                    red: head_dim,
                    kv_rows: kv_len,
                    kv_cols: head_dim,
                    out_cols: kv_len,
                    ab,
                    wb,
                    b,
                },
                working_bytes,
            )
            .map_err(oversize)?;
        }
        LayerKind::AttentionV {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => {
            // context = P · V per head: V [kv_len × head_dim] stationary,
            // probability rows stream, context [q_len × head_dim] out.
            lower_attention_gemm(
                &mut code,
                &AttnGemm {
                    heads,
                    q_rows: q_len,
                    red: kv_len,
                    kv_rows: kv_len,
                    kv_cols: head_dim,
                    out_cols: head_dim,
                    ab,
                    wb,
                    b,
                },
                working_bytes,
            )
            .map_err(oversize)?;
        }
        LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. } => {
            // Memory-bound normalization/activation ops: the activations
            // stream through the core exactly once, in and out, like
            // pooling — no array work, so no MatMul.
            (|| {
                push_chunked(
                    &mut code,
                    "activation input",
                    byte_len(b * layer.input_elems(), ab),
                    half,
                    true,
                )?;
                push_chunked(
                    &mut code,
                    "activation output",
                    byte_len(b * layer.output_elems(), ab),
                    half,
                    false,
                )
            })()
            .map_err(oversize)?;
            code.push(Instruction::Barrier);
        }
    }
    Ok(Program {
        name: layer.name.clone(),
        instructions: code,
    })
}

/// Infallible [`try_lower_layer`].
///
/// # Panics
///
/// Panics on a [`LowerError`] (an operand overflowing an instruction
/// field); use [`try_lower_layer`] for fallible lowering.
#[must_use]
pub fn lower_layer(layer: &Layer, working_bytes: u64, b: u64) -> Program {
    match try_lower_layer(layer, working_bytes, b) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

struct ConvNest {
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    in_w: usize,
    oh: usize,
    ow: usize,
    oc_t: usize,
    ic_t: usize,
    oh_t: usize,
    ab: u32,
    wb: u32,
    b: u64,
}

fn lower_conv_nest(code: &mut Vec<Instruction>, n: &ConvNest) -> Result<(), Oversize> {
    let n_oc = n.out_c.div_ceil(n.oc_t);
    let n_ic = n.in_c.div_ceil(n.ic_t);
    let n_oh = n.oh.div_ceil(n.oh_t);
    for oc in 0..n_oc {
        let oc_size = n.oc_t.min(n.out_c - oc * n.oc_t);
        for ic in 0..n_ic {
            let ic_size = n.ic_t.min(n.in_c - ic * n.ic_t);
            // Weight tile: stationary across the spatial loop.
            code.push(Instruction::LoadTile {
                dst_offset: 0,
                bytes: field_u32(
                    "weight tile",
                    byte_len((oc_size * ic_size * n.kh * n.kw) as u64, n.wb),
                )?,
                buffer: 0,
            });
            for ohi in 0..n_oh {
                let oh_size = n.oh_t.min(n.oh - ohi * n.oh_t);
                let in_rows = (oh_size - 1) * n.stride + n.kh;
                code.push(Instruction::LoadTile {
                    dst_offset: 0,
                    bytes: field_u32(
                        "input tile",
                        byte_len(n.b * (ic_size * in_rows * n.in_w) as u64, n.ab),
                    )?,
                    buffer: (ohi % 2) as u8,
                });
                // Partial sums spill when input channels are tiled.
                let out_bytes = field_u32(
                    "output tile",
                    byte_len(n.b * (oc_size * oh_size * n.ow) as u64, n.ab),
                )?;
                if n_ic > 1 && ic > 0 {
                    code.push(Instruction::LoadTile {
                        dst_offset: 0,
                        bytes: out_bytes,
                        buffer: (ohi % 2) as u8,
                    });
                }
                code.push(Instruction::MatMul {
                    m: field_u32("matmul m", oc_size as u64)?,
                    k: field_u32("matmul k", (ic_size * n.kh * n.kw) as u64)?,
                    n: field_u32("matmul n", n.b * (oh_size * n.ow) as u64)?,
                });
                code.push(Instruction::StoreTile {
                    src_offset: 0,
                    bytes: out_bytes,
                    buffer: (ohi % 2) as u8,
                });
                code.push(Instruction::Barrier);
            }
        }
    }
    Ok(())
}

/// One attention GEMM's shape, bits and batch: a streaming operand
/// `[q_rows × red]` at `ab` meets a per-request stationary operand
/// `[kv_rows × kv_cols]` at `wb`, producing `[q_rows × out_cols]` at `ab`
/// — per head, per batch item (K/V never amortize over the batch).
struct AttnGemm {
    heads: usize,
    q_rows: usize,
    red: usize,
    kv_rows: usize,
    kv_cols: usize,
    out_cols: usize,
    ab: u32,
    wb: u32,
    b: u64,
}

/// Lowers one attention GEMM to the KV-stationary loop nest behind
/// `bpvec_sim::tiling::layer_tiling`'s attention schedule: when one head's
/// stationary operand fits half the working set it loads once per
/// (batch item × head) and query rows stream through in buffer-sized
/// slabs; otherwise the stationary operand re-streams once per row tile,
/// with the tile sized so a row slab plus its output fits the other half.
fn lower_attention_gemm(
    code: &mut Vec<Instruction>,
    g: &AttnGemm,
    working_bytes: u64,
) -> Result<(), Oversize> {
    let half = (working_bytes / 2).max(1);
    let stationary = byte_len((g.kv_rows * g.kv_cols) as u64, g.wb);
    let row_bytes = byte_len((g.red + g.out_cols) as u64, g.ab).max(1);
    let resident = stationary <= half;
    // Mirrors `attention_gemm_tiling`: in the streaming case the row tile
    // (and so the pass count) must match the analytic choice exactly; in
    // the resident case the slab split only sizes DMA transfers and moves
    // no extra bytes.
    let slab = usize::try_from((half / row_bytes).max(1))
        .unwrap_or(1)
        .min(g.q_rows)
        .max(1);
    let n_slabs = g.q_rows.div_ceil(slab);
    let mat_k = field_u32("matmul k", g.red as u64)?;
    let mat_n = field_u32("matmul n", g.out_cols as u64)?;
    for _item in 0..g.b {
        for _h in 0..g.heads {
            for s in 0..n_slabs {
                if s == 0 || !resident {
                    push_chunked(code, "stationary K/V tile", stationary, half, true)?;
                }
                let rows = slab.min(g.q_rows - s * slab);
                push_chunked(
                    code,
                    "query-row slab",
                    byte_len((rows * g.red) as u64, g.ab),
                    half,
                    true,
                )?;
                code.push(Instruction::MatMul {
                    m: field_u32("matmul m", rows as u64)?,
                    k: mat_k,
                    n: mat_n,
                });
                push_chunked(
                    code,
                    "output slab",
                    byte_len((rows * g.out_cols) as u64, g.ab),
                    half,
                    false,
                )?;
                code.push(Instruction::Barrier);
            }
        }
    }
    Ok(())
}

/// Lowers a whole network into one program per layer.
///
/// # Errors
///
/// Returns the first [`LowerError`] (an operand overflowing an instruction
/// field — every built-in kind has a lowering).
pub fn try_lower_network(
    network: &Network,
    working_bytes: u64,
    b: u64,
) -> Result<Vec<Program>, LowerError> {
    network
        .layers
        .iter()
        .map(|l| try_lower_layer(l, working_bytes, b))
        .collect()
}

/// Infallible [`try_lower_network`].
///
/// # Panics
///
/// Panics on a [`LowerError`] (see [`try_lower_network`]).
#[must_use]
pub fn lower_network(network: &Network, working_bytes: u64, b: u64) -> Vec<Program> {
    match try_lower_network(network, working_bytes, b) {
        Ok(ps) => ps,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_core::BitWidth;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};

    const WORKING: u64 = 57_344;

    fn conv(ic: usize, oc: usize, k: usize, hw: usize) -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: (k, k),
                stride: (1, 1),
                padding: (k / 2, k / 2),
                input_hw: (hw, hw),
            },
        )
    }

    #[test]
    fn program_macs_equal_layer_macs() {
        let l = conv(64, 64, 3, 28);
        let p = lower_layer(&l, WORKING, 4);
        assert_eq!(p.matmul_macs(), l.macs() * 4);
    }

    #[test]
    fn program_traffic_tracks_the_tiling_estimate() {
        // The instruction stream's DMA bytes must match the analytic
        // estimate up to halo overlap (the analytic model ignores the
        // kernel-height halo rows each spatial tile re-reads).
        for l in [
            conv(64, 64, 3, 28),
            conv(16, 128, 1, 14),
            conv(3, 64, 7, 56),
        ] {
            let analytic = tiling::layer_traffic(&l, WORKING, 4);
            let program = lower_layer(&l, WORKING, 4).dma_bytes();
            assert!(
                program >= analytic,
                "program {program} cannot beat the halo-free estimate {analytic}"
            );
            assert!(
                program < 2 * analytic,
                "program {program} too far above estimate {analytic}"
            );
        }
    }

    #[test]
    fn first_instruction_sets_the_layer_precision() {
        let l = conv(8, 8, 3, 8).with_bits(BitWidth::INT4, BitWidth::INT2);
        let p = lower_layer(&l, WORKING, 1);
        assert_eq!(
            p.instructions[0],
            Instruction::SetPrecision {
                act_bits: BitWidth::INT4,
                weight_bits: BitWidth::INT2,
            }
        );
    }

    #[test]
    fn partial_sum_spills_appear_only_when_input_channels_tile() {
        // Small layer: everything fits, one (oc, ic) pass, no psum loads.
        let small = lower_layer(&conv(8, 8, 3, 8), WORKING, 1);
        let loads = small
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::LoadTile { .. }))
            .count();
        assert_eq!(loads, 2, "weight tile + input tile only:\n{small}");
    }

    #[test]
    fn recurrent_program_streams_weights_every_step() {
        let l = Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 512,
                hidden_size: 512,
                gates: 1,
                seq_len: 3,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let w_bytes = (2 * 512 * 512) as u64;
        assert!(p.dma_bytes() >= 3 * w_bytes);
        assert_eq!(p.matmul_macs(), l.macs());
    }

    #[test]
    fn tiny_recurrent_layer_loads_weights_once() {
        let l = Layer::new(
            "rnn-small",
            LayerKind::Recurrent {
                input_size: 32,
                hidden_size: 32,
                gates: 1,
                seq_len: 10,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let w_bytes = (2 * 32 * 32) as u64;
        assert!(p.dma_bytes() < w_bytes + 10 * 200);
    }

    #[test]
    fn whole_network_lowers_with_one_program_per_layer() {
        let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
        let progs = lower_network(&net, WORKING, 1);
        assert_eq!(progs.len(), net.layers.len());
        let total_macs: u64 = progs.iter().map(Program::matmul_macs).sum();
        assert_eq!(total_macs, net.total_macs());
    }

    #[test]
    fn every_dma_transfer_fits_the_working_set() {
        // The trap contract behind `Machine::try_run`: no lowered transfer
        // may exceed the double-buffered working set. Pooling a big early
        // CNN stage at serving batch is the historical offender (one
        // monolithic activation DMA), so Table I AlexNet at batch 16 is the
        // regression shape.
        let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        for p in lower_network(&net, WORKING, 16) {
            for inst in &p.instructions {
                if let Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } =
                    *inst
                {
                    assert!(
                        u64::from(bytes) <= WORKING,
                        "{}: {bytes}-byte DMA exceeds the {WORKING}-byte working set",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn attention_kinds_lower_to_kv_stationary_gemm_nests() {
        let mut layers = Vec::new();
        bpvec_dnn::transformer_block(&mut layers, "b", 64, 4, 16, 16);
        for l in &layers {
            let p = try_lower_layer(l, WORKING, 2).expect("every block layer lowers");
            assert_eq!(
                p.matmul_macs(),
                l.macs() * 2,
                "{}: program MACs must match the layer",
                l.name
            );
        }
        // A whole transformer network lowers end to end.
        let net = Network::build(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
        let progs = try_lower_network(&net, WORKING, 1).expect("BERT-Base lowers");
        assert_eq!(progs.len(), net.layers.len());
        let total: u64 = progs.iter().map(Program::matmul_macs).sum();
        assert_eq!(total, net.total_macs());
    }

    #[test]
    fn attention_traffic_matches_the_analytic_schedule() {
        // No halo in attention: program DMA equals the analytic traffic up
        // to the per-transfer byte-rounding slack.
        for (q, kv) in [(16, 16), (128, 128), (1, 2048)] {
            for kind in [
                LayerKind::MatMulQK {
                    heads: 4,
                    q_len: q,
                    kv_len: kv,
                    head_dim: 64,
                },
                LayerKind::AttentionV {
                    heads: 4,
                    q_len: q,
                    kv_len: kv,
                    head_dim: 64,
                },
            ] {
                let l = Layer::new("attn", kind).with_bits(BitWidth::INT8, BitWidth::INT4);
                let p = lower_layer(&l, WORKING, 3);
                let analytic = tiling::layer_traffic(&l, WORKING, 3);
                let program = p.dma_bytes();
                assert!(
                    program >= analytic && program <= analytic + p.dma_ops(),
                    "{kind:?}: program {program} vs analytic {analytic} (slack {})",
                    p.dma_ops()
                );
            }
        }
    }

    #[test]
    fn long_context_attention_restreams_kv_per_row_tile() {
        // One head's K at 4096×64 bytes exceeds half the working set, so
        // the stationary operand must re-stream once per query-row tile —
        // the analytic multi-pass schedule, made explicit.
        let l = Layer::new(
            "qk-long",
            LayerKind::MatMulQK {
                heads: 1,
                q_len: 4096,
                kv_len: 4096,
                head_dim: 64,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let analytic = tiling::layer_traffic(&l, WORKING, 1);
        let once = (4096 * 64 + 4096 * 64 + 4096 * 4096) as u64;
        assert!(p.dma_bytes() > once, "K must stream more than once");
        assert!(p.dma_bytes() >= analytic && p.dma_bytes() <= analytic + p.dma_ops());
    }

    #[test]
    fn norm_ops_lower_to_pure_dma() {
        for kind in [
            LayerKind::Softmax {
                rows: 128,
                cols: 128,
            },
            LayerKind::LayerNorm {
                features: 768,
                tokens: 128,
            },
            LayerKind::Gelu { elems: 768 * 128 },
        ] {
            let l = Layer::new("norm", kind);
            let p = lower_layer(&l, WORKING, 4);
            assert_eq!(p.matmul_macs(), 0, "{kind:?} runs no array work");
            let analytic = tiling::layer_traffic(&l, WORKING, 4);
            let program = p.dma_bytes();
            assert!(
                program >= analytic && program <= analytic + p.dma_ops(),
                "{kind:?}: program {program} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn oversized_operands_error_instead_of_panicking() {
        // A (physically absurd) layer whose weight tile overflows the
        // 32-bit DMA field must surface a typed error.
        let l = Layer::new(
            "fc-huge",
            LayerKind::FullyConnected {
                in_features: 1 << 20,
                out_features: 1 << 20,
            },
        );
        let err = try_lower_layer(&l, u64::MAX / 4, 1).unwrap_err();
        assert!(
            matches!(err, LowerError::OperandTooLarge { .. }),
            "expected OperandTooLarge, got {err:?}"
        );
        assert_eq!(err.layer(), "fc-huge");
    }

    #[test]
    fn programs_encode_to_binary_and_display_as_assembly() {
        let p = lower_layer(&conv(8, 8, 3, 8), WORKING, 1);
        let words = p.encode();
        assert_eq!(words.len(), p.len());
        for (word, inst) in words.iter().zip(&p.instructions) {
            assert_eq!(&Instruction::decode(*word).unwrap(), inst);
        }
        let asm = p.to_string();
        assert!(asm.contains("setp"));
        assert!(asm.contains("gemm"));
    }
}
