//! Lowering: network layers → instruction streams.
//!
//! Each compute layer becomes the loop nest its tiling decision implies
//! (weight-stationary, double-buffered): weights load once per
//! (output-channel × input-channel) tile pair, inputs re-load per
//! output-channel pass, partial sums spill when input channels are tiled —
//! the same schedule `bpvec-sim::tiling` costs analytically, now made
//! explicit instruction by instruction.

use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::Network;
use bpvec_sim::tiling;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::inst::Instruction;

/// An instruction stream plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable origin (network/layer names).
    pub name: String,
    /// The instructions in issue order.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True for an empty program.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total bytes moved by DMA instructions (load + store).
    #[must_use]
    pub fn dma_bytes(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match *i {
                Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } => {
                    u64::from(bytes)
                }
                _ => 0,
            })
            .sum()
    }

    /// Total MACs issued by `MatMul` instructions.
    #[must_use]
    pub fn matmul_macs(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| match *i {
                Instruction::MatMul { m, k, n } => u64::from(m) * u64::from(k) * u64::from(n),
                _ => 0,
            })
            .sum()
    }

    /// Encodes the whole program to binary words.
    #[must_use]
    pub fn encode(&self) -> Vec<[u64; 2]> {
        self.instructions.iter().map(Instruction::encode).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {} ({} instructions)", self.name, self.len())?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

fn bytes(elems: u64, bits: u32) -> u32 {
    u32::try_from((elems * u64::from(bits)).div_ceil(8)).expect("tile fits u32")
}

/// A layer kind the lowering pass cannot compile yet.
///
/// The attention-era kinds (`MatMulQK`, `Softmax`, `AttentionV`,
/// `LayerNorm`, `Gelu`) are modeled, costed, and executed bit-true by
/// `bpvec-sim`, but their ISA loop nests (per-head GEMM schedules, on-chip
/// softmax/normalization) are not written yet. [`try_lower_layer`] surfaces
/// that as this typed error instead of a panic, so mixed networks degrade
/// gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The offending layer's name.
    pub layer: String,
    /// Its kind name (`matmul-qk`, `softmax`, ...).
    pub kind: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer `{}`: kind `{}` is not yet lowered to the ISA \
             (todo: attention loop nests)",
            self.layer, self.kind
        )
    }
}

impl std::error::Error for LowerError {}

/// Lowers one layer at batch `b` under `working_bytes` of scratchpad.
///
/// Pooling layers become pure DMA (activations in, pooled activations out).
///
/// # Errors
///
/// Returns [`LowerError`] for the attention-era kinds, whose loop nests are
/// not implemented yet.
pub fn try_lower_layer(layer: &Layer, working_bytes: u64, b: u64) -> Result<Program, LowerError> {
    let mut code = vec![Instruction::SetPrecision {
        act_bits: layer.act_bits,
        weight_bits: layer.weight_bits,
    }];
    let ab = layer.act_bits.bits();
    let wb = layer.weight_bits.bits();
    match layer.kind {
        LayerKind::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            input_hw,
            ..
        } => {
            let t = tiling::layer_tiling(layer, working_bytes, b);
            let (oh, ow) = layer.output_hw().expect("conv output");
            lower_conv_nest(
                &mut code,
                ConvNest {
                    in_c: in_channels,
                    out_c: out_channels,
                    kh: kernel.0,
                    kw: kernel.1,
                    stride: stride.0,
                    in_w: input_hw.1,
                    oh,
                    ow,
                    oc_t: t.oc_tile,
                    ic_t: t.ic_tile,
                    oh_t: t.oh_tile,
                    ab,
                    wb,
                    b,
                },
            );
        }
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => {
            let t = tiling::layer_tiling(layer, working_bytes, b);
            lower_conv_nest(
                &mut code,
                ConvNest {
                    in_c: in_features,
                    out_c: out_features,
                    kh: 1,
                    kw: 1,
                    stride: 1,
                    in_w: 1,
                    oh: 1,
                    ow: 1,
                    oc_t: t.oc_tile,
                    ic_t: t.ic_tile,
                    oh_t: t.oh_tile,
                    ab,
                    wb,
                    b,
                },
            );
        }
        LayerKind::Pool {
            channels, input_hw, ..
        } => {
            let (oh, ow) = layer.output_hw().expect("pool output");
            code.push(Instruction::LoadTile {
                dst_offset: 0,
                bytes: bytes(b * (channels * input_hw.0 * input_hw.1) as u64, ab),
                buffer: 0,
            });
            code.push(Instruction::StoreTile {
                src_offset: 0,
                bytes: bytes(b * (channels * oh * ow) as u64, ab),
                buffer: 0,
            });
            code.push(Instruction::Barrier);
        }
        LayerKind::Recurrent {
            input_size,
            hidden_size,
            gates,
            seq_len,
        } => {
            let w_bytes = u64::from(bytes(
                (gates * hidden_size * (input_size + hidden_size)) as u64,
                wb,
            ));
            let half = (working_bytes / 2).max(1);
            let chunks = w_bytes.div_ceil(half);
            let on_chip = w_bytes <= working_bytes;
            for t in 0..seq_len {
                // Stream the weight matrix (in buffer-sized chunks) unless
                // it fits on chip, in which case only the first step loads.
                if t == 0 || !on_chip {
                    let mut remaining = w_bytes;
                    for c in 0..chunks {
                        let this = remaining.min(half);
                        remaining -= this;
                        code.push(Instruction::LoadTile {
                            dst_offset: 0,
                            bytes: u32::try_from(this).expect("chunk fits u32"),
                            buffer: (c % 2) as u8,
                        });
                    }
                }
                // x_t and h_{t-1} in, h_t (and c_t) out.
                code.push(Instruction::LoadTile {
                    dst_offset: 0,
                    bytes: bytes(b * (input_size + hidden_size) as u64, ab),
                    buffer: 0,
                });
                code.push(Instruction::MatMul {
                    m: (gates * hidden_size) as u32,
                    k: (input_size + hidden_size) as u32,
                    n: u32::try_from(b).expect("batch fits u32"),
                });
                code.push(Instruction::StoreTile {
                    src_offset: 0,
                    bytes: bytes(b * hidden_size as u64, ab),
                    buffer: 0,
                });
                code.push(Instruction::Barrier);
            }
        }
        LayerKind::MatMulQK { .. }
        | LayerKind::Softmax { .. }
        | LayerKind::AttentionV { .. }
        | LayerKind::LayerNorm { .. }
        | LayerKind::Gelu { .. } => {
            return Err(LowerError {
                layer: layer.name.clone(),
                kind: layer.kind.kind_name().to_string(),
            });
        }
    }
    Ok(Program {
        name: layer.name.clone(),
        instructions: code,
    })
}

/// Infallible [`try_lower_layer`] for the classic kinds.
///
/// # Panics
///
/// Panics on a not-yet-lowerable kind (see [`LowerError`]); use
/// [`try_lower_layer`] when the stack may contain attention layers.
#[must_use]
pub fn lower_layer(layer: &Layer, working_bytes: u64, b: u64) -> Program {
    match try_lower_layer(layer, working_bytes, b) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

struct ConvNest {
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    in_w: usize,
    oh: usize,
    ow: usize,
    oc_t: usize,
    ic_t: usize,
    oh_t: usize,
    ab: u32,
    wb: u32,
    b: u64,
}

fn lower_conv_nest(code: &mut Vec<Instruction>, n: ConvNest) {
    let n_oc = n.out_c.div_ceil(n.oc_t);
    let n_ic = n.in_c.div_ceil(n.ic_t);
    let n_oh = n.oh.div_ceil(n.oh_t);
    for oc in 0..n_oc {
        let oc_size = n.oc_t.min(n.out_c - oc * n.oc_t);
        for ic in 0..n_ic {
            let ic_size = n.ic_t.min(n.in_c - ic * n.ic_t);
            // Weight tile: stationary across the spatial loop.
            code.push(Instruction::LoadTile {
                dst_offset: 0,
                bytes: bytes((oc_size * ic_size * n.kh * n.kw) as u64, n.wb),
                buffer: 0,
            });
            for ohi in 0..n_oh {
                let oh_size = n.oh_t.min(n.oh - ohi * n.oh_t);
                let in_rows = (oh_size - 1) * n.stride + n.kh;
                code.push(Instruction::LoadTile {
                    dst_offset: 0,
                    bytes: bytes(n.b * (ic_size * in_rows * n.in_w) as u64, n.ab),
                    buffer: (ohi % 2) as u8,
                });
                // Partial sums spill when input channels are tiled.
                let out_bytes = bytes(n.b * (oc_size * oh_size * n.ow) as u64, n.ab);
                if n_ic > 1 && ic > 0 {
                    code.push(Instruction::LoadTile {
                        dst_offset: 0,
                        bytes: out_bytes,
                        buffer: (ohi % 2) as u8,
                    });
                }
                code.push(Instruction::MatMul {
                    m: oc_size as u32,
                    k: (ic_size * n.kh * n.kw) as u32,
                    n: u32::try_from(n.b * (oh_size * n.ow) as u64).expect("tile fits u32"),
                });
                code.push(Instruction::StoreTile {
                    src_offset: 0,
                    bytes: out_bytes,
                    buffer: (ohi % 2) as u8,
                });
                code.push(Instruction::Barrier);
            }
        }
    }
}

/// Lowers a whole network into one program per layer.
///
/// # Errors
///
/// Returns the first [`LowerError`] — today, any attention-era layer.
pub fn try_lower_network(
    network: &Network,
    working_bytes: u64,
    b: u64,
) -> Result<Vec<Program>, LowerError> {
    network
        .layers
        .iter()
        .map(|l| try_lower_layer(l, working_bytes, b))
        .collect()
}

/// Infallible [`try_lower_network`] for the classic kinds.
///
/// # Panics
///
/// Panics on a not-yet-lowerable kind (see [`LowerError`]).
#[must_use]
pub fn lower_network(network: &Network, working_bytes: u64, b: u64) -> Vec<Program> {
    match try_lower_network(network, working_bytes, b) {
        Ok(ps) => ps,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_core::BitWidth;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};

    const WORKING: u64 = 57_344;

    fn conv(ic: usize, oc: usize, k: usize, hw: usize) -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: (k, k),
                stride: (1, 1),
                padding: (k / 2, k / 2),
                input_hw: (hw, hw),
            },
        )
    }

    #[test]
    fn program_macs_equal_layer_macs() {
        let l = conv(64, 64, 3, 28);
        let p = lower_layer(&l, WORKING, 4);
        assert_eq!(p.matmul_macs(), l.macs() * 4);
    }

    #[test]
    fn program_traffic_tracks_the_tiling_estimate() {
        // The instruction stream's DMA bytes must match the analytic
        // estimate up to halo overlap (the analytic model ignores the
        // kernel-height halo rows each spatial tile re-reads).
        for l in [
            conv(64, 64, 3, 28),
            conv(16, 128, 1, 14),
            conv(3, 64, 7, 56),
        ] {
            let analytic = tiling::layer_traffic(&l, WORKING, 4);
            let program = lower_layer(&l, WORKING, 4).dma_bytes();
            assert!(
                program >= analytic,
                "program {program} cannot beat the halo-free estimate {analytic}"
            );
            assert!(
                program < 2 * analytic,
                "program {program} too far above estimate {analytic}"
            );
        }
    }

    #[test]
    fn first_instruction_sets_the_layer_precision() {
        let l = conv(8, 8, 3, 8).with_bits(BitWidth::INT4, BitWidth::INT2);
        let p = lower_layer(&l, WORKING, 1);
        assert_eq!(
            p.instructions[0],
            Instruction::SetPrecision {
                act_bits: BitWidth::INT4,
                weight_bits: BitWidth::INT2,
            }
        );
    }

    #[test]
    fn partial_sum_spills_appear_only_when_input_channels_tile() {
        // Small layer: everything fits, one (oc, ic) pass, no psum loads.
        let small = lower_layer(&conv(8, 8, 3, 8), WORKING, 1);
        let loads = small
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::LoadTile { .. }))
            .count();
        assert_eq!(loads, 2, "weight tile + input tile only:\n{small}");
    }

    #[test]
    fn recurrent_program_streams_weights_every_step() {
        let l = Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 512,
                hidden_size: 512,
                gates: 1,
                seq_len: 3,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let w_bytes = (2 * 512 * 512) as u64;
        assert!(p.dma_bytes() >= 3 * w_bytes);
        assert_eq!(p.matmul_macs(), l.macs());
    }

    #[test]
    fn tiny_recurrent_layer_loads_weights_once() {
        let l = Layer::new(
            "rnn-small",
            LayerKind::Recurrent {
                input_size: 32,
                hidden_size: 32,
                gates: 1,
                seq_len: 10,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let w_bytes = (2 * 32 * 32) as u64;
        assert!(p.dma_bytes() < w_bytes + 10 * 200);
    }

    #[test]
    fn whole_network_lowers_with_one_program_per_layer() {
        let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
        let progs = lower_network(&net, WORKING, 1);
        assert_eq!(progs.len(), net.layers.len());
        let total_macs: u64 = progs.iter().map(Program::matmul_macs).sum();
        assert_eq!(total_macs, net.total_macs());
    }

    #[test]
    fn attention_kinds_lower_to_a_typed_todo_error_not_a_panic() {
        let mut layers = Vec::new();
        bpvec_dnn::transformer_block(&mut layers, "b", 64, 4, 16, 16);
        let qk = layers
            .iter()
            .find(|l| matches!(l.kind, LayerKind::MatMulQK { .. }))
            .unwrap();
        let err = try_lower_layer(qk, WORKING, 1).unwrap_err();
        assert_eq!(err.kind, "matmul-qk");
        assert!(err.to_string().contains("not yet lowered"), "{err}");
        // A whole transformer network surfaces the same error (no panic),
        // while classic networks still lower infallibly.
        let net = Network::build(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
        let err = try_lower_network(&net, WORKING, 1).unwrap_err();
        assert_eq!(err.layer, "block0.ln1", "first unlowerable layer wins");
        assert!(try_lower_network(
            &Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8),
            WORKING,
            1
        )
        .is_ok());
    }

    #[test]
    fn programs_encode_to_binary_and_display_as_assembly() {
        let p = lower_layer(&conv(8, 8, 3, 8), WORKING, 1);
        let words = p.encode();
        assert_eq!(words.len(), p.len());
        for (word, inst) in words.iter().zip(&p.instructions) {
            assert_eq!(&Instruction::decode(*word).unwrap(), inst);
        }
        let asm = p.to_string();
        assert!(asm.contains("setp"));
        assert!(asm.contains("gemm"));
    }
}
