//! The instruction-level machine model.
//!
//! Two timelines advance as a program executes: the **DMA engine** (bounded
//! by off-chip bandwidth) and the **compute array** (bounded by the
//! design's MAC throughput at the current precision). Double buffering lets
//! a `MatMul` overlap the *next* tiles' DMA: a compute instruction only
//! waits for DMA issued before the previous [`Instruction::Barrier`].
//!
//! The machine's aggregate results (cycles, traffic) are cross-validated
//! against the analytical engine in `bpvec-sim` — the two models must agree
//! for every Table I layer, or one of them is wrong ([`crate::diff`] runs
//! that comparison over the full paper grid).
//!
//! Lower a layer, run it, inspect cycles:
//!
//! ```
//! use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
//! use bpvec_isa::{try_lower_layer, Machine, MachineConfig};
//!
//! let config = MachineConfig::bpvec_ddr4();
//! let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
//! let working = config.accel.scratchpad.working_bytes();
//!
//! let program = try_lower_layer(&net.layers[0], working, /* batch */ 4)?;
//! let report = Machine::new(config).try_run(&program)?;
//!
//! assert!(report.cycles > 0.0);
//! assert_eq!(report.macs, net.layers[0].macs() * 4);
//! assert_eq!(report.traffic_bytes, program.dma_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bpvec_core::BitWidth;
use bpvec_sim::{AcceleratorConfig, DramSpec};
use serde::Serialize;
use std::fmt;

use crate::inst::Instruction;
use crate::program::Program;

/// A program fault the machine refuses to execute.
///
/// [`Machine::try_run`] validates a program before touching any machine
/// state, so a trapped program leaves the machine exactly as it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// A DMA transfer extends past the double-buffered working set.
    ScratchpadOverflow {
        /// Index of the offending instruction within the program.
        index: usize,
        /// The transfer's scratchpad offset in bytes.
        offset: u32,
        /// The transfer's length in bytes.
        bytes: u32,
        /// The working-set limit the transfer exceeded.
        limit: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::ScratchpadOverflow {
                index,
                offset,
                bytes,
                limit,
            } => write!(
                f,
                "instruction {index}: DMA of {bytes} B at offset {offset} \
                 exceeds the {limit}-byte working set"
            ),
        }
    }
}

impl std::error::Error for Trap {}

/// Machine parameters: which accelerator executes and over which memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MachineConfig {
    /// The compute platform (Table II column).
    pub accel: AcceleratorConfig,
    /// The off-chip memory system.
    pub dram: DramSpec,
}

impl MachineConfig {
    /// BPVeC over DDR4 — the default evaluation point.
    #[must_use]
    pub fn bpvec_ddr4() -> Self {
        MachineConfig {
            accel: AcceleratorConfig::bpvec(),
            dram: DramSpec::ddr4(),
        }
    }

    fn dma_bytes_per_cycle(&self) -> f64 {
        self.dram.bandwidth_gb_s * 1e9 / (self.accel.freq_mhz * 1e6)
    }
}

/// Aggregate results of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RunReport {
    /// Total cycles until both timelines drain.
    pub cycles: f64,
    /// Cycles the compute array was busy.
    pub compute_cycles: f64,
    /// Cycles the DMA engine was busy.
    pub dma_cycles: f64,
    /// Bytes moved over the off-chip interface.
    pub traffic_bytes: u64,
    /// MACs executed.
    pub macs: u64,
    /// Instructions retired.
    pub instructions: usize,
}

impl RunReport {
    /// Wall-clock seconds at the machine's core frequency.
    #[must_use]
    pub fn seconds(&self, config: &MachineConfig) -> f64 {
        self.cycles / (config.accel.freq_mhz * 1e6)
    }
}

/// The instruction interpreter.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    // Architectural state.
    act_bits: BitWidth,
    weight_bits: BitWidth,
    // Timelines (in cycles).
    dma_time: f64,
    compute_time: f64,
    // DMA horizon a MatMul must respect (set at the last Barrier).
    dma_at_last_barrier: f64,
    // Accumulators.
    compute_busy: f64,
    dma_busy: f64,
    traffic: u64,
    macs: u64,
    retired: usize,
}

impl Machine {
    /// Creates a machine in the 8-bit × 8-bit reset state.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            config,
            act_bits: BitWidth::INT8,
            weight_bits: BitWidth::INT8,
            dma_time: 0.0,
            compute_time: 0.0,
            dma_at_last_barrier: 0.0,
            compute_busy: 0.0,
            dma_busy: 0.0,
            traffic: 0,
            macs: 0,
            retired: 0,
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Executes one instruction, advancing the timelines.
    pub fn step(&mut self, inst: &Instruction) {
        self.retired += 1;
        match *inst {
            Instruction::SetPrecision {
                act_bits,
                weight_bits,
            } => {
                self.act_bits = act_bits;
                self.weight_bits = weight_bits;
            }
            Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } => {
                let cycles = f64::from(bytes) / self.config.dma_bytes_per_cycle();
                self.dma_time += cycles;
                self.dma_busy += cycles;
                self.traffic += u64::from(bytes);
            }
            Instruction::MatMul { m, k, n } => {
                let macs = u64::from(m) * u64::from(k) * u64::from(n);
                let throughput = self
                    .config
                    .accel
                    .macs_per_cycle(self.act_bits, self.weight_bits);
                let cycles = macs as f64 / throughput;
                // Double buffering: this tile's data arrived before the
                // previous barrier; only that horizon gates the start.
                let start = self.compute_time.max(self.dma_at_last_barrier);
                self.compute_time = start + cycles;
                self.compute_busy += cycles;
                self.macs += macs;
            }
            Instruction::Barrier => {
                self.dma_at_last_barrier = self.dma_time;
            }
        }
    }

    /// Runs a whole program and returns the report. The machine keeps its
    /// architectural state (precision) and timelines, so consecutive
    /// programs model consecutive layers on one device; use
    /// [`Machine::run_fresh`] for an isolated measurement.
    pub fn run(&mut self, program: &Program) -> RunReport {
        let start_cycles = self.dma_time.max(self.compute_time);
        let (busy_c0, busy_d0, traffic0, macs0, retired0) = (
            self.compute_busy,
            self.dma_busy,
            self.traffic,
            self.macs,
            self.retired,
        );
        for inst in &program.instructions {
            self.step(inst);
        }
        let end_cycles = self.dma_time.max(self.compute_time);
        RunReport {
            cycles: end_cycles - start_cycles,
            compute_cycles: self.compute_busy - busy_c0,
            dma_cycles: self.dma_busy - busy_d0,
            traffic_bytes: self.traffic - traffic0,
            macs: self.macs - macs0,
            instructions: self.retired - retired0,
        }
    }

    /// Validates a program against the scratchpad bounds, then runs it.
    ///
    /// Validation happens before any state changes: on a [`Trap`] the
    /// machine is untouched (timelines, accumulators and precision all keep
    /// their prior values). Programs produced by
    /// [`crate::try_lower_layer`] never trap — every lowered DMA transfer
    /// fits the double-buffered working set (fuzzed in
    /// `tests/machine_fuzz.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOverflow`] for the first DMA instruction
    /// whose `offset + bytes` extends past the accelerator's working set.
    pub fn try_run(&mut self, program: &Program) -> Result<RunReport, Trap> {
        let limit = self.config.accel.scratchpad.working_bytes();
        for (index, inst) in program.instructions.iter().enumerate() {
            if let Instruction::LoadTile {
                dst_offset: offset,
                bytes,
                ..
            }
            | Instruction::StoreTile {
                src_offset: offset,
                bytes,
                ..
            } = *inst
            {
                if u64::from(offset) + u64::from(bytes) > limit {
                    return Err(Trap::ScratchpadOverflow {
                        index,
                        offset,
                        bytes,
                        limit,
                    });
                }
            }
        }
        Ok(self.run(program))
    }

    /// Runs a program on a fresh machine with this machine's configuration.
    #[must_use]
    pub fn run_fresh(config: MachineConfig, program: &Program) -> RunReport {
        let mut m = Machine::new(config);
        m.run(program)
    }

    /// Instructions retired since construction.
    #[must_use]
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// The `(dma, compute)` timeline positions in cycles — both
    /// monotonically non-decreasing across [`Machine::step`] calls.
    #[must_use]
    pub fn timelines(&self) -> (f64, f64) {
        (self.dma_time, self.compute_time)
    }

    /// The current `(act_bits, weight_bits)` architectural precision.
    #[must_use]
    pub fn precision(&self) -> (BitWidth, BitWidth) {
        (self.act_bits, self.weight_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{lower_layer, lower_network};
    use bpvec_dnn::layer::{Layer, LayerKind};
    use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
    use bpvec_sim::{simulate, SimConfig};

    const WORKING: u64 = 57_344;

    fn conv(ic: usize, oc: usize, k: usize, hw: usize) -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: (k, k),
                stride: (1, 1),
                padding: (k / 2, k / 2),
                input_hw: (hw, hw),
            },
        )
    }

    #[test]
    fn compute_bound_layer_runs_at_peak_throughput() {
        let l = conv(64, 64, 3, 28);
        let p = lower_layer(&l, WORKING, 4);
        let r = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &p);
        // 1024 MACs/cycle peak at 8-bit.
        let peak_cycles = r.macs as f64 / 1024.0;
        assert!(r.compute_cycles >= peak_cycles * 0.999);
        assert!(
            r.cycles < 1.4 * peak_cycles,
            "cycles {} vs peak {peak_cycles}",
            r.cycles
        );
    }

    #[test]
    fn set_precision_accelerates_the_same_shape() {
        use bpvec_core::BitWidth;
        let l8 = conv(64, 64, 3, 28);
        let l4 = l8.clone().with_bits(BitWidth::INT4, BitWidth::INT4);
        let cfg = MachineConfig::bpvec_ddr4();
        let r8 = Machine::run_fresh(cfg, &lower_layer(&l8, WORKING, 4));
        let r4 = Machine::run_fresh(cfg, &lower_layer(&l4, WORKING, 4));
        let speedup = r8.cycles / r4.cycles;
        assert!(
            (2.0..=4.5).contains(&speedup),
            "4-bit speedup {speedup} (compute-side is 4x, memory-side 2x)"
        );
    }

    #[test]
    fn machine_agrees_with_the_analytical_engine_per_network() {
        // The two abstraction levels (instruction interpreter vs closed-form
        // engine) must agree on latency within the halo/fill slack, for all
        // six Table I networks under both policies.
        for id in NetworkId::ALL {
            for policy in [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous] {
                let net = Network::build(id, policy);
                let sim_cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
                let engine = simulate(&net, &sim_cfg);
                let b = engine.batch;
                let mut machine = Machine::new(MachineConfig::bpvec_ddr4());
                let mut machine_s = 0.0;
                for p in lower_network(&net, WORKING, b) {
                    machine_s += machine.run(&p).seconds(machine.config());
                }
                let machine_per_inf = machine_s / b as f64;
                let ratio = machine_per_inf / engine.latency_s;
                assert!(
                    (0.8..=1.6).contains(&ratio),
                    "{id} {policy:?}: machine {machine_per_inf:.5}s vs engine {:.5}s (ratio {ratio:.2})",
                    engine.latency_s
                );
            }
        }
    }

    #[test]
    fn traffic_matches_the_program_exactly() {
        let l = conv(32, 64, 3, 14);
        let p = lower_layer(&l, WORKING, 2);
        let r = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &p);
        assert_eq!(r.traffic_bytes, p.dma_bytes());
        assert_eq!(r.macs, p.matmul_macs());
        assert_eq!(r.instructions, p.len());
    }

    #[test]
    fn double_buffering_overlaps_dma_and_compute() {
        // A balanced layer must finish in well under compute + dma serial
        // time.
        let l = conv(128, 128, 3, 14);
        let p = lower_layer(&l, WORKING, 1);
        let r = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &p);
        let serial = r.compute_cycles + r.dma_cycles;
        assert!(
            r.cycles < 0.9 * serial,
            "cycles {} vs serial {serial} — no overlap happened",
            r.cycles
        );
    }

    #[test]
    fn memory_bound_program_is_gated_by_dma() {
        let l = Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 1024,
                hidden_size: 1024,
                gates: 1,
                seq_len: 4,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let r = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &p);
        assert!(
            r.cycles >= r.dma_cycles * 0.999,
            "memory-bound run must take at least the DMA time"
        );
        assert!(r.dma_cycles > 5.0 * r.compute_cycles);
    }

    #[test]
    fn try_run_traps_on_oversized_dma_without_touching_state() {
        let mut m = Machine::new(MachineConfig::bpvec_ddr4());
        let limit = m.config().accel.scratchpad.working_bytes();
        let bad = Program {
            name: "bad".into(),
            instructions: vec![Instruction::LoadTile {
                dst_offset: 0,
                bytes: u32::try_from(limit).unwrap() + 1,
                buffer: 0,
            }],
        };
        let err = m.try_run(&bad).unwrap_err();
        assert!(matches!(err, Trap::ScratchpadOverflow { index: 0, .. }));
        assert_eq!(m.retired(), 0, "a trapped program must not execute");
        assert_eq!(m.timelines(), (0.0, 0.0));
    }

    #[test]
    fn lowered_programs_never_trap() {
        let mut m = Machine::new(MachineConfig::bpvec_ddr4());
        let working = m.config().accel.scratchpad.working_bytes();
        let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        for p in lower_network(&net, working, 16) {
            let report = m.try_run(&p).expect("lowered programs satisfy the bounds");
            assert_eq!(report.traffic_bytes, p.dma_bytes());
        }
    }

    #[test]
    fn hbm2_machine_is_faster_on_memory_bound_work() {
        let l = Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 1024,
                hidden_size: 1024,
                gates: 1,
                seq_len: 4,
            },
        );
        let p = lower_layer(&l, WORKING, 1);
        let ddr = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &p);
        let hbm = Machine::run_fresh(
            MachineConfig {
                accel: AcceleratorConfig::bpvec(),
                dram: DramSpec::hbm2(),
            },
            &p,
        );
        assert!(hbm.cycles < ddr.cycles / 4.0);
    }
}
