//! The BPVeC instruction set and its binary encoding.
//!
//! Instructions are fixed-width 128-bit words (two `u64`s): an 8-bit opcode
//! plus operand fields. The encoding is exact and total on the instruction
//! set — every instruction round-trips — and decoding rejects malformed
//! words with a typed error rather than panicking, since programs may come
//! from disk.

use bpvec_core::BitWidth;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Which address space a DMA instruction touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySpace {
    /// Off-chip DRAM.
    Dram,
    /// The on-chip scratchpad.
    Scratchpad,
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// Reconfigures the CVU array's composition for the following compute:
    /// the architectural form of the paper's dynamic bit-level
    /// composability.
    SetPrecision {
        /// Activation operand bitwidth.
        act_bits: BitWidth,
        /// Weight operand bitwidth.
        weight_bits: BitWidth,
    },
    /// DMA a tile from DRAM into the scratchpad.
    LoadTile {
        /// Destination scratchpad offset in bytes.
        dst_offset: u32,
        /// Length in bytes (bit-packed payload).
        bytes: u32,
        /// Which double buffer the tile lands in (0/1).
        buffer: u8,
    },
    /// DMA a tile from the scratchpad back to DRAM.
    StoreTile {
        /// Source scratchpad offset in bytes.
        src_offset: u32,
        /// Length in bytes.
        bytes: u32,
        /// Which double buffer the tile leaves from (0/1).
        buffer: u8,
    },
    /// A blocked matrix multiply `C[m,n] += A[m,k] · B[k,n]` on the systolic
    /// array at the current precision.
    MatMul {
        /// Output rows.
        m: u32,
        /// Reduction length.
        k: u32,
        /// Output columns.
        n: u32,
    },
    /// Waits for all outstanding DMA before continuing (buffer swap point).
    Barrier,
}

const OP_SET_PRECISION: u8 = 0x01;
const OP_LOAD_TILE: u8 = 0x02;
const OP_STORE_TILE: u8 = 0x03;
const OP_MATMUL: u8 = 0x04;
const OP_BARRIER: u8 = 0x05;

/// Error from decoding a malformed instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeInstructionError {
    /// Unknown opcode byte.
    UnknownOpcode {
        /// The rejected opcode.
        opcode: u8,
    },
    /// A bitwidth field held an unsupported value.
    InvalidBitWidth {
        /// The rejected field value.
        bits: u8,
    },
    /// A buffer field held something other than 0/1.
    InvalidBuffer {
        /// The rejected field value.
        buffer: u8,
    },
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeInstructionError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode {opcode:#04x}")
            }
            DecodeInstructionError::InvalidBitWidth { bits } => {
                write!(f, "bitwidth field {bits} is outside 1..=8")
            }
            DecodeInstructionError::InvalidBuffer { buffer } => {
                write!(f, "buffer field {buffer} is not 0 or 1")
            }
        }
    }
}

impl Error for DecodeInstructionError {}

impl Instruction {
    /// Encodes to the fixed 128-bit word.
    #[must_use]
    pub fn encode(&self) -> [u64; 2] {
        match *self {
            Instruction::SetPrecision {
                act_bits,
                weight_bits,
            } => [
                u64::from(OP_SET_PRECISION)
                    | (u64::from(act_bits.bits()) << 8)
                    | (u64::from(weight_bits.bits()) << 16),
                0,
            ],
            Instruction::LoadTile {
                dst_offset,
                bytes,
                buffer,
            } => [
                u64::from(OP_LOAD_TILE) | (u64::from(buffer) << 8) | (u64::from(dst_offset) << 32),
                u64::from(bytes),
            ],
            Instruction::StoreTile {
                src_offset,
                bytes,
                buffer,
            } => [
                u64::from(OP_STORE_TILE) | (u64::from(buffer) << 8) | (u64::from(src_offset) << 32),
                u64::from(bytes),
            ],
            Instruction::MatMul { m, k, n } => [
                u64::from(OP_MATMUL) | (u64::from(m) << 32),
                u64::from(k) | (u64::from(n) << 32),
            ],
            Instruction::Barrier => [u64::from(OP_BARRIER), 0],
        }
    }

    /// Decodes a 128-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstructionError`] for unknown opcodes or malformed
    /// fields.
    pub fn decode(word: [u64; 2]) -> Result<Self, DecodeInstructionError> {
        let opcode = (word[0] & 0xff) as u8;
        match opcode {
            OP_SET_PRECISION => {
                let act = ((word[0] >> 8) & 0xff) as u8;
                let wgt = ((word[0] >> 16) & 0xff) as u8;
                let act_bits = BitWidth::new(u32::from(act))
                    .map_err(|_| DecodeInstructionError::InvalidBitWidth { bits: act })?;
                let weight_bits = BitWidth::new(u32::from(wgt))
                    .map_err(|_| DecodeInstructionError::InvalidBitWidth { bits: wgt })?;
                Ok(Instruction::SetPrecision {
                    act_bits,
                    weight_bits,
                })
            }
            OP_LOAD_TILE | OP_STORE_TILE => {
                let buffer = ((word[0] >> 8) & 0xff) as u8;
                if buffer > 1 {
                    return Err(DecodeInstructionError::InvalidBuffer { buffer });
                }
                let offset = (word[0] >> 32) as u32;
                let bytes = (word[1] & 0xffff_ffff) as u32;
                Ok(if opcode == OP_LOAD_TILE {
                    Instruction::LoadTile {
                        dst_offset: offset,
                        bytes,
                        buffer,
                    }
                } else {
                    Instruction::StoreTile {
                        src_offset: offset,
                        bytes,
                        buffer,
                    }
                })
            }
            OP_MATMUL => Ok(Instruction::MatMul {
                m: (word[0] >> 32) as u32,
                k: (word[1] & 0xffff_ffff) as u32,
                n: (word[1] >> 32) as u32,
            }),
            OP_BARRIER => Ok(Instruction::Barrier),
            other => Err(DecodeInstructionError::UnknownOpcode { opcode: other }),
        }
    }

    /// True for DMA instructions.
    #[must_use]
    pub fn is_dma(&self) -> bool {
        matches!(
            self,
            Instruction::LoadTile { .. } | Instruction::StoreTile { .. }
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::SetPrecision {
                act_bits,
                weight_bits,
            } => write!(f, "setp   {act_bits} x {weight_bits}"),
            Instruction::LoadTile {
                dst_offset,
                bytes,
                buffer,
            } => write!(
                f,
                "ld.t   sp[{dst_offset:#x}] <- dram, {bytes} B (buf {buffer})"
            ),
            Instruction::StoreTile {
                src_offset,
                bytes,
                buffer,
            } => write!(
                f,
                "st.t   dram <- sp[{src_offset:#x}], {bytes} B (buf {buffer})"
            ),
            Instruction::MatMul { m, k, n } => write!(f, "gemm   {m} x {k} x {n}"),
            Instruction::Barrier => f.write_str("bar"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn examples() -> Vec<Instruction> {
        vec![
            Instruction::SetPrecision {
                act_bits: BitWidth::INT8,
                weight_bits: BitWidth::INT2,
            },
            Instruction::LoadTile {
                dst_offset: 0x1000,
                bytes: 4096,
                buffer: 1,
            },
            Instruction::StoreTile {
                src_offset: 0xbeef,
                bytes: 17,
                buffer: 0,
            },
            Instruction::MatMul {
                m: 64,
                k: 576,
                n: 784,
            },
            Instruction::Barrier,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for inst in examples() {
            assert_eq!(Instruction::decode(inst.encode()).unwrap(), inst);
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert!(matches!(
            Instruction::decode([0xff, 0]),
            Err(DecodeInstructionError::UnknownOpcode { opcode: 0xff })
        ));
    }

    #[test]
    fn malformed_bitwidth_is_rejected() {
        // SetPrecision with a 9-bit activation field.
        let word = [u64::from(0x01u8) | (9u64 << 8) | (8u64 << 16), 0];
        assert!(matches!(
            Instruction::decode(word),
            Err(DecodeInstructionError::InvalidBitWidth { bits: 9 })
        ));
    }

    #[test]
    fn malformed_buffer_is_rejected() {
        let word = [u64::from(0x02u8) | (7u64 << 8), 16];
        assert!(matches!(
            Instruction::decode(word),
            Err(DecodeInstructionError::InvalidBuffer { buffer: 7 })
        ));
    }

    #[test]
    fn display_is_assembly_like() {
        let asm: Vec<String> = examples().iter().map(|i| i.to_string()).collect();
        assert!(asm[0].starts_with("setp"));
        assert!(asm[1].contains("ld.t"));
        assert!(asm[3].contains("gemm   64 x 576 x 784"));
    }

    proptest! {
        /// Arbitrary field values round-trip (the encoding is lossless over
        /// the whole operand domain).
        #[test]
        fn roundtrip_arbitrary_fields(
            op in 0usize..5,
            a in proptest::num::u32::ANY,
            b in proptest::num::u32::ANY,
            c in proptest::num::u32::ANY,
            bits1 in 1u32..=8,
            bits2 in 1u32..=8,
            buffer in 0u8..=1,
        ) {
            let inst = match op {
                0 => Instruction::SetPrecision {
                    act_bits: BitWidth::new(bits1).unwrap(),
                    weight_bits: BitWidth::new(bits2).unwrap(),
                },
                1 => Instruction::LoadTile { dst_offset: a, bytes: b, buffer },
                2 => Instruction::StoreTile { src_offset: a, bytes: b, buffer },
                3 => Instruction::MatMul { m: a, k: b, n: c },
                _ => Instruction::Barrier,
            };
            prop_assert_eq!(Instruction::decode(inst.encode()).unwrap(), inst);
        }
    }
}
