//! Three-way differential validation: analytical cost model × packed
//! execution × ISA machine.
//!
//! The repo holds three independent implementations of "what does a
//! bit-decomposed network cost":
//!
//! 1. the **analytical model** ([`bpvec_sim::layer_cost`]) — closed-form
//!    MACs, tiled DRAM traffic and `max(compute, memory)` latency;
//! 2. the **packed executor** ([`bpvec_sim::NetworkExecutor`]) — bit-true
//!    arithmetic on the cycle-counted systolic array;
//! 3. the **ISA machine** ([`crate::Machine`]) — an instruction
//!    interpreter over programs from [`crate::try_lower_network`].
//!
//! They share no code paths past the layer shapes, so agreement is
//! evidence of correctness and disagreement localizes a bug. This module
//! cross-checks them with **typed, per-layer mismatch reports**
//! ([`Mismatch`]) under explicit tolerance contracts ([`Tolerance`])
//! instead of bare asserts, in the style of miden-vm's
//! assembler → processor → prover differential pipeline:
//!
//! * MAC counts must agree **exactly** across all three views;
//! * program DMA bytes must be reproduced **exactly** by the machine, and
//!   must track the analytic tiling estimate within the halo band
//!   (convolutions) or per-transfer byte-rounding slack (everything else);
//! * compute and DMA *time* must match the model to floating-point
//!   round-off — both sides compute `work / rate` from the same inputs;
//! * per-layer latency and cross-layer pipelining obey one-sided bounds
//!   that follow from the machine semantics (the machine can never beat
//!   the analytic lower bound, and a continuing machine can never be
//!   slower than per-layer fresh runs).
//!
//! [`diff_network`] runs the model × machine legs over a whole network;
//! [`diff_execution`] adds the packed-executor leg on probe-sized layer
//! windows ([`execution_probe`]), where bit-true output equality against
//! the reference pipeline is also enforced. [`diff_network_against`]
//! deliberately splits the model and machine configurations so tests can
//! prove the harness *fails* on perturbed cost tables.

use bpvec_core::{CoreError, Signedness};
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::{BitwidthPolicy, Network, NetworkId, Tensor};
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use bpvec_sim::{layer_cost, NetworkExecutor, WeightStore};
use std::fmt;

use crate::machine::{Machine, MachineConfig};
use crate::program::{try_lower_layer, LowerError, Program};

/// The agreement contract a differential check ran under.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Tolerance {
    /// Bit-exact equality.
    Exact,
    /// `measured` may exceed `expected` by at most this many bytes (the
    /// per-transfer byte-rounding slack) and never undercut it.
    UpToBytes(u64),
    /// `measured / expected` must lie in `[min, max]`.
    Ratio {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Relative error at most this (floating-point round-off contracts).
    RelErr(f64),
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Tolerance::Exact => f.write_str("exact"),
            Tolerance::UpToBytes(b) => write!(f, "+<= {b} B"),
            Tolerance::Ratio { min, max } => write!(f, "ratio in [{min}, {max}]"),
            Tolerance::RelErr(e) => write!(f, "rel err <= {e}"),
        }
    }
}

/// One violated agreement contract, localized to a layer (or the network
/// scope for cross-layer checks).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Mismatch {
    /// The three MAC counts are not identical.
    Macs {
        /// Analytical model count (`layer.macs() × batch`).
        model: u64,
        /// MACs the lowered program's `MatMul` instructions issue.
        program: u64,
        /// MACs the machine retired.
        machine: u64,
    },
    /// The machine did not reproduce the program's DMA bytes exactly.
    MachineTraffic {
        /// Bytes the program's DMA instructions move.
        program: u64,
        /// Bytes the machine counted.
        machine: u64,
    },
    /// Program DMA bytes fell outside the analytic tiling estimate's band.
    ModelTraffic {
        /// Analytic traffic estimate.
        model: u64,
        /// Program DMA bytes.
        program: u64,
        /// The contract that was violated.
        tolerance: Tolerance,
    },
    /// Compute time disagrees beyond floating-point round-off.
    ComputeTime {
        /// Model compute seconds.
        model_s: f64,
        /// Machine compute-busy seconds.
        machine_s: f64,
    },
    /// DMA time disagrees with the model's transfer time for the program's
    /// actual traffic beyond floating-point round-off.
    DmaTime {
        /// Model transfer seconds for the program's traffic.
        model_s: f64,
        /// Machine DMA-busy seconds.
        machine_s: f64,
    },
    /// Layer (or network) latency fell outside the contracted ratio band.
    Latency {
        /// Model latency seconds.
        model_s: f64,
        /// Machine latency seconds.
        machine_s: f64,
        /// The violated ratio contract.
        tolerance: Tolerance,
    },
    /// A continuing machine took longer than the sum of per-layer fresh
    /// runs — pipelining across layers can only ever help.
    Pipelining {
        /// Continuing-machine seconds over the whole network.
        continuing_s: f64,
        /// Sum of per-layer fresh-machine seconds.
        sum_fresh_s: f64,
    },
    /// A layer failed to lower (network scope).
    Lower(LowerError),
    /// A lowered program trapped on the machine (lowering bug).
    Trap {
        /// The trap, rendered.
        trap: String,
    },
    /// Packed execution and the reference pipeline produced different
    /// outputs (bit-true equality is the contract).
    ExecOutput,
    /// Executor MAC counts disagree (analytic per-layer count vs MACs the
    /// array's GEMMs actually issued vs the lowered program).
    ExecMacs {
        /// `layer.macs()` (batch 1).
        analytic: u64,
        /// MACs the packed GEMMs issued.
        array: u64,
        /// MACs the lowered (batch 1) program issues.
        program: u64,
    },
    /// Array cycles disagree with the independent re-derivation of the
    /// packed tiling schedule from the accelerator configuration.
    ArrayCycles {
        /// Systolic-array cycles the executor counted.
        array: u64,
        /// Cycles re-derived from the layer shape and the machine's
        /// configured peak throughput.
        expected: u64,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Macs {
                model,
                program,
                machine,
            } => write!(
                f,
                "MACs disagree: model {model}, program {program}, machine {machine}"
            ),
            Mismatch::MachineTraffic { program, machine } => {
                write!(f, "machine traffic {machine} B != program DMA {program} B")
            }
            Mismatch::ModelTraffic {
                model,
                program,
                tolerance,
            } => write!(
                f,
                "program DMA {program} B outside model estimate {model} B ({tolerance})"
            ),
            Mismatch::ComputeTime { model_s, machine_s } => write!(
                f,
                "compute time: model {model_s:.3e}s vs machine {machine_s:.3e}s"
            ),
            Mismatch::DmaTime { model_s, machine_s } => write!(
                f,
                "dma time: model {model_s:.3e}s vs machine {machine_s:.3e}s"
            ),
            Mismatch::Latency {
                model_s,
                machine_s,
                tolerance,
            } => write!(
                f,
                "latency: machine {machine_s:.3e}s vs model {model_s:.3e}s ({tolerance})"
            ),
            Mismatch::Pipelining {
                continuing_s,
                sum_fresh_s,
            } => write!(
                f,
                "pipelined run {continuing_s:.3e}s exceeds per-layer sum {sum_fresh_s:.3e}s"
            ),
            Mismatch::Lower(e) => write!(f, "lowering failed: {e}"),
            Mismatch::Trap { trap } => write!(f, "machine trapped: {trap}"),
            Mismatch::ExecOutput => f.write_str("packed output != reference output"),
            Mismatch::ExecMacs {
                analytic,
                array,
                program,
            } => write!(
                f,
                "executor MACs disagree: analytic {analytic}, array {array}, program {program}"
            ),
            Mismatch::ArrayCycles { array, expected } => {
                write!(f, "array cycles {array} != re-derived schedule {expected}")
            }
        }
    }
}

/// The analytical model's view of one layer (whole batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelView {
    /// MACs (batch total).
    pub macs: u64,
    /// Tiled DRAM traffic, bytes.
    pub traffic_bytes: u64,
    /// Compute seconds.
    pub compute_s: f64,
    /// Memory seconds.
    pub memory_s: f64,
    /// `max(compute, memory)` latency seconds.
    pub latency_s: f64,
}

/// The ISA machine's view of one layer (whole batch, fresh machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineView {
    /// MACs retired.
    pub macs: u64,
    /// DMA bytes moved.
    pub traffic_bytes: u64,
    /// Compute-busy seconds.
    pub compute_s: f64,
    /// DMA-busy seconds.
    pub dma_s: f64,
    /// End-to-end seconds for the layer's program.
    pub latency_s: f64,
    /// Instructions retired.
    pub instructions: usize,
}

/// One layer's differential record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDiff {
    /// Layer name.
    pub name: String,
    /// Layer kind name (`conv2d`, `matmul-qk`, ...).
    pub kind: &'static str,
    /// The analytical side.
    pub model: ModelView,
    /// The machine side.
    pub machine: MachineView,
    /// Violated contracts (empty when the views agree).
    pub mismatches: Vec<Mismatch>,
}

/// Differential report for a whole network at one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDiff {
    /// Network display name.
    pub network: String,
    /// Batch size the comparison ran at.
    pub batch: u64,
    /// Per-layer records, in execution order.
    pub layers: Vec<LayerDiff>,
    /// Cross-layer (network-scope) mismatches.
    pub network_mismatches: Vec<Mismatch>,
    /// Sum of per-layer model latencies, seconds.
    pub model_latency_s: f64,
    /// Sum of per-layer fresh-machine latencies, seconds.
    pub machine_latency_s: f64,
    /// End-to-end seconds of one continuing machine over all programs.
    pub machine_pipelined_s: f64,
}

impl NetworkDiff {
    /// True when every contract held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.network_mismatches.is_empty() && self.layers.iter().all(|l| l.mismatches.is_empty())
    }

    /// Total violated contracts across all scopes.
    #[must_use]
    pub fn mismatch_count(&self) -> usize {
        self.network_mismatches.len()
            + self
                .layers
                .iter()
                .map(|l| l.mismatches.len())
                .sum::<usize>()
    }
}

impl fmt::Display for NetworkDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} @ batch {}: {} layers, {} mismatches",
            self.network,
            self.batch,
            self.layers.len(),
            self.mismatch_count()
        )?;
        for l in &self.layers {
            for m in &l.mismatches {
                writeln!(f, "  [{} {}] {m}", l.name, l.kind)?;
            }
        }
        for m in &self.network_mismatches {
            writeln!(f, "  [network] {m}")?;
        }
        Ok(())
    }
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers exact zeros
    }
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

/// The per-layer latency ratio band: the machine can never beat the
/// analytic `max(compute, memory)` bound, and can exceed it by at most
/// serialization (compute + dma instead of max) times the traffic band
/// (2× halo for convolutions).
fn latency_band(kind: &LayerKind) -> Tolerance {
    let (min, max) = match kind {
        // Convolutions can undercut the model — a strided kernel that does
        // not cover its stride (1×1 stride-2 downsample) touches only
        // `kh/stride` of the input rows the estimate charges — and exceed
        // it by halo re-reads, which load at most `kh` input rows per
        // output row against the model's one (thin row tiles under batch
        // pressure reach that limit), plus DMA/compute serialization.
        LayerKind::Conv2d { kernel, .. } => (0.4, kernel.0.max(2) as f64 + 2.0),
        LayerKind::FullyConnected { .. } => (0.999, 4.0),
        _ => (0.999, 2.5),
    };
    Tolerance::Ratio { min, max }
}

/// The model-vs-program traffic band for a layer kind: convolutions carry
/// the halo the analytic model ignores — a row tile of `t` output rows
/// loads `t·stride + kh − stride` input rows against the model's
/// `t·stride`, so the inflation is strictly below `kh` even at `t = 1` —
/// and can also undercut the estimate when a strided kernel skips input
/// rows the whole-input charge includes (1×1 stride-2 downsample reads
/// half the rows). Everything else is exact up to per-transfer byte
/// rounding.
fn traffic_band(kind: &LayerKind, dma_ops: u64) -> Tolerance {
    match kind {
        LayerKind::Conv2d { kernel, .. } => Tolerance::Ratio {
            min: 0.4,
            max: kernel.0.max(2) as f64,
        },
        _ => Tolerance::UpToBytes(dma_ops),
    }
}

fn seconds(cycles: f64, config: &MachineConfig) -> f64 {
    cycles / (config.accel.freq_mhz * 1e6)
}

/// Cross-checks the analytical model against the ISA machine for every
/// layer of `network` at batch `b`, with both views computed from the same
/// configuration. See [`diff_network_against`] for the two-config form
/// negative tests use.
///
/// ```
/// use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
/// use bpvec_isa::{diff_network, MachineConfig};
///
/// let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Heterogeneous);
/// let diff = diff_network(&net, MachineConfig::bpvec_ddr4(), 16);
/// assert!(diff.is_clean(), "{diff}");
/// assert_eq!(diff.layers.len(), net.layers.len());
/// ```
#[must_use]
pub fn diff_network(network: &Network, config: MachineConfig, b: u64) -> NetworkDiff {
    diff_network_against(network, config, config, b)
}

/// Cross-checks the analytical model (under `model_cfg`) against the ISA
/// machine (under `machine_cfg`) for every layer of `network` at batch `b`.
///
/// With `model_cfg == machine_cfg` every contract must hold on the Table I
/// models and the ViT/BERT presets; with a deliberately perturbed model
/// configuration the typed mismatches identify *which* quantity drifted —
/// the negative tests prove the harness can fail.
#[must_use]
pub fn diff_network_against(
    network: &Network,
    model_cfg: MachineConfig,
    machine_cfg: MachineConfig,
    b: u64,
) -> NetworkDiff {
    let working = machine_cfg.accel.scratchpad.working_bytes();
    let mut layers = Vec::new();
    let mut network_mismatches = Vec::new();
    let mut programs: Vec<Program> = Vec::new();
    let mut model_latency_s = 0.0;
    let mut machine_latency_s = 0.0;
    for layer in &network.layers {
        let cost = layer_cost(layer, &model_cfg.accel, &model_cfg.dram, b);
        let model = ModelView {
            macs: cost.macs,
            traffic_bytes: cost.traffic_bytes,
            compute_s: cost.compute_s,
            memory_s: cost.memory_s,
            latency_s: cost.latency_s,
        };
        model_latency_s += model.latency_s;
        let program = match try_lower_layer(layer, working, b) {
            Ok(p) => p,
            Err(e) => {
                network_mismatches.push(Mismatch::Lower(e));
                continue;
            }
        };
        let mut mismatches = Vec::new();
        let mut fresh = Machine::new(machine_cfg);
        let report = match fresh.try_run(&program) {
            Ok(r) => r,
            Err(trap) => {
                layers.push(LayerDiff {
                    name: layer.name.clone(),
                    kind: layer.kind.kind_name(),
                    model,
                    machine: MachineView {
                        macs: 0,
                        traffic_bytes: 0,
                        compute_s: 0.0,
                        dma_s: 0.0,
                        latency_s: 0.0,
                        instructions: 0,
                    },
                    mismatches: vec![Mismatch::Trap {
                        trap: trap.to_string(),
                    }],
                });
                continue;
            }
        };
        let machine = MachineView {
            macs: report.macs,
            traffic_bytes: report.traffic_bytes,
            compute_s: seconds(report.compute_cycles, &machine_cfg),
            dma_s: seconds(report.dma_cycles, &machine_cfg),
            latency_s: report.seconds(&machine_cfg),
            instructions: report.instructions,
        };
        machine_latency_s += machine.latency_s;

        // 1. MACs: exact, three ways.
        let program_macs = program.matmul_macs();
        if model.macs != program_macs || program_macs != machine.macs {
            mismatches.push(Mismatch::Macs {
                model: model.macs,
                program: program_macs,
                machine: machine.macs,
            });
        }
        // 2. Machine traffic reproduces the program exactly.
        if machine.traffic_bytes != program.dma_bytes() {
            mismatches.push(Mismatch::MachineTraffic {
                program: program.dma_bytes(),
                machine: machine.traffic_bytes,
            });
        }
        // 3. Program traffic tracks the analytic tiling estimate.
        let band = traffic_band(&layer.kind, program.dma_ops());
        let traffic_ok = match band {
            Tolerance::Ratio { min, max } => {
                let r = program.dma_bytes() as f64 / (model.traffic_bytes.max(1)) as f64;
                r >= min && r < max
            }
            Tolerance::UpToBytes(slack) => {
                program.dma_bytes() >= model.traffic_bytes
                    && program.dma_bytes() <= model.traffic_bytes + slack
            }
            _ => unreachable!("traffic bands are Ratio or UpToBytes"),
        };
        if !traffic_ok {
            mismatches.push(Mismatch::ModelTraffic {
                model: model.traffic_bytes,
                program: program.dma_bytes(),
                tolerance: band,
            });
        }
        // 4. Compute time: same MACs over the same rate, to round-off.
        if !rel_close(model.compute_s, machine.compute_s, 1e-9) {
            mismatches.push(Mismatch::ComputeTime {
                model_s: model.compute_s,
                machine_s: machine.compute_s,
            });
        }
        // 5. DMA time: the model's transfer time for the program's actual
        //    bytes must equal the machine's DMA-busy time, to round-off.
        let model_dma_s = model_cfg.dram.transfer_time_s(program.dma_bytes());
        if !rel_close(model_dma_s, machine.dma_s, 1e-9) {
            mismatches.push(Mismatch::DmaTime {
                model_s: model_dma_s,
                machine_s: machine.dma_s,
            });
        }
        // 6. Layer latency: one-sided analytic bound plus the serialization
        //    band.
        if model.latency_s > 0.0 || machine.latency_s > 0.0 {
            let band = latency_band(&layer.kind);
            let Tolerance::Ratio { min, max } = band else {
                unreachable!("latency bands are ratios")
            };
            let r = machine.latency_s / model.latency_s.max(f64::MIN_POSITIVE);
            if !(min..=max).contains(&r) {
                mismatches.push(Mismatch::Latency {
                    model_s: model.latency_s,
                    machine_s: machine.latency_s,
                    tolerance: band,
                });
            }
        }
        programs.push(program);
        layers.push(LayerDiff {
            name: layer.name.clone(),
            kind: layer.kind.kind_name(),
            model,
            machine,
            mismatches,
        });
    }
    // Network scope: one continuing machine over all programs can only be
    // faster than the per-layer fresh runs (cross-layer pipelining).
    let mut continuing = Machine::new(machine_cfg);
    let mut machine_pipelined_s = 0.0;
    for p in &programs {
        machine_pipelined_s += continuing.run(p).seconds(&machine_cfg);
    }
    if machine_pipelined_s > machine_latency_s * (1.0 + 1e-9) {
        network_mismatches.push(Mismatch::Pipelining {
            continuing_s: machine_pipelined_s,
            sum_fresh_s: machine_latency_s,
        });
    }
    NetworkDiff {
        network: network.id.to_string(),
        batch: b,
        layers,
        network_mismatches,
        model_latency_s,
        machine_latency_s,
        machine_pipelined_s,
    }
}

/// One probe layer's executor-leg record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecLayerDiff {
    /// Layer name.
    pub name: String,
    /// Layer kind name.
    pub kind: &'static str,
    /// `layer.macs()` (batch 1).
    pub macs: u64,
    /// MACs the array's packed GEMMs issued.
    pub array_macs: u64,
    /// Systolic-array cycles the executor counted.
    pub array_cycles: u64,
    /// Cycles re-derived from the layer shape and the configured peak.
    pub expected_cycles: u64,
    /// Violated contracts.
    pub mismatches: Vec<Mismatch>,
}

/// Executor-leg differential report for one probe window.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecDiff {
    /// Probe display name.
    pub name: String,
    /// True when packed output matched the reference bit-for-bit.
    pub bit_true: bool,
    /// Per-layer records.
    pub layers: Vec<ExecLayerDiff>,
    /// Window-scope mismatches ([`Mismatch::ExecOutput`],
    /// [`Mismatch::Lower`]).
    pub mismatches: Vec<Mismatch>,
}

impl ExecDiff {
    /// True when every contract held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.layers.iter().all(|l| l.mismatches.is_empty())
    }
}

impl fmt::Display for ExecDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = self.mismatches.len()
            + self
                .layers
                .iter()
                .map(|l| l.mismatches.len())
                .sum::<usize>();
        writeln!(
            f,
            "{}: {} layers, bit-true {}, {} mismatches",
            self.name,
            self.layers.len(),
            self.bit_true,
            count
        )?;
        for l in &self.layers {
            for m in &l.mismatches {
                writeln!(f, "  [{} {}] {m}", l.name, l.kind)?;
            }
        }
        for m in &self.mismatches {
            writeln!(f, "  [window] {m}")?;
        }
        Ok(())
    }
}

/// Re-derives the packed array's cycle count for one layer from the
/// machine's configured peak throughput — *independently* of
/// `bpvec_sim::systolic`, which counts these cycles while executing.
///
/// The schedule: each `rows × cols` output tile streams its reduction in
/// beats of `macs_per_cycle / (rows·cols)` elements per CVU per cycle,
/// then pays a `rows + cols` fill/drain skew; partial edge tiles pay full
/// beats. Per kind the executor issues one GEMM per layer (conv im2col,
/// dense), per timestep (recurrent), or per head (attention).
fn expected_array_cycles(layer: &Layer, accel: &bpvec_sim::AcceleratorConfig) -> u64 {
    let rows = 8u64;
    let cols = 8u64;
    let chunk = (accel.macs_per_cycle(layer.act_bits, layer.weight_bits) / (rows * cols) as f64)
        .round()
        .max(1.0) as u64;
    let gemm = |m: u64, k: u64, n: u64| {
        m.div_ceil(rows) * n.div_ceil(cols) * (k.div_ceil(chunk) + rows + cols)
    };
    match layer.kind {
        LayerKind::Conv2d {
            in_channels,
            out_channels,
            kernel,
            ..
        } => {
            let (oh, ow) = layer.output_hw().expect("convs have spatial output");
            gemm(
                out_channels as u64,
                (in_channels * kernel.0 * kernel.1) as u64,
                (oh * ow) as u64,
            )
        }
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => gemm(out_features as u64, in_features as u64, 1),
        LayerKind::Recurrent {
            input_size,
            hidden_size,
            gates,
            seq_len,
        } => {
            seq_len as u64
                * gemm(
                    (gates * hidden_size) as u64,
                    (input_size + hidden_size) as u64,
                    1,
                )
        }
        LayerKind::MatMulQK {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => heads as u64 * gemm(q_len as u64, head_dim as u64, kv_len as u64),
        LayerKind::AttentionV {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => heads as u64 * gemm(q_len as u64, kv_len as u64, head_dim as u64),
        _ => 0,
    }
}

/// Cumulative-MAC budget for CNN probe prefixes — sized so every probe
/// runs bit-true in a few seconds under `cargo test`, and kept below the
/// point where Inception-v1's layer table goes shape-inconsistent (its
/// `pool1` floor-rounds 112→55 while `conv2r` declares a 56×56 input, a
/// ceil-vs-floor artifact real GoogLeNet papers over with `ceil_mode`).
const PROBE_MAC_BUDGET: u64 = 130_000_000;

/// Builds the execution probe for `id`: a layer window small enough to run
/// bit-true in seconds, plus a deterministic synthetic input shaped for its
/// first layer.
///
/// CNNs probe a prefix of the full model under a cumulative-MAC budget;
/// recurrent models run whole at a short unroll; transformers run one full
/// encoder block (LayerNorm → QKV → QK → softmax → attention·V →
/// projection → LayerNorm → FFN → GELU → FFN) at a short sequence length.
///
/// # Panics
///
/// Panics if `policy` does not apply to `id` (presets apply everywhere).
#[must_use]
pub fn execution_probe(id: NetworkId, policy: BitwidthPolicy) -> (Vec<Layer>, Tensor) {
    use bpvec_dnn::PrecisionPolicy;
    let preset = PrecisionPolicy::Preset(policy);
    let (layers, input_shape): (Vec<Layer>, Vec<usize>) = match id {
        NetworkId::VitBase | NetworkId::BertBase => {
            let net = Network::build_shaped(id, &preset, Some(8), None)
                .expect("preset policies apply to every network");
            let start = net
                .layers
                .iter()
                .position(|l| l.name.ends_with("ln1"))
                .expect("transformers start with a block LayerNorm");
            let window: Vec<Layer> = net.layers[start..start + 10].to_vec();
            let LayerKind::LayerNorm { features, tokens } = window[0].kind else {
                panic!("transformer windows start at LayerNorm");
            };
            let shape = vec![features, tokens, 1];
            (window, shape)
        }
        NetworkId::Rnn | NetworkId::Lstm => {
            let net = Network::build_shaped(id, &preset, Some(4), None)
                .expect("preset policies apply to every network");
            let LayerKind::Recurrent {
                input_size,
                seq_len,
                ..
            } = net.layers[0].kind
            else {
                panic!("recurrent networks start with a Recurrent layer");
            };
            (net.layers, vec![seq_len, input_size])
        }
        _ => {
            let net = Network::build(id, policy);
            let mut cum = 0u64;
            let mut window = Vec::new();
            for l in net.layers {
                if cum + l.macs() > PROBE_MAC_BUDGET && !window.is_empty() {
                    break;
                }
                cum += l.macs();
                window.push(l);
            }
            let LayerKind::Conv2d {
                in_channels,
                input_hw,
                ..
            } = window[0].kind
            else {
                panic!("CNN probes start with a convolution");
            };
            (window, vec![in_channels, input_hw.0, input_hw.1])
        }
    };
    let (lo, hi) = layers[0].act_bits.range(Signedness::Signed);
    let span = (hi - lo + 1) as u64;
    let mut i = 0u64;
    let input = Tensor::from_fn(&input_shape, |_| {
        let v = lo + (mix(0xb17_d1ff ^ i) % span) as i32;
        i += 1;
        v
    });
    (layers, input)
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the packed-executor leg over a probe window at batch 1: packed
/// output must equal the reference pipeline bit-for-bit, every layer's
/// analytic, array-measured and program MAC counts must be identical, and
/// array cycles must equal the schedule re-derived from the machine's
/// configured peak throughput ([`Mismatch::ArrayCycles`]).
///
/// # Errors
///
/// Propagates [`CoreError`] from the packed array (operand composition) —
/// an infrastructure failure, distinct from a differential [`Mismatch`].
pub fn diff_execution(
    name: &str,
    layers: &[Layer],
    input: &Tensor,
    machine_cfg: MachineConfig,
) -> Result<ExecDiff, CoreError> {
    let executor = NetworkExecutor::new(SystolicArray::new(ArrayConfig::paper_default()));
    let weights = WeightStore::synthesize(layers, 0x5eed);
    let trace = executor.execute(layers, input, &weights)?;
    let reference = executor.execute_reference(layers, input, &weights);
    let bit_true = trace.output == reference;
    let mut mismatches = Vec::new();
    if !bit_true {
        mismatches.push(Mismatch::ExecOutput);
    }
    let working = machine_cfg.accel.scratchpad.working_bytes();
    let mut out_layers = Vec::new();
    for (layer, lt) in layers.iter().zip(&trace.layers) {
        let mut lm = Vec::new();
        let program_macs = match try_lower_layer(layer, working, 1) {
            Ok(p) => p.matmul_macs(),
            Err(e) => {
                mismatches.push(Mismatch::Lower(e));
                continue;
            }
        };
        if lt.macs != lt.array_macs || lt.macs != program_macs {
            lm.push(Mismatch::ExecMacs {
                analytic: lt.macs,
                array: lt.array_macs,
                program: program_macs,
            });
        }
        let expected = expected_array_cycles(layer, &machine_cfg.accel);
        if lt.cycles != expected {
            lm.push(Mismatch::ArrayCycles {
                array: lt.cycles,
                expected,
            });
        }
        out_layers.push(ExecLayerDiff {
            name: lt.name.clone(),
            kind: layer.kind.kind_name(),
            macs: lt.macs,
            array_macs: lt.array_macs,
            array_cycles: lt.cycles,
            expected_cycles: expected,
            mismatches: lm,
        });
    }
    Ok(ExecDiff {
        name: name.to_string(),
        bit_true,
        layers: out_layers,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_sim::{AcceleratorConfig, DramSpec};

    #[test]
    fn resnet18_diffs_clean_under_both_policies() {
        for policy in [BitwidthPolicy::Homogeneous8, BitwidthPolicy::Heterogeneous] {
            let net = Network::build(NetworkId::ResNet18, policy);
            let d = diff_network(&net, MachineConfig::bpvec_ddr4(), 4);
            assert!(d.is_clean(), "{d}");
            assert_eq!(d.layers.len(), net.layers.len());
        }
    }

    #[test]
    fn bert_base_diffs_clean_including_attention_layers() {
        let net = Network::build(NetworkId::BertBase, BitwidthPolicy::Heterogeneous);
        let d = diff_network(&net, MachineConfig::bpvec_ddr4(), 2);
        assert!(d.is_clean(), "{d}");
        assert!(
            d.layers.iter().any(|l| l.kind == "matmul-qk"),
            "attention layers must be cross-checked, not skipped"
        );
    }

    #[test]
    fn a_perturbed_compute_rate_is_caught_as_compute_time() {
        let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8);
        let mut model_cfg = MachineConfig::bpvec_ddr4();
        model_cfg.accel.mac_units *= 2;
        let d = diff_network_against(&net, model_cfg, MachineConfig::bpvec_ddr4(), 4);
        assert!(!d.is_clean(), "a 2x compute-rate drift must be detected");
        assert!(
            d.layers.iter().any(|l| l
                .mismatches
                .iter()
                .any(|m| matches!(m, Mismatch::ComputeTime { .. }))),
            "the drift must be typed as ComputeTime:\n{d}"
        );
    }

    #[test]
    fn a_perturbed_memory_system_is_caught_as_dma_time() {
        let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        let model_cfg = MachineConfig {
            accel: AcceleratorConfig::bpvec(),
            dram: DramSpec::hbm2(),
        };
        let d = diff_network_against(&net, model_cfg, MachineConfig::bpvec_ddr4(), 4);
        assert!(!d.is_clean());
        assert!(
            d.layers.iter().any(|l| l
                .mismatches
                .iter()
                .any(|m| matches!(m, Mismatch::DmaTime { .. }))),
            "a bandwidth drift must be typed as DmaTime:\n{d}"
        );
    }

    #[test]
    fn execution_probe_runs_bit_true_on_a_cnn_prefix() {
        let (layers, input) = execution_probe(NetworkId::AlexNet, BitwidthPolicy::Heterogeneous);
        let d = diff_execution(
            "alexnet-probe",
            &layers,
            &input,
            MachineConfig::bpvec_ddr4(),
        )
        .expect("probe executes");
        assert!(d.is_clean(), "{d}");
        assert!(d.bit_true);
    }
}
