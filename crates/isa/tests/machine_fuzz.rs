//! Proptest-driven fuzzing of the ISA machine's invariants.
//!
//! Programs here are *randomly generated* — either instruction-by-
//! instruction (any well-formed stream the encoder accepts) or by lowering
//! random layer shapes — and the machine must uphold its contracts on all
//! of them:
//!
//! * encode → decode round-trips every program exactly;
//! * `run` reports are **additive**: splitting a program anywhere and
//!   running the pieces on one continuing machine reproduces the
//!   single-run totals;
//! * the DMA and compute timelines (and the retired-instruction count)
//!   are monotone across runs;
//! * `try_run` equals `run` whenever every DMA transfer is in bounds, and
//!   traps — without touching machine state — exactly when one is not;
//! * `try_lower_layer` → `try_run` never traps, and the machine reproduces
//!   the program's MAC and byte totals exactly.
//!
//! Case counts scale with the `BPVEC_FUZZ_CASES` environment variable
//! (nightly CI raises it; the default keeps `cargo test` fast). Fuzz
//! finds from these properties are pinned as deterministic tests in
//! `regression_corpus.rs`.

use bpvec_core::BitWidth;
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_isa::{try_lower_layer, Instruction, Machine, MachineConfig, Program};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounded case count: `BPVEC_FUZZ_CASES` (nightly soak) or the default.
fn cases(default: u32) -> u32 {
    std::env::var("BPVEC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn working_bytes() -> u64 {
    MachineConfig::bpvec_ddr4().accel.scratchpad.working_bytes()
}

/// A random well-formed program whose every DMA stays inside the working
/// set (so `try_run` must accept it).
fn random_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let working = working_bytes() as u32;
    let mut instructions = vec![Instruction::SetPrecision {
        act_bits: BitWidth::new(rng.gen_range(2..=8)).unwrap(),
        weight_bits: BitWidth::new(rng.gen_range(2..=8)).unwrap(),
    }];
    for _ in 0..rng.gen_range(1..=40usize) {
        let inst = match rng.gen_range(0..10u32) {
            0..=3 => {
                let bytes = rng.gen_range(1..=working / 4);
                Instruction::LoadTile {
                    dst_offset: rng.gen_range(0..=working - bytes),
                    bytes,
                    buffer: rng.gen_range(0..=1),
                }
            }
            4..=5 => {
                let bytes = rng.gen_range(1..=working / 4);
                Instruction::StoreTile {
                    src_offset: rng.gen_range(0..=working - bytes),
                    bytes,
                    buffer: rng.gen_range(0..=1),
                }
            }
            6..=8 => Instruction::MatMul {
                m: rng.gen_range(1..=64),
                k: rng.gen_range(1..=64),
                n: rng.gen_range(1..=64),
            },
            _ => Instruction::Barrier,
        };
        instructions.push(inst);
    }
    Program {
        name: format!("fuzz-{seed:#x}"),
        instructions,
    }
}

/// A random layer of any kind the lowering supports, with bounded shape.
fn random_layer(seed: u64) -> Layer {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a7e_2bad);
    let kind = match rng.gen_range(0..9u32) {
        0 => {
            let k = if rng.gen_bool(0.5) { 3 } else { 1 };
            let hw = rng.gen_range(k..=14usize);
            LayerKind::Conv2d {
                in_channels: rng.gen_range(1..=8),
                out_channels: rng.gen_range(1..=16),
                kernel: (k, k),
                stride: (rng.gen_range(1..=2), rng.gen_range(1..=2)),
                padding: (rng.gen_range(0..=1), rng.gen_range(0..=1)),
                input_hw: (hw, hw),
            }
        }
        1 => LayerKind::FullyConnected {
            in_features: rng.gen_range(1..=512),
            out_features: rng.gen_range(1..=256),
        },
        2 => {
            let hw = rng.gen_range(2..=12usize) & !1;
            LayerKind::Pool {
                channels: rng.gen_range(1..=8),
                kernel: (2, 2),
                stride: (2, 2),
                input_hw: (hw.max(2), hw.max(2)),
            }
        }
        3 => LayerKind::Recurrent {
            input_size: rng.gen_range(1..=64),
            hidden_size: rng.gen_range(1..=64),
            gates: [1, 3, 4][rng.gen_range(0..3usize)],
            seq_len: rng.gen_range(1..=4),
        },
        4 => LayerKind::MatMulQK {
            heads: rng.gen_range(1..=4),
            q_len: rng.gen_range(1..=32),
            kv_len: rng.gen_range(1..=32),
            head_dim: rng.gen_range(1..=32),
        },
        5 => LayerKind::AttentionV {
            heads: rng.gen_range(1..=4),
            q_len: rng.gen_range(1..=32),
            kv_len: rng.gen_range(1..=32),
            head_dim: rng.gen_range(1..=32),
        },
        6 => LayerKind::Softmax {
            rows: rng.gen_range(1..=64),
            cols: rng.gen_range(1..=64),
        },
        7 => LayerKind::LayerNorm {
            features: rng.gen_range(1..=256),
            tokens: rng.gen_range(1..=16),
        },
        _ => LayerKind::Gelu {
            elems: rng.gen_range(1..=4096),
        },
    };
    let a = BitWidth::new(rng.gen_range(2..=8)).unwrap();
    let w = BitWidth::new(rng.gen_range(2..=8)).unwrap();
    Layer::new("fuzz".to_string(), kind).with_bits(a, w)
}

fn rel_eq(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(96)))]

    /// Every generated program round-trips through the 128-bit encoding.
    #[test]
    fn programs_round_trip_through_the_binary_encoding(seed in proptest::num::u64::ANY) {
        let program = random_program(seed);
        let decoded: Vec<Instruction> = program
            .encode()
            .into_iter()
            .map(|w| Instruction::decode(w).expect("encoder emits decodable words"))
            .collect();
        prop_assert_eq!(decoded, program.instructions);
    }

    /// Splitting a program at any point and running both halves on one
    /// continuing machine reproduces the single-run report exactly
    /// (cycles to round-off; bytes, MACs and instruction counts exactly).
    #[test]
    fn run_reports_are_additive_across_splits(seed in proptest::num::u64::ANY) {
        let program = random_program(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let cut = rng.gen_range(0..=program.len());
        let (head, tail) = program.instructions.split_at(cut);
        let halves = [
            Program { name: "head".into(), instructions: head.to_vec() },
            Program { name: "tail".into(), instructions: tail.to_vec() },
        ];

        let whole = Machine::run_fresh(MachineConfig::bpvec_ddr4(), &program);
        let mut split = Machine::new(MachineConfig::bpvec_ddr4());
        let reports = halves.map(|h| split.run(&h));

        let cycles: f64 = reports.iter().map(|r| r.cycles).sum();
        prop_assert!(rel_eq(cycles, whole.cycles), "{cycles} != {}", whole.cycles);
        prop_assert_eq!(
            reports.iter().map(|r| r.traffic_bytes).sum::<u64>(),
            whole.traffic_bytes
        );
        prop_assert_eq!(reports.iter().map(|r| r.macs).sum::<u64>(), whole.macs);
        prop_assert_eq!(
            reports.iter().map(|r| r.instructions).sum::<usize>(),
            whole.instructions
        );
    }

    /// Timelines and the retired-instruction count are monotone over any
    /// sequence of runs on one machine.
    #[test]
    fn timelines_and_retirement_are_monotone(seed in proptest::num::u64::ANY) {
        let mut machine = Machine::new(MachineConfig::bpvec_ddr4());
        let mut prev = machine.timelines();
        let mut prev_retired = machine.retired();
        for i in 0..4u64 {
            machine.run(&random_program(seed.wrapping_add(i)));
            let now = machine.timelines();
            prop_assert!(now.0 >= prev.0 && now.1 >= prev.1);
            prop_assert!(machine.retired() >= prev_retired);
            prev = now;
            prev_retired = machine.retired();
        }
    }

    /// `try_run` accepts every in-bounds program and reports exactly what
    /// `run` reports.
    #[test]
    fn try_run_matches_run_on_in_bounds_programs(seed in proptest::num::u64::ANY) {
        let program = random_program(seed);
        let checked = Machine::new(MachineConfig::bpvec_ddr4())
            .try_run(&program)
            .expect("every generated DMA is in bounds");
        let unchecked = Machine::new(MachineConfig::bpvec_ddr4()).run(&program);
        prop_assert_eq!(checked, unchecked);
    }

    /// A single out-of-bounds DMA anywhere makes `try_run` trap and leaves
    /// the machine in its pre-run state.
    #[test]
    fn out_of_bounds_dma_always_traps_without_side_effects(seed in proptest::num::u64::ANY) {
        let mut program = random_program(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0ff5_1de5);
        let working = working_bytes() as u32;
        let at = rng.gen_range(0..=program.len());
        program.instructions.insert(at, Instruction::LoadTile {
            dst_offset: rng.gen_range(1..=working),
            bytes: working,
            buffer: 0,
        });
        let mut machine = Machine::new(MachineConfig::bpvec_ddr4());
        prop_assert!(machine.try_run(&program).is_err());
        prop_assert_eq!(machine.timelines(), (0.0, 0.0));
        prop_assert_eq!(machine.retired(), 0);
    }

    /// Lowered layers never trap, and the machine reproduces the lowered
    /// program's MAC and byte totals exactly.
    #[test]
    fn lowered_layers_never_trap(seed in proptest::num::u64::ANY) {
        let layer = random_layer(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);
        let b = rng.gen_range(1..=4u64);
        let program = try_lower_layer(&layer, working_bytes(), b)
            .expect("bounded shapes never overflow instruction fields");
        let report = Machine::new(MachineConfig::bpvec_ddr4())
            .try_run(&program)
            .expect("lowered programs must not trap");
        prop_assert_eq!(report.macs, program.matmul_macs());
        prop_assert_eq!(report.traffic_bytes, program.dma_bytes());
        prop_assert_eq!(report.macs, layer.macs() * b);
    }
}
