//! Deterministic regression corpus for the lowering pass and the machine.
//!
//! Each test pins one hazard found while building or fuzzing the
//! differential harness (`machine_fuzz.rs` holds the generators). Unlike
//! the fuzz suite these run identical inputs every time, so a regression
//! bisects to the exact commit that reintroduced it.

use bpvec_core::BitWidth;
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_isa::{try_lower_layer, Instruction, LowerError, Machine, MachineConfig, Program};

fn working_bytes() -> u64 {
    MachineConfig::bpvec_ddr4().accel.scratchpad.working_bytes()
}

fn run_checked(layer: &Layer, b: u64) -> (Program, bpvec_isa::RunReport) {
    let program = try_lower_layer(layer, working_bytes(), b).expect("corpus shapes lower");
    let report = Machine::new(MachineConfig::bpvec_ddr4())
        .try_run(&program)
        .expect("corpus programs must not trap");
    assert_eq!(report.macs, program.matmul_macs());
    assert_eq!(report.traffic_bytes, program.dma_bytes());
    (program, report)
}

/// Pool layers once emitted one monolithic `LoadTile` for the whole batch
/// activation — AlexNet's first pool at batch 16 is ~3.1 MB against a
/// 57 KB working set, an instant trap once `try_run` validated bounds.
/// Chunked DMA fixed it; this pins the exact layer that exposed it.
#[test]
fn alexnet_pool1_at_batch_16_stays_inside_the_working_set() {
    let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let pool = net
        .layers
        .iter()
        .find(|l| matches!(l.kind, LayerKind::Pool { .. }))
        .expect("AlexNet has pool layers");
    let (program, _) = run_checked(pool, 16);
    let working = working_bytes();
    for inst in &program.instructions {
        if let Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } = inst {
            assert!(
                u64::from(*bytes) <= working,
                "{inst} exceeds the working set"
            );
        }
    }
}

/// Long-context attention: the KV slab no longer fits half the working
/// set, forcing the row-tile loop to restream K per pass. The first
/// lowering draft double-counted the stationary load; this pins the
/// multi-pass shape with exact MAC bookkeeping.
#[test]
fn long_context_attention_restreams_without_trapping() {
    let layer = Layer::new(
        "qk-long".to_string(),
        LayerKind::MatMulQK {
            heads: 1,
            q_len: 4096,
            kv_len: 4096,
            head_dim: 64,
        },
    );
    let (_, report) = run_checked(&layer, 1);
    assert_eq!(report.macs, layer.macs());
}

/// Decode-step attention (`q_len == 1` against a long KV cache) is the
/// skinniest GEMM the lowering emits; it must still lower and run.
#[test]
fn decode_step_attention_lowers_and_runs() {
    for kind in [
        LayerKind::MatMulQK {
            heads: 12,
            q_len: 1,
            kv_len: 2048,
            head_dim: 64,
        },
        LayerKind::AttentionV {
            heads: 12,
            q_len: 1,
            kv_len: 2048,
            head_dim: 64,
        },
    ] {
        let layer = Layer::new("decode".to_string(), kind);
        let (_, report) = run_checked(&layer, 1);
        assert_eq!(report.macs, layer.macs());
    }
}

/// Sub-byte widths drive the byte-rounding paths in every DMA size
/// computation; 2-bit operands once rounded a zero-byte transfer into the
/// stream. All kinds must lower and run at the narrowest width.
#[test]
fn two_bit_layers_lower_and_run_for_every_kind() {
    let b2 = BitWidth::new(2).unwrap();
    let kinds = [
        LayerKind::Conv2d {
            in_channels: 3,
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            input_hw: (8, 8),
        },
        LayerKind::FullyConnected {
            in_features: 37,
            out_features: 11,
        },
        LayerKind::Pool {
            channels: 4,
            kernel: (2, 2),
            stride: (2, 2),
            input_hw: (6, 6),
        },
        LayerKind::Recurrent {
            input_size: 5,
            hidden_size: 7,
            gates: 4,
            seq_len: 3,
        },
        LayerKind::MatMulQK {
            heads: 2,
            q_len: 5,
            kv_len: 5,
            head_dim: 3,
        },
        LayerKind::Softmax { rows: 10, cols: 5 },
        LayerKind::AttentionV {
            heads: 2,
            q_len: 5,
            kv_len: 5,
            head_dim: 3,
        },
        LayerKind::LayerNorm {
            features: 9,
            tokens: 4,
        },
        LayerKind::Gelu { elems: 33 },
    ];
    for kind in kinds {
        let layer = Layer::new("narrow".to_string(), kind).with_bits(b2, b2);
        let (program, report) = run_checked(&layer, 2);
        assert_eq!(report.macs, layer.macs() * 2, "{}", layer.kind.kind_name());
        for inst in &program.instructions {
            if let Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } = inst
            {
                assert!(*bytes > 0, "zero-byte DMA in {}", layer.kind.kind_name());
            }
        }
    }
}

/// Degenerate single-element shapes exercise the `max(1)` guards in the
/// tiling arithmetic.
#[test]
fn single_element_shapes_lower_and_run() {
    for kind in [
        LayerKind::Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
            input_hw: (1, 1),
        },
        LayerKind::FullyConnected {
            in_features: 1,
            out_features: 1,
        },
        LayerKind::Recurrent {
            input_size: 1,
            hidden_size: 1,
            gates: 1,
            seq_len: 1,
        },
        LayerKind::MatMulQK {
            heads: 1,
            q_len: 1,
            kv_len: 1,
            head_dim: 1,
        },
    ] {
        let layer = Layer::new("tiny".to_string(), kind);
        let (_, report) = run_checked(&layer, 1);
        assert_eq!(report.macs, layer.macs());
    }
}

/// Operand sizes that overflow a 32-bit instruction field must surface as
/// a typed [`LowerError::OperandTooLarge`], never a panic.
#[test]
fn oversized_operands_stay_typed_errors() {
    let layer = Layer::new(
        "huge".to_string(),
        LayerKind::FullyConnected {
            in_features: 1 << 20,
            out_features: 1 << 20,
        },
    );
    let err = try_lower_layer(&layer, u64::MAX / 4, 1).expect_err("must not lower");
    assert!(matches!(err, LowerError::OperandTooLarge { .. }), "{err}");
    assert_eq!(err.layer(), "huge");
}

/// Corrupt binary words decode to typed errors, never garbage
/// instructions: an unknown opcode and an out-of-range buffer field.
#[test]
fn corrupt_words_decode_to_typed_errors() {
    assert!(Instruction::decode([0xff, 0]).is_err(), "unknown opcode");
    let valid = Instruction::LoadTile {
        dst_offset: 0,
        bytes: 64,
        buffer: 0,
    }
    .encode();
    let mut corrupt = valid;
    corrupt[0] |= 0x03 << 8; // buffer field: 3 is not a double-buffer half
    assert!(
        Instruction::decode(corrupt).is_err(),
        "buffer 3 must be rejected"
    );
    assert_eq!(
        Instruction::decode(valid).unwrap(),
        Instruction::LoadTile {
            dst_offset: 0,
            bytes: 64,
            buffer: 0,
        }
    );
}
