//! # `bpvec-gpumodel` — analytical RTX 2080 Ti model (Figure 9 substitution)
//!
//! The paper compares BPVeC's performance-per-Watt against an Nvidia
//! RTX 2080 Ti running TensorRT 5.1 with INT8 (homogeneous) or INT4
//! (heterogeneous) tensor-core execution (§IV-B3, Table II). A physical GPU
//! and TensorRT are unavailable in this environment, so this crate provides
//! an *analytical* Turing model:
//!
//! * peak tensor throughput derived from Table II's device parameters
//!   (544 tensor cores @ 1545 MHz; 64 INT8 MACs per tensor core per clock,
//!   2× that for INT4);
//! * per-workload-class *utilization factors* calibrated against public
//!   TensorRT measurements: convolutional networks sustain tens of percent
//!   of peak, while small-batch recurrent GEMV workloads collapse to ~1% —
//!   the utilization cliff responsible for the RNN/LSTM columns of Fig. 9;
//! * board power draw at inference load.
//!
//! The calibration values and their sources are documented in
//! EXPERIMENTS.md; every Figure 9 claim in this reproduction is a *ratio*
//! against this model, mirroring the paper's methodology.
//!
//! [`GpuPlatform`] implements `bpvec_sim`'s [`Evaluator`] trait, so the GPU
//! drops into any [`bpvec_sim::Scenario`] next to the ASIC platforms — that
//! is exactly how the bench crate's Figure 9 is declared.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId, PrecisionPolicy};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};
use serde::{Deserialize, Serialize};

/// GPU numeric precision mode (TensorRT execution mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuPrecision {
    /// INT8 tensor-core execution (homogeneous comparison).
    Int8,
    /// INT4 tensor-core execution (heterogeneous comparison).
    Int4,
}

/// Static device parameters (Table II, RTX 2080 Ti column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of tensor cores.
    pub tensor_cores: u32,
    /// Boost clock in MHz.
    pub clock_mhz: f64,
    /// INT8 MACs per tensor core per clock.
    pub int8_macs_per_core: u32,
    /// Board power at sustained inference load, W.
    pub board_power_w: f64,
}

impl GpuSpec {
    /// The RTX 2080 Ti as specified in Table II.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        GpuSpec {
            tensor_cores: 544,
            clock_mhz: 1545.0,
            int8_macs_per_core: 64,
            board_power_w: 250.0,
        }
    }

    /// Peak MAC throughput in GMAC/s at the given precision.
    #[must_use]
    pub fn peak_gmacs(&self, precision: GpuPrecision) -> f64 {
        let per_core = match precision {
            GpuPrecision::Int8 => self.int8_macs_per_core as f64,
            GpuPrecision::Int4 => 2.0 * self.int8_macs_per_core as f64,
        };
        self.tensor_cores as f64 * per_core * self.clock_mhz / 1e3
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

/// Sustained fraction of peak tensor throughput for one workload.
///
/// Calibrated against public TensorRT measurements (see EXPERIMENTS.md):
/// large convolutions with good data reuse keep tensor cores moderately
/// busy; AlexNet's huge FC layers and the recurrent models' GEMV streams are
/// memory-bound on GDDR6 and collapse utilization.
#[must_use]
pub fn utilization(id: NetworkId, precision: GpuPrecision) -> f64 {
    let base = match id {
        NetworkId::AlexNet => 0.055,
        NetworkId::InceptionV1 => 0.050,
        NetworkId::ResNet18 => 0.095,
        NetworkId::ResNet50 => 0.080,
        NetworkId::Rnn => 0.0028,
        NetworkId::Lstm => 0.0025,
        // Transformers: large dense GEMMs keep tensor cores busier than the
        // CNNs' tapered convolutions, but softmax/LayerNorm interludes and
        // attention's short reductions cap the sustained fraction.
        NetworkId::VitBase => 0.090,
        NetworkId::BertBase => 0.110,
    };
    match precision {
        GpuPrecision::Int8 => base,
        // INT4 doubles peak and sustains almost the same fraction of it
        // (TensorRT INT4 kernels scale nearly linearly on conv workloads).
        GpuPrecision::Int4 => base * 0.95,
    }
}

/// Result of evaluating one network on the GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuResult {
    /// Sustained throughput, GMAC/s.
    pub sustained_gmacs: f64,
    /// End-to-end latency for one inference, seconds.
    pub latency_s: f64,
    /// Inferences per second.
    pub inferences_per_s: f64,
    /// Performance-per-Watt, GOPS/W (ops = 2 × MACs).
    pub gops_per_watt: f64,
}

/// Evaluates a network on the analytical GPU model.
#[must_use]
pub fn evaluate(network: &Network, spec: &GpuSpec, precision: GpuPrecision) -> GpuResult {
    let util = utilization(network.id, precision);
    let sustained_gmacs = spec.peak_gmacs(precision) * util;
    let macs = network.total_macs() as f64;
    let latency_s = macs / (sustained_gmacs * 1e9);
    GpuResult {
        sustained_gmacs,
        latency_s,
        inferences_per_s: 1.0 / latency_s,
        gops_per_watt: 2.0 * sustained_gmacs / spec.board_power_w,
    }
}

/// The GPU as a [`Scenario`](bpvec_sim::Scenario) platform.
///
/// Wraps a [`GpuSpec`] for use anywhere an [`Evaluator`] is accepted. The
/// GPU has its own GDDR6 memory, so the scenario's off-chip memory axis is
/// ignored; its cells repeat the same measurement under every memory, which
/// is what makes it a constant normalization baseline (Figure 9).
///
/// By default the precision follows the workload's bitwidth policy
/// (homogeneous → INT8, heterogeneous → INT4, the paper's pairing); pin it
/// with [`GpuPlatform::with_precision`]. Modeling a different device?
/// Rename it with [`GpuPlatform::with_label`] so scenario columns (and
/// multi-GPU scenarios) stay unambiguous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuPlatform {
    /// Device parameters.
    pub spec: GpuSpec,
    /// Fixed precision, or `None` to follow the workload's policy.
    pub precision: Option<GpuPrecision>,
    label: String,
}

impl GpuPlatform {
    /// The RTX 2080 Ti with policy-matched precision.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        GpuPlatform {
            spec: GpuSpec::rtx_2080_ti(),
            precision: None,
            label: "RTX 2080 Ti".to_string(),
        }
    }

    /// A custom device: its parameters plus the label scenario columns use.
    #[must_use]
    pub fn new(label: impl Into<String>, spec: GpuSpec) -> Self {
        GpuPlatform {
            spec,
            precision: None,
            label: label.into(),
        }
    }

    /// Pins the execution precision regardless of workload policy.
    #[must_use]
    pub fn with_precision(mut self, precision: GpuPrecision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Renames the platform (e.g. to carry two GPU variants in one
    /// scenario).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn precision_for(&self, policy: &PrecisionPolicy) -> GpuPrecision {
        if let Some(p) = self.precision {
            return p;
        }
        match policy.as_preset() {
            // The paper's pairing, preserved bit-for-bit for Figure 9.
            Some(BitwidthPolicy::Homogeneous8) => GpuPrecision::Int8,
            Some(BitwidthPolicy::Heterogeneous) => GpuPrecision::Int4,
            // Non-preset policies (precision sweeps): TensorRT has no
            // sub-INT4 kernels, so any policy whose narrowest weight drops
            // to 4 bits or below runs the INT4 engine, everything wider
            // stays INT8.
            None => {
                if policy.min_weight_bits().is_some_and(|b| b.bits() <= 4) {
                    GpuPrecision::Int4
                } else {
                    GpuPrecision::Int8
                }
            }
        }
    }
}

impl Evaluator for GpuPlatform {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        let r = evaluate(network, &self.spec, self.precision_for(&workload.policy));
        Measurement {
            latency_s: r.latency_s,
            energy_j: r.latency_s * self.spec.board_power_w,
            macs: network.total_macs(),
            batch: 1,
            gops_per_watt: r.gops_per_watt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_int8_matches_turing_datasheet() {
        // 544 cores x 64 MACs x 1.545 GHz = 53.8 TMAC/s = 107.5 INT8 TOPS.
        let spec = GpuSpec::rtx_2080_ti();
        let peak = spec.peak_gmacs(GpuPrecision::Int8);
        assert!((peak - 53_790.0).abs() < 100.0, "{peak}");
        assert!((spec.peak_gmacs(GpuPrecision::Int4) - 2.0 * peak).abs() < 1.0);
    }

    #[test]
    fn recurrent_models_have_utilization_cliff() {
        for p in [GpuPrecision::Int8, GpuPrecision::Int4] {
            assert!(utilization(NetworkId::Rnn, p) < 0.02);
            assert!(utilization(NetworkId::Lstm, p) < 0.02);
            assert!(utilization(NetworkId::ResNet50, p) > 10.0 * utilization(NetworkId::Rnn, p));
        }
    }

    #[test]
    fn resnet50_int8_latency_is_in_published_ballpark() {
        // Public TensorRT INT8 numbers for 2080 Ti-class GPUs put ResNet-50
        // around 0.4-1.5 ms/image at moderate batch.
        let n = Network::build(NetworkId::ResNet50, BitwidthPolicy::Homogeneous8);
        let r = evaluate(&n, &GpuSpec::rtx_2080_ti(), GpuPrecision::Int8);
        // ~1500-1700 img/s per-stream throughput territory.
        assert!(
            (0.0003..0.002).contains(&r.latency_s),
            "latency {} s",
            r.latency_s
        );
    }

    #[test]
    fn int4_is_faster_but_sublinear() {
        let n = Network::build(NetworkId::ResNet50, BitwidthPolicy::Heterogeneous);
        let spec = GpuSpec::rtx_2080_ti();
        let r8 = evaluate(&n, &spec, GpuPrecision::Int8);
        let r4 = evaluate(&n, &spec, GpuPrecision::Int4);
        let speedup = r8.latency_s / r4.latency_s;
        assert!(speedup > 1.0 && speedup < 2.0, "INT4 speedup {speedup}");
    }

    #[test]
    fn platform_follows_policy_and_ignores_memory() {
        let p = GpuPlatform::rtx_2080_ti();
        let w8 = Workload::new(NetworkId::ResNet50, BitwidthPolicy::Homogeneous8);
        let w4 = Workload::new(NetworkId::ResNet50, BitwidthPolicy::Heterogeneous);
        let m8 = p.evaluate(&w8, &w8.build(), &DramSpec::ddr4());
        let m8_hbm = p.evaluate(&w8, &w8.build(), &DramSpec::hbm2());
        let m4 = p.evaluate(&w4, &w4.build(), &DramSpec::ddr4());
        assert_eq!(m8, m8_hbm, "the GPU brings its own memory system");
        assert!(m4.latency_s < m8.latency_s, "INT4 must beat INT8");
        // Native ratio is preserved bit-for-bit for Figure 9.
        let direct = evaluate(&w8.build(), &p.spec, GpuPrecision::Int8);
        assert_eq!(m8.gops_per_watt, direct.gops_per_watt);
        assert_eq!(p.label(), "RTX 2080 Ti");
        // Pinned precision overrides the policy pairing.
        let pinned = p.clone().with_precision(GpuPrecision::Int8);
        let m4_pinned = pinned.evaluate(&w4, &w4.build(), &DramSpec::ddr4());
        assert!(m4_pinned.latency_s > m4.latency_s);
        // Custom devices carry their own label, so two GPUs can share a
        // scenario without a duplicate-label clash.
        let a100ish = GpuPlatform::new("A100-ish", GpuSpec::rtx_2080_ti());
        assert_eq!(a100ish.label(), "A100-ish");
        assert_eq!(
            p.clone().with_label("2080 Ti @ 300W").label(),
            "2080 Ti @ 300W"
        );
    }

    #[test]
    fn perf_per_watt_consistency() {
        let n = Network::build(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8);
        let spec = GpuSpec::rtx_2080_ti();
        let r = evaluate(&n, &spec, GpuPrecision::Int8);
        let expect = 2.0 * r.sustained_gmacs / spec.board_power_w;
        assert!((r.gops_per_watt - expect).abs() < 1e-9);
        assert!((r.inferences_per_s * r.latency_s - 1.0).abs() < 1e-9);
    }
}
