//! # `bpvec-gpumodel` — analytical RTX 2080 Ti model (Figure 9 substitution)
//!
//! The paper compares BPVeC's performance-per-Watt against an Nvidia
//! RTX 2080 Ti running TensorRT 5.1 with INT8 (homogeneous) or INT4
//! (heterogeneous) tensor-core execution (§IV-B3, Table II). A physical GPU
//! and TensorRT are unavailable in this environment, so this crate provides
//! an *analytical* Turing model:
//!
//! * peak tensor throughput derived from Table II's device parameters
//!   (544 tensor cores @ 1545 MHz; 64 INT8 MACs per tensor core per clock,
//!   2× that for INT4);
//! * per-workload-class *utilization factors* calibrated against public
//!   TensorRT measurements: convolutional networks sustain tens of percent
//!   of peak, while small-batch recurrent GEMV workloads collapse to ~1% —
//!   the utilization cliff responsible for the RNN/LSTM columns of Fig. 9;
//! * board power draw at inference load.
//!
//! The calibration values and their sources are documented in
//! EXPERIMENTS.md; every Figure 9 claim in this reproduction is a *ratio*
//! against this model, mirroring the paper's methodology.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use bpvec_dnn::{Network, NetworkId};
use serde::{Deserialize, Serialize};

/// GPU numeric precision mode (TensorRT execution mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuPrecision {
    /// INT8 tensor-core execution (homogeneous comparison).
    Int8,
    /// INT4 tensor-core execution (heterogeneous comparison).
    Int4,
}

/// Static device parameters (Table II, RTX 2080 Ti column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of tensor cores.
    pub tensor_cores: u32,
    /// Boost clock in MHz.
    pub clock_mhz: f64,
    /// INT8 MACs per tensor core per clock.
    pub int8_macs_per_core: u32,
    /// Board power at sustained inference load, W.
    pub board_power_w: f64,
}

impl GpuSpec {
    /// The RTX 2080 Ti as specified in Table II.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        GpuSpec {
            tensor_cores: 544,
            clock_mhz: 1545.0,
            int8_macs_per_core: 64,
            board_power_w: 250.0,
        }
    }

    /// Peak MAC throughput in GMAC/s at the given precision.
    #[must_use]
    pub fn peak_gmacs(&self, precision: GpuPrecision) -> f64 {
        let per_core = match precision {
            GpuPrecision::Int8 => self.int8_macs_per_core as f64,
            GpuPrecision::Int4 => 2.0 * self.int8_macs_per_core as f64,
        };
        self.tensor_cores as f64 * per_core * self.clock_mhz / 1e3
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

/// Sustained fraction of peak tensor throughput for one workload.
///
/// Calibrated against public TensorRT measurements (see EXPERIMENTS.md):
/// large convolutions with good data reuse keep tensor cores moderately
/// busy; AlexNet's huge FC layers and the recurrent models' GEMV streams are
/// memory-bound on GDDR6 and collapse utilization.
#[must_use]
pub fn utilization(id: NetworkId, precision: GpuPrecision) -> f64 {
    let base = match id {
        NetworkId::AlexNet => 0.055,
        NetworkId::InceptionV1 => 0.050,
        NetworkId::ResNet18 => 0.095,
        NetworkId::ResNet50 => 0.080,
        NetworkId::Rnn => 0.0028,
        NetworkId::Lstm => 0.0025,
    };
    match precision {
        GpuPrecision::Int8 => base,
        // INT4 doubles peak and sustains almost the same fraction of it
        // (TensorRT INT4 kernels scale nearly linearly on conv workloads).
        GpuPrecision::Int4 => base * 0.95,
    }
}

/// Result of evaluating one network on the GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuResult {
    /// Sustained throughput, GMAC/s.
    pub sustained_gmacs: f64,
    /// End-to-end latency for one inference, seconds.
    pub latency_s: f64,
    /// Inferences per second.
    pub inferences_per_s: f64,
    /// Performance-per-Watt, GOPS/W (ops = 2 × MACs).
    pub gops_per_watt: f64,
}

/// Evaluates a network on the analytical GPU model.
#[must_use]
pub fn evaluate(network: &Network, spec: &GpuSpec, precision: GpuPrecision) -> GpuResult {
    let util = utilization(network.id, precision);
    let sustained_gmacs = spec.peak_gmacs(precision) * util;
    let macs = network.total_macs() as f64;
    let latency_s = macs / (sustained_gmacs * 1e9);
    GpuResult {
        sustained_gmacs,
        latency_s,
        inferences_per_s: 1.0 / latency_s,
        gops_per_watt: 2.0 * sustained_gmacs / spec.board_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_dnn::BitwidthPolicy;

    #[test]
    fn peak_int8_matches_turing_datasheet() {
        // 544 cores x 64 MACs x 1.545 GHz = 53.8 TMAC/s = 107.5 INT8 TOPS.
        let spec = GpuSpec::rtx_2080_ti();
        let peak = spec.peak_gmacs(GpuPrecision::Int8);
        assert!((peak - 53_790.0).abs() < 100.0, "{peak}");
        assert!((spec.peak_gmacs(GpuPrecision::Int4) - 2.0 * peak).abs() < 1.0);
    }

    #[test]
    fn recurrent_models_have_utilization_cliff() {
        for p in [GpuPrecision::Int8, GpuPrecision::Int4] {
            assert!(utilization(NetworkId::Rnn, p) < 0.02);
            assert!(utilization(NetworkId::Lstm, p) < 0.02);
            assert!(utilization(NetworkId::ResNet50, p) > 10.0 * utilization(NetworkId::Rnn, p));
        }
    }

    #[test]
    fn resnet50_int8_latency_is_in_published_ballpark() {
        // Public TensorRT INT8 numbers for 2080 Ti-class GPUs put ResNet-50
        // around 0.4-1.5 ms/image at moderate batch.
        let n = Network::build(NetworkId::ResNet50, BitwidthPolicy::Homogeneous8);
        let r = evaluate(&n, &GpuSpec::rtx_2080_ti(), GpuPrecision::Int8);
        // ~1500-1700 img/s per-stream throughput territory.
        assert!(
            (0.0003..0.002).contains(&r.latency_s),
            "latency {} s",
            r.latency_s
        );
    }

    #[test]
    fn int4_is_faster_but_sublinear() {
        let n = Network::build(NetworkId::ResNet50, BitwidthPolicy::Heterogeneous);
        let spec = GpuSpec::rtx_2080_ti();
        let r8 = evaluate(&n, &spec, GpuPrecision::Int8);
        let r4 = evaluate(&n, &spec, GpuPrecision::Int4);
        let speedup = r8.latency_s / r4.latency_s;
        assert!(speedup > 1.0 && speedup < 2.0, "INT4 speedup {speedup}");
    }

    #[test]
    fn perf_per_watt_consistency() {
        let n = Network::build(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8);
        let spec = GpuSpec::rtx_2080_ti();
        let r = evaluate(&n, &spec, GpuPrecision::Int8);
        let expect = 2.0 * r.sustained_gmacs / spec.board_power_w;
        assert!((r.gops_per_watt - expect).abs() < 1e-9);
        assert!((r.inferences_per_s * r.latency_s - 1.0).abs() < 1e-9);
    }
}
