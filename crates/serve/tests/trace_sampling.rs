//! Trace-sampling contract: `RunOptions::trace_every` bounds trace volume
//! without corrupting span structure, and a stride of 1 reproduces the
//! unsampled trace byte-for-byte.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_obs::{MemorySink, Phase, TraceSink};
use bpvec_serve::{
    run_serving_traced, run_serving_with_options, ArrivalProcess, BatchPolicy, ClusterSpec,
    RequestMix, Router, RunOptions, ServiceModel, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};

struct ConstServer;

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: 1e-3,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn traffic(requests: u64) -> TrafficSpec {
    TrafficSpec::new(
        "sampled",
        ArrivalProcess::poisson(1500.0),
        RequestMix::single(Workload::new(
            NetworkId::ResNet18,
            BitwidthPolicy::Homogeneous8,
        )),
        requests,
    )
}

fn run_sampled(requests: u64, trace_every: u64) -> MemorySink {
    let sink = MemorySink::new();
    let _ = run_serving_with_options(
        &ConstServer,
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 0.002),
        ClusterSpec::new(2, Router::JoinShortestQueue),
        &traffic(requests),
        ServiceModel::Deterministic,
        9,
        RunOptions::default().with_trace_every(trace_every),
        Some(&sink as &dyn TraceSink),
    );
    sink
}

#[test]
fn sampling_stride_bounds_request_events() {
    let requests = 7_000u64;
    let every = 7u64;
    let events = run_sampled(requests, every).take();
    let sampled_ids = requests.div_ceil(every);
    // Request-lane instants: exactly one arrive and one complete per
    // sampled request, and nothing for unsampled ones.
    let arrives = events.iter().filter(|e| e.name == "arrive").count() as u64;
    let completes = events.iter().filter(|e| e.name == "complete").count() as u64;
    assert_eq!(arrives, sampled_ids);
    assert_eq!(completes, sampled_ids);
    // Total volume shrinks roughly with the stride: per-request events are
    // gone for 6/7 of requests, and exec spans only surface when a batch
    // carries a sampled request.
    let full = run_sampled(requests, 1).take();
    assert!(
        events.len() * 4 < full.len(),
        "sampled trace ({}) should be several times smaller than full ({})",
        events.len(),
        full.len()
    );
}

#[test]
fn sampled_exec_spans_still_pair() {
    let events = run_sampled(5_000, 13).take();
    // Per (pid, tid) track, Begin/End events must nest: the count matches
    // and no End arrives before its Begin.
    let mut open: std::collections::HashMap<(u32, u32), i64> = std::collections::HashMap::new();
    for e in &events {
        match e.ph {
            Phase::Begin => *open.entry((e.pid, e.tid)).or_insert(0) += 1,
            Phase::End => {
                let depth = open.entry((e.pid, e.tid)).or_insert(0);
                *depth -= 1;
                assert!(*depth >= 0, "unmatched E on pid={} tid={}", e.pid, e.tid);
            }
            _ => {}
        }
    }
    for ((pid, tid), depth) in open {
        assert_eq!(depth, 0, "unclosed span on pid={pid} tid={tid}");
    }
}

#[test]
fn stride_one_matches_the_unsampled_trace_byte_for_byte() {
    let requests = 2_000u64;
    let via_options = run_sampled(requests, 1);
    let legacy = MemorySink::new();
    // The legacy traced entry point retains records; tracing is unaffected
    // by retention, so the streams must still agree byte for byte.
    let _ = run_serving_traced(
        &ConstServer,
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 0.002),
        ClusterSpec::new(2, Router::JoinShortestQueue),
        &traffic(requests),
        ServiceModel::Deterministic,
        9,
        &legacy,
    );
    assert_eq!(via_options.to_chrome_json(), legacy.to_chrome_json());
}
