//! Calendar-queue ⇔ binary-heap bit-identity.
//!
//! The event loop orders events by a strict `(time, seq)` total order, so
//! any correct priority queue must pop the exact same sequence — the
//! calendar queue is a performance change, not a semantic one. These tests
//! pin that: static, adaptive, and autoscaled serving runs (and their
//! traces) must be **bit-identical** under `QueueKind::Heap` and
//! `QueueKind::Calendar` across every arrival process and policy shape the
//! simulator supports.

use bpvec_dnn::{BitwidthPolicy, DegradationLadder, Network, NetworkId, PrecisionPolicy};
use bpvec_obs::{MemorySink, TraceSink};
use bpvec_serve::{
    run_serving_adaptive_with_options, run_serving_with_options, AdaptiveSpec, ArrivalProcess,
    AutoscalerConfig, BatchPolicy, ClusterSpec, ControllerConfig, QueueKind, RequestMix, Router,
    RunOptions, ServiceModel, ServingOutcome, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};

/// Constant per-inference latency backend.
struct ConstServer;

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: 1e-3,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn mix() -> RequestMix {
    RequestMix::new()
        .and(
            Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
            3.0,
        )
        .and(
            Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            1.0,
        )
}

fn processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::poisson(1200.0),
        ArrivalProcess::bursty(300.0, 2500.0, 0.02, 0.005),
        ArrivalProcess::trace(vec![0.001, 0.0, 0.002, 0.0005, 0.0, 0.003]),
        ArrivalProcess::closed_loop(5, 0.0005),
        ArrivalProcess::diurnal(400.0, 1600.0, 2.0),
        ArrivalProcess::flash_crowd(400.0, 4000.0, 0.5, 0.2, 1.0),
    ]
}

fn run_static(process: &ArrivalProcess, policy: BatchPolicy, queue: QueueKind) -> ServingOutcome {
    let traffic = TrafficSpec::new("eq", process.clone(), mix(), 2_000);
    run_serving_with_options(
        &ConstServer,
        &DramSpec::ddr4(),
        policy,
        ClusterSpec::new(3, Router::JoinShortestQueue),
        &traffic,
        ServiceModel::ExponentialJitter,
        0xC0FFEE,
        RunOptions::retained().with_queue(queue),
        None,
    )
}

#[test]
fn static_runs_are_bit_identical_across_queues() {
    for process in processes() {
        for policy in [
            BatchPolicy::immediate(),
            BatchPolicy::fixed(4),
            BatchPolicy::deadline(8, 0.002),
        ] {
            let heap = run_static(&process, policy, QueueKind::Heap);
            let cal = run_static(&process, policy, QueueKind::Calendar);
            assert_eq!(heap, cal, "{process} / {policy}: queues diverged");
        }
    }
}

fn ladder() -> DegradationLadder {
    PrecisionPolicy::degradation_ladder(
        ["hom8", "int4"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("narrows monotonically")
}

fn run_adaptive(autoscale: bool, queue: QueueKind) -> (ServingOutcome, String) {
    let traffic = TrafficSpec::new(
        "eq-adaptive",
        ArrivalProcess::bursty(400.0, 3000.0, 0.02, 0.01),
        mix(),
        3_000,
    );
    let mut spec = AdaptiveSpec::new(ladder()).with_controller(
        ControllerConfig::new(0.020)
            .with_depths(4, 24)
            .with_target_p99(0.01),
    );
    if autoscale {
        spec = spec.with_autoscaler(AutoscalerConfig::new(1, 4));
    }
    let sink = MemorySink::new();
    let out = run_serving_adaptive_with_options(
        &ConstServer,
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 0.002),
        ClusterSpec::new(2, Router::LeastDegraded),
        &traffic,
        &spec,
        ServiceModel::ExponentialJitter,
        0xADA7,
        RunOptions::retained().with_queue(queue),
        Some(&sink as &dyn TraceSink),
    );
    (out, sink.to_chrome_json())
}

#[test]
fn adaptive_and_autoscaled_runs_match_down_to_trace_bytes() {
    for autoscale in [false, true] {
        let (heap_out, heap_trace) = run_adaptive(autoscale, QueueKind::Heap);
        let (cal_out, cal_trace) = run_adaptive(autoscale, QueueKind::Calendar);
        assert_eq!(
            heap_out, cal_out,
            "autoscale={autoscale}: outcomes diverged"
        );
        assert_eq!(
            heap_trace, cal_trace,
            "autoscale={autoscale}: trace bytes diverged"
        );
    }
}
