//! Scheduler-invariant property tests and closed-form queueing checks.
//!
//! The invariants any correct batching scheduler must uphold, checked over
//! randomized policies, arrival processes, and cluster shapes:
//!
//! * **conservation** — every admitted request completes exactly once;
//! * **batch cap** — no dispatched batch exceeds the policy's maximum;
//! * **class FIFO** — within a network class, requests start service in
//!   arrival order.
//!
//! Plus analytical sanity: a Poisson + immediate + single-replica
//! configuration with exponential service jitter is a textbook M/M/1 whose
//! mean sojourn is `1/(μ−λ)`, and with deterministic service an M/D/1 with
//! `S + ρS/(2(1−ρ))` — the simulator must land within 5% of both.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId, PrecisionPolicy};
use bpvec_serve::{
    run_serving, run_serving_adaptive, AdaptiveSpec, ArrivalProcess, AutoscalerConfig, BatchPolicy,
    ClusterSpec, ControllerConfig, RequestMix, Router, ServiceModel, ServingMetrics,
    ServingOutcome, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};
use proptest::prelude::*;

/// Constant per-inference latency backend: service cost is `s · batch`, so
/// the event loop (not the analytical model) is what gets exercised.
struct ConstServer {
    per_inference_s: f64,
}

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: self.per_inference_s,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn two_class_mix() -> RequestMix {
    RequestMix::new()
        .and(
            Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
            3.0,
        )
        .and(
            Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            1.0,
        )
}

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    prop_oneof![
        Just(BatchPolicy::immediate()),
        (1u64..=8).prop_map(BatchPolicy::fixed),
        ((1u64..=16), (0.0f64..0.004)).prop_map(|(b, w)| BatchPolicy::deadline(b, w)),
    ]
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (100.0f64..2000.0).prop_map(ArrivalProcess::poisson),
        ((100.0f64..400.0), (800.0f64..2500.0))
            .prop_map(|(base, burst)| ArrivalProcess::bursty(base, burst, 0.02, 0.005)),
        Just(ArrivalProcess::trace(vec![
            0.001, 0.0, 0.002, 0.0005, 0.0, 0.003,
        ])),
        ((1u64..=6), (0.0f64..0.002)).prop_map(|(c, think)| ArrivalProcess::closed_loop(c, think)),
    ]
}

fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    (
        1u32..=4,
        prop_oneof![
            Just(Router::RoundRobin),
            Just(Router::JoinShortestQueue),
            Just(Router::NetworkAffinity),
        ],
    )
        .prop_map(|(replicas, router)| ClusterSpec::new(replicas, router))
}

fn outcome_for(
    policy: BatchPolicy,
    process: ArrivalProcess,
    cluster: ClusterSpec,
    seed: u64,
) -> ServingOutcome {
    let traffic = TrafficSpec::new("prop", process, two_class_mix(), 300);
    run_serving(
        &ConstServer {
            per_inference_s: 1e-3,
        },
        &DramSpec::ddr4(),
        policy,
        cluster,
        &traffic,
        ServiceModel::Deterministic,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every admitted request completes exactly once, with a
    /// causally ordered lifecycle.
    #[test]
    fn every_admitted_request_completes_exactly_once(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        prop_assert_eq!(out.admitted, 300);
        prop_assert_eq!(out.records.len(), 300);
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..300).collect::<Vec<u64>>());
        for r in &out.records {
            prop_assert!(r.arrival_s <= r.start_s, "{} > {}", r.arrival_s, r.start_s);
            prop_assert!(r.start_s <= r.completion_s);
        }
    }

    /// No dispatched batch ever exceeds the policy's cap.
    #[test]
    fn batches_respect_the_policy_cap(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        let cap = policy.max_batch();
        for r in &out.records {
            prop_assert!(r.batch >= 1 && r.batch <= cap, "batch {} vs cap {cap}", r.batch);
        }
    }

    /// FIFO within a network class: requests of the same class start
    /// service in admission order (admission ids are arrival-ordered).
    #[test]
    fn fifo_within_each_class(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        for class in 0..2 {
            // Per replica: routing may interleave classes across shards,
            // but each shard must serve its own class queue FIFO.
            for shard in 0..4 {
                let mut in_order: Vec<(u64, f64)> = out
                    .records
                    .iter()
                    .filter(|r| r.class == class && r.shard == shard)
                    .map(|r| (r.id, r.start_s))
                    .collect();
                in_order.sort_by_key(|(id, _)| *id);
                for pair in in_order.windows(2) {
                    prop_assert!(
                        pair[0].1 <= pair[1].1,
                        "class {class} shard {shard}: id {} started {} after id {} at {}",
                        pair[0].0,
                        pair[0].1,
                        pair[1].0,
                        pair[1].1
                    );
                }
            }
        }
    }
}

/// Backend whose per-inference latency scales with the workload policy's
/// narrowest weight width — exercises rung-dependent service costs without
/// the analytical model.
struct RungServer {
    full_s: f64,
}

impl Evaluator for RungServer {
    fn label(&self) -> String {
        "rung".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        let bits = workload
            .policy
            .min_weight_bits()
            .expect("non-empty policy")
            .bits();
        Measurement {
            latency_s: self.full_s * f64::from(bits) / 8.0,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn arb_adaptive() -> impl Strategy<Value = AdaptiveSpec> {
    let ladder = PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("narrows monotonically");
    (
        (0.001f64..0.02), // tick interval
        (0u64..=2),       // low watermark
        (4u64..=24),      // high watermark
        (0u64..=3),       // dwell
        // Optional autoscaler: (up_depth, max_replicas).
        prop_oneof![Just(None), ((1.0f64..8.0), (2u32..=4)).prop_map(Some)],
    )
        .prop_map(move |(interval, low, high, dwell, auto)| {
            let mut spec = AdaptiveSpec::new(ladder.clone()).with_controller(
                ControllerConfig::new(interval)
                    .with_depths(low, high)
                    .with_dwell(dwell),
            );
            if let Some((up, max)) = auto {
                spec = spec.with_autoscaler(AutoscalerConfig::new(1, max).with_depths(0.5, up));
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// JSQ tie-breaking order: simultaneous arrivals into an idle cluster
    /// with service too slow for anything to complete must land request
    /// `i` on replica `i mod replicas` — exactly the pattern produced by
    /// "lowest replica index wins ties", and broken by any other rule.
    #[test]
    fn jsq_ties_go_to_the_lowest_replica_index(
        replicas in 1u32..=6,
        rounds in 1u64..=5,
        seed in 0u64..1000,
    ) {
        let requests = u64::from(replicas) * rounds;
        let traffic = TrafficSpec::new(
            "ties",
            // A single zero gap replayed cyclically: every request arrives
            // at t = 0, in admission order.
            ArrivalProcess::trace(vec![0.0]),
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            requests,
        );
        let out = run_serving(
            &ConstServer { per_inference_s: 1e3 },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::new(replicas, Router::JoinShortestQueue),
            &traffic,
            ServiceModel::Deterministic,
            seed,
        );
        prop_assert_eq!(out.records.len() as u64, requests);
        for r in &out.records {
            prop_assert_eq!(
                r.shard as u64,
                r.id % u64::from(replicas),
                "request {} landed on replica {} (depths tied at its arrival)",
                r.id,
                r.shard
            );
        }
    }

    /// Adaptive control never breaks the scheduler invariants: every
    /// request still completes exactly once, switches walk the ladder one
    /// rung at a time, records carry rungs the ladder actually has, and
    /// the autoscaler stays within its bounds.
    #[test]
    fn adaptive_control_preserves_conservation_and_ladder_contract(
        spec in arb_adaptive(),
        policy in arb_policy(),
        seed in 0u64..1000,
    ) {
        let traffic = TrafficSpec::new(
            "prop",
            ArrivalProcess::bursty(400.0, 3000.0, 0.05, 0.02),
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            400,
        );
        let out = run_serving_adaptive(
            &RungServer { full_s: 1e-3 },
            &DramSpec::ddr4(),
            policy,
            ClusterSpec::single(),
            &traffic,
            &spec,
            ServiceModel::Deterministic,
            seed,
        );
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..400).collect::<Vec<u64>>());
        let rungs = 3usize;
        prop_assert!(out.records.iter().all(|r| r.rung < rungs));
        for s in &out.policy_switches {
            prop_assert!(s.to_rung < rungs);
            prop_assert!(s.to_rung.abs_diff(s.from_rung) == 1, "one rung per decision");
        }
        let max_replicas = spec.autoscaler.map_or(1, |a| a.max_replicas);
        prop_assert!(out.records.iter().all(|r| (r.shard as u32) < max_replicas));
        // Time accounting stays conservative under switching and scaling.
        let rung_sum: f64 = out.rung_time_s.iter().sum();
        prop_assert!((rung_sum - out.active_integral_s).abs() < 1e-6 * out.active_integral_s.max(1.0));
    }
}

/// M/M/1: Poisson arrivals, exponential service, one server, no batching.
/// Closed form: mean sojourn `T = 1/(μ − λ)`.
#[test]
fn mm1_mean_sojourn_matches_closed_form_within_5pct() {
    let s = 1e-3; // μ = 1000/s
    let lambda = 600.0; // ρ = 0.6
    let traffic = TrafficSpec::new(
        "mm1",
        ArrivalProcess::poisson(lambda),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        60_000,
    )
    .with_warmup(5_000);
    let out = run_serving(
        &ConstServer { per_inference_s: s },
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::single(),
        &traffic,
        ServiceModel::ExponentialJitter,
        42,
    );
    let m = ServingMetrics::from_outcome(&out, 1, traffic.warmup, None);
    let expect = 1.0 / (1.0 / s - lambda); // 2.5 ms
    let rel = (m.latency.mean_s - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "M/M/1 mean sojourn {:.6} vs closed-form {:.6} ({:.1}% off)",
        m.latency.mean_s,
        expect,
        rel * 100.0
    );
    // Utilization must track ρ as well.
    assert!((m.utilization - 0.6).abs() < 0.03, "{}", m.utilization);
}

/// M/D/1: same setup with deterministic service. Closed form:
/// `T = S + ρS/(2(1−ρ))`.
#[test]
fn md1_mean_sojourn_matches_closed_form_within_5pct() {
    let s = 1e-3;
    let lambda = 600.0;
    let rho: f64 = 0.6;
    let traffic = TrafficSpec::new(
        "md1",
        ArrivalProcess::poisson(lambda),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        60_000,
    )
    .with_warmup(5_000);
    let out = run_serving(
        &ConstServer { per_inference_s: s },
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::single(),
        &traffic,
        ServiceModel::Deterministic,
        42,
    );
    let m = ServingMetrics::from_outcome(&out, 1, traffic.warmup, None);
    let expect = s + rho * s / (2.0 * (1.0 - rho)); // 1.375 ms
    let rel = (m.latency.mean_s - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "M/D/1 mean sojourn {:.6} vs closed-form {:.6} ({:.1}% off)",
        m.latency.mean_s,
        expect,
        rel * 100.0
    );
}

/// The acceptance-criterion behavior: on a real CNN backend under high
/// load, deadline-aware dynamic batching beats immediate dispatch on p99
/// latency. AlexNet's huge FC layers make it weight-traffic-bound at batch
/// 1, so the backend's `BatchRegime` batch costs are strongly sub-linear
/// (per-inference latency drops 5.0 → 1.6 ms from batch 1 to 16, then
/// rises again at 32 under tile spill) — batching raises service capacity.
#[test]
fn dynamic_batching_beats_immediate_p99_under_high_load() {
    use bpvec_sim::AcceleratorConfig;
    let accel = AcceleratorConfig::bpvec();
    let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let net = w.build();
    let s1 = accel
        .evaluate(
            &w.clone().with_batching(bpvec_sim::BatchRegime::fixed(1)),
            &net,
            &DramSpec::ddr4(),
        )
        .latency_s;
    // 1.2× the batch-1 capacity: immediate dispatch is overloaded, dynamic
    // batching is not.
    let traffic = TrafficSpec::new(
        "overload",
        ArrivalProcess::poisson(1.2 / s1),
        RequestMix::single(w),
        1_500,
    )
    .with_warmup(150);
    let run = |policy| {
        let out = run_serving(
            &accel,
            &DramSpec::ddr4(),
            policy,
            ClusterSpec::single(),
            &traffic,
            ServiceModel::Deterministic,
            9,
        );
        ServingMetrics::from_outcome(&out, 1, traffic.warmup, None)
    };
    let immediate = run(BatchPolicy::immediate());
    let dynamic = run(BatchPolicy::deadline(16, 4.0 * s1));
    assert!(
        dynamic.latency.p99_s < immediate.latency.p99_s,
        "dynamic p99 {:.6}s must beat immediate p99 {:.6}s",
        dynamic.latency.p99_s,
        immediate.latency.p99_s
    );
    assert!(dynamic.mean_batch > 1.5, "{}", dynamic.mean_batch);
    assert!(dynamic.throughput_rps > immediate.throughput_rps);
}
