//! Scheduler-invariant property tests and closed-form queueing checks.
//!
//! The invariants any correct batching scheduler must uphold, checked over
//! randomized policies, arrival processes, and cluster shapes:
//!
//! * **conservation** — every admitted request completes exactly once;
//! * **batch cap** — no dispatched batch exceeds the policy's maximum;
//! * **class FIFO** — within a network class, requests start service in
//!   arrival order.
//!
//! Plus analytical sanity: a Poisson + immediate + single-replica
//! configuration with exponential service jitter is a textbook M/M/1 whose
//! mean sojourn is `1/(μ−λ)`, and with deterministic service an M/D/1 with
//! `S + ρS/(2(1−ρ))` — the simulator must land within 5% of both.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_serve::{
    run_serving, ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, Router, ServiceModel,
    ServingMetrics, ServingOutcome, TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload};
use proptest::prelude::*;

/// Constant per-inference latency backend: service cost is `s · batch`, so
/// the event loop (not the analytical model) is what gets exercised.
struct ConstServer {
    per_inference_s: f64,
}

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: self.per_inference_s,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn two_class_mix() -> RequestMix {
    RequestMix::new()
        .and(
            Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
            3.0,
        )
        .and(
            Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            1.0,
        )
}

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    prop_oneof![
        Just(BatchPolicy::immediate()),
        (1u64..=8).prop_map(BatchPolicy::fixed),
        ((1u64..=16), (0.0f64..0.004)).prop_map(|(b, w)| BatchPolicy::deadline(b, w)),
    ]
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (100.0f64..2000.0).prop_map(ArrivalProcess::poisson),
        ((100.0f64..400.0), (800.0f64..2500.0))
            .prop_map(|(base, burst)| ArrivalProcess::bursty(base, burst, 0.02, 0.005)),
        Just(ArrivalProcess::trace(vec![
            0.001, 0.0, 0.002, 0.0005, 0.0, 0.003,
        ])),
        ((1u64..=6), (0.0f64..0.002)).prop_map(|(c, think)| ArrivalProcess::closed_loop(c, think)),
    ]
}

fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    (
        1u32..=4,
        prop_oneof![
            Just(Router::RoundRobin),
            Just(Router::JoinShortestQueue),
            Just(Router::NetworkAffinity),
        ],
    )
        .prop_map(|(replicas, router)| ClusterSpec::new(replicas, router))
}

fn outcome_for(
    policy: BatchPolicy,
    process: ArrivalProcess,
    cluster: ClusterSpec,
    seed: u64,
) -> ServingOutcome {
    let traffic = TrafficSpec::new("prop", process, two_class_mix(), 300);
    run_serving(
        &ConstServer {
            per_inference_s: 1e-3,
        },
        &DramSpec::ddr4(),
        policy,
        cluster,
        &traffic,
        ServiceModel::Deterministic,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every admitted request completes exactly once, with a
    /// causally ordered lifecycle.
    #[test]
    fn every_admitted_request_completes_exactly_once(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        prop_assert_eq!(out.admitted, 300);
        prop_assert_eq!(out.records.len(), 300);
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..300).collect::<Vec<u64>>());
        for r in &out.records {
            prop_assert!(r.arrival_s <= r.start_s, "{} > {}", r.arrival_s, r.start_s);
            prop_assert!(r.start_s <= r.completion_s);
        }
    }

    /// No dispatched batch ever exceeds the policy's cap.
    #[test]
    fn batches_respect_the_policy_cap(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        let cap = policy.max_batch();
        for r in &out.records {
            prop_assert!(r.batch >= 1 && r.batch <= cap, "batch {} vs cap {cap}", r.batch);
        }
    }

    /// FIFO within a network class: requests of the same class start
    /// service in admission order (admission ids are arrival-ordered).
    #[test]
    fn fifo_within_each_class(
        policy in arb_policy(),
        process in arb_process(),
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let out = outcome_for(policy, process, cluster, seed);
        for class in 0..2 {
            // Per replica: routing may interleave classes across shards,
            // but each shard must serve its own class queue FIFO.
            for shard in 0..4 {
                let mut in_order: Vec<(u64, f64)> = out
                    .records
                    .iter()
                    .filter(|r| r.class == class && r.shard == shard)
                    .map(|r| (r.id, r.start_s))
                    .collect();
                in_order.sort_by_key(|(id, _)| *id);
                for pair in in_order.windows(2) {
                    prop_assert!(
                        pair[0].1 <= pair[1].1,
                        "class {class} shard {shard}: id {} started {} after id {} at {}",
                        pair[0].0,
                        pair[0].1,
                        pair[1].0,
                        pair[1].1
                    );
                }
            }
        }
    }
}

/// M/M/1: Poisson arrivals, exponential service, one server, no batching.
/// Closed form: mean sojourn `T = 1/(μ − λ)`.
#[test]
fn mm1_mean_sojourn_matches_closed_form_within_5pct() {
    let s = 1e-3; // μ = 1000/s
    let lambda = 600.0; // ρ = 0.6
    let traffic = TrafficSpec::new(
        "mm1",
        ArrivalProcess::poisson(lambda),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        60_000,
    )
    .with_warmup(5_000);
    let out = run_serving(
        &ConstServer { per_inference_s: s },
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::single(),
        &traffic,
        ServiceModel::ExponentialJitter,
        42,
    );
    let m = ServingMetrics::from_outcome(&out, 1, traffic.warmup, None);
    let expect = 1.0 / (1.0 / s - lambda); // 2.5 ms
    let rel = (m.latency.mean_s - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "M/M/1 mean sojourn {:.6} vs closed-form {:.6} ({:.1}% off)",
        m.latency.mean_s,
        expect,
        rel * 100.0
    );
    // Utilization must track ρ as well.
    assert!((m.utilization - 0.6).abs() < 0.03, "{}", m.utilization);
}

/// M/D/1: same setup with deterministic service. Closed form:
/// `T = S + ρS/(2(1−ρ))`.
#[test]
fn md1_mean_sojourn_matches_closed_form_within_5pct() {
    let s = 1e-3;
    let lambda = 600.0;
    let rho: f64 = 0.6;
    let traffic = TrafficSpec::new(
        "md1",
        ArrivalProcess::poisson(lambda),
        RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
        60_000,
    )
    .with_warmup(5_000);
    let out = run_serving(
        &ConstServer { per_inference_s: s },
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        ClusterSpec::single(),
        &traffic,
        ServiceModel::Deterministic,
        42,
    );
    let m = ServingMetrics::from_outcome(&out, 1, traffic.warmup, None);
    let expect = s + rho * s / (2.0 * (1.0 - rho)); // 1.375 ms
    let rel = (m.latency.mean_s - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "M/D/1 mean sojourn {:.6} vs closed-form {:.6} ({:.1}% off)",
        m.latency.mean_s,
        expect,
        rel * 100.0
    );
}

/// The acceptance-criterion behavior: on a real CNN backend under high
/// load, deadline-aware dynamic batching beats immediate dispatch on p99
/// latency. AlexNet's huge FC layers make it weight-traffic-bound at batch
/// 1, so the backend's `BatchRegime` batch costs are strongly sub-linear
/// (per-inference latency drops 5.0 → 1.6 ms from batch 1 to 16, then
/// rises again at 32 under tile spill) — batching raises service capacity.
#[test]
fn dynamic_batching_beats_immediate_p99_under_high_load() {
    use bpvec_sim::AcceleratorConfig;
    let accel = AcceleratorConfig::bpvec();
    let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let net = w.build();
    let s1 = accel
        .evaluate(
            &w.clone().with_batching(bpvec_sim::BatchRegime::fixed(1)),
            &net,
            &DramSpec::ddr4(),
        )
        .latency_s;
    // 1.2× the batch-1 capacity: immediate dispatch is overloaded, dynamic
    // batching is not.
    let traffic = TrafficSpec::new(
        "overload",
        ArrivalProcess::poisson(1.2 / s1),
        RequestMix::single(w),
        1_500,
    )
    .with_warmup(150);
    let run = |policy| {
        let out = run_serving(
            &accel,
            &DramSpec::ddr4(),
            policy,
            ClusterSpec::single(),
            &traffic,
            ServiceModel::Deterministic,
            9,
        );
        ServingMetrics::from_outcome(&out, 1, traffic.warmup, None)
    };
    let immediate = run(BatchPolicy::immediate());
    let dynamic = run(BatchPolicy::deadline(16, 4.0 * s1));
    assert!(
        dynamic.latency.p99_s < immediate.latency.p99_s,
        "dynamic p99 {:.6}s must beat immediate p99 {:.6}s",
        dynamic.latency.p99_s,
        immediate.latency.p99_s
    );
    assert!(dynamic.mean_batch > 1.5, "{}", dynamic.mean_batch);
    assert!(dynamic.throughput_rps > immediate.throughput_rps);
}
