//! Streaming-metrics accuracy and fleet-conservation properties.
//!
//! * **sketch accuracy** — on runs small enough to retain every record,
//!   the streaming digest's p50/p95/p99 must land within 2% (relative) of
//!   the exact sorted percentiles, across Poisson and bursty arrivals and
//!   seeds; its mean, max, histogram, and SLA counts must match exactly
//!   (same completion stream, same accumulation order);
//! * **O(1) memory** — a streaming run retains zero records no matter the
//!   request count, while `completed`/`admitted` still balance;
//! * **fleet conservation** — with admission control shedding load,
//!   `arrivals == completions + drops` and the per-tenant / per-region
//!   rollups partition those totals exactly;
//! * **determinism** — identically-seeded fleet runs produce identical
//!   outcomes (the property the byte-diffed fleet CSV in CI leans on).

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_serve::{
    run_fleet, run_serving_with_options, ArrivalProcess, BatchPolicy, ClusterSpec, FleetSpec,
    RegionSpec, RequestMix, Router, RunOptions, ServiceModel, ServingMetrics, TenantClass,
    TrafficSpec,
};
use bpvec_sim::{DramSpec, Evaluator, Measurement, Workload as SimWorkload};
use proptest::prelude::*;

/// Constant per-inference latency backend (the event loop does the work).
struct ConstServer {
    per_inference_s: f64,
}

impl Evaluator for ConstServer {
    fn label(&self) -> String {
        "const".into()
    }

    fn evaluate(&self, workload: &SimWorkload, network: &Network, _dram: &DramSpec) -> Measurement {
        Measurement {
            latency_s: self.per_inference_s,
            energy_j: 1e-3,
            macs: network.total_macs(),
            batch: workload.batch(),
            gops_per_watt: 1.0,
        }
    }
}

fn mix() -> RequestMix {
    RequestMix::new()
        .and(
            SimWorkload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
            3.0,
        )
        .and(
            SimWorkload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
            1.0,
        )
}

fn backend() -> ConstServer {
    ConstServer {
        per_inference_s: 1e-3,
    }
}

/// Exact nearest-rank quantile over a sorted slice.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The streaming digest tracks the exact percentiles within 2% on
    /// runs where both signals exist (records retained AND streamed).
    #[test]
    fn sketch_quantiles_within_two_percent_of_exact(
        rate in 200.0f64..3000.0,
        bursty in proptest::bool::ANY,
        requests in 2000u64..10_000,
        seed in 0u64..500,
    ) {
        let process = if bursty {
            ArrivalProcess::bursty(rate * 0.4, rate * 2.0, 0.02, 0.005)
        } else {
            ArrivalProcess::poisson(rate)
        };
        let traffic = TrafficSpec::new("prop", process, mix(), requests);
        let out = run_serving_with_options(
            &backend(),
            &DramSpec::ddr4(),
            BatchPolicy::deadline(8, 0.002),
            ClusterSpec::new(2, Router::JoinShortestQueue),
            &traffic,
            ServiceModel::Deterministic,
            seed,
            RunOptions::retained().with_sla(Some(0.02)),
            None,
        );
        let mut exact: Vec<f64> = out.records.iter().map(|r| r.sojourn_s()).collect();
        exact.sort_by(f64::total_cmp);
        let s = &out.summary;
        prop_assert_eq!(s.measured, exact.len() as u64);
        for (q, est) in [(0.50, s.p50_s), (0.95, s.p95_s), (0.99, s.p99_s)] {
            let truth = exact_quantile(&exact, q);
            let rel = (est - truth).abs() / truth;
            prop_assert!(rel <= 0.02, "q={q}: sketch {est} vs exact {truth} (rel {rel:.4})");
        }
        // Mean, max, and SLA hits stream over the same completion order as
        // the records, so they are not estimates — they must match exactly.
        let sum: f64 = out.records.iter().map(|r| r.sojourn_s()).sum();
        prop_assert!((s.mean_s - sum / exact.len() as f64).abs() <= 1e-12 * s.mean_s.abs());
        prop_assert_eq!(s.max_s, *exact.last().unwrap());
        prop_assert_eq!(
            s.sla_hits,
            exact.iter().filter(|&&v| v <= 0.02).count() as u64
        );
    }
}

#[test]
fn streaming_runs_retain_no_records_at_any_scale() {
    for requests in [2_000u64, 20_000] {
        let traffic = TrafficSpec::new("stream", ArrivalProcess::poisson(2000.0), mix(), requests);
        let out = run_serving_with_options(
            &backend(),
            &DramSpec::ddr4(),
            BatchPolicy::deadline(8, 0.002),
            ClusterSpec::new(4, Router::JoinShortestQueue),
            &traffic,
            ServiceModel::Deterministic,
            7,
            RunOptions::default(),
            None,
        );
        assert!(out.records.is_empty(), "streaming run kept records");
        assert_eq!(out.peak_records_retained, 0, "record high-water not O(1)");
        assert_eq!(out.completed, requests);
        assert_eq!(out.admitted, requests);
        assert_eq!(out.dropped, 0);
        assert!(
            out.peak_in_system < requests,
            "peak in-system should be bounded"
        );
        // The metrics pipeline summarizes a record-free outcome from the
        // streaming digest without panicking and with sane totals.
        let m = ServingMetrics::from_outcome(&out, 4, traffic.warmup, Some(0.02));
        assert_eq!(m.completed, requests);
        assert_eq!(m.measured, out.summary.measured);
        assert!(m.latency.p99_s >= m.latency.p50_s);
        assert_eq!(m.histogram.total(), out.summary.measured);
    }
}

#[test]
fn streaming_and_retained_agree_on_the_same_run() {
    let traffic = TrafficSpec::new("agree", ArrivalProcess::poisson(1500.0), mix(), 5_000);
    let run = |options: RunOptions| {
        run_serving_with_options(
            &backend(),
            &DramSpec::ddr4(),
            BatchPolicy::fixed(4),
            ClusterSpec::new(2, Router::RoundRobin),
            &traffic,
            ServiceModel::ExponentialJitter,
            11,
            options,
            None,
        )
    };
    let retained = run(RunOptions::retained().with_sla(Some(0.05)));
    let streamed = run(RunOptions::default().with_sla(Some(0.05)));
    // Identical seeds and RNG draw order: the simulated run is the same,
    // only the bookkeeping differs.
    assert_eq!(retained.summary, streamed.summary);
    assert_eq!(retained.makespan_s, streamed.makespan_s);
    assert_eq!(retained.events, streamed.events);
    assert_eq!(retained.records.len(), 5_000);
    assert_eq!(retained.peak_records_retained, 5_000);
    assert_eq!(streamed.peak_records_retained, 0);
    let mr = ServingMetrics::from_outcome(&retained, 2, traffic.warmup, Some(0.05));
    let ms = ServingMetrics::from_outcome(&streamed, 2, traffic.warmup, Some(0.05));
    // Exact-path and stream-path summaries agree bitwise on everything
    // that is not sketched, and within 2% on the sketched percentiles.
    assert_eq!(mr.completed, ms.completed);
    assert_eq!(mr.measured, ms.measured);
    assert_eq!(mr.histogram, ms.histogram);
    assert_eq!(mr.sla_attainment, ms.sla_attainment);
    assert_eq!(mr.latency.max_s, ms.latency.max_s);
    for (exact, est) in [
        (mr.latency.p50_s, ms.latency.p50_s),
        (mr.latency.p95_s, ms.latency.p95_s),
        (mr.latency.p99_s, ms.latency.p99_s),
    ] {
        assert!((est - exact).abs() / exact <= 0.02, "{est} vs {exact}");
    }
}

fn overload_fleet() -> FleetSpec {
    FleetSpec::new()
        .region(RegionSpec::new("east", 2, 2).with_queue_cap(32))
        .region(RegionSpec::new("west", 1, 2).with_queue_cap(16))
        .tenant(TenantClass::new("premium", 0.3).home(0).with_sla(0.02))
        .tenant(TenantClass::new("standard", 0.5).home(0))
        .tenant(TenantClass::new("batch", 0.2).home(1).with_quota(8))
        .with_router(Router::JoinShortestQueue)
}

#[test]
fn fleet_conserves_requests_under_forced_drops() {
    let requests = 20_000u64;
    // A flash crowd at 4x the fleet's capacity guarantees the region caps
    // and the batch tenant's quota both shed load.
    let traffic = TrafficSpec::new(
        "flash",
        ArrivalProcess::flash_crowd(1500.0, 24_000.0, 1.0, 0.5, 2.0),
        mix(),
        requests,
    );
    let fleet = overload_fleet();
    let out = run_fleet(
        &backend(),
        &DramSpec::ddr4(),
        BatchPolicy::deadline(8, 0.002),
        &fleet,
        &traffic,
        ServiceModel::Deterministic,
        3,
        RunOptions::default().with_sla(Some(0.02)),
    );
    assert!(out.dropped > 0, "overload must shed load");
    // Conservation: every arrival either completed or was dropped, and
    // admitted counts exactly the non-dropped arrivals.
    assert_eq!(out.admitted + out.dropped, requests);
    assert_eq!(out.completed, out.admitted);
    assert_eq!(out.peak_records_retained, 0);
    // The tenant rollups partition the same totals.
    let tenants = &out.summary.tenants;
    assert_eq!(tenants.len(), 3);
    assert_eq!(tenants.iter().map(|t| t.arrived).sum::<u64>(), requests);
    assert_eq!(tenants.iter().map(|t| t.dropped).sum::<u64>(), out.dropped);
    assert_eq!(
        tenants.iter().map(|t| t.completed).sum::<u64>(),
        out.completed
    );
    // And so do the region rollups (arrived counts admissions).
    let regions = &out.summary.regions;
    assert_eq!(regions.len(), 2);
    assert_eq!(regions.iter().map(|r| r.arrived).sum::<u64>(), out.admitted);
    assert_eq!(regions.iter().map(|r| r.dropped).sum::<u64>(), out.dropped);
    assert_eq!(
        regions.iter().map(|r| r.completed).sum::<u64>(),
        out.completed
    );
    // Per-tenant SLA accounting stays within the measured counts.
    for t in tenants {
        assert!(
            t.sla_hits <= t.measured,
            "{}: {} > {}",
            t.label,
            t.sla_hits,
            t.measured
        );
        assert!(t.measured <= t.completed);
    }
}

#[test]
fn fleet_runs_are_deterministic() {
    let traffic = TrafficSpec::new(
        "diurnal",
        ArrivalProcess::diurnal(800.0, 2400.0, 4.0),
        mix(),
        10_000,
    );
    let fleet = overload_fleet().with_forward_delay(2e-4);
    let run = || {
        run_fleet(
            &backend(),
            &DramSpec::ddr4(),
            BatchPolicy::deadline(8, 0.002),
            &fleet,
            &traffic,
            ServiceModel::ExponentialJitter,
            42,
            RunOptions::default().with_sla(Some(0.02)),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identically-seeded fleet runs must be bit-identical");
    assert_eq!(a.admitted + a.dropped, 10_000);
    assert_eq!(a.completed, a.admitted);
}

#[test]
#[should_panic(expected = "closed-loop")]
fn fleet_rejects_closed_loop_traffic() {
    let traffic = TrafficSpec::new("closed", ArrivalProcess::closed_loop(4, 0.001), mix(), 100);
    let _ = run_fleet(
        &backend(),
        &DramSpec::ddr4(),
        BatchPolicy::immediate(),
        &overload_fleet(),
        &traffic,
        ServiceModel::Deterministic,
        0,
        RunOptions::default(),
    );
}
