//! The metrics pipeline: summarizing a raw [`ServingOutcome`] into the
//! numbers a capacity planner reads — tail latency, utilization, queue
//! depth, energy per request, and goodput under an SLA.

use serde::{Deserialize, Serialize};

use crate::sim::ServingOutcome;

/// Latency summary statistics over the measured (post-warmup) requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean sojourn time, seconds.
    pub mean_s: f64,
    /// Median sojourn time, seconds.
    pub p50_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_s: f64,
    /// 99th-percentile sojourn time, seconds.
    pub p99_s: f64,
    /// Worst sojourn time, seconds.
    pub max_s: f64,
}

/// A log-spaced latency histogram: bin `i` counts sojourns in
/// `[lower_s[i], lower_s[i+1])`, with the first and last bins absorbing
/// underflow and overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Lower bound of each bin, seconds (doubling from 1 µs).
    pub lower_s: Vec<f64>,
    /// Sample count per bin.
    pub counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Number of bins (1 µs doubling to ≈134 s).
    pub const BINS: usize = 28;

    /// Bin index for one sojourn sample (underflow → 0, overflow → last).
    #[must_use]
    pub fn bin(s: f64) -> usize {
        if s < 1e-6 {
            0
        } else {
            // log2(s / 1µs), clamped into range.
            ((s / 1e-6).log2().floor() as usize).min(Self::BINS - 1)
        }
    }

    /// Builds the histogram from raw sojourn samples.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut counts = vec![0u64; Self::BINS];
        for &s in samples {
            counts[Self::bin(s)] += 1;
        }
        Self::from_counts(counts)
    }

    /// Wraps pre-accumulated per-bin counts (indexed by [`Self::bin`]) —
    /// the streaming path maintains counts incrementally and freezes them
    /// here, bit-identical to [`Self::from_samples`] on the same stream.
    ///
    /// # Panics
    ///
    /// Panics unless `counts` has exactly [`Self::BINS`] entries.
    #[must_use]
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), Self::BINS, "one count per bin");
        let lower_s: Vec<f64> = (0..Self::BINS).map(|i| 1e-6 * f64::from(1 << i)).collect();
        LatencyHistogram { lower_s, counts }
    }

    /// Total samples across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Everything measured about one serving configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Requests admitted into the system.
    pub admitted: u64,
    /// Requests completed (equals `admitted`: the run drains what it admits).
    pub completed: u64,
    /// Requests shed by admission control before entering the system
    /// (0 outside fleet runs).
    pub dropped: u64,
    /// High-water count of per-request records held at once — 0 for a
    /// streaming run, `completed` when retention is on.
    pub peak_records_retained: u64,
    /// Requests included in the latency statistics (post-warmup).
    pub measured: u64,
    /// Simulated wall-clock length of the run, seconds.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Sojourn-time statistics over the measured requests.
    pub latency: LatencyStats,
    /// Log-spaced sojourn histogram over the measured requests.
    pub histogram: LatencyHistogram,
    /// Time-averaged number of requests waiting in queues.
    pub mean_queue_depth: f64,
    /// Fraction of total replica-time spent serving batches.
    pub utilization: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Energy per completed request, joules.
    pub energy_per_request_j: f64,
    /// Fraction of measured requests meeting the SLA (1.0 when no SLA set).
    pub sla_attainment: f64,
    /// Throughput × SLA attainment: requests per second that met the SLA.
    pub goodput_rps: f64,
    /// Fraction of measured requests served at ladder rung 0 (full
    /// precision; 1.0 for a static run).
    pub full_precision_share: f64,
    /// Fraction of measured requests served at any degraded rung
    /// (`1 − full_precision_share` whenever anything was measured).
    pub degraded_share: f64,
    /// Share of active replica-time spent at each ladder rung (index =
    /// rung; sums to 1; a single entry under static control).
    pub time_in_policy: Vec<f64>,
    /// Precision switches the controller performed across all replicas.
    pub policy_switches: u64,
    /// Replica activations + deactivations the autoscaler performed.
    pub scale_events: u64,
    /// Time-averaged count of active replicas (equals the cluster size
    /// without an autoscaler).
    pub mean_active_replicas: f64,
}

/// Nearest-rank quantile via O(n) selection — no full sort. Reorders `v`.
fn select_quantile(v: &mut [f64], q: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    *v.select_nth_unstable_by(rank - 1, f64::total_cmp).1
}

/// What either latency path (exact records or streaming digest) yields:
/// `(measured, measured_full, latency, histogram, within_sla)`.
type LatencySummary = (u64, u64, LatencyStats, LatencyHistogram, f64);

impl ServingMetrics {
    /// Summarizes a raw outcome. `replicas` is the cluster size the outcome
    /// ran on (for utilization), `warmup` the number of leading admissions
    /// excluded from latency statistics, `sla_s` the latency objective.
    ///
    /// Outcomes with retained records get exact percentiles from the
    /// records; streaming outcomes (no records) are summarized from
    /// [`ServingOutcome::summary`], whose warmup cut was fixed at run time
    /// (the `warmup` argument only filters the record path). On the
    /// streaming path the SLA count is exact when `sla_s` matches the
    /// SLA the run streamed with, else interpolated from the histogram.
    #[must_use]
    pub fn from_outcome(
        outcome: &ServingOutcome,
        replicas: u32,
        warmup: u64,
        sla_s: Option<f64>,
    ) -> Self {
        let streamed = outcome.records.is_empty() && outcome.completed > 0;
        let completed = if streamed {
            outcome.completed
        } else {
            outcome.records.len() as u64
        };
        let (measured, measured_full, latency, histogram, within_sla) = if streamed {
            Self::latency_from_stream(&outcome.summary, sla_s)
        } else {
            Self::latency_from_records(outcome, warmup, sla_s)
        };
        let makespan_s = outcome.makespan_s;
        let throughput_rps = if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        };
        let sla_attainment = if measured > 0 {
            within_sla / measured as f64
        } else {
            1.0
        };
        let full_precision_share = if measured > 0 {
            measured_full as f64 / measured as f64
        } else {
            1.0
        };
        // Without an autoscaler the active-replica integral is exactly
        // `replicas × makespan`; hand-built outcomes (tests) may leave the
        // integrals zeroed, so fall back to the static formula.
        let active_integral_s = if outcome.active_integral_s > 0.0 {
            outcome.active_integral_s
        } else {
            makespan_s * f64::from(replicas.max(1))
        };
        let rung_total: f64 = outcome.rung_time_s.iter().sum();
        let time_in_policy = if rung_total > 0.0 {
            outcome.rung_time_s.iter().map(|t| t / rung_total).collect()
        } else {
            vec![1.0]
        };
        ServingMetrics {
            admitted: outcome.admitted,
            completed,
            dropped: outcome.dropped,
            peak_records_retained: outcome.peak_records_retained,
            measured,
            makespan_s,
            throughput_rps,
            histogram,
            latency,
            mean_queue_depth: if makespan_s > 0.0 {
                outcome.depth_integral / makespan_s
            } else {
                0.0
            },
            utilization: if active_integral_s > 0.0 {
                outcome.busy_s / active_integral_s
            } else {
                0.0
            },
            mean_batch: if outcome.batches > 0 {
                completed as f64 / outcome.batches as f64
            } else {
                0.0
            },
            energy_per_request_j: if completed > 0 {
                outcome.energy_j / completed as f64
            } else {
                0.0
            },
            sla_attainment,
            goodput_rps: throughput_rps * sla_attainment,
            full_precision_share,
            degraded_share: if measured > 0 {
                1.0 - full_precision_share
            } else {
                0.0
            },
            time_in_policy,
            policy_switches: outcome.policy_switches.len() as u64,
            scale_events: outcome.scale_events.len() as u64,
            mean_active_replicas: if makespan_s > 0.0 {
                active_integral_s / makespan_s
            } else {
                f64::from(replicas.max(1))
            },
        }
    }

    /// Exact latency summary from retained records: one pass gathers the
    /// post-warmup sojourns while accumulating the mean, max, histogram,
    /// SLA hits, and rung shares, then each quantile is an O(n) selection
    /// instead of a full sort.
    fn latency_from_records(
        outcome: &ServingOutcome,
        warmup: u64,
        sla_s: Option<f64>,
    ) -> LatencySummary {
        let mut sojourns: Vec<f64> = Vec::with_capacity(outcome.records.len());
        let mut measured_full = 0u64;
        let mut sum_s = 0.0;
        let mut max_s = 0.0f64;
        let mut within = 0u64;
        let mut counts = vec![0u64; LatencyHistogram::BINS];
        for r in &outcome.records {
            if r.id < warmup {
                continue;
            }
            let s = r.sojourn_s();
            sum_s += s;
            max_s = max_s.max(s);
            counts[LatencyHistogram::bin(s)] += 1;
            if r.rung == 0 {
                measured_full += 1;
            }
            if sla_s.is_none_or(|sla| s <= sla) {
                within += 1;
            }
            sojourns.push(s);
        }
        let measured = sojourns.len() as u64;
        let latency = LatencyStats {
            mean_s: if measured == 0 {
                0.0
            } else {
                sum_s / measured as f64
            },
            p50_s: select_quantile(&mut sojourns, 0.50),
            p95_s: select_quantile(&mut sojourns, 0.95),
            p99_s: select_quantile(&mut sojourns, 0.99),
            max_s,
        };
        let histogram = LatencyHistogram::from_counts(counts);
        (measured, measured_full, latency, histogram, within as f64)
    }

    /// Latency summary from the streaming digest of a record-free run.
    fn latency_from_stream(
        summary: &crate::streaming::StreamingSummary,
        sla_s: Option<f64>,
    ) -> LatencySummary {
        let latency = LatencyStats {
            mean_s: summary.mean_s,
            p50_s: summary.p50_s,
            p95_s: summary.p95_s,
            p99_s: summary.p99_s,
            max_s: summary.max_s,
        };
        // The stream counted SLA hits exactly against the SLA it ran with;
        // any other target has to fall back on the histogram's resolution.
        let within = if sla_s == summary.sla_s {
            summary.sla_hits as f64
        } else {
            match sla_s {
                None => summary.measured as f64,
                Some(sla) => summary
                    .histogram
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| LatencyHistogram::bin(sla) > i)
                    .map(|(_, &c)| c as f64)
                    .sum(),
            }
        };
        (
            summary.measured,
            summary.measured_full,
            latency,
            summary.histogram.clone(),
            within,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RequestRecord;

    fn record(id: u64, arrival_s: f64, completion_s: f64) -> RequestRecord {
        RequestRecord {
            id,
            class: 0,
            shard: 0,
            arrival_s,
            start_s: arrival_s,
            completion_s,
            batch: 1,
            rung: 0,
        }
    }

    fn outcome(records: Vec<RequestRecord>) -> ServingOutcome {
        let makespan_s = records
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        ServingOutcome {
            admitted: records.len() as u64,
            completed: records.len() as u64,
            dropped: 0,
            peak_records_retained: records.len() as u64,
            peak_in_system: records.len() as u64,
            events: 0,
            busy_s: makespan_s / 2.0,
            depth_integral: makespan_s * 3.0,
            makespan_s,
            energy_j: records.len() as f64 * 0.5,
            batches: records.len() as u64,
            records,
            active_integral_s: 0.0,
            rung_time_s: Vec::new(),
            policy_switches: Vec::new(),
            scale_events: Vec::new(),
            summary: crate::streaming::StreamingSummary::default(),
        }
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        // Shuffled input: selection must find the sorted-order statistic.
        let mut v: Vec<f64> = (1..=100).rev().map(f64::from).collect();
        assert_eq!(select_quantile(&mut v, 0.50), 50.0);
        assert_eq!(select_quantile(&mut v, 0.95), 95.0);
        assert_eq!(select_quantile(&mut v, 0.99), 99.0);
        assert_eq!(select_quantile(&mut [7.0], 0.99), 7.0);
        assert_eq!(select_quantile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn metrics_summarize_the_records() {
        let records: Vec<RequestRecord> = (0..100)
            .map(|i| record(i, i as f64, i as f64 + 0.002 * (i % 10 + 1) as f64))
            .collect();
        let m = ServingMetrics::from_outcome(&outcome(records), 2, 0, Some(0.0101));
        assert_eq!(m.completed, 100);
        assert_eq!(m.measured, 100);
        // Sojourns are 2..=20 ms uniformly; half meet a ~10 ms SLA.
        assert!(
            (m.sla_attainment - 0.5).abs() < 1e-12,
            "{}",
            m.sla_attainment
        );
        assert!((m.latency.max_s - 0.020).abs() < 1e-12);
        assert!(m.latency.p99_s >= m.latency.p95_s);
        assert!(m.latency.p95_s >= m.latency.p50_s);
        assert!((m.goodput_rps - m.throughput_rps * 0.5).abs() < 1e-9);
        assert!((m.utilization - 0.25).abs() < 1e-12);
        assert!((m.mean_queue_depth - 3.0).abs() < 1e-12);
        assert!((m.energy_per_request_j - 0.5).abs() < 1e-12);
        assert_eq!(m.histogram.total(), 100);
    }

    #[test]
    fn warmup_excludes_leading_admissions() {
        let records: Vec<RequestRecord> = (0..10)
            .map(|i| record(i, 0.0, if i < 5 { 100.0 } else { 0.001 }))
            .collect();
        let m = ServingMetrics::from_outcome(&outcome(records), 1, 5, None);
        assert_eq!(m.measured, 5);
        assert!(m.latency.max_s < 0.01);
        assert_eq!(m.sla_attainment, 1.0);
    }

    #[test]
    fn histogram_bins_double_from_one_microsecond() {
        let h = LatencyHistogram::from_samples(&[1.5e-6, 3e-6, 1e-3, 1e9]);
        assert_eq!(h.lower_s.len(), LatencyHistogram::BINS);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        // 1 ms: log2(1000 µs) = 9.96 -> bin 9 (lower bound 512 µs).
        assert_eq!(h.counts[9], 1);
        // Overflow clamps into the last bin.
        assert_eq!(h.counts[LatencyHistogram::BINS - 1], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn adaptive_shares_and_time_in_policy() {
        use crate::sim::{PolicySwitchEvent, ScaleEvent};
        let records: Vec<RequestRecord> = (0..10)
            .map(|i| {
                let mut r = record(i, 0.0, 1.0);
                if i >= 6 {
                    r.rung = 1;
                }
                r
            })
            .collect();
        let mut out = outcome(records);
        out.rung_time_s = vec![3.0, 1.0];
        out.active_integral_s = 2.0;
        out.policy_switches = vec![PolicySwitchEvent {
            time_s: 0.5,
            replica: 0,
            from_rung: 0,
            to_rung: 1,
        }];
        out.scale_events = vec![ScaleEvent {
            time_s: 0.6,
            replica: 1,
            up: true,
        }];
        let m = ServingMetrics::from_outcome(&out, 2, 0, None);
        assert!((m.full_precision_share - 0.6).abs() < 1e-12);
        assert!((m.degraded_share - 0.4).abs() < 1e-12);
        assert_eq!(m.time_in_policy, vec![0.75, 0.25]);
        assert_eq!(m.policy_switches, 1);
        assert_eq!(m.scale_events, 1);
        // ∫active dt = 2 replica-seconds over the 1 s makespan → mean 2.
        assert!((m.mean_active_replicas - 2.0).abs() < 1e-12);
        // busy = makespan/2 = 0.5 against 2 replica-seconds offered.
        assert!((m.utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn static_outcomes_report_full_precision() {
        let m = ServingMetrics::from_outcome(&outcome(vec![record(0, 0.0, 1.0)]), 1, 0, None);
        assert_eq!(m.full_precision_share, 1.0);
        assert_eq!(m.degraded_share, 0.0);
        assert_eq!(m.time_in_policy, vec![1.0]);
        assert_eq!(m.policy_switches, 0);
        assert_eq!(m.scale_events, 0);
        assert_eq!(m.mean_active_replicas, 1.0);
    }

    #[test]
    fn empty_outcome_yields_zeroed_metrics() {
        let m = ServingMetrics::from_outcome(&outcome(Vec::new()), 1, 0, None);
        assert_eq!(m.completed, 0);
        assert_eq!(m.throughput_rps, 0.0);
        assert_eq!(m.latency.mean_s, 0.0);
        assert_eq!(m.sla_attainment, 1.0);
    }
}
