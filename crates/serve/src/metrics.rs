//! The metrics pipeline: summarizing a raw [`ServingOutcome`] into the
//! numbers a capacity planner reads — tail latency, utilization, queue
//! depth, energy per request, and goodput under an SLA.

use serde::{Deserialize, Serialize};

use crate::sim::ServingOutcome;

/// Latency summary statistics over the measured (post-warmup) requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean sojourn time, seconds.
    pub mean_s: f64,
    /// Median sojourn time, seconds.
    pub p50_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_s: f64,
    /// 99th-percentile sojourn time, seconds.
    pub p99_s: f64,
    /// Worst sojourn time, seconds.
    pub max_s: f64,
}

/// A log-spaced latency histogram: bin `i` counts sojourns in
/// `[lower_s[i], lower_s[i+1])`, with the first and last bins absorbing
/// underflow and overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Lower bound of each bin, seconds (doubling from 1 µs).
    pub lower_s: Vec<f64>,
    /// Sample count per bin.
    pub counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Number of bins (1 µs doubling to ≈134 s).
    pub const BINS: usize = 28;

    /// Builds the histogram from raw sojourn samples.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let lower_s: Vec<f64> = (0..Self::BINS).map(|i| 1e-6 * f64::from(1 << i)).collect();
        let mut counts = vec![0u64; Self::BINS];
        for &s in samples {
            let bin = if s < lower_s[0] {
                0
            } else {
                // log2(s / 1µs), clamped into range.
                ((s / 1e-6).log2().floor() as usize).min(Self::BINS - 1)
            };
            counts[bin] += 1;
        }
        LatencyHistogram { lower_s, counts }
    }

    /// Total samples across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Everything measured about one serving configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Requests admitted into the system.
    pub admitted: u64,
    /// Requests completed (always equals `admitted`: the run drains).
    pub completed: u64,
    /// Requests included in the latency statistics (post-warmup).
    pub measured: u64,
    /// Simulated wall-clock length of the run, seconds.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Sojourn-time statistics over the measured requests.
    pub latency: LatencyStats,
    /// Log-spaced sojourn histogram over the measured requests.
    pub histogram: LatencyHistogram,
    /// Time-averaged number of requests waiting in queues.
    pub mean_queue_depth: f64,
    /// Fraction of total replica-time spent serving batches.
    pub utilization: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Energy per completed request, joules.
    pub energy_per_request_j: f64,
    /// Fraction of measured requests meeting the SLA (1.0 when no SLA set).
    pub sla_attainment: f64,
    /// Throughput × SLA attainment: requests per second that met the SLA.
    pub goodput_rps: f64,
    /// Fraction of measured requests served at ladder rung 0 (full
    /// precision; 1.0 for a static run).
    pub full_precision_share: f64,
    /// Fraction of measured requests served at any degraded rung
    /// (`1 − full_precision_share` whenever anything was measured).
    pub degraded_share: f64,
    /// Share of active replica-time spent at each ladder rung (index =
    /// rung; sums to 1; a single entry under static control).
    pub time_in_policy: Vec<f64>,
    /// Precision switches the controller performed across all replicas.
    pub policy_switches: u64,
    /// Replica activations + deactivations the autoscaler performed.
    pub scale_events: u64,
    /// Time-averaged count of active replicas (equals the cluster size
    /// without an autoscaler).
    pub mean_active_replicas: f64,
}

/// `q`-quantile of an ascending-sorted slice (nearest-rank convention).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServingMetrics {
    /// Summarizes a raw outcome. `replicas` is the cluster size the outcome
    /// ran on (for utilization), `warmup` the number of leading admissions
    /// excluded from latency statistics, `sla_s` the latency objective.
    #[must_use]
    pub fn from_outcome(
        outcome: &ServingOutcome,
        replicas: u32,
        warmup: u64,
        sla_s: Option<f64>,
    ) -> Self {
        let completed = outcome.records.len() as u64;
        let mut sojourns: Vec<f64> = Vec::with_capacity(outcome.records.len());
        let mut measured_full = 0u64;
        for r in &outcome.records {
            if r.id >= warmup {
                sojourns.push(r.sojourn_s());
                if r.rung == 0 {
                    measured_full += 1;
                }
            }
        }
        sojourns.sort_by(f64::total_cmp);
        let measured = sojourns.len() as u64;
        let mean_s = if sojourns.is_empty() {
            0.0
        } else {
            sojourns.iter().sum::<f64>() / sojourns.len() as f64
        };
        let latency = LatencyStats {
            mean_s,
            p50_s: quantile(&sojourns, 0.50),
            p95_s: quantile(&sojourns, 0.95),
            p99_s: quantile(&sojourns, 0.99),
            max_s: sojourns.last().copied().unwrap_or(0.0),
        };
        let makespan_s = outcome.makespan_s;
        let throughput_rps = if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        };
        let within_sla = match sla_s {
            Some(sla) => sojourns.iter().filter(|&&s| s <= sla).count() as u64,
            None => measured,
        };
        let sla_attainment = if measured > 0 {
            within_sla as f64 / measured as f64
        } else {
            1.0
        };
        let full_precision_share = if measured > 0 {
            measured_full as f64 / measured as f64
        } else {
            1.0
        };
        // Without an autoscaler the active-replica integral is exactly
        // `replicas × makespan`; hand-built outcomes (tests) may leave the
        // integrals zeroed, so fall back to the static formula.
        let active_integral_s = if outcome.active_integral_s > 0.0 {
            outcome.active_integral_s
        } else {
            makespan_s * f64::from(replicas.max(1))
        };
        let rung_total: f64 = outcome.rung_time_s.iter().sum();
        let time_in_policy = if rung_total > 0.0 {
            outcome.rung_time_s.iter().map(|t| t / rung_total).collect()
        } else {
            vec![1.0]
        };
        ServingMetrics {
            admitted: outcome.admitted,
            completed,
            measured,
            makespan_s,
            throughput_rps,
            histogram: LatencyHistogram::from_samples(&sojourns),
            latency,
            mean_queue_depth: if makespan_s > 0.0 {
                outcome.depth_integral / makespan_s
            } else {
                0.0
            },
            utilization: if active_integral_s > 0.0 {
                outcome.busy_s / active_integral_s
            } else {
                0.0
            },
            mean_batch: if outcome.batches > 0 {
                completed as f64 / outcome.batches as f64
            } else {
                0.0
            },
            energy_per_request_j: if completed > 0 {
                outcome.energy_j / completed as f64
            } else {
                0.0
            },
            sla_attainment,
            goodput_rps: throughput_rps * sla_attainment,
            full_precision_share,
            degraded_share: if measured > 0 {
                1.0 - full_precision_share
            } else {
                0.0
            },
            time_in_policy,
            policy_switches: outcome.policy_switches.len() as u64,
            scale_events: outcome.scale_events.len() as u64,
            mean_active_replicas: if makespan_s > 0.0 {
                active_integral_s / makespan_s
            } else {
                f64::from(replicas.max(1))
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RequestRecord;

    fn record(id: u64, arrival_s: f64, completion_s: f64) -> RequestRecord {
        RequestRecord {
            id,
            class: 0,
            shard: 0,
            arrival_s,
            start_s: arrival_s,
            completion_s,
            batch: 1,
            rung: 0,
        }
    }

    fn outcome(records: Vec<RequestRecord>) -> ServingOutcome {
        let makespan_s = records
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        ServingOutcome {
            admitted: records.len() as u64,
            busy_s: makespan_s / 2.0,
            depth_integral: makespan_s * 3.0,
            makespan_s,
            energy_j: records.len() as f64 * 0.5,
            batches: records.len() as u64,
            records,
            active_integral_s: 0.0,
            rung_time_s: Vec::new(),
            policy_switches: Vec::new(),
            scale_events: Vec::new(),
        }
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&sorted, 0.50), 50.0);
        assert_eq!(quantile(&sorted, 0.95), 95.0);
        assert_eq!(quantile(&sorted, 0.99), 99.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn metrics_summarize_the_records() {
        let records: Vec<RequestRecord> = (0..100)
            .map(|i| record(i, i as f64, i as f64 + 0.002 * (i % 10 + 1) as f64))
            .collect();
        let m = ServingMetrics::from_outcome(&outcome(records), 2, 0, Some(0.0101));
        assert_eq!(m.completed, 100);
        assert_eq!(m.measured, 100);
        // Sojourns are 2..=20 ms uniformly; half meet a ~10 ms SLA.
        assert!(
            (m.sla_attainment - 0.5).abs() < 1e-12,
            "{}",
            m.sla_attainment
        );
        assert!((m.latency.max_s - 0.020).abs() < 1e-12);
        assert!(m.latency.p99_s >= m.latency.p95_s);
        assert!(m.latency.p95_s >= m.latency.p50_s);
        assert!((m.goodput_rps - m.throughput_rps * 0.5).abs() < 1e-9);
        assert!((m.utilization - 0.25).abs() < 1e-12);
        assert!((m.mean_queue_depth - 3.0).abs() < 1e-12);
        assert!((m.energy_per_request_j - 0.5).abs() < 1e-12);
        assert_eq!(m.histogram.total(), 100);
    }

    #[test]
    fn warmup_excludes_leading_admissions() {
        let records: Vec<RequestRecord> = (0..10)
            .map(|i| record(i, 0.0, if i < 5 { 100.0 } else { 0.001 }))
            .collect();
        let m = ServingMetrics::from_outcome(&outcome(records), 1, 5, None);
        assert_eq!(m.measured, 5);
        assert!(m.latency.max_s < 0.01);
        assert_eq!(m.sla_attainment, 1.0);
    }

    #[test]
    fn histogram_bins_double_from_one_microsecond() {
        let h = LatencyHistogram::from_samples(&[1.5e-6, 3e-6, 1e-3, 1e9]);
        assert_eq!(h.lower_s.len(), LatencyHistogram::BINS);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        // 1 ms: log2(1000 µs) = 9.96 -> bin 9 (lower bound 512 µs).
        assert_eq!(h.counts[9], 1);
        // Overflow clamps into the last bin.
        assert_eq!(h.counts[LatencyHistogram::BINS - 1], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn adaptive_shares_and_time_in_policy() {
        use crate::sim::{PolicySwitchEvent, ScaleEvent};
        let records: Vec<RequestRecord> = (0..10)
            .map(|i| {
                let mut r = record(i, 0.0, 1.0);
                if i >= 6 {
                    r.rung = 1;
                }
                r
            })
            .collect();
        let mut out = outcome(records);
        out.rung_time_s = vec![3.0, 1.0];
        out.active_integral_s = 2.0;
        out.policy_switches = vec![PolicySwitchEvent {
            time_s: 0.5,
            replica: 0,
            from_rung: 0,
            to_rung: 1,
        }];
        out.scale_events = vec![ScaleEvent {
            time_s: 0.6,
            replica: 1,
            up: true,
        }];
        let m = ServingMetrics::from_outcome(&out, 2, 0, None);
        assert!((m.full_precision_share - 0.6).abs() < 1e-12);
        assert!((m.degraded_share - 0.4).abs() < 1e-12);
        assert_eq!(m.time_in_policy, vec![0.75, 0.25]);
        assert_eq!(m.policy_switches, 1);
        assert_eq!(m.scale_events, 1);
        // ∫active dt = 2 replica-seconds over the 1 s makespan → mean 2.
        assert!((m.mean_active_replicas - 2.0).abs() < 1e-12);
        // busy = makespan/2 = 0.5 against 2 replica-seconds offered.
        assert!((m.utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn static_outcomes_report_full_precision() {
        let m = ServingMetrics::from_outcome(&outcome(vec![record(0, 0.0, 1.0)]), 1, 0, None);
        assert_eq!(m.full_precision_share, 1.0);
        assert_eq!(m.degraded_share, 0.0);
        assert_eq!(m.time_in_policy, vec![1.0]);
        assert_eq!(m.policy_switches, 0);
        assert_eq!(m.scale_events, 0);
        assert_eq!(m.mean_active_replicas, 1.0);
    }

    #[test]
    fn empty_outcome_yields_zeroed_metrics() {
        let m = ServingMetrics::from_outcome(&outcome(Vec::new()), 1, 0, None);
        assert_eq!(m.completed, 0);
        assert_eq!(m.throughput_rps, 0.0);
        assert_eq!(m.latency.mean_s, 0.0);
        assert_eq!(m.sla_attainment, 1.0);
    }
}
