//! The sharded cluster model: N identical replicas behind a router.
//!
//! Each replica owns one backend instance (its own copy of every model's
//! weights), one set of per-class FIFO queues, and serves one batch at a
//! time. The router decides which replica an arriving request queues at.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How arriving requests are routed across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Router {
    /// Cycle through replicas in arrival order, ignoring their state.
    RoundRobin,
    /// Send each request to the replica with the fewest requests queued
    /// plus in service (ties go to the lowest replica index).
    JoinShortestQueue,
    /// Pin each network class to the replica `class mod replicas`, keeping
    /// every model's weights resident on one shard (no cross-replica batch
    /// fragmentation, at the price of per-class load imbalance). Under an
    /// autoscaler the mapping is over the *active* replicas in index
    /// order, so a scale event re-pins classes; the implied weights
    /// migration is not costed by the model.
    NetworkAffinity,
    /// Precision-capability-aware routing for adaptive clusters: prefer the
    /// replica at the *highest* active precision (lowest ladder rung), then
    /// the fewest requests queued plus in service, then the lowest index —
    /// keeping as much traffic as possible at full precision while the
    /// controller degrades only the replicas that need it. Equivalent to
    /// [`Router::JoinShortestQueue`] under static control (every rung is 0).
    LeastDegraded,
}

impl fmt::Display for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Router::RoundRobin => "rr",
            Router::JoinShortestQueue => "jsq",
            Router::NetworkAffinity => "affinity",
            Router::LeastDegraded => "leastdeg",
        })
    }
}

/// A cluster configuration: replica count plus routing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of identical replicas.
    pub replicas: u32,
    /// The routing discipline in front of them.
    pub router: Router,
}

impl ClusterSpec {
    /// A single replica (the router is irrelevant).
    #[must_use]
    pub fn single() -> Self {
        ClusterSpec {
            replicas: 1,
            router: Router::RoundRobin,
        }
    }

    /// A cluster of `replicas` behind `router`.
    #[must_use]
    pub fn new(replicas: u32, router: Router) -> Self {
        ClusterSpec { replicas, router }
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::single()
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.router, self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_labels() {
        assert_eq!(ClusterSpec::single().to_string(), "rrx1");
        assert_eq!(
            ClusterSpec::new(4, Router::JoinShortestQueue).to_string(),
            "jsqx4"
        );
        assert_eq!(
            ClusterSpec::new(2, Router::NetworkAffinity).to_string(),
            "affinityx2"
        );
        assert_eq!(
            ClusterSpec::new(4, Router::LeastDegraded).to_string(),
            "leastdegx4"
        );
    }
}
