//! The deterministic discrete-event core.
//!
//! One [`run_serving`] call simulates one configuration: a traffic spec
//! feeding a sharded cluster of replicas, each running a batch scheduler
//! over per-class FIFO queues, with batch service times looked up from the
//! backend's `BatchRegime` latencies (so CNN tile-spill effects shape the
//! cost of every batch size). Everything is driven by a single seeded RNG
//! pair and a `(time, sequence)`-ordered event heap, so a fixed seed yields
//! a bit-identical [`ServingOutcome`] on every run.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use bpvec_sim::{BatchRegime, CostModel, DramSpec, Evaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::{ArrivalProcess, TrafficSpec};
use crate::cluster::{ClusterSpec, Router};
use crate::scheduler::BatchPolicy;

/// How dispatched batches' service times vary around the backend's
/// deterministic batch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Service takes exactly the backend's modeled batch latency.
    Deterministic,
    /// Service time is exponentially distributed with the modeled latency
    /// as its mean — models runtime jitter, and turns a Poisson +
    /// immediate + single-replica configuration into a textbook M/M/1
    /// queue for closed-form validation.
    ExponentialJitter,
}

/// The full lifecycle of one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Admission index (0-based, in arrival order).
    pub id: u64,
    /// Service class (index into the traffic's [`crate::RequestMix`]).
    pub class: usize,
    /// Replica the request was routed to.
    pub shard: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Batch dispatch time, seconds.
    pub start_s: f64,
    /// Completion time, seconds.
    pub completion_s: f64,
    /// Size of the batch the request was served in.
    pub batch: u64,
}

impl RequestRecord {
    /// End-to-end sojourn time (queueing + service), seconds.
    #[must_use]
    pub fn sojourn_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Raw result of one simulation run; [`crate::ServingMetrics`] summarizes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Per-request lifecycle records, in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests admitted (equals the traffic spec's request count).
    pub admitted: u64,
    /// Total busy time summed across replicas, seconds.
    pub busy_s: f64,
    /// Time integral of the total queue depth (waiting requests only).
    pub depth_integral: f64,
    /// Time of the last batch completion, seconds.
    pub makespan_s: f64,
    /// Total energy of all dispatched batches, joules.
    pub energy_j: f64,
    /// Number of batches dispatched.
    pub batches: u64,
}

/// Whole-batch service time and energy per (class, batch size), precomputed
/// from the backend so the event loop never re-runs the analytical model.
///
/// A table depends only on `(backend, memory, request mix, max batch)` —
/// not on the batching policy, cluster shape, or replica count — so
/// [`crate::ServingScenario`] builds one per (platform, traffic) behind an
/// [`Arc`] and every replica of every policy × cluster cell shares it.
/// Construction goes through a shared [`CostModel`], so the per-layer work
/// behind each batch size is also shared across classes, batch caps, and
/// platforms with common layer shapes.
pub(crate) struct CostTable {
    /// `svc[class][b-1]` = whole-batch service seconds at batch `b`.
    svc: Vec<Vec<f64>>,
    /// `energy[class][b-1]` = whole-batch energy joules at batch `b`.
    energy: Vec<Vec<f64>>,
}

impl CostTable {
    pub(crate) fn build(
        backend: &dyn Evaluator,
        memory: &DramSpec,
        traffic: &TrafficSpec,
        max_batch: u64,
        cost: &CostModel,
    ) -> Self {
        let networks: Vec<bpvec_dnn::Network> = traffic
            .mix
            .entries
            .iter()
            .map(|e| e.workload.build())
            .collect();
        Self::build_with_networks(backend, memory, traffic, &networks, max_batch, cost)
    }

    /// [`CostTable::build`] with the mix's networks already instantiated
    /// (one per mix entry, in order) — callers that built them for
    /// validation pass them in instead of paying the construction twice.
    pub(crate) fn build_with_networks(
        backend: &dyn Evaluator,
        memory: &DramSpec,
        traffic: &TrafficSpec,
        networks: &[bpvec_dnn::Network],
        max_batch: u64,
        cost: &CostModel,
    ) -> Self {
        debug_assert_eq!(networks.len(), traffic.mix.classes());
        let mut svc = Vec::with_capacity(traffic.mix.classes());
        let mut energy = Vec::with_capacity(traffic.mix.classes());
        for (entry, network) in traffic.mix.entries.iter().zip(networks) {
            let mut s = Vec::with_capacity(max_batch as usize);
            let mut j = Vec::with_capacity(max_batch as usize);
            for b in 1..=max_batch {
                let w = entry.workload.clone().with_batching(BatchRegime::fixed(b));
                let m = backend.evaluate_with(&w, network, memory, cost);
                s.push(m.latency_s * b as f64);
                j.push(m.energy_j * b as f64);
            }
            svc.push(s);
            energy.push(j);
        }
        CostTable { svc, energy }
    }

    /// True when the table covers batches up to `max_batch` for every class
    /// of `traffic`'s mix — the precondition for sharing it across policies.
    pub(crate) fn covers(&self, traffic: &TrafficSpec, max_batch: u64) -> bool {
        self.svc.len() == traffic.mix.classes()
            && self.svc.iter().all(|s| s.len() >= max_batch as usize)
    }

    fn service_s(&self, class: usize, batch: u64) -> f64 {
        self.svc[class][batch as usize - 1]
    }

    fn energy_j(&self, class: usize, batch: u64) -> f64 {
        self.energy[class][batch as usize - 1]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Arrival,
    Completion { shard: usize },
    DeadlineCheck { shard: usize },
}

/// Heap entry ordered by `(time, seq)` ascending; the sequence number makes
/// simultaneous events (and therefore the whole run) deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so std's max-heap pops the earliest event first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    id: u64,
    class: usize,
    arrival_s: f64,
}

struct InFlight {
    requests: Vec<Request>,
    start_s: f64,
}

struct Shard {
    queues: Vec<VecDeque<Request>>,
    in_flight: Option<InFlight>,
    /// Fire time of this shard's outstanding `DeadlineCheck`, if one is in
    /// the heap and still in the future (at most one is armed at a time).
    armed_check_s: Option<f64>,
}

impl Shard {
    fn new(classes: usize) -> Self {
        Shard {
            queues: (0..classes).map(|_| VecDeque::new()).collect(),
            in_flight: None,
            armed_check_s: None,
        }
    }

    fn depth(&self) -> u64 {
        let queued: usize = self.queues.iter().map(VecDeque::len).sum();
        queued as u64
            + self
                .in_flight
                .as_ref()
                .map_or(0, |f| f.requests.len() as u64)
    }
}

/// Open-loop inter-arrival sampling state.
enum ArrivalGen {
    Poisson {
        rate: f64,
    },
    Bursty {
        base_rps: f64,
        burst_rps: f64,
        mean_base_s: f64,
        mean_burst_s: f64,
        in_burst: bool,
        remaining_s: f64,
    },
    Trace {
        gaps: Vec<f64>,
        idx: usize,
    },
    Closed,
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen_range(0.0f64..1.0)).ln()
}

impl ArrivalGen {
    fn new(process: &ArrivalProcess, rng: &mut StdRng) -> Self {
        match process {
            ArrivalProcess::Poisson { rate_rps } => ArrivalGen::Poisson { rate: *rate_rps },
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_base_s,
                mean_burst_s,
            } => ArrivalGen::Bursty {
                base_rps: *base_rps,
                burst_rps: *burst_rps,
                mean_base_s: *mean_base_s,
                mean_burst_s: *mean_burst_s,
                in_burst: false,
                remaining_s: exp_sample(rng, *mean_base_s),
            },
            ArrivalProcess::Trace { inter_arrival_s } => ArrivalGen::Trace {
                gaps: inter_arrival_s.clone(),
                idx: 0,
            },
            ArrivalProcess::ClosedLoop { .. } => ArrivalGen::Closed,
        }
    }

    /// The gap to the next open-loop arrival.
    fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalGen::Poisson { rate } => exp_sample(rng, 1.0 / *rate),
            ArrivalGen::Bursty {
                base_rps,
                burst_rps,
                mean_base_s,
                mean_burst_s,
                in_burst,
                remaining_s,
            } => {
                let mut gap = 0.0;
                loop {
                    let rate = if *in_burst { *burst_rps } else { *base_rps };
                    let e = exp_sample(rng, 1.0 / rate);
                    if e <= *remaining_s {
                        *remaining_s -= e;
                        return gap + e;
                    }
                    // The modulating chain switches state before the next
                    // arrival at the current rate would land.
                    gap += *remaining_s;
                    *in_burst = !*in_burst;
                    let mean = if *in_burst {
                        *mean_burst_s
                    } else {
                        *mean_base_s
                    };
                    *remaining_s = exp_sample(rng, mean);
                }
            }
            ArrivalGen::Trace { gaps, idx } => {
                let gap = gaps[*idx % gaps.len()];
                *idx += 1;
                gap
            }
            ArrivalGen::Closed => unreachable!("closed-loop arrivals are completion-driven"),
        }
    }
}

struct Sim<'a> {
    policy: BatchPolicy,
    service: ServiceModel,
    table: Arc<CostTable>,
    traffic: &'a TrafficSpec,
    router: Router,
    shards: Vec<Shard>,
    heap: BinaryHeap<Event>,
    seq: u64,
    arrival_rng: StdRng,
    service_rng: StdRng,
    gen: ArrivalGen,
    /// Requests admitted so far (doubles as the next request id).
    admitted: u64,
    /// Arrival events pushed so far (bounded by `traffic.requests`).
    scheduled: u64,
    rr_next: usize,
    queued: u64,
    now: f64,
    records: Vec<RequestRecord>,
    busy_s: f64,
    depth_integral: f64,
    energy_j: f64,
    batches: u64,
    /// Time of the last batch completion — the outcome's makespan. (The
    /// heap can outlive it by one armed deadline check firing on an empty
    /// system; that no-op must not stretch the measured run.)
    last_completion_s: f64,
}

impl Sim<'_> {
    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn route(&mut self, class: usize) -> usize {
        let n = self.shards.len();
        match self.router {
            Router::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                s
            }
            Router::JoinShortestQueue => (0..n)
                .min_by_key(|&s| (self.shards[s].depth(), s))
                .expect("cluster has at least one replica"),
            Router::NetworkAffinity => class % n,
        }
    }

    /// The non-empty class whose head request arrived earliest, restricted
    /// by `eligible`; ties break on admission id (= global FIFO).
    fn earliest_head(
        queues: &[VecDeque<Request>],
        eligible: impl Fn(&VecDeque<Request>) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(f64, u64, usize)> = None;
        for (c, q) in queues.iter().enumerate() {
            if !eligible(q) {
                continue;
            }
            if let Some(r) = q.front() {
                let better = best.is_none_or(|(t, id, _)| {
                    matches!(
                        r.arrival_s.total_cmp(&t).then(r.id.cmp(&id)),
                        Ordering::Less
                    )
                });
                if better {
                    best = Some((r.arrival_s, r.id, c));
                }
            }
        }
        best.map(|(_, _, c)| c)
    }

    /// Applies the batching policy to one idle replica. `flush` forces a
    /// partial dispatch (end-of-run drain, or a closed loop that can never
    /// fill the batch).
    fn try_dispatch(&mut self, shard: usize, flush: bool) {
        if self.shards[shard].in_flight.is_some() {
            return;
        }
        let queues = &self.shards[shard].queues;
        // When a deadline policy declines, `arm` is the instant the oldest
        // head's wait expires — the next moment a dispatch could trigger.
        let mut arm: Option<f64> = None;
        let pick: Option<(usize, u64)> = match self.policy {
            BatchPolicy::Immediate => Self::earliest_head(queues, |_| true).map(|c| (c, 1)),
            BatchPolicy::Fixed { size } => {
                match Self::earliest_head(queues, |q| q.len() as u64 >= size) {
                    Some(c) => Some((c, size)),
                    None if flush => Self::earliest_head(queues, |_| true)
                        .map(|c| (c, (queues[c].len() as u64).min(size))),
                    None => None,
                }
            }
            BatchPolicy::Deadline {
                max_batch,
                max_wait_s,
            } => match Self::earliest_head(queues, |q| q.len() as u64 >= max_batch) {
                Some(c) => Some((c, max_batch)),
                None => match Self::earliest_head(queues, |_| true) {
                    Some(c) => {
                        let head = queues[c].front().expect("head exists");
                        let expired = self.now - head.arrival_s >= max_wait_s - 1e-12;
                        if expired || flush {
                            Some((c, (queues[c].len() as u64).min(max_batch)))
                        } else {
                            arm = Some(head.arrival_s + max_wait_s);
                            None
                        }
                    }
                    None => None,
                },
            },
        };
        let Some((class, take)) = pick else {
            // Arm (at most) one pending deadline check per shard; a stale
            // armed time in the past means that check already fired.
            if let Some(t) = arm {
                if self.shards[shard]
                    .armed_check_s
                    .is_none_or(|a| a <= self.now)
                {
                    self.shards[shard].armed_check_s = Some(t);
                    self.push(t, EventKind::DeadlineCheck { shard });
                }
            }
            return;
        };
        let mut requests = Vec::with_capacity(take as usize);
        for _ in 0..take {
            let r = self.shards[shard].queues[class]
                .pop_front()
                .expect("picked batch exceeds queue");
            requests.push(r);
        }
        self.queued -= take;
        let base = self.table.service_s(class, take);
        let svc = match self.service {
            ServiceModel::Deterministic => base,
            ServiceModel::ExponentialJitter => exp_sample(&mut self.service_rng, base),
        };
        self.busy_s += svc;
        self.energy_j += self.table.energy_j(class, take);
        self.batches += 1;
        self.shards[shard].in_flight = Some(InFlight {
            requests,
            start_s: self.now,
        });
        let t = self.now + svc;
        self.push(t, EventKind::Completion { shard });
    }

    fn on_arrival(&mut self) {
        debug_assert!(self.admitted < self.traffic.requests);
        let class = self.traffic.mix.sample(&mut self.arrival_rng);
        let id = self.admitted;
        self.admitted += 1;
        let shard = self.route(class);
        let arrival_s = self.now;
        self.shards[shard].queues[class].push_back(Request {
            id,
            class,
            arrival_s,
        });
        self.queued += 1;
        if !self.traffic.process.is_closed() && self.scheduled < self.traffic.requests {
            self.scheduled += 1;
            let gap = self.gen.next_gap(&mut self.arrival_rng);
            let t = self.now + gap;
            self.push(t, EventKind::Arrival);
        }
        self.try_dispatch(shard, false);
    }

    fn on_completion(&mut self, shard: usize) {
        let batch = self.shards[shard]
            .in_flight
            .take()
            .expect("completion without an in-flight batch");
        self.last_completion_s = self.now;
        let size = batch.requests.len() as u64;
        for r in &batch.requests {
            self.records.push(RequestRecord {
                id: r.id,
                class: r.class,
                shard,
                arrival_s: r.arrival_s,
                start_s: batch.start_s,
                completion_s: self.now,
                batch: size,
            });
        }
        if let ArrivalProcess::ClosedLoop { think_s, .. } = self.traffic.process {
            // Each completed request's client thinks, then issues the next.
            for _ in 0..size {
                if self.scheduled < self.traffic.requests {
                    self.scheduled += 1;
                    let t = self.now + think_s;
                    self.push(t, EventKind::Arrival);
                }
            }
        }
        self.try_dispatch(shard, false);
    }

    fn run(&mut self) {
        while let Some(ev) = self.heap.pop() {
            self.depth_integral += self.queued as f64 * (ev.time - self.now);
            self.now = ev.time;
            match ev.kind {
                EventKind::Arrival => self.on_arrival(),
                EventKind::Completion { shard } => self.on_completion(shard),
                EventKind::DeadlineCheck { shard } => {
                    self.shards[shard].armed_check_s = None;
                    self.try_dispatch(shard, false);
                }
            }
            // Drain: no event can fill a batch any further, so flush the
            // partial batches (also rescues closed loops whose concurrency
            // is below a fixed batch size from deadlock).
            if self.heap.is_empty() && self.queued > 0 {
                for s in 0..self.shards.len() {
                    self.try_dispatch(s, true);
                }
            }
        }
    }
}

/// Simulates one serving configuration to completion.
///
/// `seed` drives arrivals and mix sampling (and service jitter, from an
/// independent stream): a fixed seed gives a bit-identical outcome, and the
/// same seed under different policies/clusters sees the *same* arrival
/// sequence, so policy comparisons are paired.
///
/// # Panics
///
/// Panics on a malformed configuration (zero batch size or replica count,
/// non-positive arrival rates or mix weights, an empty trace or request
/// mix). [`crate::ServingScenario`] performs the same checks up front and
/// returns them as [`crate::ServingError`]s instead.
#[must_use]
pub fn run_serving(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
    ] {
        if let Err(e) = check {
            panic!("run_serving: {e}");
        }
    }
    // One-shot runs get a private cost model; `ServingScenario` shares one
    // table per (platform, traffic) across its whole grid instead.
    let cost = CostModel::new();
    let table = Arc::new(CostTable::build(
        backend,
        memory,
        traffic,
        policy.max_batch(),
        &cost,
    ));
    run_serving_with_table(table, policy, cluster, traffic, service, seed)
}

/// The event loop behind [`run_serving`], driven by a prebuilt (usually
/// shared) cost table. The table must cover the policy's max batch for
/// every class of `traffic`'s mix.
pub(crate) fn run_serving_with_table(
    table: Arc<CostTable>,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
) -> ServingOutcome {
    debug_assert!(table.covers(traffic, policy.max_batch()));
    let mut arrival_rng = StdRng::seed_from_u64(seed);
    let service_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let gen = ArrivalGen::new(&traffic.process, &mut arrival_rng);
    let mut sim = Sim {
        policy,
        service,
        table,
        traffic,
        router: cluster.router,
        shards: (0..cluster.replicas.max(1))
            .map(|_| Shard::new(traffic.mix.classes()))
            .collect(),
        heap: BinaryHeap::new(),
        seq: 0,
        arrival_rng,
        service_rng,
        gen,
        admitted: 0,
        scheduled: 0,
        rr_next: 0,
        queued: 0,
        now: 0.0,
        records: Vec::with_capacity(traffic.requests as usize),
        busy_s: 0.0,
        depth_integral: 0.0,
        energy_j: 0.0,
        batches: 0,
        last_completion_s: 0.0,
    };
    if traffic.requests > 0 {
        match traffic.process {
            ArrivalProcess::ClosedLoop { concurrency, .. } => {
                let clients = concurrency.max(1).min(traffic.requests);
                for _ in 0..clients {
                    sim.push(0.0, EventKind::Arrival);
                }
                sim.scheduled = clients;
            }
            _ => {
                let gap = sim.gen.next_gap(&mut sim.arrival_rng);
                sim.push(gap, EventKind::Arrival);
                sim.scheduled = 1;
            }
        }
    }
    sim.run();
    ServingOutcome {
        records: sim.records,
        admitted: sim.admitted,
        busy_s: sim.busy_s,
        depth_integral: sim.depth_integral,
        makespan_s: sim.last_completion_s,
        energy_j: sim.energy_j,
        batches: sim.batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::RequestMix;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};
    use bpvec_sim::{Measurement, Workload};

    /// Constant per-inference latency backend: whole-batch cost is linear
    /// in batch size, so it has no batching incentive — ideal for checking
    /// the event loop itself.
    struct ConstServer {
        per_inference_s: f64,
    }

    impl Evaluator for ConstServer {
        fn label(&self) -> String {
            "const".into()
        }

        fn evaluate(
            &self,
            workload: &Workload,
            network: &bpvec_dnn::Network,
            _dram: &DramSpec,
        ) -> Measurement {
            Measurement {
                latency_s: self.per_inference_s,
                energy_j: 1e-3,
                macs: network.total_macs(),
                batch: workload.batch(),
                gops_per_watt: 1.0,
            }
        }
    }

    fn traffic(process: ArrivalProcess, requests: u64) -> TrafficSpec {
        TrafficSpec::new(
            "t",
            process,
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            requests,
        )
    }

    fn run(policy: BatchPolicy, process: ArrivalProcess, requests: u64) -> ServingOutcome {
        run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            policy,
            ClusterSpec::single(),
            &traffic(process, requests),
            ServiceModel::Deterministic,
            7,
        )
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::poisson(500.0),
            400,
        );
        assert_eq!(out.admitted, 400);
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let a = run(
            BatchPolicy::deadline(8, 0.002),
            ArrivalProcess::bursty(200.0, 2000.0, 0.02, 0.005),
            500,
        );
        let b = run(
            BatchPolicy::deadline(8, 0.002),
            ArrivalProcess::bursty(200.0, 2000.0, 0.02, 0.005),
            500,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_never_exceeds_concurrency_in_flight() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::closed_loop(3, 0.0005),
            300,
        );
        assert_eq!(out.records.len(), 300);
        // With 3 clients and batch-1 service, at most 3 requests can be in
        // the system, so sojourn is bounded by 3 service times.
        for r in &out.records {
            assert!(r.sojourn_s() <= 3.0 * 1e-3 + 1e-9, "{}", r.sojourn_s());
        }
    }

    #[test]
    fn closed_loop_with_oversized_fixed_batch_does_not_deadlock() {
        // 2 clients can never fill a batch of 8; the drain flush must keep
        // the loop alive.
        let out = run(
            BatchPolicy::fixed(8),
            ArrivalProcess::closed_loop(2, 0.0),
            100,
        );
        assert_eq!(out.records.len(), 100);
        assert!(out.records.iter().all(|r| r.batch <= 8));
    }

    #[test]
    fn fixed_batching_dispatches_full_batches_under_backlog() {
        // Heavy overload: everything queues, so all batches (except the
        // final drain) are full.
        let out = run(
            BatchPolicy::fixed(4),
            ArrivalProcess::poisson(10_000.0),
            401,
        );
        let full = out.records.iter().filter(|r| r.batch == 4).count();
        assert!(full >= 400, "{full}");
    }

    #[test]
    fn trace_replay_is_exact() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::trace(vec![0.25, 0.5, 0.25]),
            4,
        );
        let mut arrivals: Vec<f64> = out.records.iter().map(|r| r.arrival_s).collect();
        arrivals.sort_by(f64::total_cmp);
        // Gaps cycle: 0.25, 0.5, 0.25, 0.25 (wraps).
        let expect = [0.25, 0.75, 1.0, 1.25];
        for (a, e) in arrivals.iter().zip(expect) {
            assert!((a - e).abs() < 1e-12, "{a} vs {e}");
        }
    }

    #[test]
    fn utilization_accounting_is_consistent() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::poisson(400.0),
            1000,
        );
        // 1000 batch-1 dispatches of 1 ms each.
        assert!((out.busy_s - 1.0).abs() < 1e-9, "{}", out.busy_s);
        assert_eq!(out.batches, 1000);
        assert!(out.makespan_s >= out.busy_s * 0.9);
        assert!((out.energy_j - 1.0).abs() < 1e-9, "{}", out.energy_j);
    }

    #[test]
    fn deadline_policy_dispatches_before_max_wait_when_full() {
        // Backlogged: batches fill instantly, nobody waits out the deadline.
        let out = run(
            BatchPolicy::deadline(4, 10.0),
            ArrivalProcess::poisson(50_000.0),
            400,
        );
        assert!(out.records.iter().all(|r| r.batch <= 4));
        let full = out.records.iter().filter(|r| r.batch == 4).count();
        assert!(full > 300, "{full}");
    }

    #[test]
    fn deadline_policy_flushes_a_lone_request_at_max_wait() {
        let out = run(
            BatchPolicy::deadline(64, 0.010),
            ArrivalProcess::trace(vec![1.0]),
            1,
        );
        let r = &out.records[0];
        assert_eq!(r.batch, 1);
        // Dispatched at arrival + max_wait, not at drain.
        assert!((r.start_s - r.arrival_s - 0.010).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_the_last_completion_not_a_stale_deadline_check() {
        // 400 requests at 50k rps complete in well under a second; the
        // 10 s deadline must not leak into the measured makespan through
        // a stale check firing on the drained system.
        let out = run(
            BatchPolicy::deadline(4, 10.0),
            ArrivalProcess::poisson(50_000.0),
            400,
        );
        let last = out
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        assert_eq!(out.makespan_s, last);
        assert!(out.makespan_s < 1.0, "{}", out.makespan_s);
    }

    #[test]
    #[should_panic(
        expected = "run_serving: traffic `t`: trace needs at least one non-negative gap"
    )]
    fn degenerate_inputs_panic_with_a_clear_message() {
        let _ = run(BatchPolicy::immediate(), ArrivalProcess::trace(vec![]), 10);
    }

    #[test]
    fn affinity_routing_pins_classes_to_shards() {
        let mix = RequestMix::new()
            .and(
                Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
                1.0,
            )
            .and(
                Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
                1.0,
            );
        let t = TrafficSpec::new("mix", ArrivalProcess::poisson(500.0), mix, 400);
        let out = run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::new(2, Router::NetworkAffinity),
            &t,
            ServiceModel::Deterministic,
            3,
        );
        for r in &out.records {
            assert_eq!(r.shard, r.class % 2);
        }
    }

    #[test]
    fn jsq_spreads_load_across_replicas() {
        let t = traffic(ArrivalProcess::poisson(3000.0), 2000);
        let out = run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::new(4, Router::JoinShortestQueue),
            &t,
            ServiceModel::Deterministic,
            11,
        );
        for s in 0..4 {
            let n = out.records.iter().filter(|r| r.shard == s).count();
            assert!(n > 300, "shard {s} served only {n}");
        }
    }
}
