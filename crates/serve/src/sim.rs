//! The deterministic discrete-event core.
//!
//! One [`run_serving`] call simulates one configuration: a traffic spec
//! feeding a sharded cluster of replicas, each running a batch scheduler
//! over per-class FIFO queues, with batch service times looked up from the
//! backend's `BatchRegime` latencies (so CNN tile-spill effects shape the
//! cost of every batch size). Everything is driven by a single seeded RNG
//! pair and a `(time, sequence)`-ordered event queue (calendar queue by
//! default, the original binary heap behind `BPVEC_EVENT_QUEUE=heap` —
//! both pop the identical sequence), so a fixed seed yields a
//! bit-identical [`ServingOutcome`] on every run.
//!
//! Memory contract: by default the loop streams — per-request
//! [`RequestRecord`]s are *not* retained, and latency statistics come from
//! the O(1) [`StreamingSummary`] digest. [`RunOptions::retained`] switches
//! record retention back on (the debug/exact axis the scenario grids and
//! CSV goldens use).

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;

use bpvec_obs::{TraceEvent, TraceSink};
use bpvec_sim::{BatchRegime, CostModel, DramSpec, Evaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::{ArrivalProcess, TrafficSpec};
use crate::cluster::{ClusterSpec, Router};
use crate::controller::AdaptiveSpec;
use crate::fleet::{FleetSpec, FleetState};
use crate::queue::{EventQueue, QueueKind};
use crate::scheduler::BatchPolicy;
use crate::streaming::{StreamStats, StreamingSummary};

/// How dispatched batches' service times vary around the backend's
/// deterministic batch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Service takes exactly the backend's modeled batch latency.
    Deterministic,
    /// Service time is exponentially distributed with the modeled latency
    /// as its mean — models runtime jitter, and turns a Poisson +
    /// immediate + single-replica configuration into a textbook M/M/1
    /// queue for closed-form validation.
    ExponentialJitter,
}

/// The full lifecycle of one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Admission index (0-based, in arrival order).
    pub id: u64,
    /// Service class (index into the traffic's [`crate::RequestMix`]).
    pub class: usize,
    /// Replica the request was routed to.
    pub shard: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Batch dispatch time, seconds.
    pub start_s: f64,
    /// Completion time, seconds.
    pub completion_s: f64,
    /// Size of the batch the request was served in.
    pub batch: u64,
    /// Ladder rung the serving replica held when the batch dispatched
    /// (always 0 under static control: full precision).
    pub rung: usize,
}

impl RequestRecord {
    /// End-to-end sojourn time (queueing + service), seconds.
    #[must_use]
    pub fn sojourn_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// One precision switch decided by the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicySwitchEvent {
    /// Simulated time of the switch, seconds.
    pub time_s: f64,
    /// The replica that switched.
    pub replica: usize,
    /// Rung held before the switch.
    pub from_rung: usize,
    /// Rung held after the switch (`from_rung ± 1`).
    pub to_rung: usize,
}

/// One replica activation or deactivation decided by the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Simulated time of the action, seconds.
    pub time_s: f64,
    /// The replica activated or deactivated.
    pub replica: usize,
    /// True for a scale-up (activation).
    pub up: bool,
}

/// How one simulation run retains state and emits telemetry.
///
/// The default is the fleet-scale contract: streaming metrics only (no
/// per-request record retention), every request traced, SLA accounting
/// off, and the event queue picked by [`QueueKind::from_env`]. The legacy
/// entry points ([`run_serving`] and friends) pass
/// [`RunOptions::retained`] instead, so their exact record-based outputs
/// are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Retain a [`RequestRecord`] per request (O(n) memory; exact
    /// percentiles). Off by default.
    pub retain_records: bool,
    /// SLA the streaming pipeline counts hits against as completions
    /// stream through (exact, not sketched).
    pub sla_s: Option<f64>,
    /// Trace sampling stride: only requests with `id % trace_every == 0`
    /// emit request-lane trace events (batch `exec` spans emit when they
    /// carry at least one sampled request). `1` traces everything.
    pub trace_every: u64,
    /// Aggregation window for the streaming peak-throughput signal.
    pub window_s: f64,
    /// Event-queue implementation backing the run.
    pub queue: QueueKind,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            retain_records: false,
            sla_s: None,
            trace_every: 1,
            window_s: 1.0,
            queue: QueueKind::from_env(),
        }
    }
}

impl RunOptions {
    /// The legacy exact configuration: full record retention.
    #[must_use]
    pub fn retained() -> Self {
        RunOptions {
            retain_records: true,
            ..RunOptions::default()
        }
    }

    /// Sets the streaming SLA accounting target.
    #[must_use]
    pub fn with_sla(mut self, sla_s: Option<f64>) -> Self {
        self.sla_s = sla_s;
        self
    }

    /// Sets the trace sampling stride (must be ≥ 1).
    #[must_use]
    pub fn with_trace_every(mut self, every: u64) -> Self {
        self.trace_every = every;
        self
    }

    /// Sets the streaming aggregation window.
    #[must_use]
    pub fn with_window(mut self, window_s: f64) -> Self {
        self.window_s = window_s;
        self
    }

    /// Pins the event-queue implementation.
    #[must_use]
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }
}

/// Raw result of one simulation run; [`crate::ServingMetrics`] summarizes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Per-request lifecycle records, in completion order. Empty unless
    /// the run retained records ([`RunOptions::retain_records`]).
    pub records: Vec<RequestRecord>,
    /// Requests admitted (the traffic spec's request count minus
    /// `dropped`).
    pub admitted: u64,
    /// Requests completed (equals `admitted` once the run drains).
    pub completed: u64,
    /// Requests shed by fleet admission control or region queue caps
    /// (always 0 outside fleet runs).
    pub dropped: u64,
    /// High-water mark of `records.len()` — the bench gate's proof that a
    /// streaming run held no per-request state (0 when retention is off).
    pub peak_records_retained: u64,
    /// High-water mark of requests simultaneously in the system (queued,
    /// in flight, or in inter-tier transit).
    pub peak_in_system: u64,
    /// Total events popped from the event queue over the run.
    pub events: u64,
    /// The O(1)-memory streaming digest of the post-warmup latency
    /// stream; always populated, and the only latency signal when record
    /// retention is off.
    pub summary: StreamingSummary,
    /// Total busy time summed across replicas, seconds.
    pub busy_s: f64,
    /// Time integral of the total queue depth (waiting requests only).
    pub depth_integral: f64,
    /// Time of the last batch completion, seconds.
    pub makespan_s: f64,
    /// Total energy of all dispatched batches, joules.
    pub energy_j: f64,
    /// Number of batches dispatched.
    pub batches: u64,
    /// Time integral of the *active* replica count over the measured run
    /// (up to `makespan_s`) — the capacity actually offered (constant
    /// `replicas × makespan_s` without an autoscaler).
    pub active_integral_s: f64,
    /// Active replica-time spent at each ladder rung, seconds (one entry
    /// per rung; a single entry under static control). Sums to
    /// `active_integral_s`.
    pub rung_time_s: Vec<f64>,
    /// The controller's precision switches, in decision order.
    pub policy_switches: Vec<PolicySwitchEvent>,
    /// The autoscaler's activations/deactivations, in decision order.
    pub scale_events: Vec<ScaleEvent>,
}

/// Whole-batch service time and energy per (class, batch size), precomputed
/// from the backend so the event loop never re-runs the analytical model.
///
/// A table depends only on `(backend, memory, request mix, max batch)` —
/// not on the batching policy, cluster shape, or replica count — so
/// [`crate::ServingScenario`] builds one per (platform, traffic) behind an
/// [`Arc`] and every replica of every policy × cluster cell shares it.
/// Construction goes through a shared [`CostModel`], so the per-layer work
/// behind each batch size is also shared across classes, batch caps, and
/// platforms with common layer shapes.
pub(crate) struct CostTable {
    /// `svc[class][b-1]` = whole-batch service seconds at batch `b`.
    svc: Vec<Vec<f64>>,
    /// `energy[class][b-1]` = whole-batch energy joules at batch `b`.
    energy: Vec<Vec<f64>>,
}

impl CostTable {
    pub(crate) fn build(
        backend: &dyn Evaluator,
        memory: &DramSpec,
        traffic: &TrafficSpec,
        max_batch: u64,
        cost: &CostModel,
    ) -> Self {
        let networks: Vec<bpvec_dnn::Network> = traffic
            .mix
            .entries
            .iter()
            .map(|e| e.workload.build())
            .collect();
        Self::build_with_networks(backend, memory, traffic, &networks, max_batch, cost)
    }

    /// [`CostTable::build`] with the mix's networks already instantiated
    /// (one per mix entry, in order) — callers that built them for
    /// validation pass them in instead of paying the construction twice.
    pub(crate) fn build_with_networks(
        backend: &dyn Evaluator,
        memory: &DramSpec,
        traffic: &TrafficSpec,
        networks: &[bpvec_dnn::Network],
        max_batch: u64,
        cost: &CostModel,
    ) -> Self {
        debug_assert_eq!(networks.len(), traffic.mix.classes());
        let mut svc = Vec::with_capacity(traffic.mix.classes());
        let mut energy = Vec::with_capacity(traffic.mix.classes());
        for (entry, network) in traffic.mix.entries.iter().zip(networks) {
            let mut s = Vec::with_capacity(max_batch as usize);
            let mut j = Vec::with_capacity(max_batch as usize);
            for b in 1..=max_batch {
                let w = entry.workload.clone().with_batching(BatchRegime::fixed(b));
                let m = backend.evaluate_with(&w, network, memory, cost);
                s.push(m.latency_s * b as f64);
                j.push(m.energy_j * b as f64);
            }
            svc.push(s);
            energy.push(j);
        }
        CostTable { svc, energy }
    }

    /// True when the table covers batches up to `max_batch` for every class
    /// of `traffic`'s mix — the precondition for sharing it across policies.
    pub(crate) fn covers(&self, traffic: &TrafficSpec, max_batch: u64) -> bool {
        self.svc.len() == traffic.mix.classes()
            && self.svc.iter().all(|s| s.len() >= max_batch as usize)
    }

    fn service_s(&self, class: usize, batch: u64) -> f64 {
        self.svc[class][batch as usize - 1]
    }

    fn energy_j(&self, class: usize, batch: u64) -> f64 {
        self.energy[class][batch as usize - 1]
    }
}

/// Event payloads, ordered by the queue's `(time, seq)` key — the
/// sequence number makes simultaneous events (and therefore the whole
/// run) deterministic regardless of queue implementation.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    Arrival,
    Completion {
        shard: usize,
    },
    DeadlineCheck {
        shard: usize,
    },
    /// Adaptive control evaluation: every replica's rung, then the
    /// autoscaler. Scheduled only when an [`AdaptiveSpec`] is in force.
    ControllerTick,
    /// A fleet-routed request landing on its replica after the inter-tier
    /// forward delay. Only scheduled when a fleet's `forward_delay_s` is
    /// positive; zero-delay fleets enqueue directly at arrival.
    Enqueue {
        shard: usize,
        req: Request,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) id: u64,
    pub(crate) class: usize,
    pub(crate) arrival_s: f64,
    /// Tenant index within the fleet spec (0 outside fleet runs).
    pub(crate) tenant: u32,
}

struct InFlight {
    requests: Vec<Request>,
    start_s: f64,
    /// Rung the batch dispatched at (its service time is already locked in;
    /// a mid-service switch only affects subsequent batches).
    rung: usize,
    /// Whether this batch's `exec` span was emitted to the trace (it
    /// carried at least one sampled request), so the matching end event
    /// fires iff the begin did.
    traced: bool,
}

struct Shard {
    queues: Vec<VecDeque<Request>>,
    in_flight: Option<InFlight>,
    /// Fire time of this shard's outstanding `DeadlineCheck`, if one is in
    /// the heap and still in the future (at most one is armed at a time).
    armed_check_s: Option<f64>,
    /// Active ladder rung (0 = full precision; fixed at 0 under static
    /// control).
    rung: usize,
    /// Whether the replica serves traffic (autoscaled replicas toggle this;
    /// without an autoscaler every replica is always active).
    active: bool,
    /// Time the replica entered its current rung (for time-in-policy
    /// accounting; only accrues while active).
    rung_since_s: f64,
    /// Controller ticks since this replica last switched rungs.
    ticks_since_switch: u64,
    /// Sliding window of recent sojourn times, completion order (the
    /// controller's p99 signal; maintained only when a latency target is
    /// set — depth-only controllers skip the bookkeeping entirely).
    window: VecDeque<f64>,
    /// Scratch for the selection behind [`Shard::window_p99`] (reused
    /// across ticks to keep the controller allocation-free on the hot
    /// path).
    scratch: Vec<f64>,
}

impl Shard {
    fn new(classes: usize, active: bool) -> Self {
        Shard {
            queues: (0..classes).map(|_| VecDeque::new()).collect(),
            in_flight: None,
            armed_check_s: None,
            rung: 0,
            active,
            rung_since_s: 0.0,
            ticks_since_switch: u64::MAX,
            window: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    fn depth(&self) -> u64 {
        let queued: usize = self.queues.iter().map(VecDeque::len).sum();
        queued as u64
            + self
                .in_flight
                .as_ref()
                .map_or(0, |f| f.requests.len() as u64)
    }

    fn idle(&self) -> bool {
        self.in_flight.is_none() && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Nearest-rank p99 over the sojourn window, if any samples exist
    /// (selection, not a sort: O(window) per tick).
    fn window_p99(&mut self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.scratch.extend(self.window.iter().copied());
        let rank = (0.99 * self.scratch.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.scratch.len()) - 1;
        let (_, p99, _) = self.scratch.select_nth_unstable_by(idx, f64::total_cmp);
        Some(*p99)
    }
}

/// Open-loop inter-arrival sampling state.
enum ArrivalGen {
    Poisson {
        rate: f64,
    },
    Bursty {
        base_rps: f64,
        burst_rps: f64,
        mean_base_s: f64,
        mean_burst_s: f64,
        in_burst: bool,
        remaining_s: f64,
    },
    Trace {
        gaps: Vec<f64>,
        idx: usize,
    },
    /// Non-homogeneous Poisson (diurnal / flash crowd), sampled by
    /// thinning against the process's peak rate. Tracks its own arrival
    /// clock so λ(t) is evaluated at candidate times.
    Varying {
        process: ArrivalProcess,
        peak_rate: f64,
        t_s: f64,
    },
    Closed,
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen_range(0.0f64..1.0)).ln()
}

impl ArrivalGen {
    fn new(process: &ArrivalProcess, rng: &mut StdRng) -> Self {
        match process {
            ArrivalProcess::Poisson { rate_rps } => ArrivalGen::Poisson { rate: *rate_rps },
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_base_s,
                mean_burst_s,
            } => ArrivalGen::Bursty {
                base_rps: *base_rps,
                burst_rps: *burst_rps,
                mean_base_s: *mean_base_s,
                mean_burst_s: *mean_burst_s,
                in_burst: false,
                remaining_s: exp_sample(rng, *mean_base_s),
            },
            ArrivalProcess::Trace { inter_arrival_s } => ArrivalGen::Trace {
                gaps: inter_arrival_s.clone(),
                idx: 0,
            },
            ArrivalProcess::ClosedLoop { .. } => ArrivalGen::Closed,
            ArrivalProcess::Diurnal { peak_rps, .. } => ArrivalGen::Varying {
                process: process.clone(),
                peak_rate: *peak_rps,
                t_s: 0.0,
            },
            ArrivalProcess::FlashCrowd { flash_rps, .. } => ArrivalGen::Varying {
                process: process.clone(),
                peak_rate: *flash_rps,
                t_s: 0.0,
            },
        }
    }

    /// The gap to the next open-loop arrival.
    fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalGen::Poisson { rate } => exp_sample(rng, 1.0 / *rate),
            ArrivalGen::Bursty {
                base_rps,
                burst_rps,
                mean_base_s,
                mean_burst_s,
                in_burst,
                remaining_s,
            } => {
                let mut gap = 0.0;
                loop {
                    let rate = if *in_burst { *burst_rps } else { *base_rps };
                    let e = exp_sample(rng, 1.0 / rate);
                    if e <= *remaining_s {
                        *remaining_s -= e;
                        return gap + e;
                    }
                    // The modulating chain switches state before the next
                    // arrival at the current rate would land.
                    gap += *remaining_s;
                    *in_burst = !*in_burst;
                    let mean = if *in_burst {
                        *mean_burst_s
                    } else {
                        *mean_base_s
                    };
                    *remaining_s = exp_sample(rng, mean);
                }
            }
            ArrivalGen::Trace { gaps, idx } => {
                let gap = gaps[*idx % gaps.len()];
                *idx += 1;
                gap
            }
            ArrivalGen::Varying {
                process,
                peak_rate,
                t_s,
            } => {
                // Lewis–Shedler thinning: candidate gaps at the peak rate,
                // each accepted with probability λ(t)/λ_peak.
                let mut gap = 0.0;
                loop {
                    let e = exp_sample(rng, 1.0 / *peak_rate);
                    gap += e;
                    *t_s += e;
                    if rng.gen_range(0.0f64..1.0) * *peak_rate <= process.rate_at(*t_s) {
                        return gap;
                    }
                }
            }
            ArrivalGen::Closed => unreachable!("closed-loop arrivals are completion-driven"),
        }
    }
}

/// Trace lane carrying batch `exec` spans and `queue_depth` samples.
const TID_BATCH: u32 = 0;
/// Trace lane carrying per-request lifecycle events.
const TID_REQ: u32 = 1;
/// Trace lane carrying control-plane events (rung switches).
const TID_CTRL: u32 = 2;

struct Sim<'a> {
    policy: BatchPolicy,
    service: ServiceModel,
    /// Batch cost per ladder rung; static control sees a single entry.
    tables: Vec<Arc<CostTable>>,
    /// The adaptive control plane, when one is in force.
    control: Option<&'a AdaptiveSpec>,
    traffic: &'a TrafficSpec,
    router: Router,
    shards: Vec<Shard>,
    queue: EventQueue<EventKind>,
    seq: u64,
    arrival_rng: StdRng,
    service_rng: StdRng,
    gen: ArrivalGen,
    options: RunOptions,
    /// Streaming accumulator; observes every post-warmup completion.
    stream: StreamStats,
    /// Fleet topology/routing/rollup state, when this is a fleet run.
    fleet: Option<FleetState>,
    /// Arrivals sampled so far (doubles as the next request id; includes
    /// dropped requests).
    admitted: u64,
    /// Requests shed by fleet admission control.
    dropped: u64,
    /// Requests completed so far.
    completed: u64,
    /// Requests admitted and not yet completed (queued, in flight, or in
    /// inter-tier transit).
    in_system: u64,
    peak_in_system: u64,
    /// High-water mark of `records.len()`.
    peak_records: u64,
    /// Events popped so far.
    events: u64,
    /// Arrival events pushed so far (bounded by `traffic.requests`).
    scheduled: u64,
    rr_next: usize,
    queued: u64,
    now: f64,
    records: Vec<RequestRecord>,
    busy_s: f64,
    depth_integral: f64,
    energy_j: f64,
    batches: u64,
    /// Time of the last batch completion — the outcome's makespan. (The
    /// heap can outlive it by one armed deadline check firing on an empty
    /// system; that no-op must not stretch the measured run.)
    last_completion_s: f64,
    /// Set (to the makespan) the moment all work is done: every request
    /// admitted, nothing queued, nothing in flight. Trailing no-op events
    /// (a stale deadline check, a final controller tick) process after
    /// this point, and none of the time integrals may include them.
    finished_s: Option<f64>,
    /// Currently active replicas (constant without an autoscaler).
    active_count: u32,
    /// Time integral of `active_count`, up to `finished_s`.
    active_integral: f64,
    /// Active replica-time accrued per rung (finalized at run end).
    rung_time_s: Vec<f64>,
    /// Controller ticks fired so far.
    ticks: u64,
    /// Ticks since the autoscaler last acted.
    ticks_since_scale: u64,
    switch_log: Vec<PolicySwitchEvent>,
    scale_log: Vec<ScaleEvent>,
    /// Trace sink, normalized at entry: `None` when tracing is disabled,
    /// so the uninstrumented hot path pays one branch per emission site.
    trace: Option<&'a dyn TraceSink>,
    /// Class labels for trace args, precomputed once per traced run
    /// (empty when tracing is disabled).
    class_labels: Vec<String>,
}

impl Sim<'_> {
    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    /// Whether request `id` is in the trace sample (always true at the
    /// default stride of 1).
    fn sampled(&self, id: u64) -> bool {
        id.is_multiple_of(self.options.trace_every)
    }

    fn route(&mut self, class: usize) -> usize {
        let n = self.shards.len();
        match self.router {
            Router::RoundRobin => loop {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                if self.shards[s].active {
                    break s;
                }
            },
            Router::JoinShortestQueue => (0..n)
                .filter(|&s| self.shards[s].active)
                .min_by_key(|&s| (self.shards[s].depth(), s))
                .expect("cluster has at least one active replica"),
            Router::NetworkAffinity => {
                let active_n = self.active_count.max(1) as usize;
                if active_n == n {
                    // The common (non-autoscaled, or fully scaled) case:
                    // the seed's allocation-free pinning.
                    class % n
                } else {
                    // Map over the active replicas in index order. A scale
                    // event shifts this mapping — the modeled weights
                    // migration is not costed; see `Router::NetworkAffinity`.
                    (0..n)
                        .filter(|&s| self.shards[s].active)
                        .nth(class % active_n)
                        .expect("active_count active replicas exist")
                }
            }
            Router::LeastDegraded => (0..n)
                .filter(|&s| self.shards[s].active)
                .min_by_key(|&s| (self.shards[s].rung, self.shards[s].depth(), s))
                .expect("cluster has at least one active replica"),
        }
    }

    /// Accrues the replica's active time at its current rung, up to `now`
    /// or the end of measured work, whichever comes first.
    fn accrue_rung_time(&mut self, shard: usize) {
        let end = self.finished_s.unwrap_or(self.now);
        let s = &mut self.shards[shard];
        if s.active && end > s.rung_since_s {
            self.rung_time_s[s.rung] += end - s.rung_since_s;
        }
        s.rung_since_s = s.rung_since_s.max(end);
    }

    /// The non-empty class whose head request arrived earliest, restricted
    /// by `eligible`; ties break on admission id (= global FIFO).
    fn earliest_head(
        queues: &[VecDeque<Request>],
        eligible: impl Fn(&VecDeque<Request>) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(f64, u64, usize)> = None;
        for (c, q) in queues.iter().enumerate() {
            if !eligible(q) {
                continue;
            }
            if let Some(r) = q.front() {
                let better = best.is_none_or(|(t, id, _)| {
                    matches!(
                        r.arrival_s.total_cmp(&t).then(r.id.cmp(&id)),
                        Ordering::Less
                    )
                });
                if better {
                    best = Some((r.arrival_s, r.id, c));
                }
            }
        }
        best.map(|(_, _, c)| c)
    }

    /// Applies the batching policy to one idle replica. `flush` forces a
    /// partial dispatch (end-of-run drain, or a closed loop that can never
    /// fill the batch).
    fn try_dispatch(&mut self, shard: usize, flush: bool) {
        if self.shards[shard].in_flight.is_some() {
            return;
        }
        let queues = &self.shards[shard].queues;
        // When a deadline policy declines, `arm` is the instant the oldest
        // head's wait expires — the next moment a dispatch could trigger.
        let mut arm: Option<f64> = None;
        let pick: Option<(usize, u64)> = match self.policy {
            BatchPolicy::Immediate => Self::earliest_head(queues, |_| true).map(|c| (c, 1)),
            BatchPolicy::Fixed { size } => {
                match Self::earliest_head(queues, |q| q.len() as u64 >= size) {
                    Some(c) => Some((c, size)),
                    None if flush => Self::earliest_head(queues, |_| true)
                        .map(|c| (c, (queues[c].len() as u64).min(size))),
                    None => None,
                }
            }
            BatchPolicy::Deadline {
                max_batch,
                max_wait_s,
            } => match Self::earliest_head(queues, |q| q.len() as u64 >= max_batch) {
                Some(c) => Some((c, max_batch)),
                None => match Self::earliest_head(queues, |_| true) {
                    Some(c) => {
                        let head = queues[c].front().expect("head exists");
                        let expired = self.now - head.arrival_s >= max_wait_s - 1e-12;
                        if expired || flush {
                            Some((c, (queues[c].len() as u64).min(max_batch)))
                        } else {
                            arm = Some(head.arrival_s + max_wait_s);
                            None
                        }
                    }
                    None => None,
                },
            },
        };
        let Some((class, take)) = pick else {
            // Arm (at most) one pending deadline check per shard; a stale
            // armed time in the past means that check already fired.
            if let Some(t) = arm {
                if self.shards[shard]
                    .armed_check_s
                    .is_none_or(|a| a <= self.now)
                {
                    self.shards[shard].armed_check_s = Some(t);
                    self.push(t, EventKind::DeadlineCheck { shard });
                }
            }
            return;
        };
        let mut requests = Vec::with_capacity(take as usize);
        for _ in 0..take {
            let r = self.shards[shard].queues[class]
                .pop_front()
                .expect("picked batch exceeds queue");
            requests.push(r);
        }
        self.queued -= take;
        let rung = self.shards[shard].rung;
        let table = &self.tables[rung];
        let base = table.service_s(class, take);
        let svc = match self.service {
            ServiceModel::Deterministic => base,
            ServiceModel::ExponentialJitter => exp_sample(&mut self.service_rng, base),
        };
        self.busy_s += svc;
        self.energy_j += table.energy_j(class, take);
        self.batches += 1;
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.note_busy(shard, svc);
        }
        // Sampled tracing: the batch's exec span emits iff it carries at
        // least one sampled request, and `traced` remembers that so the
        // matching end event pairs up exactly.
        let mut traced = false;
        if let Some(t) = self.trace {
            traced = requests.iter().any(|r| self.sampled(r.id));
            if traced {
                // The batch-formation wait (oldest member's queueing time)
                // rides as an arg on the exec span rather than as its own
                // span: one lane, one in-flight batch per replica, so B/E
                // nesting stays trivially well-formed.
                let form_wait_s = self.now - requests[0].arrival_s;
                t.record(TraceEvent::counter(
                    "queue_depth",
                    self.now,
                    shard as u32,
                    TID_BATCH,
                    self.queue_len(shard) as f64,
                ));
                t.record(
                    TraceEvent::begin("exec", self.now, shard as u32, TID_BATCH)
                        .with_cat("serve")
                        .with_arg("class", self.class_labels[class].as_str())
                        .with_arg("batch", take)
                        .with_arg("rung", rung)
                        .with_arg("svc_s", svc)
                        .with_arg("form_wait_s", form_wait_s),
                );
            }
        }
        self.shards[shard].in_flight = Some(InFlight {
            requests,
            start_s: self.now,
            rung,
            traced,
        });
        let t = self.now + svc;
        self.push(t, EventKind::Completion { shard });
    }

    /// Queue-only depth of one shard (in-flight work excluded) — the
    /// quantity sampled onto the `queue_depth` counter track.
    fn queue_len(&self, shard: usize) -> u64 {
        self.shards[shard]
            .queues
            .iter()
            .map(|q| q.len() as u64)
            .sum()
    }

    fn on_arrival(&mut self) {
        debug_assert!(self.admitted < self.traffic.requests);
        let class = self.traffic.mix.sample(&mut self.arrival_rng);
        let id = self.admitted;
        self.admitted += 1;
        let arrival_s = self.now;
        // Keep the arrival process running whether or not this request is
        // admitted — drops shed load, they don't pause traffic.
        if !self.traffic.process.is_closed() && self.scheduled < self.traffic.requests {
            self.scheduled += 1;
            let gap = self.gen.next_gap(&mut self.arrival_rng);
            let t = self.now + gap;
            self.push(t, EventKind::Arrival);
        }
        if self.fleet.is_some() {
            self.on_fleet_arrival(id, class, arrival_s);
            return;
        }
        let shard = self.route(class);
        self.in_system += 1;
        self.peak_in_system = self.peak_in_system.max(self.in_system);
        self.enqueue_request(
            shard,
            Request {
                id,
                class,
                arrival_s,
                tenant: 0,
            },
        );
    }

    /// Fleet admission + hierarchical routing for one arrival: tenant
    /// sampling, quota/region-cap admission, region → cluster → replica
    /// selection, and the optional inter-tier forward delay.
    fn on_fleet_arrival(&mut self, id: u64, class: usize, arrival_s: f64) {
        let fleet = self.fleet.as_mut().expect("fleet arrivals need a fleet");
        let tenant = fleet.sample_tenant(&mut self.arrival_rng);
        let Some(region) = fleet.admit(tenant) else {
            self.dropped += 1;
            if let Some(t) = self.trace {
                if self.sampled(id) {
                    t.record(
                        TraceEvent::instant("drop", arrival_s, 0, TID_REQ)
                            .with_cat("serve")
                            .with_arg("id", id),
                    );
                }
            }
            return;
        };
        let shards = &self.shards;
        let fleet = self.fleet.as_mut().expect("fleet is present");
        let shard = fleet.pick_replica(region, class, |s| shards[s].depth());
        let delay = fleet.forward_delay_s();
        let req = Request {
            id,
            class,
            arrival_s,
            tenant: tenant as u32,
        };
        // Admitted: in the system from this instant, whether queued on the
        // replica immediately or still in inter-tier transit.
        self.in_system += 1;
        self.peak_in_system = self.peak_in_system.max(self.in_system);
        if delay > 0.0 {
            let t = self.now + delay;
            self.push(t, EventKind::Enqueue { shard, req });
        } else {
            self.enqueue_request(shard, req);
        }
    }

    /// Lands a request on its replica's class queue and kicks the batcher.
    /// The caller has already counted it in-system.
    fn enqueue_request(&mut self, shard: usize, req: Request) {
        self.shards[shard].queues[req.class].push_back(req);
        self.queued += 1;
        if let Some(t) = self.trace {
            if self.sampled(req.id) {
                t.record(
                    TraceEvent::instant("arrive", req.arrival_s, shard as u32, TID_REQ)
                        .with_cat("serve")
                        .with_arg("id", req.id)
                        .with_arg("class", self.class_labels[req.class].as_str()),
                );
                t.record(TraceEvent::counter(
                    "queue_depth",
                    self.now,
                    shard as u32,
                    TID_BATCH,
                    self.queue_len(shard) as f64,
                ));
            }
        }
        self.try_dispatch(shard, false);
    }

    fn on_completion(&mut self, shard: usize) {
        let batch = self.shards[shard]
            .in_flight
            .take()
            .expect("completion without an in-flight batch");
        self.last_completion_s = self.now;
        let size = batch.requests.len() as u64;
        self.completed += size;
        self.in_system -= size;
        if let Some(t) = self.trace {
            if batch.traced {
                t.record(
                    TraceEvent::end("exec", self.now, shard as u32, TID_BATCH).with_cat("serve"),
                );
            }
            for r in &batch.requests {
                if !self.sampled(r.id) {
                    continue;
                }
                // The queueing phase renders as a self-contained X span on
                // the request lane (emitted at completion, but stamped with
                // its own arrival-time window).
                t.record(
                    TraceEvent::complete(
                        "queue",
                        r.arrival_s,
                        batch.start_s - r.arrival_s,
                        shard as u32,
                        TID_REQ,
                    )
                    .with_cat("serve")
                    .with_arg("id", r.id),
                );
                t.record(
                    TraceEvent::instant("complete", self.now, shard as u32, TID_REQ)
                        .with_cat("serve")
                        .with_arg("id", r.id)
                        .with_arg("sojourn_s", self.now - r.arrival_s),
                );
            }
        }
        // The sojourn window only feeds the controller's p99 signal, so
        // depth-only controllers (no latency target) skip it.
        let window_cap = self.control.map_or(0, |c| {
            if c.controller.target_p99_s.is_some() {
                c.controller.window
            } else {
                0
            }
        });
        for r in &batch.requests {
            let sojourn_s = self.now - r.arrival_s;
            if r.id >= self.traffic.warmup {
                self.stream
                    .observe(self.now, sojourn_s, r.class, batch.rung == 0);
            }
            if let Some(fleet) = self.fleet.as_mut() {
                fleet.on_complete(
                    shard,
                    r.tenant as usize,
                    sojourn_s,
                    r.id >= self.traffic.warmup,
                );
            }
            if self.options.retain_records {
                self.records.push(RequestRecord {
                    id: r.id,
                    class: r.class,
                    shard,
                    arrival_s: r.arrival_s,
                    start_s: batch.start_s,
                    completion_s: self.now,
                    batch: size,
                    rung: batch.rung,
                });
            }
            if window_cap > 0 {
                let w = &mut self.shards[shard].window;
                if w.len() == window_cap {
                    w.pop_front();
                }
                w.push_back(sojourn_s);
            }
        }
        self.peak_records = self.peak_records.max(self.records.len() as u64);
        if let ArrivalProcess::ClosedLoop { think_s, .. } = self.traffic.process {
            // Each completed request's client thinks, then issues the next.
            for _ in 0..size {
                if self.scheduled < self.traffic.requests {
                    self.scheduled += 1;
                    let t = self.now + think_s;
                    self.push(t, EventKind::Arrival);
                }
            }
        }
        self.try_dispatch(shard, false);
    }

    /// One adaptive control decision for replica `shard`. Returns the rung
    /// delta it applied (for the switch log).
    fn control_replica(&mut self, shard: usize) {
        let spec = self.control.expect("ticks only fire under control");
        let cfg = &spec.controller;
        let s = &self.shards[shard];
        if !s.active {
            return;
        }
        let ticks = s.ticks_since_switch;
        if ticks < cfg.dwell_ticks {
            return;
        }
        let depth = s.depth();
        let rung = s.rung;
        let p99 = if cfg.target_p99_s.is_some() {
            self.shards[shard].window_p99()
        } else {
            None
        };
        let tail_breach = matches!((cfg.target_p99_s, p99), (Some(t), Some(p)) if p > t);
        let tail_clear = match (cfg.target_p99_s, p99) {
            (Some(t), Some(p)) => p <= cfg.upgrade_margin * t,
            (Some(_), None) => true, // no completions yet: nothing to hold us down
            (None, _) => true,
        };
        let to_rung = if (depth >= cfg.high_depth || tail_breach) && rung + 1 < spec.ladder.len() {
            rung + 1
        } else if depth <= cfg.low_depth && tail_clear && rung > 0 {
            rung - 1
        } else {
            return;
        };
        self.accrue_rung_time(shard);
        let s = &mut self.shards[shard];
        s.rung = to_rung;
        s.ticks_since_switch = 0;
        self.switch_log.push(PolicySwitchEvent {
            time_s: self.now,
            replica: shard,
            from_rung: rung,
            to_rung,
        });
        if let Some(t) = self.trace {
            t.record(
                TraceEvent::instant("rung_switch", self.now, shard as u32, TID_CTRL)
                    .with_cat("control")
                    .with_arg("from", rung)
                    .with_arg("to", to_rung),
            );
            t.record(TraceEvent::counter(
                "rung",
                self.now,
                shard as u32,
                TID_CTRL,
                to_rung as f64,
            ));
        }
    }

    /// The autoscaler's tick: one activation or deactivation at most.
    fn autoscale(&mut self) {
        let Some(auto) = self.control.and_then(|c| c.autoscaler) else {
            return;
        };
        if self.ticks_since_scale < auto.dwell_ticks {
            return;
        }
        let total_depth: u64 = self
            .shards
            .iter()
            .filter(|s| s.active)
            .map(Shard::depth)
            .sum();
        let per_replica = total_depth as f64 / f64::from(self.active_count.max(1));
        if per_replica >= auto.up_depth && self.active_count < auto.max_replicas {
            // Activate the lowest-index standby, joining at the deepest
            // rung currently active so a scale-up never second-guesses the
            // precision controller's degradation decision.
            let join_rung = self
                .shards
                .iter()
                .filter(|s| s.active)
                .map(|s| s.rung)
                .max()
                .unwrap_or(0);
            let shard = self
                .shards
                .iter()
                .position(|s| !s.active)
                .expect("active_count < max_replicas implies a standby exists");
            let s = &mut self.shards[shard];
            s.active = true;
            s.rung = join_rung;
            s.rung_since_s = self.now;
            s.ticks_since_switch = 0;
            s.window.clear();
            self.active_count += 1;
            self.ticks_since_scale = 0;
            self.scale_log.push(ScaleEvent {
                time_s: self.now,
                replica: shard,
                up: true,
            });
            self.trace_scale("scale_up", shard);
        } else if per_replica <= auto.down_depth && self.active_count > auto.min_replicas {
            // Deactivate the highest-index *idle* active replica; a busy
            // replica is never drained, so no request is ever stranded.
            let Some(shard) = self.shards.iter().rposition(|s| s.active && s.idle()) else {
                return;
            };
            self.accrue_rung_time(shard);
            self.shards[shard].active = false;
            self.active_count -= 1;
            self.ticks_since_scale = 0;
            self.scale_log.push(ScaleEvent {
                time_s: self.now,
                replica: shard,
                up: false,
            });
            self.trace_scale("scale_down", shard);
        }
    }

    /// Emits one autoscaler decision onto the cluster track (pid = pool
    /// size, past the last replica), plus an `active_replicas` sample.
    fn trace_scale(&self, name: &str, shard: usize) {
        if let Some(t) = self.trace {
            let cluster_pid = self.shards.len() as u32;
            t.record(
                TraceEvent::instant(name, self.now, cluster_pid, 0)
                    .with_cat("control")
                    .with_arg("replica", shard),
            );
            t.record(TraceEvent::counter(
                "active_replicas",
                self.now,
                cluster_pid,
                0,
                f64::from(self.active_count),
            ));
        }
    }

    fn on_tick(&mut self) {
        // The run is over: no decision made now can serve a request, so a
        // trailing tick (kept alive in the heap by a stale deadline check)
        // must neither switch rungs nor scale — the logs and CSV switch
        // counts only ever record decisions inside the measured run.
        if self.finished_s.is_some() {
            return;
        }
        self.ticks += 1;
        self.ticks_since_scale = self.ticks_since_scale.saturating_add(1);
        for s in 0..self.shards.len() {
            self.shards[s].ticks_since_switch = self.shards[s].ticks_since_switch.saturating_add(1);
        }
        for s in 0..self.shards.len() {
            self.control_replica(s);
        }
        self.autoscale();
        // A rung switch can unblock a deadline decision immediately (the
        // cheaper table shortens nothing retroactively, but an idle replica
        // re-evaluates under its new costs on the next dispatch anyway);
        // what *can* change now is routing, which the next arrival reads.
        // The tick itself only reschedules while other events remain, so
        // the controller can never keep a drained run alive.
        if let Some(spec) = self.control {
            if !self.queue.is_empty() {
                let t = self.now + spec.controller.interval_s;
                self.push(t, EventKind::ControllerTick);
            }
        }
    }

    fn run(&mut self) {
        while let Some((time, _seq, kind)) = self.queue.pop() {
            self.events += 1;
            let dt = time - self.now;
            self.depth_integral += self.queued as f64 * dt;
            if self.finished_s.is_none() {
                self.active_integral += f64::from(self.active_count) * dt;
            }
            self.now = time;
            match kind {
                EventKind::Arrival => self.on_arrival(),
                EventKind::Completion { shard } => self.on_completion(shard),
                EventKind::DeadlineCheck { shard } => {
                    self.shards[shard].armed_check_s = None;
                    self.try_dispatch(shard, false);
                }
                EventKind::ControllerTick => self.on_tick(),
                EventKind::Enqueue { shard, req } => self.enqueue_request(shard, req),
            }
            // Drain: no event can fill a batch any further, so flush the
            // partial batches (also rescues closed loops whose concurrency
            // is below a fixed batch size from deadlock).
            if self.queue.is_empty() && self.queued > 0 {
                for s in 0..self.shards.len() {
                    self.try_dispatch(s, true);
                }
            }
            // Once the last admitted request completes, only no-op events
            // can remain queued; freeze the capacity accounting here so a
            // stale deadline check or trailing controller tick cannot
            // stretch the measured run. (`in_system == 0` covers queued,
            // in-flight, and in-transit work alike; dropped requests never
            // enter the system.)
            if self.finished_s.is_none()
                && self.admitted == self.traffic.requests
                && self.in_system == 0
            {
                self.finished_s = Some(self.now);
            }
        }
        // Final time-in-policy accrual at the end of measured work.
        for s in 0..self.shards.len() {
            self.accrue_rung_time(s);
        }
    }
}

/// Simulates one serving configuration to completion.
///
/// `seed` drives arrivals and mix sampling (and service jitter, from an
/// independent stream): a fixed seed gives a bit-identical outcome, and the
/// same seed under different policies/clusters sees the *same* arrival
/// sequence, so policy comparisons are paired.
///
/// # Panics
///
/// Panics on a malformed configuration (zero batch size or replica count,
/// non-positive arrival rates or mix weights, an empty trace or request
/// mix). [`crate::ServingScenario`] performs the same checks up front and
/// returns them as [`crate::ServingError`]s instead.
#[must_use]
pub fn run_serving(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
    ] {
        if let Err(e) = check {
            panic!("run_serving: {e}");
        }
    }
    // One-shot runs get a private cost model; `ServingScenario` shares one
    // table per (platform, traffic) across its whole grid instead.
    let cost = CostModel::new();
    let table = Arc::new(CostTable::build(
        backend,
        memory,
        traffic,
        policy.max_batch(),
        &cost,
    ));
    run_serving_with_control(
        vec![table],
        None,
        policy,
        cluster,
        traffic,
        service,
        seed,
        None,
        RunOptions::retained(),
        None,
    )
}

/// [`run_serving`] with explicit [`RunOptions`] and an optional trace
/// sink — the fleet-scale entry point. The default options stream
/// (`records` stays empty and O(1) memory is held per run); pass
/// [`RunOptions::retained`] to reproduce [`run_serving`] exactly.
///
/// # Panics
///
/// As [`run_serving`], plus a zero `trace_every`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_serving_with_options(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    options: RunOptions,
    trace: Option<&dyn TraceSink>,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
    ] {
        if let Err(e) = check {
            panic!("run_serving_with_options: {e}");
        }
    }
    let cost = CostModel::new();
    let table = Arc::new(CostTable::build(
        backend,
        memory,
        traffic,
        policy.max_batch(),
        &cost,
    ));
    run_serving_with_control(
        vec![table],
        None,
        policy,
        cluster,
        traffic,
        service,
        seed,
        trace,
        options,
        None,
    )
}

/// [`run_serving`] with every event-loop decision recorded into `trace`:
/// request lifecycle events (`arrive`, `queue`, `complete`), per-batch
/// `exec` spans, and `queue_depth` counter samples, one trace process per
/// replica. Timestamps are sim-time, so identically-seeded runs emit
/// byte-identical traces. A sink whose `enabled()` is `false` reduces this
/// to plain [`run_serving`].
///
/// # Panics
///
/// As [`run_serving`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_serving_traced(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    trace: &dyn TraceSink,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
    ] {
        if let Err(e) = check {
            panic!("run_serving_traced: {e}");
        }
    }
    let cost = CostModel::new();
    let table = Arc::new(CostTable::build(
        backend,
        memory,
        traffic,
        policy.max_batch(),
        &cost,
    ));
    run_serving_with_control(
        vec![table],
        None,
        policy,
        cluster,
        traffic,
        service,
        seed,
        Some(trace),
        RunOptions::retained(),
        None,
    )
}

/// [`run_serving`] under an adaptive precision controller: replicas start
/// at the ladder's rung 0 and the spec's feedback controller (plus optional
/// autoscaler) moves them at runtime. The returned outcome's records carry
/// the rung each request was served at, and its switch/scale logs record
/// every control decision.
///
/// `cluster.replicas` is the *initial* replica count; with an autoscaler it
/// must lie within the spec's `[min_replicas, max_replicas]`.
///
/// # Panics
///
/// Panics on a malformed configuration — everything [`run_serving`] checks,
/// plus an invalid controller/autoscaler and a ladder rung that does not
/// apply to one of the mix's networks. [`crate::ServingScenario`] performs
/// the same checks up front and returns [`crate::ServingError`]s instead.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_serving_adaptive(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    spec: &AdaptiveSpec,
    service: ServiceModel,
    seed: u64,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
        crate::scenario::validate_control_for_cluster(spec, &cluster),
    ] {
        if let Err(e) = check {
            panic!("run_serving_adaptive: {e}");
        }
    }
    let cost = CostModel::new();
    let tables = match build_rung_tables(backend, memory, traffic, spec, policy.max_batch(), &cost)
    {
        Ok(tables) => tables,
        Err(e) => panic!("run_serving_adaptive: {e}"),
    };
    run_serving_with_control(
        tables,
        Some(spec),
        policy,
        cluster,
        traffic,
        service,
        seed,
        None,
        RunOptions::retained(),
        None,
    )
}

/// [`run_serving_adaptive`] with explicit [`RunOptions`] and an optional
/// trace sink, mirroring [`run_serving_with_options`].
///
/// # Panics
///
/// As [`run_serving_adaptive`], plus a zero `trace_every`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_serving_adaptive_with_options(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    spec: &AdaptiveSpec,
    service: ServiceModel,
    seed: u64,
    options: RunOptions,
    trace: Option<&dyn TraceSink>,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
        crate::scenario::validate_control_for_cluster(spec, &cluster),
    ] {
        if let Err(e) = check {
            panic!("run_serving_adaptive_with_options: {e}");
        }
    }
    let cost = CostModel::new();
    let tables = match build_rung_tables(backend, memory, traffic, spec, policy.max_batch(), &cost)
    {
        Ok(tables) => tables,
        Err(e) => panic!("run_serving_adaptive_with_options: {e}"),
    };
    run_serving_with_control(
        tables,
        Some(spec),
        policy,
        cluster,
        traffic,
        service,
        seed,
        trace,
        options,
        None,
    )
}

/// [`run_serving_adaptive`] with the event loop *and* the control plane
/// recorded into `trace`: everything [`run_serving_traced`] emits, plus
/// `rung_switch` instants (with a `rung` counter track) per replica and
/// `scale_up`/`scale_down` instants (with an `active_replicas` counter)
/// on a dedicated cluster track.
///
/// # Panics
///
/// As [`run_serving_adaptive`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_serving_adaptive_traced(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    spec: &AdaptiveSpec,
    service: ServiceModel,
    seed: u64,
    trace: &dyn TraceSink,
) -> ServingOutcome {
    for check in [
        crate::scenario::validate_policy(&policy),
        crate::scenario::validate_cluster(&cluster),
        crate::scenario::validate_traffic(traffic),
        crate::scenario::validate_control_for_cluster(spec, &cluster),
    ] {
        if let Err(e) = check {
            panic!("run_serving_adaptive_traced: {e}");
        }
    }
    let cost = CostModel::new();
    let tables = match build_rung_tables(backend, memory, traffic, spec, policy.max_batch(), &cost)
    {
        Ok(tables) => tables,
        Err(e) => panic!("run_serving_adaptive_traced: {e}"),
    };
    run_serving_with_control(
        tables,
        Some(spec),
        policy,
        cluster,
        traffic,
        service,
        seed,
        Some(trace),
        RunOptions::retained(),
        None,
    )
}

/// Builds one [`CostTable`] per ladder rung: the traffic's whole mix
/// re-assigned to the rung's precision policy, costed through the shared
/// memoized `cost` model (repeated layer shapes across rungs, classes and
/// platforms are computed once).
pub(crate) fn build_rung_tables(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    traffic: &TrafficSpec,
    spec: &AdaptiveSpec,
    max_batch: u64,
    cost: &CostModel,
) -> Result<Vec<Arc<CostTable>>, String> {
    spec.ladder
        .rungs()
        .iter()
        .enumerate()
        .map(|(r, rung_policy)| {
            let mut variant = traffic.clone();
            for entry in &mut variant.mix.entries {
                entry.workload = entry.workload.clone().with_policy(rung_policy.clone());
            }
            let networks: Vec<bpvec_dnn::Network> = variant
                .mix
                .entries
                .iter()
                .map(|entry| {
                    entry.workload.try_build().map_err(|e| {
                        format!(
                            "traffic `{}`: ladder rung {r} ({rung_policy}): {e}",
                            traffic.label
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok(Arc::new(CostTable::build_with_networks(
                backend, memory, &variant, &networks, max_batch, cost,
            )))
        })
        .collect()
}

/// The event loop behind [`run_serving`] and [`run_serving_adaptive`],
/// driven by prebuilt (usually shared) rung-indexed cost tables. Static
/// control passes a single table and `None`; adaptive control passes one
/// table per ladder rung. Every table must cover the policy's max batch
/// for every class of `traffic`'s mix.
///
/// `trace` is normalized here: a disabled (or absent) sink becomes `None`,
/// so every emission site in the loop costs exactly one branch when off.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_serving_with_control(
    tables: Vec<Arc<CostTable>>,
    control: Option<&AdaptiveSpec>,
    policy: BatchPolicy,
    cluster: ClusterSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    trace: Option<&dyn TraceSink>,
    options: RunOptions,
    fleet: Option<&FleetSpec>,
) -> ServingOutcome {
    debug_assert!(tables.iter().all(|t| t.covers(traffic, policy.max_batch())));
    debug_assert_eq!(tables.len(), control.map_or(1, |c| c.ladder.len()));
    assert!(options.trace_every >= 1, "trace_every must be >= 1");
    let trace = trace.filter(|t| t.enabled());
    let mut arrival_rng = StdRng::seed_from_u64(seed);
    let service_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let gen = ArrivalGen::new(&traffic.process, &mut arrival_rng);
    let initial = cluster.replicas.max(1);
    // With an autoscaler the shard pool is sized to the ceiling; replicas
    // beyond the initial count start as standbys.
    let pool = control
        .and_then(|c| c.autoscaler)
        .map_or(initial, |a| a.max_replicas.max(initial));
    let fleet_state = fleet.map(|f| {
        debug_assert_eq!(
            f.total_replicas(),
            u64::from(pool),
            "cluster sized to fleet"
        );
        FleetState::new(f)
    });
    let rungs = tables.len();
    let mut sim = Sim {
        policy,
        service,
        tables,
        control,
        traffic,
        router: cluster.router,
        shards: (0..pool)
            .map(|i| Shard::new(traffic.mix.classes(), i < initial))
            .collect(),
        queue: EventQueue::new(options.queue),
        seq: 0,
        arrival_rng,
        service_rng,
        gen,
        options,
        stream: StreamStats::new(traffic.mix.classes(), options.sla_s, options.window_s),
        fleet: fleet_state,
        admitted: 0,
        dropped: 0,
        completed: 0,
        in_system: 0,
        peak_in_system: 0,
        peak_records: 0,
        events: 0,
        scheduled: 0,
        rr_next: 0,
        queued: 0,
        now: 0.0,
        records: if options.retain_records {
            Vec::with_capacity(traffic.requests as usize)
        } else {
            Vec::new()
        },
        busy_s: 0.0,
        depth_integral: 0.0,
        energy_j: 0.0,
        batches: 0,
        last_completion_s: 0.0,
        finished_s: None,
        active_count: initial,
        active_integral: 0.0,
        rung_time_s: vec![0.0; rungs],
        ticks: 0,
        ticks_since_scale: u64::MAX,
        switch_log: Vec::new(),
        scale_log: Vec::new(),
        trace,
        class_labels: if trace.is_some() {
            traffic
                .mix
                .entries
                .iter()
                .map(|e| e.class_label())
                .collect()
        } else {
            Vec::new()
        },
    };
    if let Some(t) = trace {
        // Metadata first: one named process track per replica (plus the
        // cluster track), with the lanes labelled, so Perfetto renders the
        // trace self-describing.
        for i in 0..pool {
            t.record(TraceEvent::process_name(i, &format!("replica{i}")));
            t.record(TraceEvent::thread_name(i, TID_BATCH, "batches"));
            t.record(TraceEvent::thread_name(i, TID_REQ, "requests"));
            if control.is_some() {
                t.record(TraceEvent::thread_name(i, TID_CTRL, "control"));
            }
        }
        let cluster_pid = pool;
        t.record(TraceEvent::process_name(cluster_pid, "cluster"));
        t.record(TraceEvent::counter(
            "active_replicas",
            0.0,
            cluster_pid,
            0,
            f64::from(initial),
        ));
    }
    if traffic.requests > 0 {
        match traffic.process {
            ArrivalProcess::ClosedLoop { concurrency, .. } => {
                let clients = concurrency.max(1).min(traffic.requests);
                for _ in 0..clients {
                    sim.push(0.0, EventKind::Arrival);
                }
                sim.scheduled = clients;
            }
            _ => {
                let gap = sim.gen.next_gap(&mut sim.arrival_rng);
                sim.push(gap, EventKind::Arrival);
                sim.scheduled = 1;
            }
        }
        if let Some(spec) = control {
            sim.push(spec.controller.interval_s, EventKind::ControllerTick);
        }
    }
    sim.run();
    let mut summary = sim.stream.finish();
    if let Some(fleet) = sim.fleet {
        let (tenants, regions) = fleet.finish();
        summary.tenants = tenants;
        summary.regions = regions;
    }
    ServingOutcome {
        records: sim.records,
        admitted: sim.admitted - sim.dropped,
        completed: sim.completed,
        dropped: sim.dropped,
        peak_records_retained: sim.peak_records,
        peak_in_system: sim.peak_in_system,
        events: sim.events,
        summary,
        busy_s: sim.busy_s,
        depth_integral: sim.depth_integral,
        makespan_s: sim.last_completion_s,
        energy_j: sim.energy_j,
        batches: sim.batches,
        active_integral_s: sim.active_integral,
        rung_time_s: sim.rung_time_s,
        policy_switches: sim.switch_log,
        scale_events: sim.scale_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::RequestMix;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};
    use bpvec_sim::{Measurement, Workload};

    /// Constant per-inference latency backend: whole-batch cost is linear
    /// in batch size, so it has no batching incentive — ideal for checking
    /// the event loop itself.
    struct ConstServer {
        per_inference_s: f64,
    }

    impl Evaluator for ConstServer {
        fn label(&self) -> String {
            "const".into()
        }

        fn evaluate(
            &self,
            workload: &Workload,
            network: &bpvec_dnn::Network,
            _dram: &DramSpec,
        ) -> Measurement {
            Measurement {
                latency_s: self.per_inference_s,
                energy_j: 1e-3,
                macs: network.total_macs(),
                batch: workload.batch(),
                gops_per_watt: 1.0,
            }
        }
    }

    fn traffic(process: ArrivalProcess, requests: u64) -> TrafficSpec {
        TrafficSpec::new(
            "t",
            process,
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            requests,
        )
    }

    fn run(policy: BatchPolicy, process: ArrivalProcess, requests: u64) -> ServingOutcome {
        run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            policy,
            ClusterSpec::single(),
            &traffic(process, requests),
            ServiceModel::Deterministic,
            7,
        )
    }

    #[test]
    fn cost_table_gives_prefill_and_decode_distinct_entries() {
        use bpvec_sim::{AcceleratorConfig, CostModel};
        let bert = Workload::new(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
        let t = |kv| {
            TrafficSpec::new(
                "pd",
                ArrivalProcess::poisson(10.0),
                RequestMix::prefill_decode(bert.clone(), kv, 1.0, 1.0),
                10,
            )
        };
        let backend = AcceleratorConfig::bpvec();
        let cost = CostModel::new();
        let short = CostTable::build(&backend, &DramSpec::ddr4(), &t(128), 1, &cost);
        // Class 0 (prefill) runs self-attention over the whole sequence;
        // class 1 (decode) serves one token. Distinct classes, distinct
        // costs.
        assert!(short.service_s(0, 1) > short.service_s(1, 1));
        // The decode entry's cost grows with the KV-cache length (more
        // stationary KV traffic and more attention MACs per step).
        let long = CostTable::build(&backend, &DramSpec::ddr4(), &t(1024), 1, &cost);
        assert!(long.service_s(1, 1) > short.service_s(1, 1));
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::poisson(500.0),
            400,
        );
        assert_eq!(out.admitted, 400);
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let a = run(
            BatchPolicy::deadline(8, 0.002),
            ArrivalProcess::bursty(200.0, 2000.0, 0.02, 0.005),
            500,
        );
        let b = run(
            BatchPolicy::deadline(8, 0.002),
            ArrivalProcess::bursty(200.0, 2000.0, 0.02, 0.005),
            500,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_never_exceeds_concurrency_in_flight() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::closed_loop(3, 0.0005),
            300,
        );
        assert_eq!(out.records.len(), 300);
        // With 3 clients and batch-1 service, at most 3 requests can be in
        // the system, so sojourn is bounded by 3 service times.
        for r in &out.records {
            assert!(r.sojourn_s() <= 3.0 * 1e-3 + 1e-9, "{}", r.sojourn_s());
        }
    }

    #[test]
    fn closed_loop_with_oversized_fixed_batch_does_not_deadlock() {
        // 2 clients can never fill a batch of 8; the drain flush must keep
        // the loop alive.
        let out = run(
            BatchPolicy::fixed(8),
            ArrivalProcess::closed_loop(2, 0.0),
            100,
        );
        assert_eq!(out.records.len(), 100);
        assert!(out.records.iter().all(|r| r.batch <= 8));
    }

    #[test]
    fn fixed_batching_dispatches_full_batches_under_backlog() {
        // Heavy overload: everything queues, so all batches (except the
        // final drain) are full.
        let out = run(
            BatchPolicy::fixed(4),
            ArrivalProcess::poisson(10_000.0),
            401,
        );
        let full = out.records.iter().filter(|r| r.batch == 4).count();
        assert!(full >= 400, "{full}");
    }

    #[test]
    fn trace_replay_is_exact() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::trace(vec![0.25, 0.5, 0.25]),
            4,
        );
        let mut arrivals: Vec<f64> = out.records.iter().map(|r| r.arrival_s).collect();
        arrivals.sort_by(f64::total_cmp);
        // Gaps cycle: 0.25, 0.5, 0.25, 0.25 (wraps).
        let expect = [0.25, 0.75, 1.0, 1.25];
        for (a, e) in arrivals.iter().zip(expect) {
            assert!((a - e).abs() < 1e-12, "{a} vs {e}");
        }
    }

    #[test]
    fn utilization_accounting_is_consistent() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::poisson(400.0),
            1000,
        );
        // 1000 batch-1 dispatches of 1 ms each.
        assert!((out.busy_s - 1.0).abs() < 1e-9, "{}", out.busy_s);
        assert_eq!(out.batches, 1000);
        assert!(out.makespan_s >= out.busy_s * 0.9);
        assert!((out.energy_j - 1.0).abs() < 1e-9, "{}", out.energy_j);
    }

    #[test]
    fn deadline_policy_dispatches_before_max_wait_when_full() {
        // Backlogged: batches fill instantly, nobody waits out the deadline.
        let out = run(
            BatchPolicy::deadline(4, 10.0),
            ArrivalProcess::poisson(50_000.0),
            400,
        );
        assert!(out.records.iter().all(|r| r.batch <= 4));
        let full = out.records.iter().filter(|r| r.batch == 4).count();
        assert!(full > 300, "{full}");
    }

    #[test]
    fn deadline_policy_flushes_a_lone_request_at_max_wait() {
        let out = run(
            BatchPolicy::deadline(64, 0.010),
            ArrivalProcess::trace(vec![1.0]),
            1,
        );
        let r = &out.records[0];
        assert_eq!(r.batch, 1);
        // Dispatched at arrival + max_wait, not at drain.
        assert!((r.start_s - r.arrival_s - 0.010).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_the_last_completion_not_a_stale_deadline_check() {
        // 400 requests at 50k rps complete in well under a second; the
        // 10 s deadline must not leak into the measured makespan through
        // a stale check firing on the drained system.
        let out = run(
            BatchPolicy::deadline(4, 10.0),
            ArrivalProcess::poisson(50_000.0),
            400,
        );
        let last = out
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        assert_eq!(out.makespan_s, last);
        assert!(out.makespan_s < 1.0, "{}", out.makespan_s);
    }

    #[test]
    #[should_panic(
        expected = "run_serving: traffic `t`: trace needs at least one non-negative gap"
    )]
    fn degenerate_inputs_panic_with_a_clear_message() {
        let _ = run(BatchPolicy::immediate(), ArrivalProcess::trace(vec![]), 10);
    }

    #[test]
    fn affinity_routing_pins_classes_to_shards() {
        let mix = RequestMix::new()
            .and(
                Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8),
                1.0,
            )
            .and(
                Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8),
                1.0,
            );
        let t = TrafficSpec::new("mix", ArrivalProcess::poisson(500.0), mix, 400);
        let out = run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::new(2, Router::NetworkAffinity),
            &t,
            ServiceModel::Deterministic,
            3,
        );
        for r in &out.records {
            assert_eq!(r.shard, r.class % 2);
        }
    }

    /// Backend whose per-inference latency scales with the workload
    /// policy's narrowest weight width — a stand-in for a composable
    /// bit-flexible accelerator (8b = `full_s`, 2b = `full_s/4`).
    struct RungServer {
        full_s: f64,
    }

    impl Evaluator for RungServer {
        fn label(&self) -> String {
            "rung".into()
        }

        fn evaluate(
            &self,
            workload: &Workload,
            network: &bpvec_dnn::Network,
            _dram: &DramSpec,
        ) -> Measurement {
            let bits = workload
                .policy
                .min_weight_bits()
                .expect("non-empty policy")
                .bits();
            Measurement {
                latency_s: self.full_s * f64::from(bits) / 8.0,
                energy_j: 1e-3 * f64::from(bits) / 8.0,
                macs: network.total_macs(),
                batch: workload.batch(),
                gops_per_watt: 1.0,
            }
        }
    }

    use crate::controller::{AutoscalerConfig, ControllerConfig};
    use bpvec_dnn::{DegradationLadder, PrecisionPolicy};

    fn uniform_ladder() -> DegradationLadder {
        PrecisionPolicy::degradation_ladder(
            ["int8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
        )
        .expect("narrows monotonically")
    }

    /// A step-overload trace: `pre` requests at a comfortable rate, then
    /// `over` requests at twice the backend's full-precision capacity,
    /// then `post` requests back at the comfortable rate.
    fn step_trace(s1: f64, pre: usize, over: usize, post: usize) -> ArrivalProcess {
        let lo = s1 / 0.5;
        let hi = s1 / 2.0;
        let gaps: Vec<f64> = std::iter::repeat_n(lo, pre)
            .chain(std::iter::repeat_n(hi, over))
            .chain(std::iter::repeat_n(lo, post))
            .collect();
        ArrivalProcess::trace(gaps)
    }

    fn adaptive_spec(s1: f64) -> crate::controller::AdaptiveSpec {
        crate::controller::AdaptiveSpec::new(uniform_ladder()).with_controller(
            ControllerConfig::new(4.0 * s1)
                .with_depths(1, 6)
                .with_dwell(2),
        )
    }

    #[test]
    fn adaptive_controller_degrades_under_overload_and_recovers() {
        let s1 = 1e-3;
        let t = TrafficSpec::new(
            "step",
            step_trace(s1, 300, 600, 300),
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            1200,
        );
        let out = run_serving_adaptive(
            &RungServer { full_s: s1 },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::single(),
            &t,
            &adaptive_spec(s1),
            ServiceModel::Deterministic,
            5,
        );
        assert_eq!(out.records.len(), 1200);
        // The overload forces degradation...
        assert!(!out.policy_switches.is_empty());
        let first = out.policy_switches[0];
        assert_eq!(first.to_rung, first.from_rung + 1, "first switch degrades");
        let degraded = out.records.iter().filter(|r| r.rung > 0).count();
        assert!(degraded > 0, "some requests must be served degraded");
        // ...and the post-overload lull brings the replica back up.
        let last = out.policy_switches.last().unwrap();
        assert_eq!(last.to_rung, 0, "the controller recovers to rung 0");
        // Time-in-policy accounting is conservative.
        let rung_sum: f64 = out.rung_time_s.iter().sum();
        assert!(
            (rung_sum - out.active_integral_s).abs() < 1e-9,
            "{rung_sum} vs {}",
            out.active_integral_s
        );
        assert_eq!(out.rung_time_s.len(), 3);
        // Capacity accounting ends at the measured run (single replica:
        // the integral is the makespan), never at trailing no-op events.
        assert!(out.active_integral_s <= out.makespan_s + 1e-9);
    }

    #[test]
    fn adaptive_runs_are_deterministic_switch_logs_included() {
        let s1 = 1e-3;
        let t = TrafficSpec::new(
            "step",
            step_trace(s1, 200, 400, 200),
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            800,
        );
        let run = || {
            run_serving_adaptive(
                &RungServer { full_s: s1 },
                &DramSpec::ddr4(),
                BatchPolicy::deadline(4, 2.0 * s1),
                ClusterSpec::new(2, Router::JoinShortestQueue),
                &t,
                &adaptive_spec(s1),
                ServiceModel::Deterministic,
                11,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn autoscaler_stays_within_bounds_and_scales_both_ways() {
        let s1 = 1e-3;
        let t = TrafficSpec::new(
            "step",
            step_trace(s1, 300, 900, 600),
            RequestMix::single(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8)),
            1800,
        );
        // Depth-only autoscaler over a single-rung ladder: precision stays
        // put, capacity comes from replicas alone.
        let ladder = PrecisionPolicy::degradation_ladder([PrecisionPolicy::homogeneous8()])
            .expect("one rung");
        let spec = crate::controller::AdaptiveSpec::new(ladder)
            .with_controller(ControllerConfig::new(4.0 * s1).with_depths(0, 1_000_000))
            .with_autoscaler(AutoscalerConfig::new(1, 3).with_depths(0.5, 4.0));
        let out = run_serving_adaptive(
            &RungServer { full_s: s1 },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::single(),
            &t,
            &spec,
            ServiceModel::Deterministic,
            7,
        );
        assert_eq!(out.records.len(), 1800);
        let ups = out.scale_events.iter().filter(|e| e.up).count();
        let downs = out.scale_events.iter().filter(|e| !e.up).count();
        assert!(ups >= 1, "overload must trigger a scale-up");
        assert!(downs >= 1, "the lull must trigger a scale-down");
        assert!(out.records.iter().all(|r| r.shard < 3));
        // Mean active replicas stays within the autoscaler's bounds.
        let mean = out.active_integral_s / out.makespan_s;
        assert!((1.0 - 1e-9..=3.0 + 1e-9).contains(&mean), "{mean}");
    }

    #[test]
    fn static_outcomes_carry_trivial_control_state() {
        let out = run(
            BatchPolicy::immediate(),
            ArrivalProcess::poisson(500.0),
            200,
        );
        assert!(out.policy_switches.is_empty());
        assert!(out.scale_events.is_empty());
        assert_eq!(out.rung_time_s.len(), 1);
        assert!(out.records.iter().all(|r| r.rung == 0));
        assert!(
            (out.active_integral_s - out.makespan_s).abs() < 1e-12,
            "one replica: ∫active dt == makespan"
        );
    }

    #[test]
    fn least_degraded_router_matches_jsq_under_static_control() {
        // Every rung is 0 in a static run, so (rung, depth, index) routing
        // collapses to (depth, index) — the two routers must agree exactly.
        let t = traffic(ArrivalProcess::poisson(3000.0), 1500);
        let run_with = |router| {
            run_serving(
                &ConstServer {
                    per_inference_s: 1e-3,
                },
                &DramSpec::ddr4(),
                BatchPolicy::immediate(),
                ClusterSpec::new(3, router),
                &t,
                ServiceModel::Deterministic,
                13,
            )
        };
        assert_eq!(
            run_with(Router::JoinShortestQueue),
            run_with(Router::LeastDegraded)
        );
    }

    #[test]
    fn jsq_spreads_load_across_replicas() {
        let t = traffic(ArrivalProcess::poisson(3000.0), 2000);
        let out = run_serving(
            &ConstServer {
                per_inference_s: 1e-3,
            },
            &DramSpec::ddr4(),
            BatchPolicy::immediate(),
            ClusterSpec::new(4, Router::JoinShortestQueue),
            &t,
            ServiceModel::Deterministic,
            11,
        );
        for s in 0..4 {
            let n = out.records.iter().filter(|r| r.shard == s).count();
            assert!(n > 300, "shard {s} served only {n}");
        }
    }
}
