//! The adaptive precision control plane: SLA-feedback precision switching
//! and replica autoscaling.
//!
//! The paper's premise is bit-flexible hardware that trades precision for
//! throughput on demand; this module closes that loop at *serving* time.
//! Each replica carries an active rung on a validated
//! [`DegradationLadder`] (rung 0 = full precision). A deterministic
//! feedback controller ticks on simulated time and walks replicas down the
//! ladder when they fall behind (queue depth above the high watermark, or
//! the windowed p99 sojourn past the latency target) and back up when they
//! have slack — with hysteresis from distinct watermarks, an upgrade
//! margin, and a minimum dwell between switches, so the controller cannot
//! oscillate on a single noisy signal.
//!
//! The same tick signals optionally drive a replica autoscaler
//! ([`AutoscalerConfig`]): the cluster grows toward `max_replicas` when the
//! per-replica backlog crosses the scale-up watermark and shrinks toward
//! `min_replicas` when replicas go idle — precision degradation sheds load
//! *immediately* on the next batch, autoscaling sheds it *structurally*.
//!
//! Everything here is plain state driven by the seeded event loop: no
//! wall-clock, no randomness. Identical seeds and configurations produce
//! byte-identical outcomes, switch logs included, preserving the paired-
//! seed determinism contract the serving CSVs rely on.

use bpvec_dnn::DegradationLadder;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The feedback controller's watermarks, latency target, and hysteresis.
///
/// The controller evaluates every replica each `interval_s` of simulated
/// time and moves it at most one rung per decision:
///
/// * **degrade** (rung + 1) when the replica's queue depth is at or above
///   `high_depth`, or its windowed p99 sojourn exceeds `target_p99_s`;
/// * **upgrade** (rung − 1) when depth is at or below `low_depth` *and*
///   the windowed p99 is under `upgrade_margin × target_p99_s`;
/// * otherwise hold.
///
/// A replica must dwell `dwell_ticks` controller ticks between switches,
/// and `low_depth < high_depth`, so the degrade and upgrade conditions are
/// separated in both signal and time (hysteresis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Controller tick period, simulated seconds.
    pub interval_s: f64,
    /// Degrade when a replica's depth (queued + in service) reaches this.
    pub high_depth: u64,
    /// Upgrade only when depth is at or below this.
    pub low_depth: u64,
    /// Latency target for the windowed p99 sojourn; `None` disables the
    /// latency signal and the controller runs on queue depth alone.
    pub target_p99_s: Option<f64>,
    /// Completions in each replica's sliding sojourn window.
    pub window: usize,
    /// Upgrades additionally require windowed p99 under
    /// `upgrade_margin × target_p99_s` (ignored without a target).
    pub upgrade_margin: f64,
    /// Minimum controller ticks a replica holds a rung before switching
    /// again.
    pub dwell_ticks: u64,
}

impl ControllerConfig {
    /// A controller ticking every `interval_s` with the default watermarks
    /// (degrade at depth 16, upgrade at 2, window 64, margin 0.5, dwell 2)
    /// and no latency target.
    #[must_use]
    pub fn new(interval_s: f64) -> Self {
        ControllerConfig {
            interval_s,
            high_depth: 16,
            low_depth: 2,
            target_p99_s: None,
            window: 64,
            upgrade_margin: 0.5,
            dwell_ticks: 2,
        }
    }

    /// Replaces the queue-depth watermarks (builder style).
    #[must_use]
    pub fn with_depths(mut self, low_depth: u64, high_depth: u64) -> Self {
        self.low_depth = low_depth;
        self.high_depth = high_depth;
        self
    }

    /// Sets the p99 latency target (builder style).
    #[must_use]
    pub fn with_target_p99(mut self, target_p99_s: f64) -> Self {
        self.target_p99_s = Some(target_p99_s);
        self
    }

    /// Replaces the dwell requirement (builder style).
    #[must_use]
    pub fn with_dwell(mut self, dwell_ticks: u64) -> Self {
        self.dwell_ticks = dwell_ticks;
        self
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::new(0.010)
    }
}

/// Replica autoscaling bounds and watermarks, driven by the same ticks as
/// the precision controller.
///
/// At each tick the autoscaler reads the mean backlog per active replica
/// (total depth ÷ active replicas). At or above `up_depth` it activates one
/// standby replica (joining at the most-degraded rung currently active, so
/// a scale-up never dilutes an overloaded cluster's precision decision); at
/// or below `down_depth` it deactivates the highest-index *idle* replica.
/// At most one scale action fires per `dwell_ticks` window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// The cluster never shrinks below this many replicas.
    pub min_replicas: u32,
    /// The cluster never grows beyond this many replicas.
    pub max_replicas: u32,
    /// Scale up at/above this mean per-replica depth.
    pub up_depth: f64,
    /// Scale down at/below this mean per-replica depth (only idle replicas
    /// are removed, so no queued request is ever stranded).
    pub down_depth: f64,
    /// Minimum controller ticks between scale actions.
    pub dwell_ticks: u64,
}

impl AutoscalerConfig {
    /// An autoscaler between `min_replicas` and `max_replicas` with the
    /// default watermarks (up at 8, down at 1, dwell 2).
    #[must_use]
    pub fn new(min_replicas: u32, max_replicas: u32) -> Self {
        AutoscalerConfig {
            min_replicas,
            max_replicas,
            up_depth: 8.0,
            down_depth: 1.0,
            dwell_ticks: 2,
        }
    }

    /// Replaces the per-replica depth watermarks (builder style).
    #[must_use]
    pub fn with_depths(mut self, down_depth: f64, up_depth: f64) -> Self {
        self.down_depth = down_depth;
        self.up_depth = up_depth;
        self
    }
}

/// A full adaptive control specification: the precision ladder, the
/// feedback controller walking it, and an optional replica autoscaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSpec {
    /// The validated degradation ladder (rung 0 = full precision).
    pub ladder: DegradationLadder,
    /// The feedback controller's watermarks and hysteresis.
    pub controller: ControllerConfig,
    /// Optional replica autoscaling driven by the same signals.
    pub autoscaler: Option<AutoscalerConfig>,
}

impl AdaptiveSpec {
    /// An adaptive spec over `ladder` with the default controller and no
    /// autoscaler.
    #[must_use]
    pub fn new(ladder: DegradationLadder) -> Self {
        AdaptiveSpec {
            ladder,
            controller: ControllerConfig::default(),
            autoscaler: None,
        }
    }

    /// Replaces the controller configuration (builder style).
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Enables replica autoscaling (builder style).
    #[must_use]
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }
}

/// Comma-free rendering for CSV columns: the ladder, plus the autoscaler
/// bounds when one is set — `adaptive(Heterogeneous>uniform4>uniform2)` or
/// `adaptive(uniform8>uniform2;scale1-4)`.
impl fmt::Display for AdaptiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adaptive({}", self.ladder)?;
        if let Some(a) = &self.autoscaler {
            write!(f, ";scale{}-{}", a.min_replicas, a.max_replicas)?;
        }
        f.write_str(")")
    }
}

/// One entry of a [`crate::ServingScenario`]'s control axis: run every cell
/// with a pinned precision (the classic static serving simulation), or
/// under an adaptive controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlPolicy {
    /// The request mix's declared precision, fixed for the whole run.
    Static,
    /// Runtime precision control (and optional autoscaling) over a ladder.
    Adaptive(AdaptiveSpec),
}

impl ControlPolicy {
    /// The adaptive spec, when this entry is adaptive.
    #[must_use]
    pub fn adaptive_spec(&self) -> Option<&AdaptiveSpec> {
        match self {
            ControlPolicy::Static => None,
            ControlPolicy::Adaptive(spec) => Some(spec),
        }
    }
}

impl fmt::Display for ControlPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlPolicy::Static => f.write_str("static"),
            ControlPolicy::Adaptive(spec) => write!(f, "{spec}"),
        }
    }
}

impl From<AdaptiveSpec> for ControlPolicy {
    fn from(spec: AdaptiveSpec) -> Self {
        ControlPolicy::Adaptive(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_comma_free() {
        let spec = AdaptiveSpec::new(DegradationLadder::paper());
        assert_eq!(
            spec.to_string(),
            "adaptive(Heterogeneous>uniform4>uniform2)"
        );
        let scaled = spec.clone().with_autoscaler(AutoscalerConfig::new(1, 4));
        assert_eq!(
            scaled.to_string(),
            "adaptive(Heterogeneous>uniform4>uniform2;scale1-4)"
        );
        assert!(!scaled.to_string().contains(','));
        assert_eq!(ControlPolicy::Static.to_string(), "static");
        assert_eq!(
            ControlPolicy::from(spec.clone()).to_string(),
            spec.to_string()
        );
    }

    #[test]
    fn builders_compose() {
        let cfg = ControllerConfig::new(0.002)
            .with_depths(1, 8)
            .with_target_p99(0.050)
            .with_dwell(3);
        assert_eq!(cfg.low_depth, 1);
        assert_eq!(cfg.high_depth, 8);
        assert_eq!(cfg.target_p99_s, Some(0.050));
        assert_eq!(cfg.dwell_ticks, 3);
        let spec = AdaptiveSpec::new(DegradationLadder::paper())
            .with_controller(cfg)
            .with_autoscaler(AutoscalerConfig::new(2, 6).with_depths(0.5, 12.0));
        assert_eq!(spec.controller.interval_s, 0.002);
        let a = spec.autoscaler.unwrap();
        assert_eq!((a.min_replicas, a.max_replicas), (2, 6));
        assert_eq!((a.down_depth, a.up_depth), (0.5, 12.0));
    }

    #[test]
    fn control_policy_exposes_its_spec() {
        assert!(ControlPolicy::Static.adaptive_spec().is_none());
        let spec = AdaptiveSpec::new(DegradationLadder::paper());
        let c = ControlPolicy::Adaptive(spec.clone());
        assert_eq!(c.adaptive_spec(), Some(&spec));
    }

    #[test]
    fn serde_round_trips() {
        let spec = AdaptiveSpec::new(DegradationLadder::paper())
            .with_controller(ControllerConfig::new(0.005).with_target_p99(0.1))
            .with_autoscaler(AutoscalerConfig::new(1, 8));
        for c in [ControlPolicy::Static, ControlPolicy::Adaptive(spec)] {
            let json = serde_json::to_string(&c).unwrap();
            let back: ControlPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(c, back);
        }
    }
}
