//! # `bpvec-serve` — discrete-event inference-serving simulation
//!
//! The paper's evaluation reports steady-state throughput and energy; a
//! production service is judged by *queueing* behavior — arrival
//! burstiness, batch formation, replica routing, p99 latency. This crate
//! turns any [`Evaluator`](bpvec_sim::Evaluator) backend (the analytical
//! ASIC configs, the GPU model, or a user-supplied platform) into a service
//! under load, simulated by a deterministic, seeded discrete-event engine:
//!
//! ```text
//!  generators ──▶ router ──▶ per-replica queues ──▶ batch scheduler ──▶ backend
//!  (arrivals)    (cluster)   (one FIFO per class)  (immediate/fixed/     (batch cost
//!                                                   deadline-aware)       from BatchRegime)
//!                                        │
//!                                        ▼
//!                                 metrics pipeline
//!                     (latency histograms, p50/p95/p99, queue depth,
//!                      utilization, energy/request, goodput under SLA)
//! ```
//!
//! * [`arrivals`] — open-loop Poisson / bursty-MMPP / trace-replay /
//!   diurnal / flash-crowd and closed-loop fixed-concurrency
//!   [`ArrivalProcess`]es, with per-network [`RequestMix`]es bundled into
//!   [`TrafficSpec`]s;
//! * [`scheduler`] — the [`BatchPolicy`] spectrum: immediate dispatch,
//!   fixed-size batching, and deadline-aware dynamic batching whose batch
//!   costs come from the backend's `BatchRegime` latencies (so CNN
//!   tile-spill effects shape the optimal batch);
//! * [`cluster`] — N replicas behind a [`Router`]: round-robin,
//!   join-shortest-queue, network-affinity sharding, or precision-aware
//!   least-degraded routing;
//! * [`controller`] — the adaptive precision control plane: a
//!   deterministic SLA-feedback controller walking each replica along a
//!   validated [`bpvec_dnn::DegradationLadder`] (degrade under backlog or
//!   p99 breach, upgrade with hysteresis), plus an optional replica
//!   autoscaler driven by the same signals;
//! * [`sim`] — the event loop itself ([`run_serving`] /
//!   [`run_serving_adaptive`]): seeded, deterministic, with paired arrival
//!   sequences across policies and per-replica active-precision state; the
//!   `_traced` variants ([`run_serving_traced`] /
//!   [`run_serving_adaptive_traced`]) record request lifecycle spans,
//!   queue-depth samples, and control-plane events into a
//!   [`bpvec_obs::TraceSink`], stamped with sim-time so traces are
//!   byte-identical across identically-seeded runs;
//! * [`queue`] — the engine's event queue: a binary-heap baseline and a
//!   calendar queue with O(1) expected push/pop at fleet scale, selected
//!   per run (or via `BPVEC_EVENT_QUEUE`) and bit-identical in pop order;
//! * [`streaming`] — O(1)-memory streaming metrics ([`StreamingSummary`]):
//!   a deterministic log-bucketed [`QuantileSketch`] (p50/p95/p99 within
//!   ~1%), windowed peak throughput, and per-class/tenant/region rollups,
//!   so 10M-request runs never retain per-request records;
//! * [`fleet`] — fleet topology for [`run_fleet`]: regions → clusters →
//!   replicas with spill-or-drop admission control, weighted
//!   [`TenantClass`]es with per-tenant SLAs and in-flight quotas, and
//!   inter-tier forwarding latency;
//! * [`metrics`] — [`ServingMetrics`]: tail latencies, utilization, queue
//!   depth, energy per request, goodput under an SLA, time-in-policy,
//!   degraded-request share, switch counts — summarized from exact records
//!   or the streaming digest, whichever the run kept;
//! * [`scenario`] — the [`ServingScenario`] builder mirroring
//!   [`bpvec_sim::Scenario`]: declare platforms × policies × clusters ×
//!   traffics (× precisions) (× controls), run the grid rayon-parallel,
//!   render the [`ServingReport`] to CSV/JSON; observability rides along
//!   via `.trace(sink)` (deterministic, cell-order forwarded),
//!   `.profile(profiler)` (wall-clock, kept out of the trace), and
//!   `.metrics(registry)` (cost-model and aggregate serving counters).
//!
//! ## Declaring a serving experiment
//!
//! ```
//! use bpvec_serve::{
//!     ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, ServingScenario, TrafficSpec,
//! };
//! use bpvec_sim::{AcceleratorConfig, Workload};
//! use bpvec_dnn::{BitwidthPolicy, NetworkId};
//!
//! let report = ServingScenario::new("smoke")
//!     .platform(AcceleratorConfig::bpvec())
//!     .policy(BatchPolicy::immediate())
//!     .policy(BatchPolicy::deadline(8, 0.002))
//!     .cluster(ClusterSpec::single())
//!     .traffic(TrafficSpec::new(
//!         "steady",
//!         ArrivalProcess::poisson(200.0),
//!         RequestMix::single(Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8)),
//!         200,
//!     ))
//!     .run();
//! assert_eq!(report.cells.len(), 2);
//! println!("{}", report.to_csv());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arrivals;
pub mod cluster;
pub mod controller;
pub mod fleet;
pub mod metrics;
pub mod queue;
pub mod scenario;
pub mod scheduler;
pub mod sim;
pub mod streaming;

pub use arrivals::{ArrivalProcess, MixEntry, RequestMix, TrafficSpec};
pub use cluster::{ClusterSpec, Router};
pub use controller::{AdaptiveSpec, AutoscalerConfig, ControlPolicy, ControllerConfig};
pub use fleet::{run_fleet, run_fleet_traced, FleetSpec, RegionSpec, TenantClass};
pub use metrics::{LatencyHistogram, LatencyStats, ServingMetrics};
pub use queue::QueueKind;
pub use scenario::{ServingCell, ServingError, ServingReport, ServingScenario};
pub use scheduler::BatchPolicy;
pub use sim::{
    run_serving, run_serving_adaptive, run_serving_adaptive_traced,
    run_serving_adaptive_with_options, run_serving_traced, run_serving_with_options,
    PolicySwitchEvent, RequestRecord, RunOptions, ScaleEvent, ServiceModel, ServingOutcome,
};
pub use streaming::{QuantileSketch, RegionRollup, StreamingSummary, TenantRollup};
