//! Indexed event queue for the serving simulator.
//!
//! The original event loop drove a flat `BinaryHeap`, whose O(log n) pops
//! start to hurt once a fleet run pushes 10^7–10^8 events through it. The
//! `CalendarQueue` here is the classic Brown calendar queue: events hash
//! into time-bucketed "days" of a rotating "year", so push and pop are
//! O(1) amortized while the bucket width tracks the mean event spacing.
//!
//! Determinism contract: events are keyed by `(time, seq)`, a *strict*
//! total order (seq is unique), so any correct priority queue pops the
//! exact same sequence. The calendar queue is therefore bit-identical to
//! the heap — `crates/serve/tests/queue_equivalence.rs` and the nightly
//! CSV byte-diff pin that, and `BPVEC_EVENT_QUEUE=heap` forces the heap
//! at runtime for differential runs.

use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Which priority-queue implementation backs the simulator's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Flat binary heap (the original implementation; O(log n) per op).
    Heap,
    /// Brown calendar queue (O(1) amortized push/pop; the default).
    Calendar,
}

impl QueueKind {
    /// The process-wide default: [`QueueKind::Calendar`], unless the
    /// `BPVEC_EVENT_QUEUE` environment variable picks `heap` or
    /// `calendar` explicitly (read once, cached for the process).
    pub fn from_env() -> Self {
        static KIND: OnceLock<QueueKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("BPVEC_EVENT_QUEUE").as_deref() {
            Ok("heap") => QueueKind::Heap,
            Ok("calendar") | Err(_) => QueueKind::Calendar,
            Ok(other) => panic!("BPVEC_EVENT_QUEUE={other:?}: expected `heap` or `calendar`"),
        })
    }
}

/// One scheduled entry: fires at `time`, ties broken by unique `seq`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry<T> {
    time: f64,
    seq: u64,
    item: T,
}

/// Heap ordering inverted so `BinaryHeap::pop` yields the minimum
/// `(time, seq)` — same trick the simulator's original `Event` Ord used.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Brown-style calendar queue over `(time, seq, item)` entries.
///
/// Buckets are a power-of-two array of "days"; an entry lands in bucket
/// `day % n` where `day = (time / width) as u64`. Popping scans the
/// current day's bucket for the minimal `(time, seq)` among entries whose
/// day index equals the current day — the *same* float division as
/// placement, so bucket membership and the year filter can never disagree
/// at a boundary — then advances day by day, jumping straight to the
/// global minimum's day when a full year passes empty. Bucket count and
/// width are rebuilt from live occupancy so days stay O(1) full.
///
/// Tuned for monotone scheduling (the simulator always schedules at
/// `now + gap`), but a push behind the current day simply rewinds the
/// calendar, so ordering holds unconditionally.
#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    len: usize,
    width: f64,
    /// Absolute index of the day currently being drained.
    day: u64,
    /// Last popped (or initial) time; rebuild floor scales from it.
    last_time: f64,
}

impl<T: Copy> CalendarQueue<T> {
    pub(crate) fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); 2],
            len: 0,
            width: 1.0,
            day: 0,
            last_time: 0.0,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_of(&self, time: f64) -> u64 {
        debug_assert!(time.is_finite() && time >= 0.0);
        (time / self.width) as u64
    }

    pub(crate) fn push(&mut self, time: f64, seq: u64, item: T) {
        let day = self.day_of(time);
        // The simulator schedules monotonically, but a push behind the
        // current day must rewind the calendar rather than be orphaned
        // until the wrap-around scan.
        if day < self.day {
            self.day = day;
        }
        let idx = (day % self.buckets.len() as u64) as usize;
        self.buckets[idx].push(Entry { time, seq, item });
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        for _ in 0..n {
            if let Some(best) = self.min_in_day(self.day) {
                return Some(self.take(best));
            }
            self.day += 1;
        }
        // A full year passed with nothing due: the next event is far in
        // the future. Jump the calendar to the global minimum's day.
        let (b, i) = self.global_min();
        self.day = self.day_of(self.buckets[b][i].time);
        let best = self.min_in_day(self.day).expect("minimum is in this day");
        Some(self.take(best))
    }

    /// Index (within the day's bucket) of the minimal `(time, seq)` entry
    /// belonging to absolute day `day`, or `None` if the bucket has none.
    fn min_in_day(&self, day: u64) -> Option<usize> {
        let bucket = &self.buckets[(day % self.buckets.len() as u64) as usize];
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            if self.day_of(e.time) != day {
                continue;
            }
            let better = best.is_none_or(|b| {
                let cur = &bucket[b];
                (e.time, e.seq) < (cur.time, cur.seq)
            });
            if better {
                best = Some(i);
            }
        }
        best
    }

    fn global_min(&self) -> (usize, usize) {
        let mut best: Option<(usize, usize, f64, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, t, s)| (e.time, e.seq) < (t, s)) {
                    best = Some((b, i, e.time, e.seq));
                }
            }
        }
        let (b, i, _, _) = best.expect("queue is non-empty");
        (b, i)
    }

    fn take(&mut self, idx: usize) -> (f64, u64, T) {
        let bucket = (self.day % self.buckets.len() as u64) as usize;
        let e = self.buckets[bucket].swap_remove(idx);
        self.len -= 1;
        self.last_time = e.time;
        if self.len >= 4 && self.len < self.buckets.len() / 2 {
            self.resize((self.buckets.len() / 2).max(2));
        }
        (e.time, e.seq, e.item)
    }

    /// Rebuilds the calendar with `n` buckets (rounded up to a power of
    /// two) and a width matching the live entries' mean spacing.
    fn resize(&mut self, n: usize) {
        let n = n.next_power_of_two().max(2);
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &entries {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        let span = if entries.is_empty() { 0.0 } else { hi - lo };
        // Width floor scales with the clock so deep-simulated-time runs
        // (t ~ 1e6 s) keep `time / width` well inside u64 range.
        let floor = (self.last_time.abs() * 1e-9).max(1e-9);
        self.width = (span / entries.len().max(1) as f64).max(floor);
        self.buckets = vec![Vec::new(); n];
        let anchor = if entries.is_empty() {
            self.last_time
        } else {
            lo
        };
        self.day = self.day_of(anchor);
        self.len = entries.len();
        for e in entries {
            let idx = (self.day_of(e.time) % n as u64) as usize;
            self.buckets[idx].push(e);
        }
    }
}

/// The simulator's event queue: heap or calendar, chosen per run.
#[derive(Debug)]
pub(crate) enum EventQueue<T> {
    /// Flat binary heap.
    Heap(BinaryHeap<Entry<T>>),
    /// Calendar queue.
    Calendar(CalendarQueue<T>),
}

impl<T: Copy> EventQueue<T> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
        }
    }

    pub(crate) fn push(&mut self, time: f64, seq: u64, item: T) {
        match self {
            EventQueue::Heap(h) => h.push(Entry { time, seq, item }),
            EventQueue::Calendar(c) => c.push(time, seq, item),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(f64, u64, T)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|e| (e.time, e.seq, e.item)),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            EventQueue::Heap(h) => h.is_empty(),
            EventQueue::Calendar(c) => c.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Push a randomized schedule through both implementations and demand
    /// the identical pop sequence — the bit-identity contract in miniature.
    #[test]
    fn calendar_matches_heap_on_random_interleaved_ops() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0xCA1E_0000 + seed);
            let mut heap = EventQueue::<u32>::new(QueueKind::Heap);
            let mut cal = EventQueue::<u32>::new(QueueKind::Calendar);
            let mut seq = 0u64;
            let mut clock = 0.0f64;
            for step in 0..5_000 {
                // Bias towards pushes early, pops late; occasional far-future
                // events exercise the year-jump path.
                let push = heap.is_empty() || rng.gen_bool(if step < 3_000 { 0.7 } else { 0.3 });
                if push {
                    let horizon = if rng.gen_bool(0.02) { 500.0 } else { 1.0 };
                    let t = clock + rng.gen_range(0.0..horizon);
                    heap.push(t, seq, step as u32);
                    cal.push(t, seq, step as u32);
                    seq += 1;
                } else {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b, "seed {seed} step {step}");
                    clock = a.expect("non-empty").0;
                }
            }
            while let Some(a) = heap.pop() {
                assert_eq!(Some(a), cal.pop(), "seed {seed} drain");
            }
            assert!(cal.is_empty());
        }
    }

    #[test]
    fn simultaneous_events_pop_in_seq_order() {
        let mut cal = EventQueue::<u8>::new(QueueKind::Calendar);
        for seq in [3u64, 0, 2, 1] {
            cal.push(1.0, seq, seq as u8);
        }
        for want in 0..4u64 {
            let (t, seq, _) = cal.pop().expect("four entries");
            assert_eq!((t, seq), (1.0, want));
        }
    }

    #[test]
    fn queue_kind_default_is_calendar() {
        // CI never sets BPVEC_EVENT_QUEUE for the unit suite.
        if std::env::var("BPVEC_EVENT_QUEUE").is_err() {
            assert_eq!(QueueKind::from_env(), QueueKind::Calendar);
        }
    }

    #[test]
    fn shrink_and_grow_resizes_keep_order() {
        let mut cal = EventQueue::<u32>::new(QueueKind::Calendar);
        for i in 0..1024u64 {
            cal.push(i as f64 * 0.01, i, i as u32);
        }
        for want in 0..1024u64 {
            assert_eq!(cal.pop().map(|(_, s, _)| s), Some(want));
        }
        assert!(cal.pop().is_none());
    }
}
