//! Fleet topology: regions → clusters → replicas, tenant classes, and
//! admission control.
//!
//! A [`FleetSpec`] layers a geographic hierarchy over the flat replica
//! pool the event loop simulates: each region hosts a set of clusters,
//! each cluster a set of replicas, and the pool is the concatenation in
//! declaration order. Arrivals carry a [`TenantClass`] (sampled by
//! weight) whose home region receives the request; when the home region
//! is at its queue cap the request spills to the least-loaded region with
//! capacity (or is dropped when spilling is off or nothing has room), and
//! per-tenant in-flight quotas shed load before it ever reaches a queue.
//! Routing inside the chosen region picks the least-loaded cluster, then
//! applies the fleet's [`Router`] across that cluster's replicas.
//!
//! All routing reads O(regions + clusters) maintained counters — never a
//! scan of the whole replica pool — so a 10M-request sweep over 1k+
//! replicas stays cheap per arrival. Per-tenant and per-region rollups
//! stream into fixed-size [`TenantRollup`]/[`RegionRollup`] accumulators,
//! preserving the O(1)-memory contract of
//! [`crate::ServingOutcome::summary`].

use bpvec_obs::TraceSink;
use bpvec_sim::{CostModel, DramSpec, Evaluator};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::cluster::{ClusterSpec, Router};
use crate::scheduler::BatchPolicy;
use crate::sim::{run_serving_with_control, CostTable, RunOptions, ServiceModel, ServingOutcome};
use crate::streaming::{QuantileSketch, RegionRollup, TenantRollup};
use crate::TrafficSpec;

/// One region of the fleet: a label plus its cluster grid and an optional
/// cap on requests simultaneously in the region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Display label (`us-east`, …).
    pub label: String,
    /// Clusters hosted in this region.
    pub clusters: u32,
    /// Replicas per cluster.
    pub replicas_per_cluster: u32,
    /// Max requests simultaneously in the region (queued + in flight);
    /// beyond it arrivals spill or drop. `None` = unbounded.
    pub queue_cap: Option<u64>,
}

impl RegionSpec {
    /// A region of `clusters` × `replicas_per_cluster` replicas.
    #[must_use]
    pub fn new(label: impl Into<String>, clusters: u32, replicas_per_cluster: u32) -> Self {
        RegionSpec {
            label: label.into(),
            clusters,
            replicas_per_cluster,
            queue_cap: None,
        }
    }

    /// Caps requests simultaneously in the region.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: u64) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Replicas hosted by this region.
    #[must_use]
    pub fn replicas(&self) -> u64 {
        u64::from(self.clusters) * u64::from(self.replicas_per_cluster)
    }
}

/// One tenant class: sampling weight, home region, and its serving
/// contract (SLA + admission quota).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantClass {
    /// Display label (`premium`, …).
    pub label: String,
    /// Relative share of arrivals this tenant generates.
    pub weight: f64,
    /// Region index arrivals of this tenant land in first.
    pub home_region: usize,
    /// Per-tenant latency SLA, counted exactly in the tenant rollup.
    pub sla_s: Option<f64>,
    /// Admission quota: max requests this tenant may have in the system
    /// at once; arrivals beyond it are dropped. `None` = unbounded.
    pub max_in_flight: Option<u64>,
}

impl TenantClass {
    /// A tenant with the given sampling weight, homed at region 0.
    #[must_use]
    pub fn new(label: impl Into<String>, weight: f64) -> Self {
        TenantClass {
            label: label.into(),
            weight,
            home_region: 0,
            sla_s: None,
            max_in_flight: None,
        }
    }

    /// Homes the tenant's arrivals at `region`.
    #[must_use]
    pub fn home(mut self, region: usize) -> Self {
        self.home_region = region;
        self
    }

    /// Attaches a latency SLA.
    #[must_use]
    pub fn with_sla(mut self, sla_s: f64) -> Self {
        self.sla_s = Some(sla_s);
        self
    }

    /// Caps the tenant's simultaneous in-system requests.
    #[must_use]
    pub fn with_quota(mut self, max_in_flight: u64) -> Self {
        self.max_in_flight = Some(max_in_flight);
        self
    }
}

/// The full fleet: regions, tenants, intra-cluster routing, and the
/// inter-tier forwarding model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Regions, in replica-pool order.
    pub regions: Vec<RegionSpec>,
    /// Tenant classes arrivals are sampled from.
    pub tenants: Vec<TenantClass>,
    /// Router applied across the chosen cluster's replicas.
    /// [`Router::LeastDegraded`] falls back to join-shortest-queue (fleet
    /// runs are static-control, where the two are identical).
    pub router: Router,
    /// Whether an arrival whose home region is at its cap spills to the
    /// least-loaded region with capacity (otherwise it drops).
    pub spill: bool,
    /// Inter-tier forward latency added between admission and the replica
    /// queue (0 = requests land instantly, no transit events).
    pub forward_delay_s: f64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetSpec {
    /// An empty fleet; add regions and tenants builder-style.
    #[must_use]
    pub fn new() -> Self {
        FleetSpec {
            regions: Vec::new(),
            tenants: Vec::new(),
            router: Router::RoundRobin,
            spill: true,
            forward_delay_s: 0.0,
        }
    }

    /// Adds a region.
    #[must_use]
    pub fn region(mut self, region: RegionSpec) -> Self {
        self.regions.push(region);
        self
    }

    /// Adds a tenant class.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantClass) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the intra-cluster router.
    #[must_use]
    pub fn with_router(mut self, router: Router) -> Self {
        self.router = router;
        self
    }

    /// Enables or disables cross-region spill.
    #[must_use]
    pub fn with_spill(mut self, spill: bool) -> Self {
        self.spill = spill;
        self
    }

    /// Sets the inter-tier forward delay.
    #[must_use]
    pub fn with_forward_delay(mut self, delay_s: f64) -> Self {
        self.forward_delay_s = delay_s;
        self
    }

    /// Total replicas across every region.
    #[must_use]
    pub fn total_replicas(&self) -> u64 {
        self.regions.iter().map(RegionSpec::replicas).sum()
    }
}

/// Checks a fleet spec for use with `traffic`, mirroring the scenario
/// validators' error style.
pub(crate) fn validate_fleet(fleet: &FleetSpec, traffic: &TrafficSpec) -> Result<(), String> {
    if fleet.regions.is_empty() {
        return Err("fleet: needs at least one region".into());
    }
    for r in &fleet.regions {
        if r.clusters == 0 || r.replicas_per_cluster == 0 {
            return Err(format!(
                "fleet: region `{}` needs clusters >= 1 and replicas_per_cluster >= 1",
                r.label
            ));
        }
        if r.queue_cap == Some(0) {
            return Err(format!(
                "fleet: region `{}` queue cap must be >= 1",
                r.label
            ));
        }
    }
    if fleet.total_replicas() > u64::from(u32::MAX) {
        return Err("fleet: replica pool exceeds u32".into());
    }
    if fleet.tenants.is_empty() {
        return Err("fleet: needs at least one tenant class".into());
    }
    for t in &fleet.tenants {
        if !(t.weight > 0.0 && t.weight.is_finite()) {
            return Err(format!(
                "fleet: tenant `{}` weight must be positive and finite",
                t.label
            ));
        }
        if t.home_region >= fleet.regions.len() {
            return Err(format!(
                "fleet: tenant `{}` home region {} out of range ({} regions)",
                t.label,
                t.home_region,
                fleet.regions.len()
            ));
        }
        if let Some(sla) = t.sla_s {
            if !(sla > 0.0 && sla.is_finite()) {
                return Err(format!("fleet: tenant `{}` SLA must be positive", t.label));
            }
        }
        if t.max_in_flight == Some(0) {
            return Err(format!("fleet: tenant `{}` quota must be >= 1", t.label));
        }
    }
    if !(fleet.forward_delay_s >= 0.0 && fleet.forward_delay_s.is_finite()) {
        return Err("fleet: forward delay must be finite and >= 0".into());
    }
    if traffic.process.is_closed() {
        return Err(format!(
            "fleet: traffic `{}` is closed-loop; fleet runs are open-loop only",
            traffic.label
        ));
    }
    Ok(())
}

/// Per-tenant live accumulators (counters + latency sketch).
#[derive(Debug)]
struct TenantAcc {
    outstanding: u64,
    arrived: u64,
    dropped: u64,
    completed: u64,
    sum_s: f64,
    sketch: QuantileSketch,
    sla_hits: u64,
}

/// Per-region live accumulators.
#[derive(Debug)]
struct RegionAcc {
    in_system: u64,
    arrived: u64,
    dropped: u64,
    completed: u64,
    sum_s: f64,
    sketch: QuantileSketch,
    busy_s: f64,
}

/// Runtime fleet state owned by the simulator: flattened topology maps,
/// O(regions + clusters) load counters, and streaming rollups.
#[derive(Debug)]
pub(crate) struct FleetState {
    spec: FleetSpec,
    /// Replica index → region index.
    region_of_shard: Vec<u32>,
    /// Replica index → global cluster index.
    cluster_of_shard: Vec<u32>,
    /// Global cluster index → replica index range `[start, end)`.
    cluster_range: Vec<(usize, usize)>,
    /// Region index → global cluster index range `[start, end)`.
    region_clusters: Vec<(usize, usize)>,
    /// Per-cluster round-robin cursors.
    rr_next: Vec<usize>,
    /// Per-cluster requests in system.
    cluster_in_system: Vec<u64>,
    tenant_weight_total: f64,
    tenants: Vec<TenantAcc>,
    regions: Vec<RegionAcc>,
}

impl FleetState {
    pub(crate) fn new(spec: &FleetSpec) -> Self {
        let mut region_of_shard = Vec::new();
        let mut cluster_of_shard = Vec::new();
        let mut cluster_range = Vec::new();
        let mut region_clusters = Vec::new();
        let mut shard = 0usize;
        for (ri, region) in spec.regions.iter().enumerate() {
            let first_cluster = cluster_range.len();
            for _ in 0..region.clusters {
                let start = shard;
                for _ in 0..region.replicas_per_cluster {
                    region_of_shard.push(ri as u32);
                    cluster_of_shard.push(cluster_range.len() as u32);
                    shard += 1;
                }
                cluster_range.push((start, shard));
            }
            region_clusters.push((first_cluster, cluster_range.len()));
        }
        let clusters = cluster_range.len();
        FleetState {
            region_of_shard,
            cluster_of_shard,
            cluster_range,
            region_clusters,
            rr_next: vec![0; clusters],
            cluster_in_system: vec![0; clusters],
            tenant_weight_total: spec.tenants.iter().map(|t| t.weight).sum(),
            tenants: spec
                .tenants
                .iter()
                .map(|_| TenantAcc {
                    outstanding: 0,
                    arrived: 0,
                    dropped: 0,
                    completed: 0,
                    sum_s: 0.0,
                    sketch: QuantileSketch::new(),
                    sla_hits: 0,
                })
                .collect(),
            regions: spec
                .regions
                .iter()
                .map(|_| RegionAcc {
                    in_system: 0,
                    arrived: 0,
                    dropped: 0,
                    completed: 0,
                    sum_s: 0.0,
                    sketch: QuantileSketch::new(),
                    busy_s: 0.0,
                })
                .collect(),
            spec: spec.clone(),
        }
    }

    pub(crate) fn forward_delay_s(&self) -> f64 {
        self.spec.forward_delay_s
    }

    /// Samples a tenant index proportionally to the class weights.
    pub(crate) fn sample_tenant(&self, rng: &mut StdRng) -> usize {
        if self.spec.tenants.len() <= 1 {
            return 0;
        }
        let mut u = rng.gen_range(0.0..self.tenant_weight_total);
        for (i, t) in self.spec.tenants.iter().enumerate() {
            if u < t.weight {
                return i;
            }
            u -= t.weight;
        }
        self.spec.tenants.len() - 1
    }

    fn region_has_capacity(&self, region: usize) -> bool {
        self.spec.regions[region]
            .queue_cap
            .is_none_or(|cap| self.regions[region].in_system < cap)
    }

    /// Admission decision for one arrival of `tenant`: `Some(region)` when
    /// admitted (tenant quota honored, home-first placement with optional
    /// spill), `None` when the request is shed.
    pub(crate) fn admit(&mut self, tenant: usize) -> Option<usize> {
        self.tenants[tenant].arrived += 1;
        let home = self.spec.tenants[tenant].home_region;
        let over_quota = self.spec.tenants[tenant]
            .max_in_flight
            .is_some_and(|q| self.tenants[tenant].outstanding >= q);
        let region = if over_quota {
            None
        } else if self.region_has_capacity(home) {
            Some(home)
        } else if self.spec.spill {
            // Least-loaded region with headroom, ties to the lowest index.
            (0..self.regions.len())
                .filter(|&r| self.region_has_capacity(r))
                .min_by_key(|&r| (self.regions[r].in_system, r))
        } else {
            None
        };
        match region {
            Some(r) => {
                self.tenants[tenant].outstanding += 1;
                self.regions[r].in_system += 1;
                self.regions[r].arrived += 1;
                Some(r)
            }
            None => {
                self.tenants[tenant].dropped += 1;
                self.regions[home].dropped += 1;
                None
            }
        }
    }

    /// Picks the replica inside `region` for a request of `class`:
    /// least-loaded cluster first, then the fleet router across that
    /// cluster's replicas (`depth` reads a replica's current depth).
    pub(crate) fn pick_replica(
        &mut self,
        region: usize,
        class: usize,
        depth: impl Fn(usize) -> u64,
    ) -> usize {
        let (c0, c1) = self.region_clusters[region];
        let cluster = (c0..c1)
            .min_by_key(|&c| (self.cluster_in_system[c], c))
            .expect("regions have at least one cluster");
        self.cluster_in_system[cluster] += 1;
        let (s0, s1) = self.cluster_range[cluster];
        let n = s1 - s0;
        match self.spec.router {
            Router::RoundRobin => {
                let s = s0 + self.rr_next[cluster];
                self.rr_next[cluster] = (self.rr_next[cluster] + 1) % n;
                s
            }
            Router::NetworkAffinity => s0 + class % n,
            Router::JoinShortestQueue | Router::LeastDegraded => (s0..s1)
                .min_by_key(|&s| (depth(s), s))
                .expect("clusters have at least one replica"),
        }
    }

    /// Accrues one dispatched batch's service time to the replica's region.
    pub(crate) fn note_busy(&mut self, shard: usize, svc_s: f64) {
        self.regions[self.region_of_shard[shard] as usize].busy_s += svc_s;
    }

    /// Books one completion: releases the load counters and streams the
    /// sojourn into the tenant/region rollups (post-warmup only).
    pub(crate) fn on_complete(
        &mut self,
        shard: usize,
        tenant: usize,
        sojourn_s: f64,
        measured: bool,
    ) {
        let region = self.region_of_shard[shard] as usize;
        let cluster = self.cluster_of_shard[shard] as usize;
        self.cluster_in_system[cluster] -= 1;
        let t = &mut self.tenants[tenant];
        t.outstanding -= 1;
        t.completed += 1;
        let r = &mut self.regions[region];
        r.in_system -= 1;
        r.completed += 1;
        if measured {
            t.sum_s += sojourn_s;
            t.sketch.observe(sojourn_s);
            if self.spec.tenants[tenant]
                .sla_s
                .is_none_or(|sla| sojourn_s <= sla)
            {
                t.sla_hits += 1;
            }
            r.sum_s += sojourn_s;
            r.sketch.observe(sojourn_s);
        }
    }

    /// Freezes the live accumulators into reportable rollups.
    pub(crate) fn finish(self) -> (Vec<TenantRollup>, Vec<RegionRollup>) {
        let tenants = self
            .spec
            .tenants
            .iter()
            .zip(&self.tenants)
            .map(|(spec, acc)| {
                let measured = acc.sketch.count();
                TenantRollup {
                    label: spec.label.clone(),
                    arrived: acc.arrived,
                    dropped: acc.dropped,
                    completed: acc.completed,
                    measured,
                    mean_s: if measured == 0 {
                        0.0
                    } else {
                        acc.sum_s / measured as f64
                    },
                    p99_s: acc.sketch.quantile(0.99),
                    max_s: acc.sketch.max(),
                    sla_s: spec.sla_s,
                    sla_hits: acc.sla_hits,
                }
            })
            .collect();
        let regions = self
            .spec
            .regions
            .iter()
            .zip(&self.regions)
            .map(|(spec, acc)| {
                let measured = acc.sketch.count();
                RegionRollup {
                    label: spec.label.clone(),
                    replicas: spec.clusters * spec.replicas_per_cluster,
                    arrived: acc.arrived,
                    dropped: acc.dropped,
                    completed: acc.completed,
                    measured,
                    mean_s: if measured == 0 {
                        0.0
                    } else {
                        acc.sum_s / measured as f64
                    },
                    p99_s: acc.sketch.quantile(0.99),
                    busy_s: acc.busy_s,
                }
            })
            .collect();
        (tenants, regions)
    }
}

/// Simulates one open-loop traffic spec against a hierarchical fleet.
///
/// The replica pool is the fleet's flattened topology; admission control,
/// tenant sampling, and region/cluster routing run per
/// [`FleetSpec`]. Defaults stream (`options = RunOptions::default()` keeps
/// no per-request records); the outcome's `summary` carries the
/// per-tenant and per-region rollups, and `dropped` counts shed load, so
/// `admitted == completed` and `admitted + dropped == traffic.requests`
/// once the run drains.
///
/// # Panics
///
/// Panics on a malformed configuration: everything [`crate::run_serving`]
/// checks, plus an invalid fleet (empty regions/tenants, bad weights or
/// home regions, zero caps) and closed-loop traffic (fleet runs are
/// open-loop only).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_fleet(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    fleet: &FleetSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    options: RunOptions,
) -> ServingOutcome {
    run_fleet_inner(
        backend, memory, policy, fleet, traffic, service, seed, options, None,
    )
}

/// [`run_fleet`] with trace emission (respecting `options.trace_every`).
///
/// # Panics
///
/// As [`run_fleet`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_traced(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    fleet: &FleetSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    options: RunOptions,
    trace: &dyn TraceSink,
) -> ServingOutcome {
    run_fleet_inner(
        backend,
        memory,
        policy,
        fleet,
        traffic,
        service,
        seed,
        options,
        Some(trace),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_fleet_inner(
    backend: &dyn Evaluator,
    memory: &DramSpec,
    policy: BatchPolicy,
    fleet: &FleetSpec,
    traffic: &TrafficSpec,
    service: ServiceModel,
    seed: u64,
    options: RunOptions,
    trace: Option<&dyn TraceSink>,
) -> ServingOutcome {
    if let Err(e) = crate::scenario::validate_policy(&policy) {
        panic!("run_fleet: {e}");
    }
    if let Err(e) = crate::scenario::validate_traffic(traffic) {
        panic!("run_fleet: {e}");
    }
    if let Err(e) = validate_fleet(fleet, traffic) {
        panic!("run_fleet: {e}");
    }
    let total = u32::try_from(fleet.total_replicas()).expect("validated <= u32::MAX");
    let cost = CostModel::new();
    let table = Arc::new(CostTable::build(
        backend,
        memory,
        traffic,
        policy.max_batch(),
        &cost,
    ));
    run_serving_with_control(
        vec![table],
        None,
        policy,
        ClusterSpec::new(total, fleet.router),
        traffic,
        service,
        seed,
        trace,
        options,
        Some(fleet),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> FleetSpec {
        FleetSpec::new()
            .region(RegionSpec::new("east", 2, 2).with_queue_cap(4))
            .region(RegionSpec::new("west", 1, 2))
            .tenant(TenantClass::new("gold", 3.0).home(0).with_sla(0.01))
            .tenant(TenantClass::new("free", 1.0).home(1).with_quota(2))
    }

    #[test]
    fn topology_flattens_in_declaration_order() {
        let s = spec();
        assert_eq!(s.total_replicas(), 6);
        let st = FleetState::new(&s);
        assert_eq!(st.region_of_shard, vec![0, 0, 0, 0, 1, 1]);
        assert_eq!(st.cluster_of_shard, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(st.cluster_range, vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(st.region_clusters, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn quota_sheds_and_releases() {
        let mut st = FleetState::new(&spec());
        // Tenant 1 ("free") has quota 2: third concurrent arrival drops.
        assert_eq!(st.admit(1), Some(1));
        assert_eq!(st.admit(1), Some(1));
        assert_eq!(st.admit(1), None);
        assert_eq!(st.tenants[1].dropped, 1);
        // A completion frees the slot (replica 4 lives in region 1).
        st.cluster_in_system[2] += 1; // pick_replica normally does this
        st.on_complete(4, 1, 0.001, true);
        assert_eq!(st.admit(1), Some(1));
    }

    #[test]
    fn capped_home_region_spills_to_least_loaded() {
        let mut st = FleetState::new(&spec());
        // Fill region 0 (cap 4) with tenant-0 arrivals.
        for _ in 0..4 {
            assert_eq!(st.admit(0), Some(0));
        }
        // Next gold arrival spills west.
        assert_eq!(st.admit(0), Some(1));
        assert_eq!(st.regions[1].arrived, 1);
        // With spill off, the same state drops instead.
        let mut no_spill = FleetState::new(&spec().with_spill(false));
        for _ in 0..4 {
            assert_eq!(no_spill.admit(0), Some(0));
        }
        assert_eq!(no_spill.admit(0), None);
        assert_eq!(no_spill.regions[0].dropped, 1);
    }

    #[test]
    fn pick_replica_balances_clusters_then_routes() {
        let mut st = FleetState::new(&spec().with_router(Router::RoundRobin));
        // Region 0 has clusters 0 and 1; successive picks alternate them.
        let a = st.pick_replica(0, 0, |_| 0);
        let b = st.pick_replica(0, 0, |_| 0);
        assert_eq!(st.cluster_of_shard[a], 0, "first pick fills cluster 0");
        assert_eq!(
            st.cluster_of_shard[b], 1,
            "second pick balances to cluster 1"
        );
    }

    #[test]
    fn tenant_sampling_follows_weights() {
        let st = FleetState::new(&spec());
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let gold = (0..n).filter(|_| st.sample_tenant(&mut rng) == 0).count();
        let frac = gold as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "{frac}");
    }

    #[test]
    fn validation_rejects_malformed_fleets() {
        let t = TrafficSpec::new(
            "t",
            crate::ArrivalProcess::poisson(10.0),
            crate::RequestMix::single(bpvec_sim::Workload::new(
                bpvec_dnn::NetworkId::Rnn,
                bpvec_dnn::BitwidthPolicy::Homogeneous8,
            )),
            10,
        );
        assert!(validate_fleet(&FleetSpec::new(), &t).is_err(), "no regions");
        let no_tenant = FleetSpec::new().region(RegionSpec::new("r", 1, 1));
        assert!(validate_fleet(&no_tenant, &t).is_err(), "no tenants");
        let bad_home = no_tenant.clone().tenant(TenantClass::new("a", 1.0).home(7));
        assert!(validate_fleet(&bad_home, &t).is_err(), "home out of range");
        let ok = no_tenant.tenant(TenantClass::new("a", 1.0));
        assert!(validate_fleet(&ok, &t).is_ok());
        let closed = TrafficSpec::new(
            "c",
            crate::ArrivalProcess::closed_loop(2, 0.0),
            t.mix.clone(),
            10,
        );
        assert!(
            validate_fleet(&ok, &closed).is_err(),
            "closed-loop rejected"
        );
    }
}
