//! Traffic generation: *when* requests arrive and *what* they ask for.
//!
//! An inference service's tail latency is decided as much by arrival
//! burstiness as by the accelerator itself, so the serving simulator
//! separates the two: an [`ArrivalProcess`] produces request timestamps
//! (open-loop Poisson, bursty MMPP, trace replay, or closed-loop fixed
//! concurrency), a [`RequestMix`] assigns each request a network class
//! (a [`Workload`] with a sampling weight), and a [`TrafficSpec`] bundles
//! both with the experiment length.

use bpvec_sim::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

/// When requests arrive at the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at a fixed mean rate (requests/second).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Open-loop bursty arrivals: a 2-state Markov-modulated Poisson
    /// process alternating between a base rate and a burst rate, with
    /// exponentially distributed dwell times in each state.
    Bursty {
        /// Arrival rate in the quiet state, requests per second.
        base_rps: f64,
        /// Arrival rate in the burst state, requests per second.
        burst_rps: f64,
        /// Mean dwell time in the quiet state, seconds.
        mean_base_s: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_s: f64,
    },
    /// Open-loop trace replay: the recorded inter-arrival gaps are replayed
    /// in order, cycling back to the start when exhausted.
    Trace {
        /// Inter-arrival gaps in seconds, replayed cyclically.
        inter_arrival_s: Vec<f64>,
    },
    /// Closed-loop traffic: a fixed number of clients, each issuing its
    /// next request `think_s` seconds after its previous one completes.
    ClosedLoop {
        /// Number of concurrent clients.
        concurrency: u64,
        /// Think time between a completion and the client's next request.
        think_s: f64,
    },
    /// Open-loop diurnal traffic: a non-homogeneous Poisson process whose
    /// rate follows a raised-cosine day/night cycle from `base_rps`
    /// (trough, at t = 0) up to `peak_rps` and back over each `period_s`.
    /// Sampled by thinning against the peak rate, so it stays exactly
    /// reproducible under a fixed seed.
    Diurnal {
        /// Trough arrival rate, requests per second.
        base_rps: f64,
        /// Peak arrival rate, requests per second.
        peak_rps: f64,
        /// Length of one full day/night cycle, seconds.
        period_s: f64,
    },
    /// Open-loop flash crowd: steady `base_rps` until `start_s`, a linear
    /// ramp to `flash_rps` over `ramp_s`, a hold of `hold_s`, then a
    /// symmetric ramp back down to `base_rps`. A non-homogeneous Poisson
    /// process sampled by thinning, like [`ArrivalProcess::Diurnal`].
    FlashCrowd {
        /// Background arrival rate, requests per second.
        base_rps: f64,
        /// Rate at the top of the flash, requests per second.
        flash_rps: f64,
        /// When the ramp up begins, seconds.
        start_s: f64,
        /// Ramp duration (both up and down), seconds.
        ramp_s: f64,
        /// How long the flash holds at `flash_rps`, seconds.
        hold_s: f64,
    },
}

impl ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_rps` requests per second.
    #[must_use]
    pub fn poisson(rate_rps: f64) -> Self {
        ArrivalProcess::Poisson { rate_rps }
    }

    /// Bursty 2-state MMPP arrivals.
    #[must_use]
    pub fn bursty(base_rps: f64, burst_rps: f64, mean_base_s: f64, mean_burst_s: f64) -> Self {
        ArrivalProcess::Bursty {
            base_rps,
            burst_rps,
            mean_base_s,
            mean_burst_s,
        }
    }

    /// Trace replay of recorded inter-arrival gaps (seconds).
    #[must_use]
    pub fn trace(inter_arrival_s: Vec<f64>) -> Self {
        ArrivalProcess::Trace { inter_arrival_s }
    }

    /// Closed-loop traffic: `concurrency` clients with `think_s` think time.
    #[must_use]
    pub fn closed_loop(concurrency: u64, think_s: f64) -> Self {
        ArrivalProcess::ClosedLoop {
            concurrency,
            think_s,
        }
    }

    /// Diurnal day/night traffic between `base_rps` and `peak_rps`.
    #[must_use]
    pub fn diurnal(base_rps: f64, peak_rps: f64, period_s: f64) -> Self {
        ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        }
    }

    /// A flash crowd over steady background traffic.
    #[must_use]
    pub fn flash_crowd(
        base_rps: f64,
        flash_rps: f64,
        start_s: f64,
        ramp_s: f64,
        hold_s: f64,
    ) -> Self {
        ArrivalProcess::FlashCrowd {
            base_rps,
            flash_rps,
            start_s,
            ramp_s,
            hold_s,
        }
    }

    /// The instantaneous rate λ(t) of a non-homogeneous process, used by
    /// the simulator's thinning sampler. Homogeneous processes return
    /// their fixed rate.
    #[must_use]
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match self {
            ArrivalProcess::Diurnal {
                base_rps,
                peak_rps,
                period_s,
            } => {
                let phase = std::f64::consts::TAU * t_s / period_s;
                base_rps + (peak_rps - base_rps) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd {
                base_rps,
                flash_rps,
                start_s,
                ramp_s,
                hold_s,
            } => {
                let dt = t_s - start_s;
                if dt < 0.0 || dt >= 2.0 * ramp_s + hold_s {
                    *base_rps
                } else if dt < *ramp_s {
                    base_rps + (flash_rps - base_rps) * dt / ramp_s
                } else if dt < ramp_s + hold_s {
                    *flash_rps
                } else {
                    flash_rps - (flash_rps - base_rps) * (dt - ramp_s - hold_s) / ramp_s
                }
            }
            ArrivalProcess::Poisson { rate_rps } => *rate_rps,
            ArrivalProcess::Bursty { base_rps, .. } => *base_rps,
            ArrivalProcess::Trace { .. } | ArrivalProcess::ClosedLoop { .. } => 0.0,
        }
    }

    /// True for closed-loop traffic (arrivals are completion-driven).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        matches!(self, ArrivalProcess::ClosedLoop { .. })
    }

    /// Long-run mean offered rate in requests per second, where one exists.
    /// Closed-loop traffic adapts to service speed, so it has none.
    #[must_use]
    pub fn offered_rps(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Poisson { rate_rps } => Some(*rate_rps),
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_base_s,
                mean_burst_s,
            } => {
                let total = mean_base_s + mean_burst_s;
                Some((base_rps * mean_base_s + burst_rps * mean_burst_s) / total)
            }
            ArrivalProcess::Trace { inter_arrival_s } => {
                let sum: f64 = inter_arrival_s.iter().sum();
                (sum > 0.0).then(|| inter_arrival_s.len() as f64 / sum)
            }
            ArrivalProcess::ClosedLoop { .. } => None,
            // Raised cosine averages to the midpoint over whole periods.
            ArrivalProcess::Diurnal {
                base_rps, peak_rps, ..
            } => Some(0.5 * (base_rps + peak_rps)),
            // The flash is a transient; the long-run rate is the background.
            ArrivalProcess::FlashCrowd { base_rps, .. } => Some(*base_rps),
        }
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalProcess::Poisson { rate_rps } => write!(f, "poisson({rate_rps:.0}rps)"),
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                ..
            } => write!(f, "bursty({base_rps:.0}-{burst_rps:.0}rps)"),
            ArrivalProcess::Trace { inter_arrival_s } => {
                write!(f, "trace({} gaps)", inter_arrival_s.len())
            }
            ArrivalProcess::ClosedLoop { concurrency, .. } => write!(f, "closed({concurrency})"),
            ArrivalProcess::Diurnal {
                base_rps, peak_rps, ..
            } => write!(f, "diurnal({base_rps:.0}-{peak_rps:.0}rps)"),
            ArrivalProcess::FlashCrowd {
                base_rps,
                flash_rps,
                ..
            } => write!(f, "flash({base_rps:.0}->{flash_rps:.0}rps)"),
        }
    }
}

/// One network class of a request mix: a workload plus a sampling weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The workload requests of this class execute.
    pub workload: Workload,
    /// Relative sampling weight (need not sum to 1 across the mix).
    pub weight: f64,
}

impl MixEntry {
    /// A compact class name for reports: transformer workloads render as
    /// `prefill{seq}` / `decode{kv}` (the two serving phases have different
    /// cost shapes, so they are always distinct classes); everything else
    /// renders as its network name.
    #[must_use]
    pub fn class_label(&self) -> String {
        let w = &self.workload;
        if w.network.is_transformer() {
            return match (w.decode_kv, w.seq_len) {
                (Some(kv), _) => format!("decode{kv}"),
                (None, Some(s)) => format!("prefill{s}"),
                (None, None) => "prefill".into(),
            };
        }
        w.network.name().to_string()
    }
}

/// The per-network request mix: which workload each arrival asks for.
///
/// Every entry is its own *service class*: batches never mix networks, and
/// FIFO order is maintained within a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// The classes, in declaration order (class index = position).
    pub entries: Vec<MixEntry>,
}

impl RequestMix {
    /// A single-network mix.
    #[must_use]
    pub fn single(workload: Workload) -> Self {
        RequestMix {
            entries: vec![MixEntry {
                workload,
                weight: 1.0,
            }],
        }
    }

    /// An empty mix; add classes with [`RequestMix::and`].
    #[must_use]
    pub fn new() -> Self {
        RequestMix {
            entries: Vec::new(),
        }
    }

    /// Adds a class (builder style).
    #[must_use]
    pub fn and(mut self, workload: Workload, weight: f64) -> Self {
        self.entries.push(MixEntry { workload, weight });
        self
    }

    /// The canonical transformer serving mix: a *prefill* class (class 0,
    /// self-attention over `seq_len` tokens) and a *decode* class (class 1,
    /// one query token over a `seq_len`-entry KV cache), each derived from
    /// `base` and weighted separately. The two phases get distinct
    /// cost-table entries, so batches never mix prefill with decode and the
    /// decode class's cost grows with the KV length.
    #[must_use]
    pub fn prefill_decode(
        base: Workload,
        seq_len: usize,
        prefill_weight: f64,
        decode_weight: f64,
    ) -> Self {
        RequestMix::new()
            .and(base.clone().with_seq_len(seq_len), prefill_weight)
            .and(base.with_decode_kv(seq_len), decode_weight)
    }

    /// Number of service classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.entries.len()
    }

    /// Samples a class index proportionally to the weights.
    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        if self.entries.len() <= 1 {
            return 0;
        }
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, e) in self.entries.iter().enumerate() {
            if u < e.weight {
                return i;
            }
            u -= e.weight;
        }
        self.entries.len() - 1
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        Self::new()
    }
}

/// One traffic configuration: arrival process × request mix × experiment
/// length. The label names the configuration in reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Display label ("poisson-0.9", "diurnal-trace", …).
    pub label: String,
    /// When requests arrive.
    pub process: ArrivalProcess,
    /// What each request asks for.
    pub mix: RequestMix,
    /// Total requests admitted before the run drains.
    pub requests: u64,
    /// Requests (in admission order) excluded from latency statistics while
    /// the system warms up; they still occupy queues and servers.
    pub warmup: u64,
}

impl TrafficSpec {
    /// A traffic configuration with no warmup exclusion.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        process: ArrivalProcess,
        mix: RequestMix,
        requests: u64,
    ) -> Self {
        TrafficSpec {
            label: label.into(),
            process,
            mix,
            requests,
            warmup: 0,
        }
    }

    /// Excludes the first `warmup` admitted requests from the statistics.
    #[must_use]
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// The process's long-run offered rate, if open-loop.
    #[must_use]
    pub fn offered_rps(&self) -> Option<f64> {
        self.process.offered_rps()
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};
    use rand::SeedableRng;

    fn w(id: NetworkId) -> Workload {
        Workload::new(id, BitwidthPolicy::Homogeneous8)
    }

    #[test]
    fn offered_rates() {
        assert_eq!(ArrivalProcess::poisson(250.0).offered_rps(), Some(250.0));
        // 100 rps for 3 s, 500 rps for 1 s -> (300 + 500) / 4 = 200 rps.
        let b = ArrivalProcess::bursty(100.0, 500.0, 3.0, 1.0);
        assert!((b.offered_rps().unwrap() - 200.0).abs() < 1e-12);
        let t = ArrivalProcess::trace(vec![0.5, 0.5, 1.0]);
        assert!((t.offered_rps().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(ArrivalProcess::closed_loop(8, 0.0).offered_rps(), None);
        assert!(ArrivalProcess::closed_loop(8, 0.0).is_closed());
    }

    #[test]
    fn zero_length_trace_has_no_rate() {
        assert_eq!(ArrivalProcess::trace(vec![]).offered_rps(), None);
    }

    #[test]
    fn diurnal_rate_cycles_between_base_and_peak() {
        let d = ArrivalProcess::diurnal(100.0, 500.0, 60.0);
        assert!((d.rate_at(0.0) - 100.0).abs() < 1e-9, "trough at t=0");
        assert!(
            (d.rate_at(30.0) - 500.0).abs() < 1e-9,
            "peak at half period"
        );
        assert!((d.rate_at(60.0) - 100.0).abs() < 1e-9, "trough again");
        assert!(
            (d.rate_at(15.0) - 300.0).abs() < 1e-9,
            "midpoint on the way up"
        );
        assert_eq!(d.offered_rps(), Some(300.0));
        assert!(!d.is_closed());
    }

    #[test]
    fn flash_crowd_rate_is_piecewise_linear() {
        let fc = ArrivalProcess::flash_crowd(100.0, 900.0, 10.0, 4.0, 6.0);
        assert_eq!(fc.rate_at(0.0), 100.0);
        assert_eq!(fc.rate_at(9.999), 100.0);
        assert!(
            (fc.rate_at(12.0) - 500.0).abs() < 1e-9,
            "halfway up the ramp"
        );
        assert_eq!(fc.rate_at(14.0), 900.0);
        assert_eq!(fc.rate_at(19.999), 900.0);
        assert!((fc.rate_at(22.0) - 500.0).abs() < 1e-9, "halfway down");
        assert_eq!(fc.rate_at(24.0), 100.0);
        assert_eq!(fc.rate_at(1000.0), 100.0);
        assert_eq!(fc.offered_rps(), Some(100.0));
    }

    #[test]
    fn zero_ramp_flash_is_a_step() {
        let fc = ArrivalProcess::flash_crowd(50.0, 200.0, 5.0, 0.0, 2.0);
        assert_eq!(fc.rate_at(4.999), 50.0);
        assert_eq!(fc.rate_at(5.0), 200.0);
        assert_eq!(fc.rate_at(6.999), 200.0);
        assert_eq!(fc.rate_at(7.0), 50.0);
    }

    #[test]
    fn mix_sampling_follows_weights() {
        let mix = RequestMix::new()
            .and(w(NetworkId::ResNet18), 3.0)
            .and(w(NetworkId::Lstm), 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let cnn = (0..n).filter(|_| mix.sample(&mut rng) == 0).count();
        let frac = cnn as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "{frac}");
    }

    #[test]
    fn single_class_mix_always_samples_zero() {
        let mix = RequestMix::single(w(NetworkId::AlexNet));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(mix.classes(), 1);
        for _ in 0..10 {
            assert_eq!(mix.sample(&mut rng), 0);
        }
    }

    #[test]
    fn prefill_decode_mix_builds_two_distinct_classes() {
        let base = w(NetworkId::BertBase);
        let mix = RequestMix::prefill_decode(base, 128, 1.0, 3.0);
        assert_eq!(mix.classes(), 2);
        assert_eq!(mix.entries[0].class_label(), "prefill128");
        assert_eq!(mix.entries[1].class_label(), "decode128");
        assert_eq!(mix.entries[0].workload.seq_len, Some(128));
        assert_eq!(mix.entries[0].workload.decode_kv, None);
        assert_eq!(mix.entries[1].workload.decode_kv, Some(128));
        assert!((mix.entries[1].weight - 3.0).abs() < 1e-12);
        // Prefill does quadratically more work than a one-token decode step.
        let p = mix.entries[0].workload.build().total_macs();
        let d = mix.entries[1].workload.build().total_macs();
        assert!(p > 16 * d, "prefill {p} vs decode {d}");
    }

    #[test]
    fn class_labels_name_non_transformers_by_network() {
        let cnn = MixEntry {
            workload: w(NetworkId::AlexNet),
            weight: 1.0,
        };
        assert_eq!(cnn.class_label(), "AlexNet");
        let bare = MixEntry {
            workload: w(NetworkId::VitBase),
            weight: 1.0,
        };
        assert_eq!(bare.class_label(), "prefill");
    }

    #[test]
    fn display_labels_are_compact() {
        assert_eq!(
            ArrivalProcess::poisson(100.0).to_string(),
            "poisson(100rps)"
        );
        assert_eq!(
            ArrivalProcess::closed_loop(4, 0.01).to_string(),
            "closed(4)"
        );
        let t = TrafficSpec::new(
            "steady",
            ArrivalProcess::poisson(10.0),
            RequestMix::single(w(NetworkId::Rnn)),
            100,
        );
        assert_eq!(t.to_string(), "steady");
        assert_eq!(t.warmup, 0);
        assert_eq!(t.with_warmup(10).warmup, 10);
    }
}
