//! O(1)-memory streaming metrics for fleet-scale serving runs.
//!
//! The retained-records path ([`crate::ServingOutcome::records`]) is exact
//! but O(n) in request count — fine for the scenario grids, fatal for a
//! 10M-request fleet sweep. This module provides the streaming
//! replacement: a fixed-size log-bucketed [`QuantileSketch`] (p50/p95/p99
//! to well under 2% relative error), windowed throughput aggregation, and
//! per-class / per-tenant / per-region rollups, all maintained in O(1)
//! space per completion.
//!
//! The sketch is deterministic (no randomized compaction like P²/t-digest
//! variants), so summaries are byte-stable across runs under a fixed seed
//! — the property the byte-diffed fleet CSV in CI leans on.

use serde::{Deserialize, Serialize};

use crate::metrics::LatencyHistogram;

/// Smallest representable sojourn (100 ns); everything below folds into
/// bucket 0 and reports the exact observed minimum.
const SKETCH_FLOOR_S: f64 = 1e-7;
/// Geometric bucket growth. Mid-point reporting bounds relative error by
/// `sqrt(GROWTH) - 1` ≈ 1.0%, comfortably inside the 2% property bound.
const SKETCH_GROWTH: f64 = 1.02;
/// Bucket count: `1e-7 * 1.02^1400` ≈ 1e5 s, far past any simulated sojourn.
const SKETCH_BUCKETS: usize = 1400;

/// Streaming quantile estimator over fixed geometric latency buckets.
///
/// `observe` is O(1); `quantile` walks the (constant-size) bucket array
/// with nearest-rank semantics, reporting the geometric mid-point of the
/// selected bucket clamped to the exact observed min/max. Memory is a
/// fixed ~11 KiB regardless of how many samples stream through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    total: u64,
    min_s: f64,
    max_s: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: vec![0; SKETCH_BUCKETS],
            total: 0,
            min_s: f64::INFINITY,
            max_s: f64::NEG_INFINITY,
        }
    }

    fn bucket(value_s: f64) -> usize {
        if value_s <= SKETCH_FLOOR_S {
            return 0;
        }
        let idx = (value_s / SKETCH_FLOOR_S).ln() / SKETCH_GROWTH.ln();
        (idx as usize).min(SKETCH_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn observe(&mut self, value_s: f64) {
        self.counts[Self::bucket(value_s)] += 1;
        self.total += 1;
        self.min_s = self.min_s.min(value_s);
        self.max_s = self.max_s.max(value_s);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum observed sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max_s
        }
    }

    /// Nearest-rank quantile estimate; 0 when no samples were observed.
    ///
    /// Matches the retained path's `quantile(sorted, q)` rank selection
    /// (rank `ceil(q·n)`, 1-based), but reports the geometric mid-point of
    /// the bucket holding that rank instead of the exact order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = SKETCH_FLOOR_S * SKETCH_GROWTH.powi(i as i32);
                let mid = lo * SKETCH_GROWTH.sqrt();
                return mid.clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }
}

/// Per-tenant streaming rollup, reported in [`StreamingSummary::tenants`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRollup {
    /// Tenant class label (e.g. `premium`).
    pub label: String,
    /// Requests this tenant offered (admitted or not).
    pub arrived: u64,
    /// Requests shed by admission control or region queue caps.
    pub dropped: u64,
    /// Requests completed.
    pub completed: u64,
    /// Post-warmup completions feeding the latency fields below.
    pub measured: u64,
    /// Mean post-warmup sojourn.
    pub mean_s: f64,
    /// Sketched post-warmup p99 sojourn.
    pub p99_s: f64,
    /// Exact post-warmup max sojourn.
    pub max_s: f64,
    /// This tenant's SLA, if it has one.
    pub sla_s: Option<f64>,
    /// Post-warmup completions inside the tenant SLA (== `measured` when
    /// the tenant has no SLA).
    pub sla_hits: u64,
}

/// Per-region streaming rollup, reported in [`StreamingSummary::regions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRollup {
    /// Region label (e.g. `us-east`).
    pub label: String,
    /// Replicas hosted by this region.
    pub replicas: u32,
    /// Requests admitted into this region (home or spilled).
    pub arrived: u64,
    /// Requests dropped with this region as their home.
    pub dropped: u64,
    /// Requests completed by this region's replicas.
    pub completed: u64,
    /// Post-warmup completions feeding the latency fields below.
    pub measured: u64,
    /// Mean post-warmup sojourn.
    pub mean_s: f64,
    /// Sketched post-warmup p99 sojourn.
    pub p99_s: f64,
    /// Busy replica-seconds accumulated by this region.
    pub busy_s: f64,
}

/// Digest of a run's post-warmup latency stream, produced whether or not
/// record retention is on.
///
/// When retention is off this is the *only* latency signal, and
/// [`crate::ServingMetrics::from_outcome`] derives its summary from it;
/// when retention is on the exact record path still wins, and this digest
/// rides along for cross-checking (the ≤2% sketch-accuracy property test
/// diffs the two).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    /// Post-warmup completions observed by the stream.
    pub measured: u64,
    /// Mean post-warmup sojourn.
    pub mean_s: f64,
    /// Exact max post-warmup sojourn.
    pub max_s: f64,
    /// Sketched median sojourn.
    pub p50_s: f64,
    /// Sketched 95th-percentile sojourn.
    pub p95_s: f64,
    /// Sketched 99th-percentile sojourn.
    pub p99_s: f64,
    /// SLA the stream counted hits against (from `RunOptions::sla_s`).
    pub sla_s: Option<f64>,
    /// Post-warmup completions inside `sla_s` (== `measured` when `None`).
    pub sla_hits: u64,
    /// Post-warmup completions served at the full-precision rung.
    pub measured_full: u64,
    /// Post-warmup completions per request class (mix order).
    pub class_completed: Vec<u64>,
    /// Incrementally maintained latency histogram, bit-identical to
    /// [`LatencyHistogram::from_samples`] over the same stream.
    pub histogram: LatencyHistogram,
    /// Width of the throughput aggregation window.
    pub window_s: f64,
    /// Highest completion rate seen in any single window.
    pub peak_window_rps: f64,
    /// Per-tenant rollups (empty outside fleet runs).
    pub tenants: Vec<TenantRollup>,
    /// Per-region rollups (empty outside fleet runs).
    pub regions: Vec<RegionRollup>,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self {
            measured: 0,
            mean_s: 0.0,
            max_s: 0.0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            sla_s: None,
            sla_hits: 0,
            measured_full: 0,
            class_completed: Vec::new(),
            histogram: LatencyHistogram::from_samples(&[]),
            window_s: 0.0,
            peak_window_rps: 0.0,
            tenants: Vec::new(),
            regions: Vec::new(),
        }
    }
}

/// Live accumulator behind [`StreamingSummary`]; owned by the simulator
/// and fed one `observe` per completion.
#[derive(Debug)]
pub(crate) struct StreamStats {
    sketch: QuantileSketch,
    hist_counts: Vec<u64>,
    sum_s: f64,
    measured_full: u64,
    sla_s: Option<f64>,
    sla_hits: u64,
    class_completed: Vec<u64>,
    window_s: f64,
    window_idx: u64,
    window_count: u64,
    peak_window: u64,
}

impl StreamStats {
    pub(crate) fn new(classes: usize, sla_s: Option<f64>, window_s: f64) -> Self {
        Self {
            sketch: QuantileSketch::new(),
            hist_counts: vec![0; LatencyHistogram::BINS],
            sum_s: 0.0,
            measured_full: 0,
            sla_s,
            sla_hits: 0,
            class_completed: vec![0; classes],
            window_s: window_s.max(1e-9),
            window_idx: 0,
            window_count: 0,
            peak_window: 0,
        }
    }

    /// Records one post-warmup completion.
    pub(crate) fn observe(&mut self, now_s: f64, sojourn_s: f64, class: usize, full_rung: bool) {
        self.sketch.observe(sojourn_s);
        self.hist_counts[LatencyHistogram::bin(sojourn_s)] += 1;
        self.sum_s += sojourn_s;
        if full_rung {
            self.measured_full += 1;
        }
        if self.sla_s.is_none_or(|sla| sojourn_s <= sla) {
            self.sla_hits += 1;
        }
        if let Some(c) = self.class_completed.get_mut(class) {
            *c += 1;
        }
        let idx = (now_s / self.window_s) as u64;
        if idx != self.window_idx {
            self.peak_window = self.peak_window.max(self.window_count);
            self.window_idx = idx;
            self.window_count = 0;
        }
        self.window_count += 1;
    }

    /// Freezes the stream into a reportable summary.
    pub(crate) fn finish(mut self) -> StreamingSummary {
        self.peak_window = self.peak_window.max(self.window_count);
        let measured = self.sketch.count();
        let mean_s = if measured == 0 {
            0.0
        } else {
            self.sum_s / measured as f64
        };
        StreamingSummary {
            measured,
            mean_s,
            max_s: self.sketch.max(),
            p50_s: self.sketch.quantile(0.50),
            p95_s: self.sketch.quantile(0.95),
            p99_s: self.sketch.quantile(0.99),
            sla_s: self.sla_s,
            sla_hits: self.sla_hits,
            measured_full: self.measured_full,
            class_completed: self.class_completed,
            histogram: LatencyHistogram::from_counts(self.hist_counts),
            window_s: self.window_s,
            peak_window_rps: self.peak_window as f64 / self.window_s,
            tenants: Vec::new(),
            regions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut s = QuantileSketch::new();
        s.observe(0.0042);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.0042, "clamping makes n=1 exact");
        }
    }

    #[test]
    fn sketch_tracks_exact_quantiles_within_two_percent() {
        // Log-uniform samples spanning 10us..10s, deterministic ramp.
        let samples: Vec<f64> = (0..10_000)
            .map(|i| 1e-5 * 10f64.powf(6.0 * (i as f64) / 10_000.0))
            .collect();
        let mut s = QuantileSketch::new();
        for &v in &samples {
            s.observe(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.50, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.02, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_extremes() {
        let mut s = QuantileSketch::new();
        for v in [0.010, 0.011, 0.012] {
            s.observe(v);
        }
        assert!(s.quantile(0.0001) >= 0.010);
        assert!(s.quantile(1.0) <= 0.012);
        assert_eq!(s.max(), 0.012);
    }

    #[test]
    fn stream_stats_histogram_matches_from_samples() {
        let samples: Vec<f64> = (1..500).map(|i| i as f64 * 3.7e-5).collect();
        let mut st = StreamStats::new(2, Some(0.005), 1.0);
        for (i, &v) in samples.iter().enumerate() {
            st.observe(i as f64 * 0.01, v, i % 2, i % 3 == 0);
        }
        let summary = st.finish();
        assert_eq!(summary.histogram, LatencyHistogram::from_samples(&samples));
        assert_eq!(summary.measured, samples.len() as u64);
        assert_eq!(
            summary.sla_hits,
            samples.iter().filter(|&&v| v <= 0.005).count() as u64
        );
        assert_eq!(summary.class_completed, vec![250, 249]);
    }

    #[test]
    fn windowed_peak_counts_the_densest_window() {
        let mut st = StreamStats::new(1, None, 1.0);
        // 3 completions in [0,1), 7 in [1,2), 2 in [2,3).
        for i in 0..3 {
            st.observe(0.1 * i as f64, 1e-3, 0, true);
        }
        for i in 0..7 {
            st.observe(1.0 + 0.1 * i as f64, 1e-3, 0, true);
        }
        for i in 0..2 {
            st.observe(2.0 + 0.1 * i as f64, 1e-3, 0, true);
        }
        assert_eq!(st.finish().peak_window_rps, 7.0);
    }
}
