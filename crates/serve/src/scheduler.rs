//! Batch-formation policies: how queued requests become dispatched batches.
//!
//! The scheduler is where serving systems trade latency against throughput:
//! larger batches amortize weight traffic (the backend's `BatchRegime`
//! latencies are sub-linear in batch for the CNNs until tile spill), but
//! every request in a batch waits for the batch to form. The simulator
//! implements the three canonical points of that spectrum.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a replica forms batches from its per-class FIFO queues.
///
/// Batches never mix network classes (different networks cannot share a
/// weight-stationary accelerator pass), and requests within a class are
/// always served FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Dispatch every request alone as soon as the replica is free — the
    /// latency-optimal policy at low load, and the throughput-worst.
    Immediate,
    /// Wait for a full batch of `size` same-class requests before
    /// dispatching (partial batches flush only when the run drains or a
    /// closed loop would otherwise deadlock).
    Fixed {
        /// The batch size to wait for.
        size: u64,
    },
    /// Deadline-aware dynamic batching: dispatch when a class reaches
    /// `max_batch` queued requests, or when the oldest queued request has
    /// waited `max_wait_s` — whichever comes first.
    Deadline {
        /// Upper bound on the dispatched batch size.
        max_batch: u64,
        /// Maximum queueing delay before a partial batch dispatches.
        max_wait_s: f64,
    },
}

impl BatchPolicy {
    /// Immediate single-request dispatch.
    #[must_use]
    pub fn immediate() -> Self {
        BatchPolicy::Immediate
    }

    /// Fixed-size batching.
    #[must_use]
    pub fn fixed(size: u64) -> Self {
        BatchPolicy::Fixed { size }
    }

    /// Deadline-aware dynamic batching.
    #[must_use]
    pub fn deadline(max_batch: u64, max_wait_s: f64) -> Self {
        BatchPolicy::Deadline {
            max_batch,
            max_wait_s,
        }
    }

    /// The largest batch this policy can ever dispatch (the batch-cost
    /// table is precomputed up to this size).
    #[must_use]
    pub fn max_batch(&self) -> u64 {
        match *self {
            BatchPolicy::Immediate => 1,
            BatchPolicy::Fixed { size } => size,
            BatchPolicy::Deadline { max_batch, .. } => max_batch,
        }
    }
}

impl fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchPolicy::Immediate => f.write_str("immediate"),
            BatchPolicy::Fixed { size } => write!(f, "fixed({size})"),
            BatchPolicy::Deadline {
                max_batch,
                max_wait_s,
            } => write!(f, "deadline({max_batch},{:.0}us)", max_wait_s * 1e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_batch_per_policy() {
        assert_eq!(BatchPolicy::immediate().max_batch(), 1);
        assert_eq!(BatchPolicy::fixed(8).max_batch(), 8);
        assert_eq!(BatchPolicy::deadline(16, 0.001).max_batch(), 16);
    }

    #[test]
    fn display_is_stable_for_csv_columns() {
        assert_eq!(BatchPolicy::immediate().to_string(), "immediate");
        assert_eq!(BatchPolicy::fixed(8).to_string(), "fixed(8)");
        assert_eq!(
            BatchPolicy::deadline(16, 0.0005).to_string(),
            "deadline(16,500us)"
        );
    }
}
