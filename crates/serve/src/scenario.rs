//! The `ServingScenario` builder: serving experiments declared the same way
//! evaluation experiments are.
//!
//! Mirroring [`bpvec_sim::Scenario`], a [`ServingScenario`] declares its
//! axes — platforms ([`Evaluator`] backends), batching policies, cluster
//! configurations, and traffic specs — then [`ServingScenario::run`]
//! simulates the full cross-product (rayon-parallel, one task per cell) and
//! returns a [`ServingReport`] that renders to CSV/JSON like
//! [`bpvec_sim::Report`] does.
//!
//! Arrival randomness is seeded per *traffic axis entry*, not per cell:
//! every platform/policy/cluster sees the identical arrival sequence for a
//! given traffic spec, so comparisons across those axes are paired.

use std::fmt;
use std::sync::Arc;

use bpvec_dnn::PrecisionPolicy;
use bpvec_obs::{
    ArgValue, MemorySink, MetricsRegistry, Phase, TraceEvent, TraceSink, WallProfiler,
};
use bpvec_sim::{CostModel, DramSpec, Evaluator};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use bpvec_dnn::DegradationLadder;

use crate::arrivals::{ArrivalProcess, TrafficSpec};
use crate::cluster::ClusterSpec;
use crate::controller::{AdaptiveSpec, ControlPolicy};
use crate::metrics::ServingMetrics;
use crate::scheduler::BatchPolicy;
use crate::sim::{
    build_rung_tables, run_serving_with_control, CostTable, RunOptions, ServiceModel,
};

/// Errors from building or running a serving scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingError(String);

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServingError {}

/// NaN-safe "strictly positive and finite".
fn positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// NaN-safe "finite and non-negative".
fn non_negative(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

/// Validates one batching policy; shared by [`ServingScenario::try_run`]
/// and [`run_serving`]'s precondition check.
pub(crate) fn validate_policy(p: &BatchPolicy) -> Result<(), ServingError> {
    match *p {
        BatchPolicy::Fixed { size: 0 } => {
            Err(ServingError("fixed batch size must be at least 1".into()))
        }
        BatchPolicy::Deadline {
            max_batch,
            max_wait_s,
        } if max_batch == 0 || !non_negative(max_wait_s) => Err(ServingError(
            "deadline batching needs max_batch >= 1 and max_wait_s >= 0".into(),
        )),
        _ => Ok(()),
    }
}

/// Validates one cluster configuration.
pub(crate) fn validate_cluster(c: &ClusterSpec) -> Result<(), ServingError> {
    if c.replicas == 0 {
        return Err(ServingError("a cluster needs at least one replica".into()));
    }
    Ok(())
}

/// Validates one adaptive control specification (cluster-independent part).
pub(crate) fn validate_control(spec: &AdaptiveSpec) -> Result<(), ServingError> {
    let c = &spec.controller;
    if !positive(c.interval_s) {
        return Err(ServingError(
            "the controller tick interval must be positive".into(),
        ));
    }
    if c.low_depth >= c.high_depth {
        return Err(ServingError(format!(
            "controller hysteresis needs low_depth < high_depth (got {} >= {})",
            c.low_depth, c.high_depth
        )));
    }
    if c.window == 0 {
        return Err(ServingError(
            "the controller's sojourn window needs at least one slot".into(),
        ));
    }
    if !(c.upgrade_margin.is_finite() && c.upgrade_margin > 0.0 && c.upgrade_margin <= 1.0) {
        return Err(ServingError("the upgrade margin must lie in (0, 1]".into()));
    }
    if let Some(t) = c.target_p99_s {
        if !positive(t) {
            return Err(ServingError(
                "the controller's p99 target must be a positive latency".into(),
            ));
        }
    }
    if let Some(a) = &spec.autoscaler {
        if a.min_replicas == 0 || a.min_replicas > a.max_replicas {
            return Err(ServingError(format!(
                "autoscaler bounds need 1 <= min <= max (got {}..={})",
                a.min_replicas, a.max_replicas
            )));
        }
        if !(non_negative(a.down_depth) && a.up_depth.is_finite() && a.down_depth < a.up_depth) {
            return Err(ServingError(
                "autoscaler watermarks need 0 <= down_depth < up_depth".into(),
            ));
        }
    }
    Ok(())
}

/// Validates an adaptive spec against the cluster it will control: an
/// autoscaled run starts at the cluster's replica count, which must lie
/// within the autoscaler's bounds.
pub(crate) fn validate_control_for_cluster(
    spec: &AdaptiveSpec,
    cluster: &ClusterSpec,
) -> Result<(), ServingError> {
    validate_control(spec)?;
    if let Some(a) = &spec.autoscaler {
        if cluster.replicas < a.min_replicas || cluster.replicas > a.max_replicas {
            return Err(ServingError(format!(
                "cluster `{cluster}` starts outside the autoscaler bounds {}..={}",
                a.min_replicas, a.max_replicas
            )));
        }
    }
    Ok(())
}

/// Validates one traffic configuration.
pub(crate) fn validate_traffic(t: &TrafficSpec) -> Result<(), ServingError> {
    if t.requests == 0 {
        return Err(ServingError(format!(
            "traffic `{}` admits zero requests",
            t.label
        )));
    }
    if t.warmup >= t.requests {
        return Err(ServingError(format!(
            "traffic `{}`: warmup {} swallows all {} requests",
            t.label, t.warmup, t.requests
        )));
    }
    if t.mix.entries.is_empty() {
        return Err(ServingError(format!(
            "traffic `{}` has an empty request mix",
            t.label
        )));
    }
    if t.mix.entries.iter().any(|e| !positive(e.weight)) {
        return Err(ServingError(format!(
            "traffic `{}`: mix weights must be positive and finite",
            t.label
        )));
    }
    match &t.process {
        ArrivalProcess::Poisson { rate_rps } if !positive(*rate_rps) => Err(ServingError(format!(
            "traffic `{}`: Poisson rate must be positive",
            t.label
        ))),
        ArrivalProcess::Bursty {
            base_rps,
            burst_rps,
            mean_base_s,
            mean_burst_s,
        } if !(positive(*base_rps)
            && positive(*burst_rps)
            && positive(*mean_base_s)
            && positive(*mean_burst_s)) =>
        {
            Err(ServingError(format!(
                "traffic `{}`: bursty rates and dwell times must be positive",
                t.label
            )))
        }
        ArrivalProcess::Trace { inter_arrival_s }
            if inter_arrival_s.is_empty() || inter_arrival_s.iter().any(|g| !non_negative(*g)) =>
        {
            Err(ServingError(format!(
                "traffic `{}`: trace needs at least one non-negative gap",
                t.label
            )))
        }
        ArrivalProcess::ClosedLoop {
            concurrency,
            think_s,
        } if *concurrency == 0 || !non_negative(*think_s) => Err(ServingError(format!(
            "traffic `{}`: closed loop needs concurrency >= 1 and think_s >= 0",
            t.label
        ))),
        ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        } if !(positive(*base_rps)
            && positive(*period_s)
            && peak_rps.is_finite()
            && *peak_rps >= *base_rps) =>
        {
            Err(ServingError(format!(
                "traffic `{}`: diurnal needs 0 < base_rps <= peak_rps and period_s > 0",
                t.label
            )))
        }
        ArrivalProcess::FlashCrowd {
            base_rps,
            flash_rps,
            start_s,
            ramp_s,
            hold_s,
        } if !(positive(*base_rps)
            && flash_rps.is_finite()
            && *flash_rps >= *base_rps
            && non_negative(*start_s)
            && non_negative(*ramp_s)
            && non_negative(*hold_s)) =>
        {
            Err(ServingError(format!(
                "traffic `{}`: flash crowd needs 0 < base_rps <= flash_rps and \
                 non-negative start/ramp/hold",
                t.label
            )))
        }
        _ => Ok(()),
    }
}

/// A declared serving experiment: platforms × policies × clusters ×
/// traffics (× precisions) (× controls) under one memory system, service
/// model, seed, and optional SLA.
pub struct ServingScenario {
    name: String,
    platforms: Vec<(String, Arc<dyn Evaluator>)>,
    policies: Vec<BatchPolicy>,
    clusters: Vec<ClusterSpec>,
    traffics: Vec<TrafficSpec>,
    precisions: Vec<PrecisionPolicy>,
    seq_lens: Vec<usize>,
    controls: Vec<ControlPolicy>,
    memory: DramSpec,
    service: ServiceModel,
    sla_s: Option<f64>,
    seed: u64,
    trace: Option<Arc<dyn TraceSink>>,
    profile: Option<Arc<WallProfiler>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for ServingScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingScenario")
            .field("name", &self.name)
            .field(
                "platforms",
                &self.platforms.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .field("policies", &self.policies)
            .field("clusters", &self.clusters)
            .field("traffics", &self.traffics)
            .field("precisions", &self.precisions)
            .field("seq_lens", &self.seq_lens)
            .field("controls", &self.controls)
            .field("memory", &self.memory)
            .field("service", &self.service)
            .field("sla_s", &self.sla_s)
            .field("seed", &self.seed)
            .field("trace", &self.trace.is_some())
            .field("profile", &self.profile.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl ServingScenario {
    /// An empty serving scenario (DDR4 memory, deterministic service,
    /// seed 0x5EED) with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ServingScenario {
            name: name.into(),
            platforms: Vec::new(),
            policies: Vec::new(),
            clusters: Vec::new(),
            traffics: Vec::new(),
            precisions: Vec::new(),
            seq_lens: Vec::new(),
            controls: Vec::new(),
            memory: DramSpec::ddr4(),
            service: ServiceModel::Deterministic,
            sla_s: None,
            seed: 0x5EED,
            trace: None,
            profile: None,
            metrics: None,
        }
    }

    /// Adds a serving backend.
    #[must_use]
    pub fn platform(mut self, platform: impl Evaluator + 'static) -> Self {
        let label = platform.label();
        self.platforms.push((label, Arc::new(platform)));
        self
    }

    /// Adds one batching policy.
    #[must_use]
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds a batch of policies.
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = BatchPolicy>) -> Self {
        self.policies.extend(policies);
        self
    }

    /// Adds one cluster configuration.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// Adds a batch of cluster configurations.
    #[must_use]
    pub fn clusters(mut self, clusters: impl IntoIterator<Item = ClusterSpec>) -> Self {
        self.clusters.extend(clusters);
        self
    }

    /// Adds one traffic configuration.
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffics.push(traffic);
        self
    }

    /// Adds a batch of traffic configurations.
    #[must_use]
    pub fn traffics(mut self, traffics: impl IntoIterator<Item = TrafficSpec>) -> Self {
        self.traffics.extend(traffics);
        self
    }

    /// Adds one precision policy to the sweep axis. A non-empty axis
    /// expands every traffic spec into one variant per policy: each
    /// variant's whole request mix runs under that policy, the arrival
    /// sequence stays paired with the other variants of the same traffic,
    /// and the cell's `precision` column names the policy.
    #[must_use]
    pub fn precision(mut self, policy: impl Into<PrecisionPolicy>) -> Self {
        self.precisions.push(policy.into());
        self
    }

    /// Adds a batch of precision policies (e.g.
    /// [`PrecisionPolicy::paper_sweep`]).
    #[must_use]
    pub fn precisions(mut self, policies: impl IntoIterator<Item = PrecisionPolicy>) -> Self {
        self.precisions.extend(policies);
        self
    }

    /// Adds one sequence length to the sweep axis. A non-empty axis expands
    /// every traffic spec whose mix contains a sequence-shaped network
    /// (transformers, RNN/LSTM) into one variant per length: prefill and
    /// recurrent classes take it as their token count, decode classes as
    /// their KV-cache length. Traffics with no sequence-shaped class are
    /// not expanded. Variants of one traffic keep the declared traffic's
    /// arrival seed, so comparisons along the axis are paired.
    #[must_use]
    pub fn seq_len(mut self, seq_len: usize) -> Self {
        self.seq_lens.push(seq_len);
        self
    }

    /// Adds a batch of sequence lengths to the sweep axis.
    #[must_use]
    pub fn seq_lens(mut self, seq_lens: impl IntoIterator<Item = usize>) -> Self {
        self.seq_lens.extend(seq_lens);
        self
    }

    /// Adds an adaptive-control entry to the control axis: every cell runs
    /// under a runtime precision controller walking `ladder` (rung 0 first)
    /// with the default [`crate::ControllerConfig`]. Combine with
    /// [`ServingScenario::static_control`] to compare adaptive against
    /// pinned-precision serving in one report; use
    /// [`ServingScenario::control`] for a custom controller or autoscaler.
    ///
    /// An empty control axis means every cell is static (the classic
    /// behavior). The control axis cannot be combined with a precision
    /// sweep: the controller owns the mix's precision at runtime.
    #[must_use]
    pub fn adaptive(self, ladder: DegradationLadder) -> Self {
        self.control(ControlPolicy::Adaptive(AdaptiveSpec::new(ladder)))
    }

    /// Adds a static-precision entry to the control axis (the mix's
    /// declared policies, pinned for the whole run).
    #[must_use]
    pub fn static_control(self) -> Self {
        self.control(ControlPolicy::Static)
    }

    /// Adds one control-axis entry ([`ControlPolicy::Static`] or a full
    /// [`AdaptiveSpec`] with controller/autoscaler configuration).
    #[must_use]
    pub fn control(mut self, control: impl Into<ControlPolicy>) -> Self {
        self.controls.push(control.into());
        self
    }

    /// Replaces the off-chip memory system (default DDR4).
    #[must_use]
    pub fn memory(mut self, memory: DramSpec) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the service-time model (default deterministic).
    #[must_use]
    pub fn service_model(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }

    /// Sets the latency SLA for goodput accounting, seconds.
    #[must_use]
    pub fn sla_s(mut self, sla_s: f64) -> Self {
        self.sla_s = Some(sla_s);
        self
    }

    /// Replaces the arrival seed (default 0x5EED).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a trace sink: every cell's event loop records request
    /// lifecycle, batch `exec` spans, queue-depth samples, and (for
    /// adaptive cells) rung-switch/scale events into it.
    ///
    /// Cells simulate rayon-parallel, so each buffers into a private
    /// in-memory sink; after the grid finishes, the buffers are forwarded
    /// into `sink` **in cell order**, each cell's tracks remapped to a
    /// disjoint `pid` range (cell `i` occupies `i*256 ..`) with the cell
    /// index prefixed onto its track names. The forwarded stream is
    /// therefore byte-deterministic regardless of rayon scheduling. A sink
    /// whose `enabled()` is `false` disables all of this.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a wall-clock self-profiler: each cell's *host* simulation
    /// time is recorded under a `cell:…` label, and the table/rung-table
    /// builds under `build:…` labels. This channel is deliberately
    /// separate from [`ServingScenario::trace`] — wall-clock readings vary
    /// run-to-run and must never contaminate the deterministic trace.
    #[must_use]
    pub fn profile(mut self, profiler: Arc<WallProfiler>) -> Self {
        self.profile = Some(profiler);
        self
    }

    /// Attaches a metrics registry: after the grid runs, the shared cost
    /// model's hit/miss/entry counters (`cost.*`) and aggregate serving
    /// totals (`serve.*`) are recorded into it.
    #[must_use]
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The derived arrival seed a scenario with base `seed` uses for its
    /// `traffic_idx`-th declared traffic — pass it to
    /// [`crate::run_serving`] / [`crate::run_serving_adaptive`] to replay
    /// one cell's exact arrival sequence outside the grid (e.g. to inspect
    /// raw [`crate::RequestRecord`]s).
    #[must_use]
    pub fn mix_seed_for(seed: u64, traffic_idx: u64) -> u64 {
        mix_seed(seed, traffic_idx)
    }

    fn validate(&self) -> Result<(), ServingError> {
        if self.platforms.is_empty()
            || self.policies.is_empty()
            || self.clusters.is_empty()
            || self.traffics.is_empty()
        {
            return Err(ServingError(format!(
                "every axis needs at least one entry (platforms {}, policies {}, clusters {}, traffics {})",
                self.platforms.len(),
                self.policies.len(),
                self.clusters.len(),
                self.traffics.len()
            )));
        }
        for (i, (l, _)) in self.platforms.iter().enumerate() {
            if self.platforms[..i].iter().any(|(other, _)| other == l) {
                return Err(ServingError(format!("duplicate platform label `{l}`")));
            }
        }
        for p in &self.policies {
            validate_policy(p)?;
        }
        for c in &self.clusters {
            validate_cluster(c)?;
        }
        for t in &self.traffics {
            validate_traffic(t)?;
        }
        // A duplicated precision would emit byte-identical cells that
        // double-weight the point downstream (mirrors `Scenario`'s
        // duplicate-workload rejection of a colliding precision axis).
        for (i, p) in self.precisions.iter().enumerate() {
            if self.precisions[..i].contains(p) {
                return Err(ServingError(format!(
                    "duplicate precision policy `{p}` in the sweep axis"
                )));
            }
        }
        for (i, s) in self.seq_lens.iter().enumerate() {
            if *s == 0 {
                return Err(ServingError(
                    "sequence lengths in the sweep axis must be at least 1".into(),
                ));
            }
            if self.seq_lens[..i].contains(s) {
                return Err(ServingError(format!(
                    "duplicate sequence length {s} in the sweep axis"
                )));
            }
        }
        for (i, c) in self.controls.iter().enumerate() {
            if self.controls[..i].contains(c) {
                return Err(ServingError(format!(
                    "duplicate control policy `{c}` in the control axis"
                )));
            }
            if let Some(spec) = c.adaptive_spec() {
                validate_control(spec)?;
                for cluster in &self.clusters {
                    validate_control_for_cluster(spec, cluster)?;
                }
                // A ladder rung that cannot apply to some mix network (a
                // per-layer list with the wrong layer count) surfaces from
                // the rung-table build in `try_run`, which constructs each
                // distinct ladder's networks exactly once.
            }
        }
        if !self.precisions.is_empty() && self.controls.iter().any(|c| c.adaptive_spec().is_some())
        {
            return Err(ServingError(
                "a precision sweep cannot be combined with adaptive control \
                 (the controller owns the mix's precision at runtime)"
                    .into(),
            ));
        }
        if let Some(sla) = self.sla_s {
            if !positive(sla) {
                return Err(ServingError("the SLA must be a positive latency".into()));
            }
        }
        Ok(())
    }

    /// Runs the scenario; see [`ServingScenario::try_run`] for the fallible
    /// form.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scenario (empty axis, duplicate labels, zero
    /// request counts, non-positive rates or weights).
    #[must_use]
    pub fn run(&self) -> ServingReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("serving scenario `{}`: {e}", self.name),
        }
    }

    /// The traffic axis the run actually simulates: each declared traffic,
    /// expanded per precision policy when a precision axis is set, then per
    /// sequence length when a sequence axis is set (only for traffics whose
    /// mix has a sequence-shaped class). Entries are `(declared-traffic
    /// index, precision label, sequence label, spec)`; the index seeds
    /// arrivals, so every variant of one traffic stays paired.
    fn effective_traffics(&self) -> Vec<(usize, String, String, TrafficSpec)> {
        let swept: Vec<(usize, String, TrafficSpec)> = if self.precisions.is_empty() {
            self.traffics
                .iter()
                .enumerate()
                .map(|(i, t)| (i, mix_precision_label(t), t.clone()))
                .collect()
        } else {
            self.traffics
                .iter()
                .enumerate()
                .flat_map(|(i, t)| {
                    self.precisions.iter().map(move |p| {
                        let mut variant = t.clone();
                        for entry in &mut variant.mix.entries {
                            entry.workload = entry.workload.clone().with_policy(p.clone());
                        }
                        (i, p.to_string(), variant)
                    })
                })
                .collect()
        };
        swept
            .into_iter()
            .flat_map(|(i, precision, t)| {
                let sequence_shaped = t
                    .mix
                    .entries
                    .iter()
                    .any(|e| e.workload.network.has_sequence_dim());
                if self.seq_lens.is_empty() || !sequence_shaped {
                    return vec![(i, precision, "-".to_string(), t)];
                }
                self.seq_lens
                    .iter()
                    .map(|&s| {
                        let mut variant = t.clone();
                        for entry in &mut variant.mix.entries {
                            let w = entry.workload.clone();
                            entry.workload = if w.decode_kv.is_some() {
                                w.with_decode_kv(s)
                            } else if w.network.has_sequence_dim() {
                                w.with_seq_len(s)
                            } else {
                                w
                            };
                        }
                        (i, precision.clone(), s.to_string(), variant)
                    })
                    .collect()
            })
            .collect()
    }

    /// Simulates the full platforms × policies × clusters × traffics
    /// (× precisions) (× controls) cross-product — rayon-parallel across
    /// cells — and reports the results.
    ///
    /// Batch cost tables are built once per (platform, traffic) through a
    /// single shared [`CostModel`] and handed to every policy × cluster
    /// cell behind an [`Arc`]: replicas, routers and batch caps all read
    /// the same table instead of re-running the analytical model. Adaptive
    /// control entries additionally get one table per ladder rung — built
    /// once per distinct ladder (not per control entry) through the same
    /// memo, and shared by every replica of every adaptive cell.
    ///
    /// # Errors
    ///
    /// Fails if an axis is empty, platform labels collide, or any policy,
    /// cluster, traffic, precision, or control assignment is malformed
    /// (see [`ServingError`]).
    pub fn try_run(&self) -> Result<ServingReport, ServingError> {
        self.validate()?;
        let traffics = self.effective_traffics();
        let controls: Vec<ControlPolicy> = if self.controls.is_empty() {
            vec![ControlPolicy::Static]
        } else {
            self.controls.clone()
        };
        // Distinct ladders and each control's index into them (two adaptive
        // entries differing only in controller tuning share rung tables).
        let mut ladders: Vec<&DegradationLadder> = Vec::new();
        let control_ladder: Vec<Option<usize>> = controls
            .iter()
            .map(|c| {
                c.adaptive_spec().map(|spec| {
                    ladders
                        .iter()
                        .position(|l| **l == spec.ladder)
                        .unwrap_or_else(|| {
                            ladders.push(&spec.ladder);
                            ladders.len() - 1
                        })
                })
            })
            .collect();
        // Validate every mix workload's precision once, keeping the built
        // networks so the per-platform table builds below reuse them.
        let networks: Vec<Vec<bpvec_dnn::Network>> = traffics
            .iter()
            .map(|(_, precision, _, t)| {
                t.mix
                    .entries
                    .iter()
                    .map(|entry| {
                        entry.workload.try_build().map_err(|e| {
                            ServingError(format!(
                                "traffic `{}` under precision `{precision}`: {e}",
                                t.label
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        // One memoized cost model for the whole grid, one Arc'd table per
        // (platform, traffic) sized to the largest batch any policy asks
        // for — smaller-cap policies read a prefix of the same table.
        let cost = CostModel::new();
        let build_started = self.profile.as_ref().map(|_| std::time::Instant::now());
        let max_batch = self
            .policies
            .iter()
            .map(BatchPolicy::max_batch)
            .max()
            .expect("validate ensures at least one policy");
        let tables: Vec<Vec<Arc<CostTable>>> = self
            .platforms
            .par_iter()
            .map(|(_, backend)| {
                traffics
                    .iter()
                    .zip(&networks)
                    .map(|((_, _, _, t), nets)| {
                        Arc::new(CostTable::build_with_networks(
                            backend.as_ref(),
                            &self.memory,
                            t,
                            nets,
                            max_batch,
                            &cost,
                        ))
                    })
                    .collect()
            })
            .collect();
        // `rung_tables[l][p][tr][r]`: per distinct ladder, per platform ×
        // traffic, one cost table per rung — all through the shared memo.
        let rung_tables: Vec<Vec<Vec<Vec<Arc<CostTable>>>>> = ladders
            .iter()
            .map(|ladder| {
                let probe = AdaptiveSpec::new((*ladder).clone());
                self.platforms
                    .par_iter()
                    .map(|(_, backend)| {
                        traffics
                            .iter()
                            .map(|(_, _, _, t)| {
                                build_rung_tables(
                                    backend.as_ref(),
                                    &self.memory,
                                    t,
                                    &probe,
                                    max_batch,
                                    &cost,
                                )
                                .map_err(ServingError)
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        if let (Some(prof), Some(t0)) = (&self.profile, build_started) {
            prof.record("build:cost_tables", t0.elapsed().as_secs_f64());
        }
        let n_traffics = traffics.len();
        let n_controls = controls.len();
        let jobs: Vec<(usize, usize, usize, usize, usize)> = (0..self.platforms.len())
            .flat_map(|p| {
                (0..self.policies.len()).flat_map(move |pol| {
                    (0..self.clusters.len()).flat_map(move |cl| {
                        (0..n_traffics)
                            .flat_map(move |tr| (0..n_controls).map(move |co| (p, pol, cl, tr, co)))
                    })
                })
            })
            .collect();
        // Cells run rayon-parallel, so a traced run buffers each cell's
        // events into a private sink; the buffers are forwarded into the
        // user's sink below, in cell order, so the final stream does not
        // depend on scheduling.
        let do_trace = self.trace.as_deref().is_some_and(TraceSink::enabled);
        let cells_with_events: Vec<(ServingCell, Vec<TraceEvent>)> = jobs
            .into_par_iter()
            .map(|(p, pol, cl, tr, co)| {
                let (traffic_idx, precision, seq, traffic) = &traffics[tr];
                let spec = controls[co].adaptive_spec();
                let cell_tables = match control_ladder[co] {
                    None => vec![Arc::clone(&tables[p][tr])],
                    Some(l) => rung_tables[l][p][tr].clone(),
                };
                let cell_sink = if do_trace {
                    Some(MemorySink::new())
                } else {
                    None
                };
                let cell_started = self.profile.as_ref().map(|_| std::time::Instant::now());
                let outcome = run_serving_with_control(
                    cell_tables,
                    spec,
                    self.policies[pol],
                    self.clusters[cl],
                    traffic,
                    self.service,
                    mix_seed(self.seed, *traffic_idx as u64),
                    cell_sink.as_ref().map(|s| s as &dyn TraceSink),
                    RunOptions::retained().with_sla(self.sla_s),
                    None,
                );
                if let (Some(prof), Some(t0)) = (&self.profile, cell_started) {
                    prof.record(
                        &format!(
                            "cell:{}:{}:pol{pol}:cl{cl}:{}",
                            self.platforms[p].0, traffic.label, controls[co]
                        ),
                        t0.elapsed().as_secs_f64(),
                    );
                }
                let metrics = ServingMetrics::from_outcome(
                    &outcome,
                    self.clusters[cl].replicas,
                    traffic.warmup,
                    self.sla_s,
                );
                // Post-warmup completions per service class, labelled so
                // prefill/decode splits are visible per cell. The streaming
                // digest counts these whether or not records are retained.
                let class_counts = outcome.summary.class_completed.clone();
                let classes = traffic
                    .mix
                    .entries
                    .iter()
                    .zip(&class_counts)
                    .map(|(e, n)| format!("{}:{n}", e.class_label()))
                    .collect::<Vec<_>>()
                    .join("+");
                let cell = ServingCell {
                    platform: self.platforms[p].0.clone(),
                    policy: self.policies[pol],
                    cluster: self.clusters[cl],
                    traffic: traffic.label.clone(),
                    precision: match spec {
                        // An adaptive cell's precision is rung 0's policy;
                        // the per-rung reality lives in the control column
                        // and the time-in-policy / degraded-share metrics.
                        Some(s) => s.ladder.rungs()[0].to_string(),
                        None => precision.clone(),
                    },
                    control: controls[co].to_string(),
                    offered_rps: traffic.offered_rps().unwrap_or(0.0),
                    seq: seq.clone(),
                    classes,
                    metrics,
                };
                let events = cell_sink.map(|s| s.take()).unwrap_or_default();
                (cell, events)
            })
            .collect();
        // Forward the buffered traces in cell order: each cell's tracks
        // move to a disjoint pid range and its track names gain the cell
        // index, so one Perfetto view holds the whole grid.
        let forward = self.trace.as_deref().filter(|t| t.enabled());
        let mut cells = Vec::with_capacity(cells_with_events.len());
        for (i, (cell, events)) in cells_with_events.into_iter().enumerate() {
            if let Some(sink) = forward {
                const CELL_PID_STRIDE: u32 = 256;
                let base = u32::try_from(i).expect("cell count fits u32") * CELL_PID_STRIDE;
                for mut e in events {
                    e.pid += base;
                    if e.ph == Phase::Meta && e.name == "process_name" {
                        for (key, value) in &mut e.args {
                            if key == "name" {
                                if let ArgValue::Str(s) = value {
                                    *s = format!("cell{i} {s}");
                                }
                            }
                        }
                    }
                    sink.record(e);
                }
            }
            cells.push(cell);
        }
        if let Some(reg) = &self.metrics {
            cost.record_metrics(reg);
            reg.counter_add("serve.cells", cells.len() as u64);
            for cell in &cells {
                reg.counter_add("serve.requests_completed", cell.metrics.completed);
                reg.counter_add("serve.policy_switches", cell.metrics.policy_switches);
                reg.counter_add("serve.scale_events", cell.metrics.scale_events);
                reg.observe("serve.cell_makespan_s", cell.metrics.makespan_s);
            }
        }
        Ok(ServingReport {
            scenario: self.name.clone(),
            sla_s: self.sla_s,
            cells,
        })
    }
}

/// The precision column of a non-swept cell: the distinct policies of the
/// traffic's mix, `+`-joined in first-appearance order.
fn mix_precision_label(t: &TrafficSpec) -> String {
    let mut seen: Vec<String> = Vec::new();
    for entry in &t.mix.entries {
        let s = entry.workload.policy.to_string();
        if !seen.contains(&s) {
            seen.push(s);
        }
    }
    seen.join("+")
}

/// Derives the per-traffic arrival seed (SplitMix64 over seed ⊕ index), so
/// every cell sharing a traffic spec replays the same arrival sequence.
fn mix_seed(seed: u64, traffic_idx: u64) -> u64 {
    let mut z = seed ^ (traffic_idx.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One cell of a serving report: which configuration, and what it measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingCell {
    /// Platform label.
    pub platform: String,
    /// The batching policy.
    pub policy: BatchPolicy,
    /// The cluster configuration.
    pub cluster: ClusterSpec,
    /// The traffic spec's label.
    pub traffic: String,
    /// The precision the cell's request mix ran at: the sweep policy's
    /// display form, or the mix's own (`+`-joined) policies without a
    /// sweep. Adaptive cells report their ladder's rung 0 (the precision
    /// the run *starts* at); see the `control` column for the ladder.
    pub precision: String,
    /// The cell's control policy: `static`, or the adaptive ladder (and
    /// autoscaler bounds) in display form.
    pub control: String,
    /// Long-run offered rate (0 for closed-loop traffic, which adapts).
    pub offered_rps: f64,
    /// The sequence-axis value the cell ran at (`-` when the cell was not
    /// produced by a sequence sweep): prefill/recurrent classes read it as
    /// token count, decode classes as KV-cache length.
    pub seq: String,
    /// The mix's service classes with their post-warmup completion counts,
    /// `+`-joined in class order (e.g. `prefill128:412+decode128:388`) —
    /// the per-cell view of the prefill/decode split.
    pub classes: String,
    /// Everything measured.
    pub metrics: ServingMetrics,
}

/// The outcome of a [`ServingScenario`] run. Serializes to JSON and renders
/// CSV rows, one per cell, like [`bpvec_sim::Report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// The scenario's name.
    pub scenario: String,
    /// The SLA the goodput column is measured against, if any.
    pub sla_s: Option<f64>,
    /// Cells in platform-major, then policy, cluster, traffic order.
    pub cells: Vec<ServingCell>,
}

impl ServingReport {
    /// Looks up one cell by its display coordinates (`policy` and `cluster`
    /// in their `Display` forms, e.g. `"deadline(16,500us)"`, `"jsqx4"`).
    #[must_use]
    pub fn cell(
        &self,
        platform: &str,
        policy: &str,
        cluster: &str,
        traffic: &str,
    ) -> Option<&ServingCell> {
        self.cells.iter().find(|c| {
            c.platform == platform
                && c.policy.to_string() == policy
                && c.cluster.to_string() == cluster
                && c.traffic == traffic
        })
    }

    /// Renders every cell as a CSV row for downstream analysis. The
    /// `precision` column carries the cell's precision policy and the
    /// `control` column its control policy, so precision sweeps and
    /// adaptive-vs-static comparisons plot directly; the trailing `seq` and
    /// `classes` columns carry the sequence-axis value and the per-class
    /// (e.g. prefill/decode) completion split.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "platform,policy,cluster,traffic,precision,control,offered_rps,throughput_rps,\
             goodput_rps,p50_ms,p95_ms,p99_ms,mean_ms,max_ms,mean_queue_depth,utilization,\
             mean_batch,energy_mj_per_req,sla_attainment,full_precision_share,policy_switches,\
             mean_replicas,seq,classes\n",
        );
        for c in &self.cells {
            let m = &c.metrics;
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3},{:.4},{:.3},{:.5},{:.4},{:.4},{},{:.3},{},{}\n",
                c.platform,
                c.policy,
                c.cluster,
                c.traffic,
                c.precision,
                c.control,
                c.offered_rps,
                m.throughput_rps,
                m.goodput_rps,
                m.latency.p50_s * 1e3,
                m.latency.p95_s * 1e3,
                m.latency.p99_s * 1e3,
                m.latency.mean_s * 1e3,
                m.latency.max_s * 1e3,
                m.mean_queue_depth,
                m.utilization,
                m.mean_batch,
                m.energy_per_request_j * 1e3,
                m.sla_attainment,
                m.full_precision_share,
                m.policy_switches,
                m.mean_active_replicas,
                c.seq,
                c.classes,
            ));
        }
        out
    }

    /// Renders the report as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for plain data).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serving report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::RequestMix;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};
    use bpvec_sim::{AcceleratorConfig, Workload};

    fn quick_traffic(label: &str, rate: f64) -> TrafficSpec {
        TrafficSpec::new(
            label,
            ArrivalProcess::poisson(rate),
            RequestMix::single(Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8)),
            120,
        )
    }

    fn small_scenario() -> ServingScenario {
        ServingScenario::new("unit")
            .platform(AcceleratorConfig::bpvec())
            .policy(BatchPolicy::immediate())
            .policy(BatchPolicy::deadline(4, 0.001))
            .cluster(ClusterSpec::single())
            .traffic(quick_traffic("steady", 50.0))
    }

    #[test]
    fn cross_product_covers_every_cell() {
        let report = small_scenario()
            .cluster(ClusterSpec::new(2, crate::Router::JoinShortestQueue))
            .traffic(quick_traffic("fast", 200.0))
            .run();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert!(report
            .cell("BPVeC", "immediate", "rrx1", "steady")
            .is_some());
        assert!(report
            .cell("BPVeC", "deadline(4,1000us)", "jsqx2", "fast")
            .is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let s = small_scenario();
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn empty_axis_is_rejected() {
        let err = ServingScenario::new("empty")
            .platform(AcceleratorConfig::bpvec())
            .policy(BatchPolicy::immediate())
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("at least one entry"));
    }

    #[test]
    fn duplicate_platform_labels_are_rejected() {
        let err = ServingScenario::new("dup")
            .platform(AcceleratorConfig::bpvec())
            .platform(AcceleratorConfig::bpvec())
            .policy(BatchPolicy::immediate())
            .cluster(ClusterSpec::single())
            .traffic(quick_traffic("t", 10.0))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate platform label"));
    }

    #[test]
    fn malformed_axes_are_rejected() {
        let base = || {
            ServingScenario::new("bad")
                .platform(AcceleratorConfig::bpvec())
                .cluster(ClusterSpec::single())
                .traffic(quick_traffic("t", 10.0))
        };
        let err = base().policy(BatchPolicy::fixed(0)).try_run().unwrap_err();
        assert!(err.to_string().contains("at least 1"));
        let err = base()
            .policy(BatchPolicy::immediate())
            .traffic(quick_traffic("zero-rate", 0.0))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("rate must be positive"));
        let err = base()
            .policy(BatchPolicy::immediate())
            .traffic(quick_traffic("w", 10.0).with_warmup(120))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("warmup"));
        let err = base()
            .policy(BatchPolicy::immediate())
            .sla_s(0.0)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("SLA"));
    }

    #[test]
    fn csv_lists_every_cell_and_json_round_trips() {
        let report = small_scenario().sla_s(0.050).run();
        let csv = report.to_csv();
        assert_eq!(csv.trim().lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("platform,policy,cluster,traffic"));
        assert!(csv.contains("BPVeC,immediate,rrx1,steady"));
        let back: ServingReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn precision_axis_expands_traffics_with_paired_arrivals() {
        let report = ServingScenario::new("precision")
            .platform(AcceleratorConfig::bpvec())
            .policy(BatchPolicy::immediate())
            .cluster(ClusterSpec::single())
            .traffic(quick_traffic("steady", 50.0))
            .precisions(PrecisionPolicy::paper_sweep())
            .run();
        assert_eq!(report.cells.len(), 4);
        let precisions: Vec<&str> = report.cells.iter().map(|c| c.precision.as_str()).collect();
        assert_eq!(
            precisions,
            vec!["uniform8", "uniform6", "uniform4", "uniform2"]
        );
        // Same base traffic index ⇒ same arrival sequence across the sweep.
        let completed: Vec<u64> = report.cells.iter().map(|c| c.metrics.completed).collect();
        assert!(completed.iter().all(|&c| c == completed[0]));
        // Narrower precision means faster service, so mean latency is
        // monotone non-increasing down the sweep on a composable backend.
        let means: Vec<f64> = report
            .cells
            .iter()
            .map(|c| c.metrics.latency.mean_s)
            .collect();
        for pair in means.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0000001, "{means:?}");
        }
        // The CSV carries the precision column.
        let csv = report.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .contains("traffic,precision,control,offered_rps"));
        assert!(csv.contains("steady,uniform2,"), "{csv}");
    }

    #[test]
    fn prefill_decode_classes_sweep_the_sequence_axis() {
        use crate::arrivals::RequestMix;
        let bert = Workload::new(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
        let build = || {
            ServingScenario::new("transformer")
                .platform(AcceleratorConfig::bpvec())
                .policy(BatchPolicy::immediate())
                .cluster(ClusterSpec::single())
                .traffic(TrafficSpec::new(
                    "chat",
                    ArrivalProcess::poisson(20.0),
                    RequestMix::prefill_decode(bert.clone(), 128, 1.0, 1.0),
                    80,
                ))
                .traffic(TrafficSpec::new(
                    "decode-only",
                    ArrivalProcess::poisson(20.0),
                    RequestMix::single(bert.clone().with_decode_kv(128)),
                    80,
                ))
                .traffic(TrafficSpec::new(
                    "cnn",
                    ArrivalProcess::poisson(20.0),
                    RequestMix::single(Workload::new(
                        NetworkId::AlexNet,
                        BitwidthPolicy::Homogeneous8,
                    )),
                    80,
                ))
                .seq_lens([64, 256])
        };
        let report = build().run();
        // Sequence-shaped traffics expand per length; the CNN traffic
        // stays a single cell with a `-` sequence value.
        assert_eq!(report.cells.len(), 2 + 2 + 1);
        let cell = |traffic: &str, seq: &str| {
            report
                .cells
                .iter()
                .find(|c| c.traffic == traffic && c.seq == seq)
                .unwrap_or_else(|| panic!("no cell {traffic}/{seq}"))
        };
        // Prefill and decode ride as distinct classes with visible counts.
        let chat = cell("chat", "64");
        assert!(chat.classes.contains("prefill64:"), "{}", chat.classes);
        assert!(chat.classes.contains("+decode64:"), "{}", chat.classes);
        let counted: u64 = chat
            .classes
            .split('+')
            .map(|c| c.split(':').nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(counted, 80, "every admitted request lands in a class");
        assert_eq!(cell("cnn", "-").classes, "AlexNet:80");
        // Decode service cost grows with the KV-cache length, and arrivals
        // stay paired along the axis, so so does the mean sojourn.
        let d64 = cell("decode-only", "64").metrics.latency.mean_s;
        let d256 = cell("decode-only", "256").metrics.latency.mean_s;
        assert!(d256 > d64, "decode kv 256 {d256} vs kv 64 {d64}");
        assert!(
            cell("chat", "256").metrics.latency.mean_s > chat.metrics.latency.mean_s,
            "longer prefill+decode sequences cost more"
        );
        // The CSV carries the trailing seq/classes columns byte-for-byte
        // deterministically.
        let csv = report.to_csv();
        assert_eq!(csv, build().run().to_csv());
        assert!(csv.contains(",256,prefill256:"), "{csv}");
        assert!(csv.contains(",decode256:"), "{csv}");
        assert!(csv.contains(",-,AlexNet:80"), "{csv}");
    }

    #[test]
    fn duplicate_sequence_lengths_are_rejected() {
        let err = small_scenario().seq_lens([128, 128]).try_run().unwrap_err();
        assert!(err.to_string().contains("duplicate sequence"), "{err}");
        let err = small_scenario().seq_len(0).try_run().unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn duplicate_precisions_in_the_axis_are_rejected() {
        let int4: PrecisionPolicy = "int4".parse().expect("parses");
        let err = small_scenario()
            .precision(int4.clone())
            .precision(int4)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate precision"), "{err}");
    }

    #[test]
    fn without_a_sweep_the_precision_column_names_the_mix_policies() {
        let report = small_scenario().run();
        assert!(report.cells.iter().all(|c| c.precision == "Homogeneous8"));
    }

    #[test]
    fn control_axis_expands_cells_and_reports_control_column() {
        use crate::controller::ControllerConfig;
        use bpvec_dnn::DegradationLadder;
        let spec = AdaptiveSpec::new(DegradationLadder::paper())
            .with_controller(ControllerConfig::new(0.005).with_depths(1, 6));
        let report = ServingScenario::new("control")
            .platform(AcceleratorConfig::bpvec())
            .policy(BatchPolicy::immediate())
            .cluster(ClusterSpec::single())
            .traffic(quick_traffic("steady", 50.0))
            .static_control()
            .control(spec)
            .run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].control, "static");
        assert_eq!(
            report.cells[1].control,
            "adaptive(Heterogeneous>uniform4>uniform2)"
        );
        // Adaptive cells report their rung-0 precision.
        assert_eq!(report.cells[1].precision, "Heterogeneous");
        // Arrivals stay paired across the control axis.
        assert_eq!(
            report.cells[0].metrics.completed,
            report.cells[1].metrics.completed
        );
        let header = report.to_csv().lines().next().unwrap().to_string();
        assert!(header.contains("precision,control,offered_rps"), "{header}");
        assert!(
            header.ends_with("full_precision_share,policy_switches,mean_replicas,seq,classes"),
            "{header}"
        );
    }

    #[test]
    fn adaptive_scenarios_are_deterministic() {
        use bpvec_dnn::DegradationLadder;
        let build = || {
            ServingScenario::new("det")
                .platform(AcceleratorConfig::bpvec())
                .policy(BatchPolicy::deadline(4, 0.002))
                .cluster(ClusterSpec::new(2, crate::Router::LeastDegraded))
                .traffic(quick_traffic("steady", 120.0))
                .adaptive(DegradationLadder::paper())
                .sla_s(0.050)
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn malformed_controls_are_rejected() {
        use crate::controller::{AutoscalerConfig, ControllerConfig};
        use bpvec_dnn::DegradationLadder;
        let base = || small_scenario();
        // Duplicate control entries.
        let err = base()
            .static_control()
            .static_control()
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate control"), "{err}");
        // Inverted hysteresis watermarks.
        let bad = AdaptiveSpec::new(DegradationLadder::paper())
            .with_controller(ControllerConfig::new(0.01).with_depths(8, 8));
        let err = base().control(bad).try_run().unwrap_err();
        assert!(err.to_string().contains("low_depth < high_depth"), "{err}");
        // Cluster outside the autoscaler bounds.
        let scaled = AdaptiveSpec::new(DegradationLadder::paper())
            .with_autoscaler(AutoscalerConfig::new(2, 4));
        let err = base().control(scaled).try_run().unwrap_err();
        assert!(err.to_string().contains("outside the autoscaler"), "{err}");
        // Precision sweep × adaptive control.
        let int4: PrecisionPolicy = "int4".parse().expect("parses");
        let err = base()
            .precision(int4.clone())
            .adaptive(DegradationLadder::paper())
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("cannot be combined"), "{err}");
        // A ladder rung that does not apply to the mix's network.
        let lp = match &int4 {
            PrecisionPolicy::Uniform(lp) => *lp,
            _ => unreachable!("int4 parses to a uniform policy"),
        };
        let bad_rung = bpvec_dnn::PrecisionPolicy::degradation_ladder([
            PrecisionPolicy::per_layer(vec![lp; 100]),
        ])
        .expect("valid ladder shape");
        let err = base()
            .control(AdaptiveSpec::new(bad_rung))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("ladder rung 0"), "{err}");
    }

    #[test]
    fn paired_arrivals_across_policies() {
        // Same traffic index ⇒ same arrival sequence: with a capacity-rich
        // immediate policy both cells must serve the same request count at
        // the same offered rate.
        let report = small_scenario().run();
        let a = report.cell("BPVeC", "immediate", "rrx1", "steady").unwrap();
        let b = report
            .cell("BPVeC", "deadline(4,1000us)", "rrx1", "steady")
            .unwrap();
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.offered_rps, b.offered_rps);
    }
}
