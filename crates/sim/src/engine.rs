//! Per-layer and network-level performance/energy simulation.
//!
//! The methodology mirrors the (modified) BitFusion simulator the paper
//! uses: for every layer, compute time follows from the design's effective
//! MAC throughput at the layer's bitwidths, memory time from the tiled DRAM
//! traffic at the memory's sustained bandwidth; double buffering overlaps
//! the two, so the layer takes the maximum. Energy sums the on-chip power
//! (MAC-array budget plus the CACTI-style scratchpad/NoC power) over the
//! layer latency and the DRAM access energy of the traffic.

use bpvec_dnn::{Network, NetworkId};
use serde::{Deserialize, Serialize};

use crate::accel::AcceleratorConfig;
use crate::cost;
use crate::memory::DramSpec;
use crate::workload::BatchRegime;

/// Whether a layer's time is dominated by compute or by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundedness {
    /// Compute time exceeds memory time.
    Compute,
    /// Memory time exceeds compute time.
    Memory,
}

/// Simulation parameters: the platform and the batching regime.
///
/// The batching knobs live in a [`BatchRegime`] (shared with
/// [`crate::Workload`]); the default is the evaluation's serving regime
/// (CNNs at 16, recurrent models at 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The accelerator platform.
    pub accel: AcceleratorConfig,
    /// The off-chip memory system.
    pub dram: DramSpec,
    /// How inference requests are batched.
    pub batching: BatchRegime,
}

impl SimConfig {
    /// Creates a configuration with the evaluation's default batching
    /// (CNNs at 16, recurrent models at 12).
    #[must_use]
    pub fn new(accel: AcceleratorConfig, dram: DramSpec) -> Self {
        SimConfig {
            accel,
            dram,
            batching: BatchRegime::paper_default(),
        }
    }
}

/// Simulation outcome for one layer (whole-batch quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// MACs executed (batch total).
    pub macs: u64,
    /// Compute time, seconds.
    pub compute_s: f64,
    /// DRAM traffic, bytes.
    pub traffic_bytes: u64,
    /// Memory time, seconds.
    pub memory_s: f64,
    /// Layer latency after overlap: `max(compute, memory)`.
    pub latency_s: f64,
    /// Which side bounds the layer.
    pub bound: Boundedness,
    /// Core energy over the layer's latency, joules.
    pub core_energy_j: f64,
    /// DRAM access energy, joules.
    pub dram_energy_j: f64,
}

/// Simulation outcome for a whole network, normalized per inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkResult {
    /// The simulated network.
    pub network: NetworkId,
    /// Batch size the run used.
    pub batch: u64,
    /// Per-layer results (batch totals).
    pub layers: Vec<LayerResult>,
    /// Latency per inference, seconds.
    pub latency_s: f64,
    /// Energy per inference, joules.
    pub energy_j: f64,
    /// MACs per inference.
    pub macs: u64,
}

impl NetworkResult {
    /// Operations (2 × MACs) per second, in Giga-ops.
    #[must_use]
    pub fn gops(&self) -> f64 {
        2.0 * self.macs as f64 / self.latency_s / 1e9
    }

    /// Performance-per-Watt in GOPS/W (ops per joule / 1e9).
    #[must_use]
    pub fn gops_per_watt(&self) -> f64 {
        2.0 * self.macs as f64 / self.energy_j / 1e9
    }

    /// Fraction of layers (weighted by latency) that are memory-bound.
    #[must_use]
    pub fn memory_bound_fraction(&self) -> f64 {
        let total: f64 = self.layers.iter().map(|l| l.latency_s).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.layers
            .iter()
            .filter(|l| l.bound == Boundedness::Memory)
            .map(|l| l.latency_s)
            .sum::<f64>()
            / total
    }
}

/// Simulates a network on a platform; see the module docs for the model.
///
/// The per-layer arithmetic lives in [`crate::cost::layer_cost`] — this
/// function is its uncached aggregation. Evaluating many cells (grids,
/// serving cost tables, precision sweeps)? Share a
/// [`CostModel`](crate::cost::CostModel) and call
/// [`CostModel::simulate`](crate::cost::CostModel::simulate), which returns
/// bit-identical results from the memo.
#[must_use]
pub fn simulate(network: &Network, config: &SimConfig) -> NetworkResult {
    let b = config.batching.batch_for(network.id);
    let mut layers = Vec::with_capacity(network.layers.len());
    let mut latency = 0.0f64;
    let mut energy = 0.0f64;
    for layer in &network.layers {
        let c = cost::layer_cost(layer, &config.accel, &config.dram, b);
        latency += c.latency_s;
        energy += c.core_energy_j + c.dram_energy_j;
        layers.push(LayerResult {
            name: layer.name.clone(),
            macs: c.macs,
            compute_s: c.compute_s,
            traffic_bytes: c.traffic_bytes,
            memory_s: c.memory_s,
            latency_s: c.latency_s,
            bound: c.bound,
            core_energy_j: c.core_energy_j,
            dram_energy_j: c.dram_energy_j,
        });
    }
    NetworkResult {
        network: network.id,
        batch: b,
        layers,
        latency_s: latency / b as f64,
        energy_j: energy / b as f64,
        macs: network.total_macs(),
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of no values");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};

    fn cfg(accel: AcceleratorConfig, dram: DramSpec) -> SimConfig {
        SimConfig::new(accel, dram)
    }

    fn hom(id: NetworkId) -> Network {
        Network::build(id, BitwidthPolicy::Homogeneous8)
    }

    #[test]
    fn latency_is_sum_of_layer_maxima() {
        let n = hom(NetworkId::AlexNet);
        let r = simulate(&n, &cfg(AcceleratorConfig::tpu_like(), DramSpec::ddr4()));
        let sum: f64 = r.layers.iter().map(|l| l.latency_s).sum();
        assert!((r.latency_s * r.batch as f64 - sum).abs() < 1e-12);
        for l in &r.layers {
            assert!((l.latency_s - l.compute_s.max(l.memory_s)).abs() < 1e-15);
        }
    }

    #[test]
    fn recurrent_models_are_memory_bound_on_ddr4() {
        for id in [NetworkId::Rnn, NetworkId::Lstm] {
            let n = hom(id);
            let r = simulate(&n, &cfg(AcceleratorConfig::bpvec(), DramSpec::ddr4()));
            assert!(
                r.memory_bound_fraction() > 0.9,
                "{id}: {}",
                r.memory_bound_fraction()
            );
        }
    }

    #[test]
    fn resnet50_is_mostly_compute_bound_on_ddr4_baseline() {
        let n = hom(NetworkId::ResNet50);
        let r = simulate(&n, &cfg(AcceleratorConfig::tpu_like(), DramSpec::ddr4()));
        assert!(
            r.memory_bound_fraction() < 0.35,
            "{}",
            r.memory_bound_fraction()
        );
    }

    #[test]
    fn hbm2_never_slows_anything_down() {
        for id in NetworkId::ALL {
            let n = hom(id);
            for accel in [AcceleratorConfig::tpu_like(), AcceleratorConfig::bpvec()] {
                let ddr = simulate(&n, &cfg(accel, DramSpec::ddr4()));
                let hbm = simulate(&n, &cfg(accel, DramSpec::hbm2()));
                assert!(hbm.latency_s <= ddr.latency_s * 1.0000001, "{id}");
                assert!(hbm.energy_j <= ddr.energy_j * 1.0000001, "{id}");
            }
        }
    }

    #[test]
    fn bpvec_is_never_slower_than_the_baseline() {
        for id in NetworkId::ALL {
            let n = hom(id);
            for dram in [DramSpec::ddr4(), DramSpec::hbm2()] {
                let base = simulate(&n, &cfg(AcceleratorConfig::tpu_like(), dram));
                let bp = simulate(&n, &cfg(AcceleratorConfig::bpvec(), dram));
                assert!(bp.latency_s <= base.latency_s * 1.0000001, "{id}");
            }
        }
    }

    #[test]
    fn heterogeneous_bitwidths_speed_up_composable_designs_only() {
        let hom_net = hom(NetworkId::ResNet50);
        let het_net = Network::build(NetworkId::ResNet50, BitwidthPolicy::Heterogeneous);
        let dram = DramSpec::hbm2();
        let base_hom = simulate(&hom_net, &cfg(AcceleratorConfig::tpu_like(), dram));
        let base_het = simulate(&het_net, &cfg(AcceleratorConfig::tpu_like(), dram));
        // The TPU-like design only gains the traffic reduction.
        let tpu_gain = base_hom.latency_s / base_het.latency_s;
        let bp_hom = simulate(&hom_net, &cfg(AcceleratorConfig::bpvec(), dram));
        let bp_het = simulate(&het_net, &cfg(AcceleratorConfig::bpvec(), dram));
        let bp_gain = bp_hom.latency_s / bp_het.latency_s;
        assert!(
            bp_gain > tpu_gain * 1.5,
            "BPVeC gain {bp_gain} vs TPU gain {tpu_gain}"
        );
    }

    #[test]
    fn energy_components_are_positive_and_sum() {
        let n = hom(NetworkId::ResNet18);
        let r = simulate(&n, &cfg(AcceleratorConfig::bpvec(), DramSpec::ddr4()));
        let sum: f64 = r
            .layers
            .iter()
            .map(|l| l.core_energy_j + l.dram_energy_j)
            .sum();
        assert!((r.energy_j * r.batch as f64 - sum).abs() < 1e-12);
        assert!(r.energy_j > 0.0);
        assert!(r.gops_per_watt() > 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean of no values")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }
}
