//! Workload declarations: *what* gets evaluated, independent of *where*.
//!
//! A [`Workload`] bundles a Table I network, its per-layer precision policy
//! and the batching regime it is served under. Platforms
//! ([`crate::scenario::Evaluator`] implementations) receive workloads and
//! report measurements; the batching knobs that used to live on
//! [`crate::SimConfig`] as loose `batch_cnn` / `batch_recurrent` fields now
//! travel with the workload as a [`BatchRegime`], and precision travels as a
//! [`PrecisionPolicy`] (the paper's presets, uniform `(bx, bw)` policies, or
//! explicit per-layer assignments).

use bpvec_dnn::{Network, NetworkId, PrecisionError, PrecisionPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How inference requests are batched for a workload.
///
/// Batch sizes follow inference-serving practice (and the throughput regime
/// the paper's GPU comparison implies): small batches for the CNNs, larger
/// for the recurrent models whose GEMV streams are otherwise hopelessly
/// bandwidth-bound on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchRegime {
    /// Per-class serving batches: CNNs at `cnn`, RNN/LSTM at `recurrent`.
    Serving {
        /// Batch size for the CNN workloads.
        cnn: u64,
        /// Batch size for the RNN/LSTM workloads.
        recurrent: u64,
    },
    /// One batch size for every network class.
    Fixed(u64),
}

impl BatchRegime {
    /// The evaluation's default batching (CNNs at 16, recurrent at 12).
    #[must_use]
    pub fn paper_default() -> Self {
        BatchRegime::Serving {
            cnn: 16,
            recurrent: 12,
        }
    }

    /// Per-class serving batches.
    #[must_use]
    pub fn serving(cnn: u64, recurrent: u64) -> Self {
        BatchRegime::Serving { cnn, recurrent }
    }

    /// The same batch for every network.
    #[must_use]
    pub fn fixed(batch: u64) -> Self {
        BatchRegime::Fixed(batch)
    }

    /// The batch size this regime assigns to `id`.
    #[must_use]
    pub fn batch_for(&self, id: NetworkId) -> u64 {
        match *self {
            BatchRegime::Serving { cnn, recurrent } => {
                if id.is_recurrent() {
                    recurrent
                } else {
                    cnn
                }
            }
            BatchRegime::Fixed(batch) => batch,
        }
    }
}

impl Default for BatchRegime {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One unit of evaluated work: a network, its precision policy, and the
/// batching regime it is served under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The Table I network.
    pub network: NetworkId,
    /// Per-layer operand bitwidths: a preset ([`bpvec_dnn::BitwidthPolicy`]
    /// converts directly), a uniform pair, or an explicit per-layer list.
    pub policy: PrecisionPolicy,
    /// The batching regime.
    pub batching: BatchRegime,
    /// Sequence-length override for networks with a sequence dimension
    /// (transformers: token count; RNN/LSTM: timesteps). `None` keeps each
    /// model's default. Ignored by CNNs.
    pub seq_len: Option<usize>,
    /// When set, transformer networks build in *decode* shape: one query
    /// token attending over a KV cache of this length. `None` means prefill
    /// (self-attention over `seq_len` tokens).
    pub decode_kv: Option<usize>,
}

impl Workload {
    /// A workload under the default serving batches. Accepts a preset
    /// (`BitwidthPolicy::Homogeneous8`) or any [`PrecisionPolicy`].
    #[must_use]
    pub fn new(network: NetworkId, policy: impl Into<PrecisionPolicy>) -> Self {
        Workload {
            network,
            policy: policy.into(),
            batching: BatchRegime::paper_default(),
            seq_len: None,
            decode_kv: None,
        }
    }

    /// Overrides the sequence length (builder style). Transformers read it
    /// as token count, RNN/LSTM as timesteps; CNNs ignore it.
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = Some(seq_len);
        self
    }

    /// Switches a transformer workload to decode shape: one query token
    /// over a KV cache of `kv_len` entries (builder style).
    #[must_use]
    pub fn with_decode_kv(mut self, kv_len: usize) -> Self {
        self.decode_kv = Some(kv_len);
        self
    }

    /// Replaces the batching regime (builder style).
    #[must_use]
    pub fn with_batching(mut self, batching: BatchRegime) -> Self {
        self.batching = batching;
        self
    }

    /// Replaces the precision policy (builder style) — how precision sweeps
    /// derive their workloads.
    #[must_use]
    pub fn with_policy(mut self, policy: impl Into<PrecisionPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// All six Table I networks under one policy, in Table I order — the
    /// row set of every Figure 5–9 comparison.
    #[must_use]
    pub fn table1(policy: impl Into<PrecisionPolicy>) -> Vec<Workload> {
        let policy = policy.into();
        NetworkId::ALL
            .iter()
            .map(|&id| Workload::new(id, policy.clone()))
            .collect()
    }

    /// The batch size this workload runs at.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batching.batch_for(self.network)
    }

    /// Instantiates the network (layer shapes + bitwidths).
    ///
    /// # Panics
    ///
    /// Panics if a per-layer policy does not match the network's layer
    /// count; [`Workload::try_build`] is the fallible form (scenario runners
    /// use it and surface the error).
    #[must_use]
    pub fn build(&self) -> Network {
        match self.try_build() {
            Ok(net) => net,
            Err(e) => panic!("workload `{self}`: {e}"),
        }
    }

    /// Instantiates the network, surfacing precision-validation errors.
    ///
    /// # Errors
    ///
    /// Fails with [`PrecisionError::LayerCountMismatch`] when a per-layer
    /// policy's width list does not match the network's layer count.
    pub fn try_build(&self) -> Result<Network, PrecisionError> {
        Network::build_shaped(self.network, &self.policy, self.seq_len, self.decode_kv)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, batch {}",
            self.network.name(),
            self.policy,
            self.batch()
        )?;
        if let Some(kv) = self.decode_kv {
            write!(f, ", decode kv {kv}")?;
        } else if let Some(s) = self.seq_len {
            write!(f, ", seq {s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_core::BitWidth;
    use bpvec_dnn::BitwidthPolicy;

    #[test]
    fn default_regime_matches_the_seed_simconfig() {
        let r = BatchRegime::paper_default();
        assert_eq!(r.batch_for(NetworkId::AlexNet), 16);
        assert_eq!(r.batch_for(NetworkId::ResNet50), 16);
        assert_eq!(r.batch_for(NetworkId::Rnn), 12);
        assert_eq!(r.batch_for(NetworkId::Lstm), 12);
    }

    #[test]
    fn fixed_regime_ignores_network_class() {
        let r = BatchRegime::fixed(7);
        for id in NetworkId::ALL {
            assert_eq!(r.batch_for(id), 7);
        }
    }

    #[test]
    fn table1_covers_all_networks_in_order() {
        let ws = Workload::table1(BitwidthPolicy::Homogeneous8);
        assert_eq!(ws.len(), 6);
        for (w, id) in ws.iter().zip(NetworkId::ALL) {
            assert_eq!(w.network, id);
            assert_eq!(w.policy, BitwidthPolicy::Homogeneous8);
        }
    }

    #[test]
    fn build_instantiates_the_right_network() {
        let w = Workload::new(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
        let net = w.build();
        assert_eq!(net.id, NetworkId::ResNet18);
        assert!(!net.layers.is_empty());
    }

    #[test]
    fn with_policy_rewrites_precision_for_sweeps() {
        let base = Workload::new(NetworkId::ResNet18, BitwidthPolicy::Homogeneous8)
            .with_batching(BatchRegime::fixed(4));
        let narrow = base
            .clone()
            .with_policy(PrecisionPolicy::uniform(BitWidth::INT2));
        assert_eq!(narrow.batching, BatchRegime::fixed(4), "batching survives");
        let net = narrow.build();
        assert!(net.layers.iter().all(|l| l.weight_bits == BitWidth::INT2));
    }

    #[test]
    fn sequence_axis_reshapes_transformers_and_shows_in_display() {
        let prefill = Workload::new(NetworkId::BertBase, BitwidthPolicy::Homogeneous8)
            .with_seq_len(256)
            .with_batching(BatchRegime::fixed(1));
        let decode = prefill.clone().with_decode_kv(256);
        let p = prefill.build();
        let d = decode.build();
        assert!(p.total_macs() > 16 * d.total_macs());
        assert!(prefill.to_string().contains("seq 256"));
        assert!(decode.to_string().contains("decode kv 256"));
        // CNN workloads are unaffected by the axis.
        let cnn = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        assert_eq!(
            cnn.clone().with_seq_len(999).build().total_macs(),
            cnn.build().total_macs()
        );
    }

    #[test]
    fn invalid_per_layer_policy_surfaces_through_try_build() {
        let w = Workload::new(
            NetworkId::AlexNet,
            PrecisionPolicy::per_layer(vec![bpvec_dnn::LayerPrecision::uniform(BitWidth::INT4); 2]),
        );
        assert!(w.try_build().is_err());
    }
}
