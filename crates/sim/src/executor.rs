//! Bit-true execution of whole networks — up to full Table I models — on
//! the systolic CVU array.
//!
//! The analytical engine ([`crate::engine`]) answers "how fast / how much
//! energy"; this module answers "is the arithmetic actually right" for a
//! complete multi-layer pipeline: every convolution, dense and recurrent
//! layer is lowered to GEMMs on the [`crate::systolic::SystolicArray`]
//! (im2col for convolutions), with fixed-point requantization and ReLU
//! between layers — exactly the integer pipeline a deployed quantized model
//! runs — and validated against `bpvec-dnn`'s reference operators.
//!
//! Execution runs on the packed bit-plane path
//! ([`SystolicArray::gemm_packed`]): each layer's weights and im2col
//! patches are decomposed once into [`bpvec_core::PackedSliceMatrix`]
//! planes at that layer's own `(activation, weight)` bitwidths — so
//! mixed-precision networks execute without repacking to a uniform width —
//! and every output tile (and, for recurrent layers, every timestep)
//! reuses the packed operands through the word-level slice kernels. This
//! is what makes complete Table I networks (e.g. AlexNet at 224×224)
//! executable bit-true in seconds; the integration tests in
//! `tests/bit_true_table1.rs` do exactly that against the reference
//! pipeline.

use bpvec_core::{kernels, BitWidth, CoreError, PackedSliceMatrix, Signedness, SliceWidth};
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::packing::{pack_gemm_cols, pack_gemm_rows};
use bpvec_dnn::reference;
use bpvec_dnn::Tensor;

use crate::systolic::{packed_tile_geometry, SystolicArray};

/// Deterministic synthetic quantized weights for a layer stack.
///
/// Values are derived from `seed` with a splitmix-style hash and fit each
/// layer's declared signed weight range, so any two runs (and the reference
/// pipeline) see identical parameters.
#[derive(Debug, Clone)]
pub struct WeightStore {
    weights: Vec<Tensor>,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl WeightStore {
    /// Synthesizes weights for every compute layer of `layers`.
    #[must_use]
    pub fn synthesize(layers: &[Layer], seed: u64) -> Self {
        let mut weights = Vec::new();
        for (li, layer) in layers.iter().enumerate() {
            let (lo, hi) = layer.weight_bits.range(Signedness::Signed);
            let span = (hi - lo + 1) as u64;
            let shape: Vec<usize> = match layer.kind {
                LayerKind::Conv2d {
                    in_channels,
                    out_channels,
                    kernel,
                    ..
                } => vec![out_channels, in_channels, kernel.0, kernel.1],
                LayerKind::FullyConnected {
                    in_features,
                    out_features,
                } => vec![out_features, in_features],
                LayerKind::Recurrent {
                    input_size,
                    hidden_size,
                    gates,
                    ..
                } => vec![gates * hidden_size, input_size + hidden_size],
                // Pooling and the attention-era ops have no stored
                // parameters: attention GEMMs multiply two activation
                // operands, normalization/activation ops just move bytes.
                LayerKind::Pool { .. }
                | LayerKind::MatMulQK { .. }
                | LayerKind::Softmax { .. }
                | LayerKind::AttentionV { .. }
                | LayerKind::LayerNorm { .. }
                | LayerKind::Gelu { .. } => vec![0],
            };
            let mut i = 0u64;
            let t = Tensor::from_fn(&shape, |_| {
                let v = lo + (mix(seed ^ (li as u64) << 32 ^ i) % span) as i32;
                i += 1;
                v
            });
            weights.push(t);
        }
        WeightStore { weights }
    }

    /// The weights of layer `index`.
    #[must_use]
    pub fn layer(&self, index: usize) -> &Tensor {
        &self.weights[index]
    }
}

/// Aggregate blocked-GEMM tiling work of one layer — how the packed GEMMs
/// were cut across threads (macro row-tiles) and L1 (column panels). Zero
/// for layers that run no array GEMM (pooling, softmax, norms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileTally {
    /// Macro row-tiles fanned out across all the layer's packed GEMMs.
    pub macro_tiles: u64,
    /// L1 column-panel streams summed over all the layer's packed GEMMs
    /// (each macro-tile streams every panel once).
    pub col_panels: u64,
}

impl TileTally {
    /// Tallies the tiling geometry of one `gemm_packed(a, b)` call.
    fn add(&mut self, a: &PackedSliceMatrix, b: &PackedSliceMatrix) {
        let g = packed_tile_geometry(a, b);
        self.macro_tiles += g.macro_row_tiles;
        self.col_panels += g.macro_row_tiles * g.col_panels;
    }
}

/// Per-layer record of a bit-true execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Systolic-array cycles the layer's GEMMs took (0 for pooling).
    pub cycles: u64,
    /// Operand-level MACs performed.
    pub macs: u64,
    /// MACs the array's packed GEMMs actually issued, summed over the
    /// layer's [`crate::systolic::GemmRun`]s — measured independently of
    /// [`LayerTrace::macs`] (which is the layer's analytic count), so the
    /// two can be differentially cross-checked. Zero for layers with no
    /// array work.
    pub array_macs: u64,
    /// The requantization shift applied to the layer's accumulators.
    pub requant_shift: u32,
    /// The dispatched kernel tier the layer's packed GEMMs actually ran on
    /// ([`bpvec_core::kernels::active_tier`]), `"none"` for layers with no
    /// array work.
    pub kernel: &'static str,
    /// Blocked-GEMM tiling work of the layer.
    pub tiles: TileTally,
}

/// Result of executing a layer stack bit-true.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// The final activation tensor.
    pub output: Tensor,
    /// Per-layer records.
    pub layers: Vec<LayerTrace>,
}

impl ExecutionTrace {
    /// Total array cycles over all layers.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total operand-level MACs over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total MACs the array's packed GEMMs actually issued — the measured
    /// counterpart of [`ExecutionTrace::total_macs`].
    #[must_use]
    pub fn total_array_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.array_macs).sum()
    }

    /// Records the execution's packed-kernel work into `registry` under
    /// `exec.*`: `exec.layers`/`exec.macs`/`exec.cycles` accumulate as
    /// counters across executions, and each layer's MAC count lands in the
    /// `exec.layer_macs` log-histogram (base 1, so bin `i` covers
    /// `[2^i, 2^(i+1))` MACs).
    ///
    /// Kernel-dispatch and tile-geometry work lands under `exec.kernel.*`:
    /// `exec.kernel.dispatch.<tier>` counts GEMM layers executed on each
    /// dispatched tier (`scalar`/`avx2`/`avx512`, so traces show which
    /// kernel actually ran), `exec.kernel.macro_tiles` /
    /// `exec.kernel.col_panels` accumulate the blocked driver's thread- and
    /// L1-level tile counts, and the `exec.kernel.lane_words` gauge holds
    /// the active tier's SIMD width in `u64` words.
    pub fn record_metrics(&self, registry: &bpvec_obs::MetricsRegistry) {
        registry.counter_add("exec.layers", self.layers.len() as u64);
        registry.counter_add("exec.macs", self.total_macs());
        registry.counter_add("exec.cycles", self.total_cycles());
        registry.register_histogram("exec.layer_macs", 1.0, 48);
        let mut macro_tiles = 0u64;
        let mut col_panels = 0u64;
        for layer in &self.layers {
            registry.observe("exec.layer_macs", layer.macs as f64);
            if layer.kernel != "none" {
                registry.counter_add(&format!("exec.kernel.dispatch.{}", layer.kernel), 1);
            }
            macro_tiles += layer.tiles.macro_tiles;
            col_panels += layer.tiles.col_panels;
        }
        registry.counter_add("exec.kernel.macro_tiles", macro_tiles);
        registry.counter_add("exec.kernel.col_panels", col_panels);
        registry.gauge_set(
            "exec.kernel.lane_words",
            kernels::active_tier().lane_words() as f64,
        );
    }
}

/// Executes layer stacks bit-true on a systolic array of CVUs.
#[derive(Debug, Clone)]
pub struct NetworkExecutor {
    array: SystolicArray,
}

/// The bitwidth a layer's output must be requantized to: the next compute
/// layer's declared activation width (pooling passes values through), or
/// the layer's own width for the final layer.
fn output_bits(layers: &[Layer], li: usize) -> BitWidth {
    layers[li + 1..]
        .iter()
        .find(|l| l.is_compute())
        .map_or(layers[li].act_bits, |l| l.act_bits)
}

/// True when the layer's successor is an attention-era op. Projections
/// feeding attention or normalization must keep their sign, so the usual
/// inter-layer ReLU is suppressed (the block's nonlinearity is GELU).
fn feeds_transformer_op(layers: &[Layer], li: usize) -> bool {
    layers.get(li + 1).is_some_and(|l| {
        matches!(
            l.kind,
            LayerKind::MatMulQK { .. }
                | LayerKind::Softmax { .. }
                | LayerKind::AttentionV { .. }
                | LayerKind::LayerNorm { .. }
                | LayerKind::Gelu { .. }
        )
    })
}

/// Splits a stacked `[3·hidden, q_len]` QKV projection output into its
/// planes: Q stays at the QK layer's activation width, K requantizes
/// (shift-only) to its weight width, and V to the *downstream*
/// `AttentionV` layer's weight width. Both execution paths call this, so
/// they see bit-identical operands.
fn split_qkv(
    layers: &[Layer],
    li: usize,
    act: &Tensor,
    hidden: usize,
    q_len: usize,
) -> (Tensor, Tensor, Tensor) {
    let layer = &layers[li];
    let av_bits = layers[li + 1..]
        .iter()
        .find_map(|l| match l.kind {
            LayerKind::AttentionV { .. } => Some(l.weight_bits),
            _ => None,
        })
        .expect("MatMulQK requires a downstream AttentionV layer");
    assert_eq!(act.len(), 3 * hidden * q_len, "stacked QKV input");
    let data = act.as_slice();
    let plane = |p: usize| {
        Tensor::from_data(
            &[hidden, q_len],
            data[p * hidden * q_len..(p + 1) * hidden * q_len].to_vec(),
        )
    };
    let in_bits = layer.act_bits.bits();
    let k_shift = in_bits.saturating_sub(layer.weight_bits.bits());
    let v_shift = in_bits.saturating_sub(av_bits.bits());
    let k = reference::requantize(&plane(1), k_shift, layer.weight_bits, Signedness::Signed);
    let v = reference::requantize(&plane(2), v_shift, av_bits, Signedness::Signed);
    (plane(0), k, v)
}

/// Head `h` of the `QK^T` GEMM: `A = Q_h^T` (`q_len × head_dim`) against
/// `B = K_h` (`head_dim × kv_len`).
fn qk_head(q: &Tensor, k: &Tensor, h: usize, head_dim: usize) -> (Tensor, Tensor) {
    let q_len = q.shape()[1];
    let a = Tensor::from_fn(&[q_len, head_dim], |idx| {
        q[&[h * head_dim + idx[1], idx[0]]]
    });
    let b = Tensor::from_fn(&[head_dim, q_len], |idx| {
        k[&[h * head_dim + idx[0], idx[1]]]
    });
    (a, b)
}

/// Head `h` of the attention·V GEMM: `A = P_h` (`q_len × kv_len`) against
/// `B = V_h^T` (`kv_len × head_dim`).
fn av_head(p: &Tensor, v: &Tensor, h: usize, head_dim: usize, q_len: usize) -> (Tensor, Tensor) {
    let kv_len = p.shape()[1];
    let a = Tensor::from_fn(&[q_len, kv_len], |idx| p[&[h * q_len + idx[0], idx[1]]]);
    let b = Tensor::from_fn(&[kv_len, head_dim], |idx| {
        v[&[h * head_dim + idx[1], idx[0]]]
    });
    (a, b)
}

/// Chooses the smallest right-shift that brings `t`'s extremes into the
/// signed `bits` range — the per-tensor fixed-point calibration step.
fn requant_shift_for(t: &Tensor, bits: BitWidth) -> u32 {
    let (_, hi) = bits.range(Signedness::Signed);
    let mut shift = 0u32;
    let mut max = i64::from(t.max_abs());
    while max > i64::from(hi) {
        max >>= 1;
        shift += 1;
    }
    shift
}

impl NetworkExecutor {
    /// Creates an executor over `array`.
    #[must_use]
    pub fn new(array: SystolicArray) -> Self {
        NetworkExecutor { array }
    }

    /// The slice width operands must be packed at — the array's CVU slicing.
    fn slice_width(&self) -> SliceWidth {
        self.array.config().cvu.slice_width
    }

    /// Executes `layers` on `input` with `weights`, bit-true.
    ///
    /// Convolutions/dense layers run as im2col GEMMs on the array, are
    /// requantized to the layer's activation bitwidth (per-tensor calibrated
    /// shift) and pass through ReLU (except after the final layer).
    /// Recurrent layers run their gate GEMVs on the array per timestep.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the array (operand range/composition).
    ///
    /// # Panics
    ///
    /// Panics if `input`'s shape does not match the first layer or the
    /// layer stack is internally inconsistent (programming errors, not
    /// runtime conditions).
    pub fn execute(
        &self,
        layers: &[Layer],
        input: &Tensor,
        weights: &WeightStore,
    ) -> Result<ExecutionTrace, CoreError> {
        let mut act = input.clone();
        let mut traces = Vec::new();
        let mut stashed_v: Option<Tensor> = None;
        for (li, layer) in layers.iter().enumerate() {
            let last = li == layers.len() - 1;
            let no_relu = last || feeds_transformer_op(layers, li);
            let out_bits = output_bits(layers, li);
            let w = weights.layer(li);
            let (out, cycles, array_macs, shift, tiles) = match layer.kind {
                LayerKind::Conv2d {
                    in_channels,
                    kernel,
                    stride,
                    padding,
                    ..
                } => {
                    let (acc, cycles, macs, tiles) =
                        self.conv_on_array(layer, &act, w, in_channels, kernel, stride, padding)?;
                    let shift = requant_shift_for(&acc, out_bits);
                    let q = reference::requantize(&acc, shift, out_bits, Signedness::Signed);
                    let q = if no_relu { q } else { reference::relu(&q) };
                    (q, cycles, macs, shift, tiles)
                }
                LayerKind::FullyConnected { in_features, .. } => {
                    assert_eq!(act.len(), in_features, "fc input length");
                    // Weights packed once for the layer; the activation is a
                    // single packed vector (the lone GEMM column).
                    let pw = pack_gemm_rows(
                        w,
                        layer.weight_bits,
                        self.slice_width(),
                        Signedness::Signed,
                    )?;
                    let px = PackedSliceMatrix::pack(
                        act.as_slice(),
                        layer.act_bits,
                        self.slice_width(),
                        Signedness::Signed,
                    )?;
                    let mut tiles = TileTally::default();
                    tiles.add(&pw, &px);
                    let run = self.array.gemm_packed(&pw, &px)?;
                    let mut acc = run.output;
                    acc.reshape(&[w.shape()[0]]);
                    let shift = requant_shift_for(&acc, out_bits);
                    let q = reference::requantize(&acc, shift, out_bits, Signedness::Signed);
                    let q = if no_relu { q } else { reference::relu(&q) };
                    (q, run.cycles, run.macs, shift, tiles)
                }
                LayerKind::Pool { kernel, stride, .. } => (
                    reference::maxpool2d(&act, kernel, stride),
                    0,
                    0,
                    0,
                    TileTally::default(),
                ),
                LayerKind::MatMulQK {
                    heads,
                    q_len,
                    kv_len,
                    head_dim,
                } => {
                    assert_eq!(
                        q_len, kv_len,
                        "decode-shaped attention (q_len != kv_len) needs a KV cache; \
                         the bit-true executor runs prefill shapes only"
                    );
                    let (qm, km, vm) = split_qkv(layers, li, &act, heads * head_dim, q_len);
                    stashed_v = Some(vm);
                    let mut scores = Tensor::zeros(&[heads * q_len, kv_len]);
                    let mut cycles = 0u64;
                    let mut macs = 0u64;
                    let mut tiles = TileTally::default();
                    for h in 0..heads {
                        let (a, bm) = qk_head(&qm, &km, h, head_dim);
                        let pa = pack_gemm_rows(
                            &a,
                            layer.act_bits,
                            self.slice_width(),
                            Signedness::Signed,
                        )?;
                        let pb = pack_gemm_cols(
                            &bm,
                            layer.weight_bits,
                            self.slice_width(),
                            Signedness::Signed,
                        )?;
                        tiles.add(&pa, &pb);
                        let run = self.array.gemm_packed(&pa, &pb)?;
                        cycles += run.cycles;
                        macs += run.macs;
                        for qi in 0..q_len {
                            for kj in 0..kv_len {
                                scores[&[h * q_len + qi, kj]] =
                                    run.output.as_slice()[qi * kv_len + kj];
                            }
                        }
                    }
                    let shift = requant_shift_for(&scores, out_bits);
                    let q = reference::requantize(&scores, shift, out_bits, Signedness::Signed);
                    (q, cycles, macs, shift, tiles)
                }
                LayerKind::Softmax { rows, cols } => {
                    assert_eq!(act.len(), rows * cols, "softmax input");
                    let mut s = act.clone();
                    s.reshape(&[rows, cols]);
                    // Probabilities come out at the attention-V layer's
                    // activation width (its `out_bits`), topping out at the
                    // fixed-point one `1 << (bits-1)` — packed *unsigned*
                    // downstream.
                    (
                        reference::softmax_fixed(&s, out_bits),
                        0,
                        0,
                        0,
                        TileTally::default(),
                    )
                }
                LayerKind::AttentionV {
                    heads,
                    q_len,
                    kv_len,
                    head_dim,
                } => {
                    let v = stashed_v
                        .take()
                        .expect("AttentionV requires the V operand of an upstream MatMulQK");
                    assert_eq!(act.shape(), &[heads * q_len, kv_len], "attention probs");
                    let mut ctx = Tensor::zeros(&[heads * head_dim, q_len, 1]);
                    let mut cycles = 0u64;
                    let mut macs = 0u64;
                    let mut tiles = TileTally::default();
                    for h in 0..heads {
                        let (a, bm) = av_head(&act, &v, h, head_dim, q_len);
                        let pa = pack_gemm_rows(
                            &a,
                            layer.act_bits,
                            self.slice_width(),
                            Signedness::Unsigned,
                        )?;
                        let pb = pack_gemm_cols(
                            &bm,
                            layer.weight_bits,
                            self.slice_width(),
                            Signedness::Signed,
                        )?;
                        tiles.add(&pa, &pb);
                        let run = self.array.gemm_packed(&pa, &pb)?;
                        cycles += run.cycles;
                        macs += run.macs;
                        for qi in 0..q_len {
                            for d in 0..head_dim {
                                ctx[&[h * head_dim + d, qi, 0]] =
                                    run.output.as_slice()[qi * head_dim + d];
                            }
                        }
                    }
                    let shift = requant_shift_for(&ctx, out_bits);
                    let q = reference::requantize(&ctx, shift, out_bits, Signedness::Signed);
                    (q, cycles, macs, shift, tiles)
                }
                LayerKind::LayerNorm { features, tokens } => {
                    assert_eq!(act.len(), features * tokens, "layer-norm input");
                    (
                        reference::layer_norm_fixed(&act, out_bits),
                        0,
                        0,
                        0,
                        TileTally::default(),
                    )
                }
                LayerKind::Gelu { elems } => {
                    assert_eq!(act.len(), elems, "gelu input");
                    (
                        reference::gelu_fixed(&act, out_bits),
                        0,
                        0,
                        0,
                        TileTally::default(),
                    )
                }
                LayerKind::Recurrent {
                    input_size,
                    hidden_size,
                    gates,
                    seq_len,
                } => self.recurrent_on_array(
                    layer,
                    &act,
                    w,
                    input_size,
                    hidden_size,
                    gates,
                    seq_len,
                )?,
            };
            traces.push(LayerTrace {
                name: layer.name.clone(),
                cycles,
                macs: layer.macs(),
                array_macs,
                requant_shift: shift,
                kernel: if tiles.macro_tiles > 0 {
                    kernels::active_tier().name()
                } else {
                    "none"
                },
                tiles,
            });
            act = out;
        }
        Ok(ExecutionTrace {
            output: act,
            layers: traces,
        })
    }

    /// Reference execution of the identical pipeline (same weights, same
    /// requantization) without the accelerator — the ground truth
    /// [`Self::execute`] must match bit-for-bit.
    #[must_use]
    pub fn execute_reference(
        &self,
        layers: &[Layer],
        input: &Tensor,
        weights: &WeightStore,
    ) -> Tensor {
        let mut act = input.clone();
        let mut stashed_v: Option<Tensor> = None;
        for (li, layer) in layers.iter().enumerate() {
            let last = li == layers.len() - 1;
            let no_relu = last || feeds_transformer_op(layers, li);
            let out_bits = output_bits(layers, li);
            let w = weights.layer(li);
            act = match layer.kind {
                LayerKind::Conv2d {
                    stride, padding, ..
                } => {
                    let acc = reference::conv2d(&act, w, stride, padding);
                    let shift = requant_shift_for(&acc, out_bits);
                    let q = reference::requantize(&acc, shift, out_bits, Signedness::Signed);
                    if no_relu {
                        q
                    } else {
                        reference::relu(&q)
                    }
                }
                LayerKind::FullyConnected { .. } => {
                    let acc = reference::gemv(w, &act);
                    let shift = requant_shift_for(&acc, out_bits);
                    let q = reference::requantize(&acc, shift, out_bits, Signedness::Signed);
                    if no_relu {
                        q
                    } else {
                        reference::relu(&q)
                    }
                }
                LayerKind::Pool { kernel, stride, .. } => {
                    reference::maxpool2d(&act, kernel, stride)
                }
                LayerKind::MatMulQK {
                    heads,
                    q_len,
                    kv_len,
                    head_dim,
                } => {
                    assert_eq!(
                        q_len, kv_len,
                        "decode-shaped attention (q_len != kv_len) needs a KV cache; \
                         the bit-true executor runs prefill shapes only"
                    );
                    let (qm, km, vm) = split_qkv(layers, li, &act, heads * head_dim, q_len);
                    stashed_v = Some(vm);
                    let mut scores = Tensor::zeros(&[heads * q_len, kv_len]);
                    for h in 0..heads {
                        let (a, bm) = qk_head(&qm, &km, h, head_dim);
                        let out = reference::gemm(&a, &bm);
                        for qi in 0..q_len {
                            for kj in 0..kv_len {
                                scores[&[h * q_len + qi, kj]] = out.as_slice()[qi * kv_len + kj];
                            }
                        }
                    }
                    let shift = requant_shift_for(&scores, out_bits);
                    reference::requantize(&scores, shift, out_bits, Signedness::Signed)
                }
                LayerKind::Softmax { rows, cols } => {
                    assert_eq!(act.len(), rows * cols, "softmax input");
                    let mut s = act.clone();
                    s.reshape(&[rows, cols]);
                    reference::softmax_fixed(&s, out_bits)
                }
                LayerKind::AttentionV {
                    heads,
                    q_len,
                    kv_len,
                    head_dim,
                } => {
                    let v = stashed_v
                        .take()
                        .expect("AttentionV requires the V operand of an upstream MatMulQK");
                    assert_eq!(act.shape(), &[heads * q_len, kv_len], "attention probs");
                    let mut ctx = Tensor::zeros(&[heads * head_dim, q_len, 1]);
                    for h in 0..heads {
                        let (a, bm) = av_head(&act, &v, h, head_dim, q_len);
                        let out = reference::gemm(&a, &bm);
                        for qi in 0..q_len {
                            for d in 0..head_dim {
                                ctx[&[h * head_dim + d, qi, 0]] = out.as_slice()[qi * head_dim + d];
                            }
                        }
                    }
                    let shift = requant_shift_for(&ctx, out_bits);
                    reference::requantize(&ctx, shift, out_bits, Signedness::Signed)
                }
                LayerKind::LayerNorm { features, tokens } => {
                    assert_eq!(act.len(), features * tokens, "layer-norm input");
                    reference::layer_norm_fixed(&act, out_bits)
                }
                LayerKind::Gelu { elems } => {
                    assert_eq!(act.len(), elems, "gelu input");
                    reference::gelu_fixed(&act, out_bits)
                }
                LayerKind::Recurrent {
                    input_size,
                    hidden_size,
                    gates,
                    seq_len,
                } => reference_recurrent(layer, &act, w, input_size, hidden_size, gates, seq_len),
            };
        }
        act
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_on_array(
        &self,
        layer: &Layer,
        act: &Tensor,
        w: &Tensor,
        in_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<(Tensor, u64, u64, TileTally), CoreError> {
        let (kh, kw) = kernel;
        let ish = act.shape();
        assert_eq!(ish[0], in_channels, "activation channels");
        let (h, wdt) = (ish[1], ish[2]);
        let oh = (h + 2 * padding.0 - kh) / stride.0 + 1;
        let ow = (wdt + 2 * padding.1 - kw) / stride.1 + 1;
        // im2col with zero padding.
        let cols = Tensor::from_fn(&[in_channels * kh * kw, oh * ow], |idx| {
            let (row, col) = (idx[0], idx[1]);
            let c = row / (kh * kw);
            let ky = (row / kw) % kh;
            let kx = row % kw;
            let oy = col / ow;
            let ox = col % ow;
            let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
            if iy < 0 || ix < 0 || iy >= h as isize || ix >= wdt as isize {
                0
            } else {
                act[&[c, iy as usize, ix as usize]]
            }
        });
        // Pack once per layer: OIHW weights row-pack with no reshape/clone
        // (trailing dims flatten to the im2col row), the patch matrix
        // column-packs at the layer's own activation width. Every output
        // tile of the GEMM then reuses these planes.
        let oc = w.shape()[0];
        let pw = pack_gemm_rows(w, layer.weight_bits, self.slice_width(), Signedness::Signed)?;
        let pcols = pack_gemm_cols(
            &cols,
            layer.act_bits,
            self.slice_width(),
            Signedness::Signed,
        )?;
        let mut tiles = TileTally::default();
        tiles.add(&pw, &pcols);
        let run = self.array.gemm_packed(&pw, &pcols)?;
        let mut out = run.output;
        out.reshape(&[oc, oh, ow]);
        Ok((out, run.cycles, run.macs, tiles))
    }

    #[allow(clippy::too_many_arguments)]
    fn recurrent_on_array(
        &self,
        layer: &Layer,
        act: &Tensor,
        w: &Tensor,
        input_size: usize,
        hidden_size: usize,
        gates: usize,
        seq_len: usize,
    ) -> Result<(Tensor, u64, u64, u32, TileTally), CoreError> {
        assert_eq!(act.shape(), &[seq_len, input_size], "recurrent input");
        let shift = recurrent_shift(layer, input_size, hidden_size);
        // The gate weights are packed once and reused across every timestep
        // of the sequence — only the (small) [x; h] vector repacks per step.
        let pw = pack_gemm_rows(w, layer.weight_bits, self.slice_width(), Signedness::Signed)?;
        let mut h = Tensor::zeros(&[hidden_size]);
        let mut c = Tensor::zeros(&[hidden_size]);
        let mut outputs = Tensor::zeros(&[seq_len, hidden_size]);
        let mut cycles = 0u64;
        let mut macs = 0u64;
        let mut tiles = TileTally::default();
        for t in 0..seq_len {
            let mut xh = Vec::with_capacity(input_size + hidden_size);
            xh.extend((0..input_size).map(|i| act[&[t, i]]));
            xh.extend_from_slice(h.as_slice());
            let pxh = PackedSliceMatrix::pack(
                &xh,
                layer.act_bits,
                self.slice_width(),
                Signedness::Signed,
            )?;
            tiles.add(&pw, &pxh);
            let run = self.array.gemm_packed(&pw, &pxh)?;
            cycles += run.cycles;
            macs += run.macs;
            let mut pre = run.output;
            pre.reshape(&[gates * hidden_size]);
            h = if gates == 4 {
                let (h2, c2) = reference::lstm_recombine(&pre, &c, shift, layer.act_bits);
                c = c2;
                h2
            } else {
                reference::requantize(&pre, shift, layer.act_bits, Signedness::Signed)
            };
            for (i, &v) in h.as_slice().iter().enumerate() {
                outputs[&[t, i]] = v;
            }
        }
        Ok((outputs, cycles, macs, shift, tiles))
    }
}

/// Fixed requantization shift for a recurrent layer, sized to the
/// worst-case gate pre-activation magnitude (weights and state at full
/// scale over the reduction length).
fn recurrent_shift(layer: &Layer, input_size: usize, hidden_size: usize) -> u32 {
    let (_, w_hi) = layer.weight_bits.range(Signedness::Signed);
    let (_, a_hi) = layer.act_bits.range(Signedness::Signed);
    let worst = (input_size + hidden_size) as i64 * i64::from(w_hi + 1) * i64::from(a_hi + 1);
    let mut shift = 0u32;
    let mut m = worst;
    while m > i64::from(a_hi) {
        m >>= 1;
        shift += 1;
    }
    // Keep some signal: the worst case is pessimistic by the averaging of
    // random signs, so back off a few bits.
    shift.saturating_sub(3)
}

fn reference_recurrent(
    layer: &Layer,
    act: &Tensor,
    w: &Tensor,
    input_size: usize,
    hidden_size: usize,
    gates: usize,
    seq_len: usize,
) -> Tensor {
    let shift = recurrent_shift(layer, input_size, hidden_size);
    let mut h = Tensor::zeros(&[hidden_size]);
    let mut c = Tensor::zeros(&[hidden_size]);
    let mut outputs = Tensor::zeros(&[seq_len, hidden_size]);
    for t in 0..seq_len {
        let x = Tensor::from_data(
            &[input_size],
            (0..input_size).map(|i| act[&[t, i]]).collect(),
        );
        if gates == 4 {
            let (h2, c2) = reference::lstm_step(w, &x, &h, &c, shift, layer.act_bits);
            h = h2;
            c = c2;
        } else {
            let mut xh = Vec::with_capacity(input_size + hidden_size);
            xh.extend_from_slice(x.as_slice());
            xh.extend_from_slice(h.as_slice());
            let xh = Tensor::from_data(&[input_size + hidden_size], xh);
            let pre = reference::gemv(w, &xh);
            h = reference::requantize(&pre, shift, layer.act_bits, Signedness::Signed);
        }
        for (i, &v) in h.as_slice().iter().enumerate() {
            outputs[&[t, i]] = v;
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systolic::ArrayConfig;
    use bpvec_dnn::layer::{Layer, LayerKind};

    fn executor() -> NetworkExecutor {
        NetworkExecutor::new(SystolicArray::new(ArrayConfig {
            rows: 4,
            cols: 4,
            cvu: bpvec_core::CvuConfig::paper_default(),
        }))
    }

    fn conv(name: &str, ic: usize, oc: usize, k: usize, s: usize, p: usize, hw: usize) -> Layer {
        Layer::new(
            name,
            LayerKind::Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: (k, k),
                stride: (s, s),
                padding: (p, p),
                input_hw: (hw, hw),
            },
        )
    }

    fn input(c: usize, hw: usize, seed: u64) -> Tensor {
        Tensor::from_fn(&[c, hw, hw], |idx| {
            (mix(seed ^ (idx[0] * 10_000 + idx[1] * 100 + idx[2]) as u64) % 200) as i32 - 100
        })
    }

    #[test]
    fn single_conv_layer_matches_reference() {
        let layers = vec![conv("c1", 3, 8, 3, 1, 1, 8)];
        let ws = WeightStore::synthesize(&layers, 11);
        let x = input(3, 8, 1);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
        assert!(trace.total_cycles() > 0);
    }

    #[test]
    fn execution_trace_records_packed_kernel_work_into_registry() {
        let layers = vec![conv("c1", 3, 8, 3, 1, 1, 8)];
        let ws = WeightStore::synthesize(&layers, 11);
        let trace = executor().execute(&layers, &input(3, 8, 1), &ws).unwrap();
        let registry = bpvec_obs::MetricsRegistry::new();
        trace.record_metrics(&registry);
        assert_eq!(
            registry.counter("exec.layers"),
            Some(trace.layers.len() as u64)
        );
        assert_eq!(registry.counter("exec.macs"), Some(trace.total_macs()));
        assert_eq!(registry.counter("exec.cycles"), Some(trace.total_cycles()));
        let snap = registry.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "exec.layer_macs")
            .expect("layer-MAC histogram registered");
        assert_eq!(hist.total(), trace.layers.len() as u64);
        // The conv layer ran exactly one packed GEMM on the dispatched
        // tier; its tile counts land under exec.kernel.*.
        let tier = bpvec_core::kernels::active_tier();
        assert_eq!(trace.layers[0].kernel, tier.name());
        assert_eq!(
            registry.counter(&format!("exec.kernel.dispatch.{tier}")),
            Some(1)
        );
        assert_eq!(
            registry.counter("exec.kernel.macro_tiles"),
            Some(trace.layers[0].tiles.macro_tiles)
        );
        assert_eq!(
            registry.counter("exec.kernel.col_panels"),
            Some(trace.layers[0].tiles.col_panels)
        );
        assert!(trace.layers[0].tiles.macro_tiles > 0);
        assert!(trace.layers[0].tiles.col_panels >= trace.layers[0].tiles.macro_tiles);
        assert_eq!(
            registry.gauge("exec.kernel.lane_words"),
            Some(tier.lane_words() as f64)
        );
    }

    #[test]
    fn cnn_pipeline_conv_pool_conv_fc_matches_reference() {
        let layers = vec![
            conv("c1", 3, 8, 3, 1, 1, 8),
            Layer::new(
                "p1",
                LayerKind::Pool {
                    channels: 8,
                    kernel: (2, 2),
                    stride: (2, 2),
                    input_hw: (8, 8),
                },
            ),
            conv("c2", 8, 6, 3, 1, 0, 4),
            Layer::new(
                "fc",
                LayerKind::FullyConnected {
                    in_features: 6 * 2 * 2,
                    out_features: 10,
                },
            ),
        ];
        let ws = WeightStore::synthesize(&layers, 22);
        let mut x = input(3, 8, 2);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        let expect = ex.execute_reference(&layers, &x, &ws);
        assert_eq!(trace.output, expect);
        assert_eq!(trace.layers.len(), 4);
        assert_eq!(trace.layers[1].cycles, 0, "pooling uses no array cycles");
        // The fc layer consumed a flattened view; make sure shapes ended 1-D.
        x.reshape(&[3 * 8 * 8]);
        assert_eq!(trace.output.shape(), &[10]);
    }

    #[test]
    fn heterogeneous_bitwidths_execute_and_match() {
        use bpvec_core::BitWidth;
        let layers = vec![
            conv("c1", 3, 8, 3, 1, 1, 8), // 8-bit boundary layer
            conv("c2", 8, 8, 3, 1, 1, 8).with_bits(BitWidth::INT4, BitWidth::INT4),
            conv("c3", 8, 4, 1, 1, 0, 8).with_bits(BitWidth::INT4, BitWidth::INT4),
        ];
        let ws = WeightStore::synthesize(&layers, 33);
        let x = input(3, 8, 3);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
    }

    #[test]
    fn vanilla_rnn_sequence_matches_reference() {
        let layers = vec![Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 12,
                hidden_size: 12,
                gates: 1,
                seq_len: 6,
            },
        )];
        let ws = WeightStore::synthesize(&layers, 44);
        let x = Tensor::from_fn(&[6, 12], |idx| {
            (mix(900 ^ (idx[0] * 64 + idx[1]) as u64) % 255) as i32 - 127
        });
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
        assert_eq!(trace.output.shape(), &[6, 12]);
    }

    #[test]
    fn lstm_sequence_matches_reference() {
        let layers = vec![Layer::new(
            "lstm",
            LayerKind::Recurrent {
                input_size: 10,
                hidden_size: 10,
                gates: 4,
                seq_len: 5,
            },
        )
        .with_bits(bpvec_core::BitWidth::INT4, bpvec_core::BitWidth::INT4)];
        let ws = WeightStore::synthesize(&layers, 55);
        let x = Tensor::from_fn(&[5, 10], |idx| {
            (mix(901 ^ (idx[0] * 32 + idx[1]) as u64) % 15) as i32 - 7
        });
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
    }

    #[test]
    fn attention_block_matches_reference_bit_true() {
        // The canonical ten-layer transformer block (ln → qkv → QK^T →
        // softmax → attn·V → proj → ln → ffn → gelu → ffn), packed path vs
        // reference, bit-for-bit.
        let mut layers = Vec::new();
        bpvec_dnn::transformer_block(&mut layers, "b", 32, 4, 8, 8);
        let ws = WeightStore::synthesize(&layers, 77);
        let x = input(32, 8, 5);
        let x = Tensor::from_fn(&[32, 8, 1], |idx| x[&[idx[0], idx[1], 0]]);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
        assert_eq!(trace.output.shape(), &[32, 8, 1]);
        assert_eq!(trace.layers.len(), 10);
        // The attention GEMMs burn array cycles; softmax/norms do not.
        assert!(trace.layers[2].cycles > 0, "QK^T runs on the array");
        assert_eq!(trace.layers[3].cycles, 0, "softmax is not a GEMM");
        assert!(trace.layers[4].cycles > 0, "attn-V runs on the array");
    }

    #[test]
    fn quantized_attention_block_matches_reference() {
        use bpvec_core::BitWidth;
        let mut layers = Vec::new();
        bpvec_dnn::transformer_block(&mut layers, "b", 16, 2, 4, 4);
        for l in &mut layers {
            *l = l.clone().with_bits(BitWidth::INT4, BitWidth::INT4);
        }
        let ws = WeightStore::synthesize(&layers, 88);
        let x = Tensor::from_fn(&[16, 4, 1], |idx| {
            (mix(777 ^ (idx[0] * 8 + idx[1]) as u64) % 15) as i32 - 7
        });
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
    }

    #[test]
    fn mixed_width_kv_attention_matches_reference() {
        use bpvec_core::BitWidth;
        // 8-bit activations, 4-bit K/V — the KV-quantization serving recipe.
        let mut layers = Vec::new();
        bpvec_dnn::transformer_block(&mut layers, "b", 16, 2, 4, 4);
        for l in &mut layers {
            if matches!(
                l.kind,
                LayerKind::MatMulQK { .. } | LayerKind::AttentionV { .. }
            ) {
                *l = l.clone().with_bits(BitWidth::INT8, BitWidth::INT4);
            }
        }
        let ws = WeightStore::synthesize(&layers, 99);
        let x = input(16, 4, 6);
        let x = Tensor::from_fn(&[16, 4, 1], |idx| x[&[idx[0], idx[1], 0]]);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
    }

    #[test]
    #[should_panic(expected = "prefill")]
    fn decode_attention_is_explicitly_unsupported() {
        let layers = vec![Layer::new(
            "qk",
            LayerKind::MatMulQK {
                heads: 2,
                q_len: 1,
                kv_len: 8,
                head_dim: 4,
            },
        )];
        let ws = WeightStore::synthesize(&layers, 1);
        let x = Tensor::zeros(&[24, 1, 1]);
        let _ = executor().execute(&layers, &x, &ws);
    }

    #[test]
    fn weight_store_is_deterministic_and_in_range() {
        let layers = vec![conv("c", 4, 4, 3, 1, 1, 4)
            .with_bits(bpvec_core::BitWidth::INT4, bpvec_core::BitWidth::INT2)];
        let a = WeightStore::synthesize(&layers, 7);
        let b = WeightStore::synthesize(&layers, 7);
        assert_eq!(a.layer(0), b.layer(0));
        for &v in a.layer(0).as_slice() {
            assert!((-2..=1).contains(&v), "2-bit weight {v}");
        }
        let c = WeightStore::synthesize(&layers, 8);
        assert_ne!(a.layer(0), c.layer(0), "different seed, different weights");
    }

    #[test]
    fn strided_padded_convolutions_match_reference() {
        let layers = vec![conv("c", 3, 5, 5, 2, 2, 9)];
        let ws = WeightStore::synthesize(&layers, 66);
        let x = input(3, 9, 4);
        let ex = executor();
        let trace = ex.execute(&layers, &x, &ws).unwrap();
        assert_eq!(trace.output, ex.execute_reference(&layers, &x, &ws));
        assert_eq!(trace.output.shape(), &[5, 5, 5]);
    }
}
