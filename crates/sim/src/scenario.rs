//! The unified `Scenario` evaluation API.
//!
//! Every figure of the paper — and every scenario the ROADMAP imagines
//! beyond it — is the same experiment shape: a set of **platforms**
//! (anything implementing [`Evaluator`]: the analytical ASIC simulator, the
//! GPU model in `bpvec-gpumodel`, or a user-supplied backend), a set of
//! **workloads** ([`Workload`]: network × bitwidth policy × batch regime),
//! and a set of **memory systems** ([`DramSpec`]). A [`Scenario`] declares
//! the three axes plus a normalization baseline; [`Scenario::run`] evaluates
//! the full cross-product in parallel (one rayon task per cell) and returns
//! a [`Report`] of raw [`Cell`]s with normalized [`Comparison`] series,
//! perf-per-Watt ratios, geomeans, and CSV/JSON rendering.
//!
//! ```
//! use bpvec_sim::{AcceleratorConfig, DramSpec, Scenario, Workload};
//! use bpvec_dnn::BitwidthPolicy;
//!
//! // Figure 5 as a scenario: two platforms, one memory, six workloads.
//! let report = Scenario::new("fig5")
//!     .platform(AcceleratorConfig::tpu_like())
//!     .platform(AcceleratorConfig::bpvec())
//!     .memory(DramSpec::ddr4())
//!     .workloads(Workload::table1(BitwidthPolicy::Homogeneous8))
//!     .run();
//! let fig5 = report.comparison("BPVeC", "DDR4");
//! assert!(fig5.geomean_speedup > 1.0);
//! ```
//!
//! Scenarios are declarations, so they serialize: [`Scenario`] round-trips
//! through its [`ScenarioSpec`] (platforms as [`PlatformSpec`] descriptors).
//! Custom trait-object platforms serialize by label and must be re-attached
//! with [`Scenario::attach`] after deserialization.

use std::fmt;
use std::sync::Arc;

use bpvec_dnn::{Network, NetworkId, PrecisionPolicy};
use bpvec_obs::{MetricsRegistry, TraceEvent, TraceSink, WallProfiler};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::accel::AcceleratorConfig;
use crate::cost::CostModel;
use crate::engine::{geomean, simulate, SimConfig};
use crate::memory::DramSpec;
use crate::workload::Workload;

/// An evaluation backend: anything that can measure a workload.
///
/// Implemented by [`AcceleratorConfig`] (the analytical ASIC simulator) and
/// by `bpvec-gpumodel`'s `GpuPlatform`; downstream code can implement it for
/// arbitrary backends (measured hardware, other simulators) and drop them
/// into any [`Scenario`].
pub trait Evaluator: Send + Sync {
    /// Short display label ("BPVeC", "RTX 2080 Ti"). Labels identify
    /// platforms inside a scenario, so they must be unique per scenario.
    fn label(&self) -> String;

    /// Serializable descriptor; backends without a structured spec
    /// serialize as their label.
    fn spec(&self) -> PlatformSpec {
        PlatformSpec::Custom(self.label())
    }

    /// Measures one workload. `network` is the already-instantiated
    /// `workload.build()` (built once per workload by the scenario runner);
    /// platforms with no off-chip memory axis ignore `dram`.
    fn evaluate(&self, workload: &Workload, network: &Network, dram: &DramSpec) -> Measurement;

    /// [`Evaluator::evaluate`] through a shared, memoized
    /// [`CostModel`].
    ///
    /// Grid runners ([`Scenario`], `bpvec-serve`) create one cost model per
    /// run and thread it through every cell, so backends whose cost is a
    /// pure per-layer function (the analytical accelerator) share layer
    /// work across cells, batch sizes and replicas. The default forwards to
    /// the uncached path — external backends need not care — and overriding
    /// implementations must return bit-identical results to `evaluate`.
    fn evaluate_with(
        &self,
        workload: &Workload,
        network: &Network,
        dram: &DramSpec,
        cost: &CostModel,
    ) -> Measurement {
        let _ = cost;
        self.evaluate(workload, network, dram)
    }
}

impl Evaluator for AcceleratorConfig {
    fn label(&self) -> String {
        self.design.name().to_string()
    }

    fn spec(&self) -> PlatformSpec {
        PlatformSpec::Accelerator(*self)
    }

    fn evaluate(&self, workload: &Workload, network: &Network, dram: &DramSpec) -> Measurement {
        let cfg = SimConfig {
            accel: *self,
            dram: *dram,
            batching: workload.batching,
        };
        let r = simulate(network, &cfg);
        Measurement {
            latency_s: r.latency_s,
            energy_j: r.energy_j,
            macs: r.macs,
            batch: r.batch,
            gops_per_watt: r.gops_per_watt(),
        }
    }

    fn evaluate_with(
        &self,
        workload: &Workload,
        network: &Network,
        dram: &DramSpec,
        cost: &CostModel,
    ) -> Measurement {
        let cfg = SimConfig {
            accel: *self,
            dram: *dram,
            batching: workload.batching,
        };
        let r = cost.simulate(network, &cfg);
        Measurement {
            latency_s: r.latency_s,
            energy_j: r.energy_j,
            macs: r.macs,
            batch: r.batch,
            gops_per_watt: r.gops_per_watt(),
        }
    }
}

/// Serializable platform descriptor — what a [`Scenario`] stores and ships.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// A Table II-style analytical accelerator.
    Accelerator(AcceleratorConfig),
    /// An external backend, identified by label only; must be re-attached
    /// with [`Scenario::attach`] after deserialization.
    Custom(String),
}

impl PlatformSpec {
    /// The platform's display label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PlatformSpec::Accelerator(cfg) => cfg.design.name().to_string(),
            PlatformSpec::Custom(label) => label.clone(),
        }
    }
}

/// Renames any evaluator, so one scenario can carry several variants of the
/// same backend (e.g. two BPVeC configs with different scratchpads).
#[derive(Debug, Clone)]
pub struct Labeled<E> {
    label: String,
    inner: E,
}

impl<E: Evaluator> Labeled<E> {
    /// Wraps `inner` under a new display label.
    pub fn new(label: impl Into<String>, inner: E) -> Self {
        Labeled {
            label: label.into(),
            inner,
        }
    }
}

impl<E: Evaluator> Evaluator for Labeled<E> {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, dram: &DramSpec) -> Measurement {
        self.inner.evaluate(workload, network, dram)
    }

    fn evaluate_with(
        &self,
        workload: &Workload,
        network: &Network,
        dram: &DramSpec,
        cost: &CostModel,
    ) -> Measurement {
        self.inner.evaluate_with(workload, network, dram, cost)
    }
}

/// Physical quantities measured for one (platform, workload, memory) cell,
/// normalized per inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Latency per inference, seconds.
    pub latency_s: f64,
    /// Energy per inference, joules.
    pub energy_j: f64,
    /// MACs per inference.
    pub macs: u64,
    /// Batch size the measurement used.
    pub batch: u64,
    /// Performance-per-Watt in GOPS/W, as reported by the backend.
    pub gops_per_watt: f64,
}

impl Measurement {
    /// Operations (2 × MACs) per second, in Giga-ops.
    #[must_use]
    pub fn gops(&self) -> f64 {
        2.0 * self.macs as f64 / self.latency_s / 1e9
    }
}

/// One cell of a report: where, what, and the measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Platform label.
    pub platform: String,
    /// Memory-system name.
    pub memory: String,
    /// The workload.
    pub workload: Workload,
    /// The measured quantities.
    pub measurement: Measurement,
}

/// Names one (platform, memory) column of a scenario — e.g. the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRef {
    /// Platform label.
    pub platform: String,
    /// Memory-system name.
    pub memory: String,
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.platform, self.memory)
    }
}

/// The serializable declaration behind a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (report title).
    pub name: String,
    /// Platform descriptors, in insertion order.
    pub platforms: Vec<PlatformSpec>,
    /// Workloads, in insertion order (the row order of every series).
    pub workloads: Vec<Workload>,
    /// Memory systems, in insertion order.
    pub memories: Vec<DramSpec>,
    /// The precision sweep axis. Empty (the default) means every workload
    /// runs at its own declared policy; non-empty means each workload is
    /// expanded into one variant per policy here (workload-major order),
    /// overriding the workload's own policy.
    pub precisions: Vec<PrecisionPolicy>,
    /// The sequence-length sweep axis. Empty (the default) means every
    /// workload keeps its own declared shape; non-empty expands each
    /// workload *with a sequence dimension* (transformers, RNN/LSTM) into
    /// one variant per length. Prefill workloads read the length as token
    /// count, decode workloads as KV-cache length; CNNs are not expanded.
    pub seq_lens: Vec<usize>,
    /// Normalization baseline; `None` means first platform + first memory.
    pub baseline: Option<CellRef>,
}

impl ScenarioSpec {
    /// The workload list the run actually evaluates: the declared workloads
    /// crossed with the precision axis when one is set.
    #[must_use]
    pub fn effective_workloads(&self) -> Vec<Workload> {
        let with_precision: Vec<Workload> = if self.precisions.is_empty() {
            self.workloads.clone()
        } else {
            self.workloads
                .iter()
                .flat_map(|w| {
                    self.precisions
                        .iter()
                        .map(|p| w.clone().with_policy(p.clone()))
                })
                .collect()
        };
        if self.seq_lens.is_empty() {
            return with_precision;
        }
        with_precision
            .into_iter()
            .flat_map(|w| {
                if !w.network.has_sequence_dim() {
                    return vec![w];
                }
                self.seq_lens
                    .iter()
                    .map(|&s| {
                        // Decode workloads sweep the KV-cache length,
                        // everything else the token/timestep count.
                        if w.decode_kv.is_some() {
                            w.clone().with_decode_kv(s)
                        } else {
                            w.clone().with_seq_len(s)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Errors from building or running a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// A declared experiment: platforms × workloads × memories plus a baseline.
///
/// Build one with the fluent methods, then [`Scenario::run`] (or
/// [`Scenario::try_run`]) to get a [`Report`]. See the [module docs](self)
/// for the figure-as-scenario example.
#[derive(Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    /// One evaluator per spec platform; `None` marks a deserialized custom
    /// platform awaiting [`Scenario::attach`].
    evaluators: Vec<Option<Arc<dyn Evaluator>>>,
    /// Observability attachments. Not part of the declaration: they do not
    /// serialize, compare, or Debug-print (a deserialized scenario starts
    /// with none attached).
    trace: Option<Arc<dyn TraceSink>>,
    profile: Option<Arc<WallProfiler>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("spec", &self.spec)
            .finish()
    }
}

impl PartialEq for Scenario {
    /// Scenarios compare by declaration (their [`ScenarioSpec`]).
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
    }
}

impl Serialize for Scenario {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.spec.serialize(serializer)
    }
}

impl serde::de::Deserialize for Scenario {
    fn deserialize(value: &serde::de::Value) -> Result<Self, serde::de::Error> {
        ScenarioSpec::deserialize(value).map(Scenario::from_spec)
    }
}

impl Scenario {
    /// An empty scenario with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            spec: ScenarioSpec {
                name: name.into(),
                platforms: Vec::new(),
                workloads: Vec::new(),
                memories: Vec::new(),
                precisions: Vec::new(),
                seq_lens: Vec::new(),
                baseline: None,
            },
            evaluators: Vec::new(),
            trace: None,
            profile: None,
            metrics: None,
        }
    }

    /// Rebuilds a scenario from its declaration. `Accelerator` platforms
    /// resolve immediately; `Custom` platforms stay unresolved until
    /// [`Scenario::attach`].
    #[must_use]
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        let evaluators = spec
            .platforms
            .iter()
            .map(|p| match p {
                PlatformSpec::Accelerator(cfg) => Some(Arc::new(*cfg) as Arc<dyn Evaluator>),
                PlatformSpec::Custom(_) => None,
            })
            .collect();
        Scenario {
            spec,
            evaluators,
            trace: None,
            profile: None,
            metrics: None,
        }
    }

    /// The scenario's serializable declaration.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Adds an evaluation backend.
    #[must_use]
    pub fn platform(mut self, platform: impl Evaluator + 'static) -> Self {
        self.spec.platforms.push(platform.spec());
        self.evaluators.push(Some(Arc::new(platform)));
        self
    }

    /// Adds one workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.spec.workloads.push(workload);
        self
    }

    /// Adds a batch of workloads (e.g. [`Workload::table1`]).
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.spec.workloads.extend(workloads);
        self
    }

    /// Adds one memory system.
    #[must_use]
    pub fn memory(mut self, memory: DramSpec) -> Self {
        self.spec.memories.push(memory);
        self
    }

    /// Adds a batch of memory systems (e.g. a bandwidth sweep).
    #[must_use]
    pub fn memories(mut self, memories: impl IntoIterator<Item = DramSpec>) -> Self {
        self.spec.memories.extend(memories);
        self
    }

    /// Adds one precision policy to the sweep axis. A non-empty axis
    /// expands every workload into one variant per policy (overriding the
    /// workload's declared policy), workload-major.
    #[must_use]
    pub fn precision(mut self, policy: impl Into<PrecisionPolicy>) -> Self {
        self.spec.precisions.push(policy.into());
        self
    }

    /// Adds a batch of precision policies (e.g.
    /// [`PrecisionPolicy::paper_sweep`]).
    #[must_use]
    pub fn precisions(mut self, policies: impl IntoIterator<Item = PrecisionPolicy>) -> Self {
        self.spec.precisions.extend(policies);
        self
    }

    /// Adds one length to the sequence sweep axis. A non-empty axis expands
    /// every workload with a sequence dimension into one variant per length
    /// (decode workloads sweep the KV-cache length); CNN workloads are left
    /// alone.
    #[must_use]
    pub fn seq_len(mut self, seq_len: usize) -> Self {
        self.spec.seq_lens.push(seq_len);
        self
    }

    /// Adds a batch of sequence lengths (e.g. a context-length sweep).
    #[must_use]
    pub fn seq_lens(mut self, seq_lens: impl IntoIterator<Item = usize>) -> Self {
        self.spec.seq_lens.extend(seq_lens);
        self
    }

    /// Sets the normalization baseline. Without this, the first platform on
    /// the first memory is the baseline.
    #[must_use]
    pub fn baseline(mut self, platform: impl Into<String>, memory: impl Into<String>) -> Self {
        self.spec.baseline = Some(CellRef {
            platform: platform.into(),
            memory: memory.into(),
        });
        self
    }

    /// Attaches a trace sink. Grid evaluation is analytical (no event
    /// loop), so the run emits a **synthetic timeline**: one trace process
    /// per (platform, memory) column, with each workload's modeled latency
    /// laid out as a complete (`X`) span in workload order. Timestamps are
    /// model outputs — never wall-clock — so the trace is byte-identical
    /// across runs. Not part of the declaration: it does not serialize or
    /// affect comparison.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a wall-clock self-profiler recording how long the *host*
    /// spends building networks (`build:networks`) and evaluating cells
    /// (`cell`, one aggregate entry). Kept out of the deterministic trace.
    #[must_use]
    pub fn profile(mut self, profiler: Arc<WallProfiler>) -> Self {
        self.profile = Some(profiler);
        self
    }

    /// Attaches a metrics registry: after the grid runs, the shared cost
    /// model's hit/miss/entry counters land under `cost.*`, plus a
    /// `scenario.cells` total.
    #[must_use]
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Re-attaches an external backend to a deserialized scenario; see
    /// [`Scenario::try_attach`] for the fallible form.
    ///
    /// # Panics
    ///
    /// Panics if no unresolved platform carries the evaluator's label.
    #[must_use]
    pub fn attach(self, platform: impl Evaluator + 'static) -> Self {
        let name = self.spec.name.clone();
        match self.try_attach(platform) {
            Ok(scenario) => scenario,
            Err(e) => panic!("scenario `{name}`: {e}"),
        }
    }

    /// Re-attaches an external backend to a deserialized scenario. The
    /// evaluator's label must match an unresolved `Custom` platform.
    ///
    /// # Errors
    ///
    /// Fails if no unresolved platform carries the evaluator's label.
    pub fn try_attach(mut self, platform: impl Evaluator + 'static) -> Result<Self, ScenarioError> {
        let label = platform.label();
        let slot = self
            .spec
            .platforms
            .iter()
            .zip(self.evaluators.iter_mut())
            .find_map(|(spec, slot)| (slot.is_none() && spec.label() == label).then_some(slot));
        match slot {
            Some(slot) => *slot = Some(Arc::new(platform)),
            None => {
                return Err(ScenarioError(format!(
                    "no unresolved platform labeled `{label}` to attach to"
                )))
            }
        }
        Ok(self)
    }

    /// Runs the scenario; see [`Scenario::try_run`] for the fallible form.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scenario (empty axis, duplicate labels,
    /// unresolved custom platform, dangling baseline).
    #[must_use]
    pub fn run(&self) -> Report {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("scenario `{}`: {e}", self.spec.name),
        }
    }

    /// Evaluates the full platforms × memories × workloads cross-product —
    /// rayon-parallel across cells — and reports the results.
    ///
    /// # Errors
    ///
    /// Fails if an axis is empty, platform labels or memory names collide,
    /// a custom platform is unresolved, or the baseline names an unknown
    /// platform/memory.
    pub fn try_run(&self) -> Result<Report, ScenarioError> {
        let spec = &self.spec;
        if spec.platforms.is_empty() || spec.workloads.is_empty() || spec.memories.is_empty() {
            return Err(ScenarioError(format!(
                "every axis needs at least one entry (platforms {}, workloads {}, memories {})",
                spec.platforms.len(),
                spec.workloads.len(),
                spec.memories.len()
            )));
        }
        let labels: Vec<String> = spec.platforms.iter().map(PlatformSpec::label).collect();
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(ScenarioError(format!(
                    "duplicate platform label `{l}` (wrap one in `Labeled`)"
                )));
            }
        }
        for (i, m) in spec.memories.iter().enumerate() {
            if spec.memories[..i].iter().any(|other| other.name == m.name) {
                return Err(ScenarioError(format!(
                    "duplicate memory name `{}` (use `DramSpec::custom` with distinct names)",
                    m.name
                )));
            }
        }
        // Exact duplicates would double-weight a network in every geomean;
        // same-network workloads with different batching stay legal (batch
        // sweeps). The check runs on the precision-expanded list, so a
        // sweep axis that collides with a workload's declared policy is
        // caught too.
        let workloads = spec.effective_workloads();
        for (i, w) in workloads.iter().enumerate() {
            if workloads[..i].contains(w) {
                return Err(ScenarioError(format!(
                    "duplicate workload `{w}` (identical network, policy, and batching)"
                )));
            }
        }
        let evaluators: Vec<&Arc<dyn Evaluator>> = self
            .evaluators
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.as_ref().ok_or_else(|| {
                    ScenarioError(format!(
                        "platform `{}` is unresolved; re-attach it with Scenario::attach",
                        labels[i]
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let baseline = match &spec.baseline {
            Some(cell) => {
                if !labels.contains(&cell.platform) {
                    return Err(ScenarioError(format!(
                        "baseline platform `{}` is not in the scenario",
                        cell.platform
                    )));
                }
                if !spec.memories.iter().any(|m| m.name == cell.memory) {
                    return Err(ScenarioError(format!(
                        "baseline memory `{}` is not in the scenario",
                        cell.memory
                    )));
                }
                cell.clone()
            }
            None => CellRef {
                platform: labels[0].clone(),
                memory: spec.memories[0].name.to_string(),
            },
        };
        // Instantiate each network once; every cell borrows it. Precision
        // validation surfaces here instead of panicking mid-grid.
        let build_started = self.profile.as_ref().map(|_| std::time::Instant::now());
        let networks: Vec<Network> = workloads
            .iter()
            .map(|w| {
                w.try_build()
                    .map_err(|e| ScenarioError(format!("workload `{w}`: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if let (Some(prof), Some(t0)) = (&self.profile, build_started) {
            prof.record("build:networks", t0.elapsed().as_secs_f64());
        }
        // One memoized cost model for the whole grid: cells sharing layer
        // shapes, precisions, batches and platform/memory numbers share the
        // per-layer work (bit-identically; see `crate::cost`).
        let cost = CostModel::new();
        let n_workloads = workloads.len();
        let jobs: Vec<(usize, usize, usize)> = (0..spec.platforms.len())
            .flat_map(|p| {
                (0..spec.memories.len()).flat_map(move |m| (0..n_workloads).map(move |w| (p, m, w)))
            })
            .collect();
        let cells: Vec<Cell> = jobs
            .into_par_iter()
            .map(|(p, m, w)| {
                let workload = workloads[w].clone();
                let dram = spec.memories[m];
                let cell_started = self.profile.as_ref().map(|_| std::time::Instant::now());
                let measurement =
                    evaluators[p].evaluate_with(&workload, &networks[w], &dram, &cost);
                if let (Some(prof), Some(t0)) = (&self.profile, cell_started) {
                    // One aggregate label: count = cells, total/max across
                    // the grid.
                    prof.record("cell", t0.elapsed().as_secs_f64());
                }
                Cell {
                    platform: labels[p].clone(),
                    memory: dram.name.to_string(),
                    workload,
                    measurement,
                }
            })
            .collect();
        // The synthetic trace: cells are already in deterministic
        // platform-major order, so emitting sequentially here is
        // byte-stable regardless of how rayon scheduled the grid.
        if let Some(sink) = self.trace.as_deref().filter(|t| t.enabled()) {
            let n_workloads = n_workloads.max(1);
            let mut cursor = vec![0.0f64; spec.platforms.len() * spec.memories.len()];
            let mut named = vec![false; cursor.len()];
            for (i, cell) in cells.iter().enumerate() {
                let col = i / n_workloads;
                let pid = u32::try_from(col).expect("column count fits u32");
                if !named[col] {
                    named[col] = true;
                    sink.record(TraceEvent::process_name(
                        pid,
                        &format!("{} + {}", cell.platform, cell.memory),
                    ));
                }
                let dur = cell.measurement.latency_s;
                sink.record(
                    TraceEvent::complete(&cell.workload.to_string(), cursor[col], dur, pid, 0)
                        .with_cat("model")
                        .with_arg("macs", cell.measurement.macs)
                        .with_arg("energy_j", cell.measurement.energy_j)
                        .with_arg("batch", cell.measurement.batch),
                );
                cursor[col] += dur;
            }
        }
        if let Some(reg) = &self.metrics {
            cost.record_metrics(reg);
            reg.counter_add("scenario.cells", cells.len() as u64);
        }
        Ok(Report {
            scenario: spec.name.clone(),
            baseline,
            cells,
            cache_hits: cost.hits(),
            cache_misses: cost.misses(),
        })
    }
}

/// One bar pair of a comparison figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The workload.
    pub network: NetworkId,
    /// Latency ratio `baseline / evaluated` (higher is better).
    pub speedup: f64,
    /// Energy ratio `baseline / evaluated` (higher is better).
    pub energy_reduction: f64,
}

/// A complete figure series: per-network rows plus geometric means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being evaluated (e.g. "BPVeC + DDR4").
    pub evaluated: String,
    /// What it is normalized to (e.g. "TPU-like + DDR4").
    pub baseline: String,
    /// Per-network results in workload order.
    pub rows: Vec<ComparisonRow>,
    /// Geometric-mean speedup.
    pub geomean_speedup: f64,
    /// Geometric-mean energy reduction.
    pub geomean_energy: f64,
}

impl Comparison {
    /// Looks up one network's row.
    #[must_use]
    pub fn row(&self, id: NetworkId) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.network == id)
    }

    /// Renders the comparison as CSV (`network,speedup,energy_reduction`
    /// plus a GEOMEAN row) for downstream plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("network,speedup,energy_reduction\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4}\n",
                r.network.name(),
                r.speedup,
                r.energy_reduction
            ));
        }
        out.push_str(&format!(
            "GEOMEAN,{:.4},{:.4}\n",
            self.geomean_speedup, self.geomean_energy
        ));
        out
    }
}

/// One entry of a perf-per-Watt series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesEntry {
    /// The workload.
    pub network: NetworkId,
    /// Ratio `evaluated / baseline` (higher is better).
    pub ratio: f64,
}

/// A normalized per-network metric series with its geometric mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// What is being evaluated (e.g. "BPVeC + HBM2").
    pub evaluated: String,
    /// What it is normalized to (e.g. "RTX 2080 Ti + DDR4").
    pub baseline: String,
    /// Per-network ratios in workload order.
    pub rows: Vec<SeriesEntry>,
    /// Geometric mean of the ratios.
    pub geomean: f64,
}

/// The outcome of a [`Scenario`] run: every raw cell plus normalization
/// helpers. Serializes (JSON/CSV) for machine-readable experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The scenario's name.
    pub scenario: String,
    /// The (platform, memory) column everything normalizes to.
    pub baseline: CellRef,
    /// Raw cells, ordered platform-major, then memory, then workload.
    pub cells: Vec<Cell>,
    /// Cost-model lookups served from the shared memo during the run.
    pub cache_hits: u64,
    /// Cost-model lookups that had to compute during the run.
    pub cache_misses: u64,
}

impl Report {
    /// Fraction of cost-model lookups served from the memo (0 when the
    /// run made no lookups).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
    /// Cells of one (platform, memory) column, in workload order.
    fn column(&self, platform: &str, memory: &str) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.platform == platform && c.memory == memory)
            .collect()
    }

    fn column_or_panic(&self, platform: &str, memory: &str) -> Vec<&Cell> {
        let cells = self.column(platform, memory);
        assert!(
            !cells.is_empty(),
            "report `{}` has no cells for `{platform} + {memory}`",
            self.scenario
        );
        cells
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, platform: &str, memory: &str, network: NetworkId) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.platform == platform && c.memory == memory && c.workload.network == network)
    }

    /// The distinct (platform, memory) columns, in cell order.
    #[must_use]
    pub fn columns(&self) -> Vec<CellRef> {
        let mut out: Vec<CellRef> = Vec::new();
        for c in &self.cells {
            let cr = CellRef {
                platform: c.platform.clone(),
                memory: c.memory.clone(),
            };
            if !out.contains(&cr) {
                out.push(cr);
            }
        }
        out
    }

    /// Speedup/energy series of `evaluated` normalized to an arbitrary
    /// `baseline` column (both as `(platform, memory)` pairs).
    ///
    /// # Panics
    ///
    /// Panics if either column has no cells or their workloads disagree.
    #[must_use]
    pub fn comparison_between(
        &self,
        baseline: (&str, &str),
        evaluated: (&str, &str),
    ) -> Comparison {
        let base = self.column_or_panic(baseline.0, baseline.1);
        let eval = self.column_or_panic(evaluated.0, evaluated.1);
        assert_eq!(
            base.len(),
            eval.len(),
            "baseline and evaluated columns cover different workload sets"
        );
        let rows: Vec<ComparisonRow> = base
            .iter()
            .zip(&eval)
            .map(|(b, e)| {
                assert_eq!(
                    b.workload, e.workload,
                    "workload mismatch between baseline and evaluated columns"
                );
                ComparisonRow {
                    network: b.workload.network,
                    speedup: b.measurement.latency_s / e.measurement.latency_s,
                    energy_reduction: b.measurement.energy_j / e.measurement.energy_j,
                }
            })
            .collect();
        let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
        let geomean_energy = geomean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>());
        Comparison {
            evaluated: format!("{} + {}", evaluated.0, evaluated.1),
            baseline: format!("{} + {}", baseline.0, baseline.1),
            rows,
            geomean_speedup,
            geomean_energy,
        }
    }

    /// Speedup/energy series of one column vs the report's baseline.
    ///
    /// # Panics
    ///
    /// Panics if the column has no cells.
    #[must_use]
    pub fn comparison(&self, platform: &str, memory: &str) -> Comparison {
        self.comparison_between(
            (&self.baseline.platform, &self.baseline.memory),
            (platform, memory),
        )
    }

    /// Every non-baseline column's comparison vs the baseline.
    #[must_use]
    pub fn comparisons(&self) -> Vec<Comparison> {
        self.columns()
            .iter()
            .filter(|c| **c != self.baseline)
            .map(|c| self.comparison(&c.platform, &c.memory))
            .collect()
    }

    /// Performance-per-Watt of one column normalized to the report's
    /// baseline (the Figure 9 metric).
    ///
    /// # Panics
    ///
    /// Panics if the column has no cells or workloads disagree with the
    /// baseline column's.
    #[must_use]
    pub fn perf_per_watt(&self, platform: &str, memory: &str) -> Series {
        let base = self.column_or_panic(&self.baseline.platform, &self.baseline.memory);
        let eval = self.column_or_panic(platform, memory);
        assert_eq!(
            base.len(),
            eval.len(),
            "baseline and evaluated columns cover different workload sets"
        );
        let rows: Vec<SeriesEntry> = base
            .iter()
            .zip(&eval)
            .map(|(b, e)| {
                assert_eq!(
                    b.workload.network, e.workload.network,
                    "workload mismatch between baseline and evaluated columns"
                );
                SeriesEntry {
                    network: b.workload.network,
                    ratio: e.measurement.gops_per_watt / b.measurement.gops_per_watt,
                }
            })
            .collect();
        let geomean = geomean(&rows.iter().map(|r| r.ratio).collect::<Vec<_>>());
        Series {
            evaluated: format!("{platform} + {memory}"),
            baseline: self.baseline.to_string(),
            rows,
            geomean,
        }
    }

    /// Renders every raw cell as CSV for downstream analysis. The `policy`
    /// column is the workload's precision policy in its compact
    /// [`fmt::Display`] form (`Homogeneous8`, `uniform4`, `uniform8x2`,
    /// `per-layer[n;tag]`), so precision sweeps are directly plottable.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "platform,memory,network,policy,batch,seq,latency_s,energy_j,macs,gops_per_watt\n",
        );
        for c in &self.cells {
            // The `seq` column: decode workloads print their KV length as
            // `decode<kv>`, prefill/recurrent ones the token count, and
            // shape-free workloads `-`.
            let seq = match (c.workload.decode_kv, c.workload.seq_len) {
                (Some(kv), _) => format!("decode{kv}"),
                (None, Some(s)) => s.to_string(),
                (None, None) => "-".to_string(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6e},{:.6e},{},{:.4}\n",
                c.platform,
                c.memory,
                c.workload.network.name(),
                c.workload.policy,
                c.measurement.batch,
                seq,
                c.measurement.latency_s,
                c.measurement.energy_j,
                c.measurement.macs,
                c.measurement.gops_per_watt,
            ));
        }
        out
    }

    /// Renders the report as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for plain data).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::BatchRegime;
    use bpvec_dnn::BitwidthPolicy;

    fn fig5_scenario() -> Scenario {
        Scenario::new("fig5")
            .platform(AcceleratorConfig::tpu_like())
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workloads(Workload::table1(BitwidthPolicy::Homogeneous8))
    }

    #[test]
    fn cross_product_covers_every_cell() {
        let report = Scenario::new("grid")
            .platform(AcceleratorConfig::tpu_like())
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .memory(DramSpec::hbm2())
            .workloads(Workload::table1(BitwidthPolicy::Homogeneous8))
            .run();
        assert_eq!(report.cells.len(), 2 * 2 * 6);
        assert_eq!(report.columns().len(), 4);
        for id in NetworkId::ALL {
            assert!(report.cell("BPVeC", "HBM2", id).is_some());
        }
    }

    #[test]
    fn default_baseline_is_first_platform_first_memory() {
        let report = fig5_scenario().run();
        assert_eq!(report.baseline.platform, "TPU-like");
        assert_eq!(report.baseline.memory, "DDR4");
    }

    #[test]
    fn self_comparison_is_unity() {
        let report = fig5_scenario().run();
        let c = report.comparison("TPU-like", "DDR4");
        for r in &c.rows {
            assert!((r.speedup - 1.0).abs() < 1e-12);
            assert!((r.energy_reduction - 1.0).abs() < 1e-12);
        }
        assert!((c.geomean_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_matches_direct_simulation() {
        let report = fig5_scenario().run();
        let c = report.comparison("BPVeC", "DDR4");
        assert_eq!(c.rows.len(), 6);
        for (row, id) in c.rows.iter().zip(NetworkId::ALL) {
            let net = Network::build(id, BitwidthPolicy::Homogeneous8);
            let base = simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
            );
            let eval = simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4()),
            );
            assert_eq!(row.network, id);
            assert_eq!(row.speedup, base.latency_s / eval.latency_s);
            assert_eq!(row.energy_reduction, base.energy_j / eval.energy_j);
        }
    }

    #[test]
    fn runs_are_deterministic_despite_parallelism() {
        let s = fig5_scenario();
        assert_eq!(s.run(), s.run());
    }

    #[test]
    fn duplicate_platform_labels_are_rejected() {
        let err = Scenario::new("dup")
            .platform(AcceleratorConfig::bpvec())
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::AlexNet,
                BitwidthPolicy::Homogeneous8,
            ))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate platform label"));
    }

    #[test]
    fn labeled_wrapper_disambiguates_variants() {
        let mut big = AcceleratorConfig::bpvec();
        big.scratchpad.capacity_bytes *= 4;
        let report = Scenario::new("spad")
            .platform(AcceleratorConfig::bpvec())
            .platform(Labeled::new("BPVeC-448K", big))
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::ResNet50,
                BitwidthPolicy::Homogeneous8,
            ))
            .run();
        let c = report.comparison("BPVeC-448K", "DDR4");
        assert!(c.rows[0].speedup >= 1.0);
    }

    #[test]
    fn duplicate_workloads_are_rejected_but_batch_sweeps_are_not() {
        let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        let err = Scenario::new("dup-workload")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(w.clone())
            .workload(w.clone())
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate workload"));
        // Same network under different batching is a legitimate sweep.
        let report = Scenario::new("batch-sweep")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(w.clone().with_batching(BatchRegime::fixed(1)))
            .workload(w.with_batching(BatchRegime::fixed(64)))
            .run();
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn empty_axis_is_rejected() {
        let err = Scenario::new("empty")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("at least one entry"));
    }

    #[test]
    fn dangling_baseline_is_rejected() {
        let err = fig5_scenario()
            .baseline("BitFusion", "DDR4")
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("baseline platform"));
    }

    #[test]
    fn spec_round_trip_preserves_the_declaration() {
        let s = fig5_scenario().baseline("TPU-like", "DDR4");
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.run(), back.run());
    }

    #[test]
    fn custom_platforms_deserialize_unresolved_and_reattach() {
        struct Null;
        impl Evaluator for Null {
            fn label(&self) -> String {
                "Null".into()
            }
            fn evaluate(&self, w: &Workload, n: &Network, _: &DramSpec) -> Measurement {
                Measurement {
                    latency_s: 1.0,
                    energy_j: 1.0,
                    macs: n.total_macs(),
                    batch: w.batch(),
                    gops_per_watt: 1.0,
                }
            }
        }
        let s = Scenario::new("custom")
            .platform(Null)
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(NetworkId::Rnn, BitwidthPolicy::Homogeneous8));
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        let err = back.try_run().unwrap_err();
        assert!(err.to_string().contains("unresolved"));
        let report = back.attach(Null).run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(
            report
                .cell("Null", "DDR4", NetworkId::Rnn)
                .unwrap()
                .measurement
                .latency_s,
            1.0
        );
    }

    #[test]
    fn try_attach_rejects_unmatched_labels_without_aborting() {
        struct Misnamed;
        impl Evaluator for Misnamed {
            fn label(&self) -> String {
                "Misnamed".into()
            }
            fn evaluate(&self, w: &Workload, n: &Network, _: &DramSpec) -> Measurement {
                Measurement {
                    latency_s: 1.0,
                    energy_j: 1.0,
                    macs: n.total_macs(),
                    batch: w.batch(),
                    gops_per_watt: 1.0,
                }
            }
        }
        // No unresolved platform at all: every slot is an Accelerator.
        let err = fig5_scenario().try_attach(Misnamed).unwrap_err();
        assert!(err.to_string().contains("no unresolved platform"));
        assert!(err.to_string().contains("Misnamed"));
    }

    #[test]
    #[should_panic(expected = "no unresolved platform labeled `BPVeC`")]
    fn attach_remains_a_panicking_convenience() {
        let _ = fig5_scenario().attach(AcceleratorConfig::bpvec());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = fig5_scenario().run();
        let json = report.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn warm_sweep_cache_hit_rate_exceeds_90_percent() {
        // BERT's 12 identical transformer blocks repeat the same layer
        // shapes, and the memory *name* is not part of the cost key (see
        // `crate::cost`), so a twin of DDR4 under another name turns the
        // whole second column into memo hits.
        let report = Scenario::new("warm")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .memory(DramSpec::custom("DDR4-twin", 16.0, 15.0))
            .workload(Workload::new(
                NetworkId::BertBase,
                BitwidthPolicy::Homogeneous8,
            ))
            .run();
        assert!(report.cache_hits + report.cache_misses > 0);
        assert!(
            report.cache_hit_rate() > 0.9,
            "warm sweep hit rate {} (hits {}, misses {})",
            report.cache_hit_rate(),
            report.cache_hits,
            report.cache_misses
        );
        // The counters surface in the JSON report.
        let json = report.to_json();
        assert!(json.contains("\"cache_hits\""));
        assert!(json.contains("\"cache_misses\""));
    }

    #[test]
    fn observability_axes_record_trace_metrics_and_profile() {
        use bpvec_obs::{validate_spans, MemorySink, MetricsRegistry, Phase, WallProfiler};
        let sink = Arc::new(MemorySink::new());
        let registry = Arc::new(MetricsRegistry::new());
        let profiler = Arc::new(WallProfiler::new());
        let report = fig5_scenario()
            .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .metrics(Arc::clone(&registry))
            .profile(Arc::clone(&profiler))
            .run();
        // One synthetic X span per cell, one process-name meta per column.
        let events = sink.events();
        validate_spans(&events).unwrap();
        let spans = events.iter().filter(|e| e.ph == Phase::Complete).count();
        assert_eq!(spans, report.cells.len());
        let metas = events.iter().filter(|e| e.ph == Phase::Meta).count();
        assert_eq!(metas, 2); // two platforms × one memory
                              // The registry saw the shared cost model and the cell count.
        assert_eq!(
            registry.counter("cost.hits"),
            Some(report.cache_hits),
            "registry mirrors the report's cache counters"
        );
        assert_eq!(
            registry.counter("scenario.cells"),
            Some(report.cells.len() as u64)
        );
        // The profiler recorded one aggregate entry per cell.
        let cell_prof = profiler
            .snapshot()
            .into_iter()
            .find(|e| e.label == "cell")
            .expect("cell timings recorded");
        assert_eq!(cell_prof.count, report.cells.len() as u64);
    }

    #[test]
    fn traces_from_identical_runs_are_byte_identical() {
        use bpvec_obs::MemorySink;
        let run = || {
            let sink = Arc::new(MemorySink::new());
            let _ = fig5_scenario()
                .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
                .run();
            sink.to_chrome_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_csv_lists_every_cell() {
        let report = fig5_scenario().run();
        let csv = report.to_csv();
        assert_eq!(csv.trim().lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("platform,memory,network,policy,batch"));
        assert!(csv.contains("BPVeC,DDR4,AlexNet"));
    }

    #[test]
    fn precision_axis_expands_every_workload() {
        use bpvec_core::BitWidth;
        let report = Scenario::new("precision sweep")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::ResNet18,
                BitwidthPolicy::Homogeneous8,
            ))
            .precisions(PrecisionPolicy::paper_sweep())
            .run();
        assert_eq!(report.cells.len(), 4);
        // The axis overrides the workload's declared policy...
        let policies: Vec<String> = report
            .cells
            .iter()
            .map(|c| c.workload.policy.to_string())
            .collect();
        assert_eq!(
            policies,
            vec!["uniform8", "uniform6", "uniform4", "uniform2"]
        );
        // ...narrower layers run strictly faster on the composable design...
        let latencies: Vec<f64> = report
            .cells
            .iter()
            .map(|c| c.measurement.latency_s)
            .collect();
        for pair in latencies.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0000001, "{latencies:?}");
        }
        // ...and the CSV policy column carries the precision.
        let csv = report.to_csv();
        assert!(csv.contains(",uniform2,"), "{csv}");
        // A uniform-8 sweep point matches the preset bit-for-bit: same
        // layer widths, same simulation.
        let hom = Scenario::new("preset")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::ResNet18,
                BitwidthPolicy::Homogeneous8,
            ))
            .run();
        assert_eq!(
            report.cells[0].measurement, hom.cells[0].measurement,
            "uniform8 == Homogeneous8 numerically"
        );
        let _ = BitWidth::INT8;
    }

    #[test]
    fn duplicate_precisions_in_the_axis_are_rejected() {
        use bpvec_dnn::PrecisionPolicy;
        let err = Scenario::new("dup precision")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::AlexNet,
                BitwidthPolicy::Homogeneous8,
            ))
            .precision(PrecisionPolicy::heterogeneous())
            .precision(PrecisionPolicy::heterogeneous())
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate workload"));
    }

    #[test]
    fn invalid_per_layer_policy_is_a_scenario_error_not_a_panic() {
        use bpvec_core::BitWidth;
        use bpvec_dnn::LayerPrecision;
        let err = Scenario::new("bad per-layer")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::AlexNet,
                PrecisionPolicy::per_layer(vec![LayerPrecision::uniform(BitWidth::INT4); 2]),
            ))
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("width pairs"), "{err}");
    }

    #[test]
    fn seq_axis_expands_sequence_workloads_only() {
        let report = Scenario::new("context sweep")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(Workload::new(
                NetworkId::BertBase,
                BitwidthPolicy::Homogeneous8,
            ))
            .workload(
                Workload::new(NetworkId::BertBase, BitwidthPolicy::Homogeneous8).with_decode_kv(64),
            )
            .workload(Workload::new(
                NetworkId::AlexNet,
                BitwidthPolicy::Homogeneous8,
            ))
            .seq_lens([64, 256])
            .run();
        // 2 sequence workloads × 2 lengths + 1 CNN left alone.
        assert_eq!(report.cells.len(), 5);
        // Prefill cost grows superlinearly in tokens; decode grows with KV.
        let lat = |seq: Option<usize>, kv: Option<usize>| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.workload.network == NetworkId::BertBase
                        && c.workload.seq_len == seq
                        && c.workload.decode_kv == kv
                })
                .expect("cell")
                .measurement
                .latency_s
        };
        assert!(lat(Some(256), None) > lat(Some(64), None));
        assert!(lat(None, Some(256)) > lat(None, Some(64)));
        assert!(
            lat(Some(64), None) > lat(None, Some(64)),
            "prefill > decode"
        );
        // The CSV carries the axis, byte-deterministically.
        let csv = report.to_csv();
        assert!(csv.starts_with("platform,memory,network,policy,batch,seq"));
        assert!(csv.contains(",256,"), "{csv}");
        assert!(csv.contains(",decode256,"), "{csv}");
        assert!(csv.contains("AlexNet,Homogeneous8,16,-,"), "{csv}");
        assert_eq!(csv, report.to_csv());
    }

    #[test]
    fn batch_regime_travels_with_the_workload() {
        let w = Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8)
            .with_batching(BatchRegime::fixed(128));
        let report = Scenario::new("batch")
            .platform(AcceleratorConfig::bpvec())
            .memory(DramSpec::ddr4())
            .workload(w)
            .run();
        assert_eq!(report.cells[0].measurement.batch, 128);
    }
}
