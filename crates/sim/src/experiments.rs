//! The paper's accelerator-vs-accelerator experiments (Figures 5–8).
//!
//! Each function reproduces one figure: it simulates every Table I network
//! on the relevant platform pair and returns per-network speedup and energy
//! reduction relative to the figure's normalization baseline, plus the
//! geometric mean — exactly the series the paper plots. The paper's
//! reported values ship alongside in [`paper`] for EXPERIMENTS.md.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use serde::{Deserialize, Serialize};

use crate::accel::AcceleratorConfig;
use crate::engine::{geomean, simulate, SimConfig};
use crate::memory::DramSpec;

/// One bar pair of a comparison figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The workload.
    pub network: NetworkId,
    /// Latency ratio `baseline / evaluated` (higher is better).
    pub speedup: f64,
    /// Energy ratio `baseline / evaluated` (higher is better).
    pub energy_reduction: f64,
}

/// A complete figure: per-network rows plus geometric means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being evaluated (e.g. "BPVeC + DDR4").
    pub evaluated: String,
    /// What it is normalized to (e.g. "TPU-like + DDR4").
    pub baseline: String,
    /// Per-network results in Table I order.
    pub rows: Vec<ComparisonRow>,
    /// Geometric-mean speedup.
    pub geomean_speedup: f64,
    /// Geometric-mean energy reduction.
    pub geomean_energy: f64,
}

impl Comparison {
    /// Looks up one network's row.
    #[must_use]
    pub fn row(&self, id: NetworkId) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.network == id)
    }

    /// Renders the comparison as CSV (`network,speedup,energy_reduction`
    /// plus a GEOMEAN row) for downstream plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("network,speedup,energy_reduction\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4}\n",
                r.network.name(),
                r.speedup,
                r.energy_reduction
            ));
        }
        out.push_str(&format!(
            "GEOMEAN,{:.4},{:.4}\n",
            self.geomean_speedup, self.geomean_energy
        ));
        out
    }
}

fn compare(
    policy: BitwidthPolicy,
    baseline: (AcceleratorConfig, DramSpec),
    evaluated: (AcceleratorConfig, DramSpec),
) -> Comparison {
    let mut rows = Vec::new();
    for id in NetworkId::ALL {
        let net = Network::build(id, policy);
        let base = simulate(&net, &SimConfig::new(baseline.0, baseline.1));
        let eval = simulate(&net, &SimConfig::new(evaluated.0, evaluated.1));
        rows.push(ComparisonRow {
            network: id,
            speedup: base.latency_s / eval.latency_s,
            energy_reduction: base.energy_j / eval.energy_j,
        });
    }
    let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    let geomean_energy = geomean(&rows.iter().map(|r| r.energy_reduction).collect::<Vec<_>>());
    Comparison {
        evaluated: format!("{} + {}", evaluated.0.design, evaluated.1.name),
        baseline: format!("{} + {}", baseline.0.design, baseline.1.name),
        rows,
        geomean_speedup,
        geomean_energy,
    }
}

/// Figure 5: BPVeC vs the TPU-like baseline, both on DDR4, homogeneous
/// 8-bit. Paper geomeans: 1.39× speedup, 1.43× energy.
#[must_use]
pub fn figure5() -> Comparison {
    compare(
        BitwidthPolicy::Homogeneous8,
        (AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
        (AcceleratorConfig::bpvec(), DramSpec::ddr4()),
    )
}

/// Figure 6, "baseline" series: the TPU-like design with HBM2, normalized
/// to itself with DDR4. Paper geomeans: ≈1.06× speedup, 1.34× energy.
#[must_use]
pub fn figure6_baseline() -> Comparison {
    compare(
        BitwidthPolicy::Homogeneous8,
        (AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
        (AcceleratorConfig::tpu_like(), DramSpec::hbm2()),
    )
}

/// Figure 6, BPVeC series: BPVeC with HBM2 normalized to the TPU-like
/// baseline with DDR4. Paper geomeans: 2.11× speedup, 2.28× energy.
#[must_use]
pub fn figure6_bpvec() -> Comparison {
    compare(
        BitwidthPolicy::Homogeneous8,
        (AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
        (AcceleratorConfig::bpvec(), DramSpec::hbm2()),
    )
}

/// Figure 7: BPVeC vs BitFusion, both on DDR4, heterogeneous bitwidths.
/// Paper geomeans: 1.45× speedup, 1.13× energy.
#[must_use]
pub fn figure7() -> Comparison {
    compare(
        BitwidthPolicy::Heterogeneous,
        (AcceleratorConfig::bitfusion(), DramSpec::ddr4()),
        (AcceleratorConfig::bpvec(), DramSpec::ddr4()),
    )
}

/// Figure 8, BitFusion series: BitFusion with HBM2 normalized to BitFusion
/// with DDR4. Paper geomeans: 1.45× speedup, 2.26× energy.
#[must_use]
pub fn figure8_bitfusion() -> Comparison {
    compare(
        BitwidthPolicy::Heterogeneous,
        (AcceleratorConfig::bitfusion(), DramSpec::ddr4()),
        (AcceleratorConfig::bitfusion(), DramSpec::hbm2()),
    )
}

/// Figure 8, BPVeC series: BPVeC with HBM2 normalized to BitFusion with
/// DDR4. Paper geomeans: 3.48× speedup, 2.66× energy.
#[must_use]
pub fn figure8_bpvec() -> Comparison {
    compare(
        BitwidthPolicy::Heterogeneous,
        (AcceleratorConfig::bitfusion(), DramSpec::ddr4()),
        (AcceleratorConfig::bpvec(), DramSpec::hbm2()),
    )
}


/// Sweeps off-chip bandwidth and reports BPVeC's speedup over the TPU-like
/// baseline at each point — locating the bandwidth where each workload's
/// bottleneck crosses from memory to compute (the mechanism behind the
/// DDR4-vs-HBM2 split of Figures 5/6).
///
/// Returns `(bandwidth GB/s, speedup)` pairs; DRAM access energy is held at
/// the DDR4 figure so only bandwidth varies.
#[must_use]
pub fn bandwidth_sweep(id: NetworkId, policy: BitwidthPolicy) -> Vec<(f64, f64)> {
    let net = Network::build(id, policy);
    [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
        .iter()
        .map(|&gbps| {
            let dram = DramSpec {
                name: "sweep",
                bandwidth_gb_s: gbps,
                energy_pj_per_bit: 15.0,
            };
            let base = simulate(&net, &SimConfig::new(AcceleratorConfig::tpu_like(), dram));
            let bp = simulate(&net, &SimConfig::new(AcceleratorConfig::bpvec(), dram));
            (gbps, base.latency_s / bp.latency_s)
        })
        .collect()
}

/// The paper's reported per-figure series (Table I network order), used by
/// the bench harness to print paper-vs-measured tables.
pub mod paper {
    /// Figure 5: BPVeC speedup over the DDR4 baseline.
    pub const FIG5_SPEEDUP: [f64; 6] = [1.5, 1.8, 1.7, 1.6, 1.0, 1.0];
    /// Figure 5: BPVeC energy reduction.
    pub const FIG5_ENERGY: [f64; 6] = [1.5, 1.7, 1.7, 1.6, 1.1, 1.1];
    /// Figure 5 geomeans (speedup, energy).
    pub const FIG5_GEOMEAN: (f64, f64) = (1.39, 1.43);
    /// Figure 6: BPVeC + HBM2 speedup over baseline + DDR4.
    pub const FIG6_BPVEC_SPEEDUP: [f64; 6] = [1.8, 2.0, 2.1, 2.1, 2.3, 2.4];
    /// Figure 6 geomeans for the BPVeC series (speedup, energy).
    pub const FIG6_BPVEC_GEOMEAN: (f64, f64) = (2.11, 2.28);
    /// Figure 6 geomeans for the baseline-with-HBM2 series.
    pub const FIG6_BASELINE_GEOMEAN: (f64, f64) = (1.06, 1.34);
    /// Figure 7: BPVeC speedup over BitFusion (DDR4, heterogeneous).
    pub const FIG7_SPEEDUP: [f64; 6] = [1.96, 1.62, 1.77, 1.32, 1.13, 1.11];
    /// Figure 7: energy reduction.
    pub const FIG7_ENERGY: [f64; 6] = [1.2, 1.1, 1.1, 1.1, 1.2, 1.1];
    /// Figure 7 geomeans.
    pub const FIG7_GEOMEAN: (f64, f64) = (1.45, 1.13);
    /// Figure 8: BPVeC + HBM2 speedup over BitFusion + DDR4.
    pub const FIG8_BPVEC_SPEEDUP: [f64; 6] = [3.0, 2.9, 2.9, 3.5, 4.5, 4.5];
    /// Figure 8 geomeans for the BPVeC series.
    pub const FIG8_BPVEC_GEOMEAN: (f64, f64) = (3.48, 2.66);
    /// Figure 8 geomeans for the BitFusion-with-HBM2 series.
    pub const FIG8_BITFUSION_GEOMEAN: (f64, f64) = (1.45, 2.26);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let f = figure5();
        // Headline: ~40% speedup and energy reduction overall.
        assert!(
            (1.15..=1.85).contains(&f.geomean_speedup),
            "geomean speedup {} (paper 1.39)",
            f.geomean_speedup
        );
        assert!(
            (1.05..=1.95).contains(&f.geomean_energy),
            "geomean energy {} (paper 1.43)",
            f.geomean_energy
        );
        // CNNs benefit; bandwidth-starved recurrent models do not.
        for id in [NetworkId::AlexNet, NetworkId::InceptionV1, NetworkId::ResNet18] {
            assert!(f.row(id).unwrap().speedup > 1.25, "{id}");
        }
        for id in [NetworkId::Rnn, NetworkId::Lstm] {
            let s = f.row(id).unwrap().speedup;
            assert!(s < 1.2, "{id} speedup {s} should be ~1.0");
        }
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let base = figure6_baseline();
        let bp = figure6_bpvec();
        // The baseline barely benefits from HBM2...
        assert!(
            base.geomean_speedup < 1.5,
            "baseline HBM2 speedup {} (paper 1.06)",
            base.geomean_speedup
        );
        // ...while BPVeC converts the bandwidth into ~2x.
        assert!(
            (1.75..=2.75).contains(&bp.geomean_speedup),
            "BPVeC HBM2 speedup {} (paper 2.11)",
            bp.geomean_speedup
        );
        // Our DRAM-energy accounting is more pessimistic on DDR4 than the
        // paper's (see EXPERIMENTS.md), so the HBM2 energy win overshoots.
        assert!(
            (1.8..=5.5).contains(&bp.geomean_energy),
            "BPVeC HBM2 energy {} (paper 2.28)",
            bp.geomean_energy
        );
        // RNN/LSTM see the largest gains (bandwidth-hungry).
        let rnn = bp.row(NetworkId::Rnn).unwrap().speedup;
        let cnn_min = [NetworkId::AlexNet, NetworkId::ResNet18]
            .iter()
            .map(|&id| bp.row(id).unwrap().speedup)
            .fold(f64::INFINITY, f64::min);
        assert!(rnn >= cnn_min * 0.95, "rnn {rnn} vs cnn min {cnn_min}");
    }

    #[test]
    fn fig7_shape_matches_paper() {
        let f = figure7();
        assert!(
            (1.2..=1.9).contains(&f.geomean_speedup),
            "geomean speedup {} (paper 1.45)",
            f.geomean_speedup
        );
        assert!(
            (1.0..=1.45).contains(&f.geomean_energy),
            "geomean energy {} (paper 1.13)",
            f.geomean_energy
        );
        // CNNs gain more than the bandwidth-bound recurrent models.
        let cnn = f.row(NetworkId::AlexNet).unwrap().speedup;
        let rnn = f.row(NetworkId::Rnn).unwrap().speedup;
        assert!(cnn > rnn, "cnn {cnn} vs rnn {rnn}");
        assert!(rnn < 1.35, "rnn {rnn} should be near 1.1");
    }

    #[test]
    fn fig8_shape_matches_paper() {
        let bf = figure8_bitfusion();
        let bp = figure8_bpvec();
        assert!(
            (2.4..=4.6).contains(&bp.geomean_speedup),
            "BPVeC geomean speedup {} (paper 3.48)",
            bp.geomean_speedup
        );
        assert!(
            bp.geomean_speedup > bf.geomean_speedup * 1.5,
            "BPVeC {} must clearly beat BitFusion-with-HBM2 {}",
            bp.geomean_speedup,
            bf.geomean_speedup
        );
        // Recurrent models see the highest BPVeC speedups (paper: 4.5x).
        let rnn = bp.row(NetworkId::Rnn).unwrap().speedup;
        let alex = bp.row(NetworkId::AlexNet).unwrap().speedup;
        assert!(rnn > alex, "rnn {rnn} should exceed alexnet {alex}");
    }


    #[test]
    fn bandwidth_sweep_is_monotone_and_saturates_at_2x() {
        // More bandwidth can only help BPVeC relative to the baseline, and
        // the advantage saturates at the 2x compute ratio (1024 vs 512).
        for id in [NetworkId::ResNet18, NetworkId::Rnn] {
            let sweep = bandwidth_sweep(id, BitwidthPolicy::Homogeneous8);
            for w in sweep.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{id}: {:?}", sweep);
            }
            let last = sweep.last().unwrap().1;
            assert!(last <= 2.0 + 1e-9, "{id} saturation {last}");
            assert!(last > 1.9, "{id} should reach the compute ratio: {last}");
        }
    }

    #[test]
    fn recurrent_crossover_sits_at_higher_bandwidth_than_cnns() {
        // The bandwidth at which the workload first reaches >= 1.5x speedup:
        // CNNs cross early, the weight-streaming recurrent models late.
        let crossover = |id: NetworkId| -> f64 {
            bandwidth_sweep(id, BitwidthPolicy::Homogeneous8)
                .iter()
                .find(|(_, s)| *s >= 1.5)
                .map_or(f64::INFINITY, |(b, _)| *b)
        };
        let cnn = crossover(NetworkId::ResNet18);
        let rnn = crossover(NetworkId::Rnn);
        assert!(
            rnn >= 4.0 * cnn,
            "rnn crossover {rnn} GB/s should be far above cnn {cnn} GB/s"
        );
    }


    #[test]
    fn csv_rendering_has_header_six_rows_and_geomean() {
        let csv = figure5().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "network,speedup,energy_reduction");
        assert!(lines[7].starts_with("GEOMEAN,"));
        assert!(csv.contains("AlexNet,"));
    }

    #[test]
    fn comparisons_carry_labels_and_six_rows() {
        let f = figure5();
        assert_eq!(f.rows.len(), 6);
        assert!(f.evaluated.contains("BPVeC"));
        assert!(f.baseline.contains("TPU-like"));
        assert!(f.row(NetworkId::Lstm).is_some());
    }
}
