//! The paper's accelerator-vs-accelerator experiments (Figures 5–8) as
//! [`Scenario`] declarations.
//!
//! Each figure is one slice of a three-platform × two-memory grid: the
//! homogeneous-8-bit grid powers Figures 5 and 6, the heterogeneous grid
//! Figures 7 and 8. The figure functions return the same
//! [`Comparison`] series the seed's hand-rolled loops produced —
//! per-network speedup and energy reduction relative to the figure's
//! normalization baseline, plus the geometric mean — exactly what the paper
//! plots. The paper's reported values ship alongside in [`paper`] for
//! EXPERIMENTS.md.
//!
//! New experiments do not need new modules: declare a scenario. See
//! [`bandwidth_sweep`] for a sweep built from custom memory systems.

use bpvec_dnn::{BitwidthPolicy, NetworkId};

use crate::accel::AcceleratorConfig;
use crate::memory::DramSpec;
use crate::scenario::{Report, Scenario};
use crate::workload::Workload;

pub use crate::scenario::{Comparison, ComparisonRow};

/// The full homogeneous-8-bit evaluation grid behind Figures 5 and 6:
/// all three Table II platforms × {DDR4, HBM2} × the six Table I networks,
/// normalized to the TPU-like baseline on DDR4.
#[must_use]
pub fn homogeneous_grid() -> Report {
    platform_grid(
        "figures 5-6: homogeneous 8-bit grid",
        BitwidthPolicy::Homogeneous8,
    )
    .baseline("TPU-like", "DDR4")
    .run()
}

/// The heterogeneous-bitwidth grid behind Figures 7 and 8, normalized to
/// BitFusion on DDR4 (the paper's Figure 7/8 baseline).
#[must_use]
pub fn heterogeneous_grid() -> Report {
    platform_grid(
        "figures 7-8: heterogeneous grid",
        BitwidthPolicy::Heterogeneous,
    )
    .baseline("BitFusion", "DDR4")
    .run()
}

fn platform_grid(name: &str, policy: BitwidthPolicy) -> Scenario {
    Scenario::new(name)
        .platform(AcceleratorConfig::tpu_like())
        .platform(AcceleratorConfig::bitfusion())
        .platform(AcceleratorConfig::bpvec())
        .memory(DramSpec::ddr4())
        .memory(DramSpec::hbm2())
        .workloads(Workload::table1(policy))
}

/// Figure 5: BPVeC vs the TPU-like baseline, both on DDR4, homogeneous
/// 8-bit. Paper geomeans: 1.39× speedup, 1.43× energy.
#[must_use]
pub fn figure5() -> Comparison {
    homogeneous_grid().comparison("BPVeC", "DDR4")
}

/// Figure 6, "baseline" series: the TPU-like design with HBM2, normalized
/// to itself with DDR4. Paper geomeans: ≈1.06× speedup, 1.34× energy.
#[must_use]
pub fn figure6_baseline() -> Comparison {
    homogeneous_grid().comparison("TPU-like", "HBM2")
}

/// Figure 6, BPVeC series: BPVeC with HBM2 normalized to the TPU-like
/// baseline with DDR4. Paper geomeans: 2.11× speedup, 2.28× energy.
#[must_use]
pub fn figure6_bpvec() -> Comparison {
    homogeneous_grid().comparison("BPVeC", "HBM2")
}

/// Figure 7: BPVeC vs BitFusion, both on DDR4, heterogeneous bitwidths.
/// Paper geomeans: 1.45× speedup, 1.13× energy.
#[must_use]
pub fn figure7() -> Comparison {
    heterogeneous_grid().comparison("BPVeC", "DDR4")
}

/// Figure 8, BitFusion series: BitFusion with HBM2 normalized to BitFusion
/// with DDR4. Paper geomeans: 1.45× speedup, 2.26× energy.
#[must_use]
pub fn figure8_bitfusion() -> Comparison {
    heterogeneous_grid().comparison("BitFusion", "HBM2")
}

/// Figure 8, BPVeC series: BPVeC with HBM2 normalized to BitFusion with
/// DDR4. Paper geomeans: 3.48× speedup, 2.66× energy.
#[must_use]
pub fn figure8_bpvec() -> Comparison {
    heterogeneous_grid().comparison("BPVeC", "HBM2")
}

/// The sweep's bandwidth points in GB/s (DDR4 sits at 16, HBM2 at 256).
pub const SWEEP_BANDWIDTHS_GB_S: [f64; 8] = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

const SWEEP_NAMES: [&str; 8] = [
    "4GB/s", "8GB/s", "16GB/s", "32GB/s", "64GB/s", "128GB/s", "256GB/s", "512GB/s",
];

/// Sweeps off-chip bandwidth and reports BPVeC's speedup over the TPU-like
/// baseline at each point — locating the bandwidth where each workload's
/// bottleneck crosses from memory to compute (the mechanism behind the
/// DDR4-vs-HBM2 split of Figures 5/6).
///
/// Returns `(bandwidth GB/s, speedup)` pairs; DRAM access energy is held at
/// the DDR4 figure so only bandwidth varies. One scenario with eight custom
/// memory systems replaces the seed's hand-rolled loop.
#[must_use]
pub fn bandwidth_sweep(id: NetworkId, policy: BitwidthPolicy) -> Vec<(f64, f64)> {
    let report = Scenario::new("bandwidth sweep")
        .platform(AcceleratorConfig::tpu_like())
        .platform(AcceleratorConfig::bpvec())
        .memories(
            SWEEP_BANDWIDTHS_GB_S
                .iter()
                .zip(SWEEP_NAMES)
                .map(|(&gbps, name)| DramSpec::custom(name, gbps, 15.0)),
        )
        .workload(Workload::new(id, policy))
        .run();
    SWEEP_BANDWIDTHS_GB_S
        .iter()
        .zip(SWEEP_NAMES)
        .map(|(&gbps, name)| {
            let c = report.comparison_between(("TPU-like", name), ("BPVeC", name));
            (gbps, c.rows[0].speedup)
        })
        .collect()
}

/// The paper's reported per-figure series (Table I network order), used by
/// the bench harness to print paper-vs-measured tables.
pub mod paper {
    /// Figure 5: BPVeC speedup over the DDR4 baseline.
    pub const FIG5_SPEEDUP: [f64; 6] = [1.5, 1.8, 1.7, 1.6, 1.0, 1.0];
    /// Figure 5: BPVeC energy reduction.
    pub const FIG5_ENERGY: [f64; 6] = [1.5, 1.7, 1.7, 1.6, 1.1, 1.1];
    /// Figure 5 geomeans (speedup, energy).
    pub const FIG5_GEOMEAN: (f64, f64) = (1.39, 1.43);
    /// Figure 6: BPVeC + HBM2 speedup over baseline + DDR4.
    pub const FIG6_BPVEC_SPEEDUP: [f64; 6] = [1.8, 2.0, 2.1, 2.1, 2.3, 2.4];
    /// Figure 6 geomeans for the BPVeC series (speedup, energy).
    pub const FIG6_BPVEC_GEOMEAN: (f64, f64) = (2.11, 2.28);
    /// Figure 6 geomeans for the baseline-with-HBM2 series.
    pub const FIG6_BASELINE_GEOMEAN: (f64, f64) = (1.06, 1.34);
    /// Figure 7: BPVeC speedup over BitFusion (DDR4, heterogeneous).
    pub const FIG7_SPEEDUP: [f64; 6] = [1.96, 1.62, 1.77, 1.32, 1.13, 1.11];
    /// Figure 7: energy reduction.
    pub const FIG7_ENERGY: [f64; 6] = [1.2, 1.1, 1.1, 1.1, 1.2, 1.1];
    /// Figure 7 geomeans.
    pub const FIG7_GEOMEAN: (f64, f64) = (1.45, 1.13);
    /// Figure 8: BPVeC + HBM2 speedup over BitFusion + DDR4.
    pub const FIG8_BPVEC_SPEEDUP: [f64; 6] = [3.0, 2.9, 2.9, 3.5, 4.5, 4.5];
    /// Figure 8 geomeans for the BPVeC series.
    pub const FIG8_BPVEC_GEOMEAN: (f64, f64) = (3.48, 2.66);
    /// Figure 8 geomeans for the BitFusion-with-HBM2 series.
    pub const FIG8_BITFUSION_GEOMEAN: (f64, f64) = (1.45, 2.26);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let f = figure5();
        // Headline: ~40% speedup and energy reduction overall.
        assert!(
            (1.15..=1.85).contains(&f.geomean_speedup),
            "geomean speedup {} (paper 1.39)",
            f.geomean_speedup
        );
        assert!(
            (1.05..=1.95).contains(&f.geomean_energy),
            "geomean energy {} (paper 1.43)",
            f.geomean_energy
        );
        // CNNs benefit; bandwidth-starved recurrent models do not.
        for id in [
            NetworkId::AlexNet,
            NetworkId::InceptionV1,
            NetworkId::ResNet18,
        ] {
            assert!(f.row(id).unwrap().speedup > 1.25, "{id}");
        }
        for id in [NetworkId::Rnn, NetworkId::Lstm] {
            let s = f.row(id).unwrap().speedup;
            assert!(s < 1.2, "{id} speedup {s} should be ~1.0");
        }
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let base = figure6_baseline();
        let bp = figure6_bpvec();
        // The baseline barely benefits from HBM2...
        assert!(
            base.geomean_speedup < 1.5,
            "baseline HBM2 speedup {} (paper 1.06)",
            base.geomean_speedup
        );
        // ...while BPVeC converts the bandwidth into ~2x.
        assert!(
            (1.75..=2.75).contains(&bp.geomean_speedup),
            "BPVeC HBM2 speedup {} (paper 2.11)",
            bp.geomean_speedup
        );
        // Our DRAM-energy accounting is more pessimistic on DDR4 than the
        // paper's (see EXPERIMENTS.md), so the HBM2 energy win overshoots.
        assert!(
            (1.8..=5.5).contains(&bp.geomean_energy),
            "BPVeC HBM2 energy {} (paper 2.28)",
            bp.geomean_energy
        );
        // RNN/LSTM see the largest gains (bandwidth-hungry).
        let rnn = bp.row(NetworkId::Rnn).unwrap().speedup;
        let cnn_min = [NetworkId::AlexNet, NetworkId::ResNet18]
            .iter()
            .map(|&id| bp.row(id).unwrap().speedup)
            .fold(f64::INFINITY, f64::min);
        assert!(rnn >= cnn_min * 0.95, "rnn {rnn} vs cnn min {cnn_min}");
    }

    #[test]
    fn fig7_shape_matches_paper() {
        let f = figure7();
        assert!(
            (1.2..=1.9).contains(&f.geomean_speedup),
            "geomean speedup {} (paper 1.45)",
            f.geomean_speedup
        );
        assert!(
            (1.0..=1.45).contains(&f.geomean_energy),
            "geomean energy {} (paper 1.13)",
            f.geomean_energy
        );
        // CNNs gain more than the bandwidth-bound recurrent models.
        let cnn = f.row(NetworkId::AlexNet).unwrap().speedup;
        let rnn = f.row(NetworkId::Rnn).unwrap().speedup;
        assert!(cnn > rnn, "cnn {cnn} vs rnn {rnn}");
        assert!(rnn < 1.35, "rnn {rnn} should be near 1.1");
    }

    #[test]
    fn fig8_shape_matches_paper() {
        let bf = figure8_bitfusion();
        let bp = figure8_bpvec();
        assert!(
            (2.4..=4.6).contains(&bp.geomean_speedup),
            "BPVeC geomean speedup {} (paper 3.48)",
            bp.geomean_speedup
        );
        assert!(
            bp.geomean_speedup > bf.geomean_speedup * 1.5,
            "BPVeC {} must clearly beat BitFusion-with-HBM2 {}",
            bp.geomean_speedup,
            bf.geomean_speedup
        );
        // Recurrent models see the highest BPVeC speedups (paper: 4.5x).
        let rnn = bp.row(NetworkId::Rnn).unwrap().speedup;
        let alex = bp.row(NetworkId::AlexNet).unwrap().speedup;
        assert!(rnn > alex, "rnn {rnn} should exceed alexnet {alex}");
    }

    #[test]
    fn grids_expose_every_series() {
        let hom = homogeneous_grid();
        assert_eq!(hom.cells.len(), 3 * 2 * 6);
        // Five non-baseline columns, each a ready-made comparison.
        assert_eq!(hom.comparisons().len(), 5);
        let het = heterogeneous_grid();
        assert_eq!(het.baseline.platform, "BitFusion");
    }

    #[test]
    fn bandwidth_sweep_is_monotone_and_saturates_at_2x() {
        // More bandwidth can only help BPVeC relative to the baseline, and
        // the advantage saturates at the 2x compute ratio (1024 vs 512).
        for id in [NetworkId::ResNet18, NetworkId::Rnn] {
            let sweep = bandwidth_sweep(id, BitwidthPolicy::Homogeneous8);
            for w in sweep.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{id}: {:?}", sweep);
            }
            let last = sweep.last().unwrap().1;
            assert!(last <= 2.0 + 1e-9, "{id} saturation {last}");
            assert!(last > 1.9, "{id} should reach the compute ratio: {last}");
        }
    }

    #[test]
    fn recurrent_crossover_sits_at_higher_bandwidth_than_cnns() {
        // The bandwidth at which the workload first reaches >= 1.5x speedup:
        // CNNs cross early, the weight-streaming recurrent models late.
        let crossover = |id: NetworkId| -> f64 {
            bandwidth_sweep(id, BitwidthPolicy::Homogeneous8)
                .iter()
                .find(|(_, s)| *s >= 1.5)
                .map_or(f64::INFINITY, |(b, _)| *b)
        };
        let cnn = crossover(NetworkId::ResNet18);
        let rnn = crossover(NetworkId::Rnn);
        assert!(
            rnn >= 4.0 * cnn,
            "rnn crossover {rnn} GB/s should be far above cnn {cnn} GB/s"
        );
    }

    #[test]
    fn csv_rendering_has_header_six_rows_and_geomean() {
        let csv = figure5().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "network,speedup,energy_reduction");
        assert!(lines[7].starts_with("GEOMEAN,"));
        assert!(csv.contains("AlexNet,"));
    }

    #[test]
    fn comparisons_carry_labels_and_six_rows() {
        let f = figure5();
        assert_eq!(f.rows.len(), 6);
        assert!(f.evaluated.contains("BPVeC"));
        assert!(f.baseline.contains("TPU-like"));
        assert!(f.row(NetworkId::Lstm).is_some());
    }
}
